// Tests for graph algorithms, the scale-free generator, the Table III
// presets, and the instantiated ISP network (roles, wiring, routing).

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "topology/graph.hpp"
#include "topology/isp.hpp"
#include "topology/network.hpp"

namespace tactic::topology {
namespace {

// ---------------------------------------------------------------------------
// Graph basics
// ---------------------------------------------------------------------------

TEST(Graph, AddEdgeIgnoresDuplicatesAndLoops) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate
  g.add_edge(2, 2);  // self-loop
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, OutOfRangeEdgeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.connected());  // node 3 isolated
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const auto dist = bfs_distances(g, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Graph, BfsUnreachableIsMax) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::size_t>::max());
}

TEST(Graph, NextHopFollowsShortestPath) {
  // Diamond: 0-1, 0-2, 1-3, 2-3; shortest 0->3 via lowest-id neighbor 1.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto next = next_hop_toward(g, 3);
  EXPECT_EQ(next[0], 1u);  // tie broken toward lower id
  EXPECT_EQ(next[1], 3u);
  EXPECT_EQ(next[2], 3u);
  EXPECT_EQ(next[3], std::numeric_limits<std::size_t>::max());
}

TEST(Graph, NextHopDeterministic) {
  util::Rng rng(5);
  const Graph g = barabasi_albert(rng, 50, 2);
  const auto a = next_hop_toward(g, 7);
  const auto b = next_hop_toward(g, 7);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Barabási–Albert
// ---------------------------------------------------------------------------

TEST(BarabasiAlbert, ProducesConnectedGraphOfRightSize) {
  util::Rng rng(42);
  const Graph g = barabasi_albert(rng, 100, 2);
  EXPECT_EQ(g.node_count(), 100u);
  EXPECT_TRUE(g.connected());
  // Seed clique (3 edges) + 97 nodes x 2 attachments.
  EXPECT_EQ(g.edge_count(), 3u + 97u * 2u);
}

TEST(BarabasiAlbert, MinimumDegreeIsAttach) {
  util::Rng rng(43);
  const Graph g = barabasi_albert(rng, 200, 3);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_GE(g.degree(i), 3u);
  }
}

TEST(BarabasiAlbert, DegreeDistributionIsHeavyTailed) {
  util::Rng rng(44);
  const Graph g = barabasi_albert(rng, 500, 2);
  std::size_t max_degree = 0;
  double mean_degree = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    max_degree = std::max(max_degree, g.degree(i));
    mean_degree += static_cast<double>(g.degree(i));
  }
  mean_degree /= static_cast<double>(g.node_count());
  // Scale-free hubs: the max degree dwarfs the mean (~4).
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean_degree);
}

TEST(BarabasiAlbert, InvalidParamsThrow) {
  util::Rng rng(45);
  EXPECT_THROW(barabasi_albert(rng, 2, 2), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(rng, 10, 0), std::invalid_argument);
}

TEST(BarabasiAlbert, DeterministicForSeed) {
  util::Rng a(7), b(7);
  const Graph ga = barabasi_albert(a, 100, 2);
  const Graph gb = barabasi_albert(b, 100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ga.neighbors(i), gb.neighbors(i));
  }
}

// ---------------------------------------------------------------------------
// Table III presets
// ---------------------------------------------------------------------------

struct PresetExpectation {
  int index;
  std::size_t core, edge, clients, attackers;
};

class PaperPresets : public ::testing::TestWithParam<PresetExpectation> {};

TEST_P(PaperPresets, MatchesTableIII) {
  const auto expected = GetParam();
  const TopologyParams params = paper_topology(expected.index);
  EXPECT_EQ(params.core_routers, expected.core);
  EXPECT_EQ(params.edge_routers, expected.edge);
  EXPECT_EQ(params.clients, expected.clients);
  EXPECT_EQ(params.attackers, expected.attackers);
  EXPECT_EQ(params.providers, 10u);
}

INSTANTIATE_TEST_SUITE_P(TableIII, PaperPresets,
                         ::testing::Values(
                             PresetExpectation{1, 80, 20, 35, 15},
                             PresetExpectation{2, 180, 20, 71, 29},
                             PresetExpectation{3, 370, 30, 143, 57},
                             PresetExpectation{4, 560, 40, 213, 87}));

TEST(PaperPresets, InvalidIndexThrows) {
  EXPECT_THROW(paper_topology(0), std::out_of_range);
  EXPECT_THROW(paper_topology(5), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Network construction
// ---------------------------------------------------------------------------

TEST(Network, BuildsAllRoles) {
  event::Scheduler sched;
  util::Rng rng(1);
  const TopologyParams params = paper_topology(1);
  Network net(sched, params, rng);
  EXPECT_EQ(net.core_routers().size(), 80u);
  EXPECT_EQ(net.edge_routers().size(), 20u);
  EXPECT_EQ(net.providers().size(), 10u);
  EXPECT_EQ(net.clients().size(), 35u);
  EXPECT_EQ(net.attackers().size(), 15u);
  EXPECT_EQ(net.access_points().size(), 20u * params.aps_per_edge);
  // APs are L2 segments, not forwarder nodes.
  EXPECT_EQ(net.node_count(), 80u + 20u + 10u + 35u + 15u);
}

TEST(Network, RolesHaveExpectedKinds) {
  event::Scheduler sched;
  util::Rng rng(2);
  Network net(sched, paper_topology(1), rng);
  for (net::NodeId id : net.edge_routers()) {
    EXPECT_EQ(net.node(id).info().kind, net::NodeKind::kEdgeRouter);
  }
  for (net::NodeId id : net.clients()) {
    EXPECT_EQ(net.node(id).info().kind, net::NodeKind::kClient);
  }
}

TEST(Network, EdgeRoutersAreLowDegreeBackboneNodes) {
  event::Scheduler sched;
  util::Rng rng(3);
  Network net(sched, paper_topology(1), rng);
  // Providers attach to core routers only.
  for (net::NodeId id : net.providers()) {
    const net::NodeId gateway = net.gateway_of(id);
    EXPECT_EQ(net.node(gateway).info().kind, net::NodeKind::kCoreRouter);
  }
}

TEST(Network, UsersHangBehindApsBehindEdges) {
  event::Scheduler sched;
  util::Rng rng(4);
  Network net(sched, paper_topology(1), rng);
  for (net::NodeId id : net.clients()) {
    const Network::AccessPoint& ap = net.ap_of(id);
    EXPECT_FALSE(ap.label.empty());
    // The user's NDN attachment point is the AP's edge router.
    EXPECT_EQ(net.edge_router_of(id), ap.edge_router);
    EXPECT_EQ(net.node(ap.edge_router).info().kind,
              net::NodeKind::kEdgeRouter);
    EXPECT_EQ(&net.access_points()[net.ap_index_of(id)], &ap);
  }
  for (net::NodeId id : net.attackers()) {
    EXPECT_EQ(net.node(net.ap_of(id).edge_router).info().kind,
              net::NodeKind::kEdgeRouter);
  }
}

TEST(Network, ApLabelsAreUnique) {
  event::Scheduler sched;
  util::Rng rng(4);
  Network net(sched, paper_topology(1), rng);
  std::set<std::string> labels;
  for (const auto& ap : net.access_points()) {
    EXPECT_TRUE(labels.insert(ap.label).second);
  }
}

TEST(Network, FaceBetweenAdjacentOnly) {
  event::Scheduler sched;
  util::Rng rng(5);
  Network net(sched, paper_topology(1), rng);
  const net::NodeId client = net.clients()[0];
  const net::NodeId edge = net.edge_router_of(client);
  EXPECT_NO_THROW(net.face_between(client, edge));
  EXPECT_NO_THROW(net.face_between(edge, client));
  // A client is never adjacent to a provider.
  EXPECT_THROW(net.face_between(client, net.providers()[0]),
               std::invalid_argument);
}

TEST(Network, InstallRoutesReachesEveryNode) {
  event::Scheduler sched;
  util::Rng rng(6);
  Network net(sched, paper_topology(1), rng);
  const net::NodeId producer = net.providers()[0];
  net.install_routes(ndn::Name("/provider0"), producer);
  // Every node except the producer has a route for the prefix.
  for (net::NodeId id = 0; id < net.node_count(); ++id) {
    if (id == producer) continue;
    EXPECT_NE(net.node(id).fib().lookup(ndn::Name("/provider0/obj1/c1")),
              nullptr)
        << "node " << id;
  }
}

TEST(Network, RoutesConvergeTowardProducer) {
  event::Scheduler sched;
  util::Rng rng(7);
  Network net(sched, paper_topology(1), rng);
  const net::NodeId producer = net.providers()[3];
  net.install_routes(ndn::Name("/provider3"), producer);
  // Follow next-hops from a client; must reach the producer within the
  // node count (no loops).
  net::NodeId current = net.clients()[0];
  std::set<net::NodeId> visited;
  while (current != producer) {
    ASSERT_TRUE(visited.insert(current).second) << "routing loop";
    const auto* route =
        net.node(current).fib().lookup(ndn::Name("/provider3/x"));
    ASSERT_NE(route, nullptr);
    // Find the neighbor this face leads to by scanning adjacency.
    net::NodeId next = net::kInvalidNode;
    for (net::NodeId candidate = 0; candidate < net.node_count();
         ++candidate) {
      if (candidate == current) continue;
      try {
        if (net.face_between(current, candidate) == route->next_hop()) {
          next = candidate;
          break;
        }
      } catch (const std::invalid_argument&) {
      }
    }
    ASSERT_NE(next, net::kInvalidNode);
    current = next;
  }
  SUCCEED();
}

TEST(Network, DeterministicForSeed) {
  event::Scheduler s1, s2;
  util::Rng r1(9), r2(9);
  Network a(s1, paper_topology(1), r1);
  Network b(s2, paper_topology(1), r2);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (net::NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).info().kind, b.node(id).info().kind);
    EXPECT_EQ(a.node(id).info().label, b.node(id).info().label);
  }
}

TEST(Network, EmptyNetworkHandBuilt) {
  event::Scheduler sched;
  Network net = Network::empty(sched);
  const net::NodeId a =
      net.add_node(net::NodeKind::kCoreRouter, "a", 10);
  const net::NodeId b =
      net.add_node(net::NodeKind::kCoreRouter, "b", 10);
  net.connect(a, b, net::core_link_params());
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_NO_THROW(net.face_between(a, b));
}

TEST(Network, ConnectRejectsBadEndpoints) {
  event::Scheduler sched;
  Network net = Network::empty(sched);
  const net::NodeId a = net.add_node(net::NodeKind::kCoreRouter, "a", 0);
  EXPECT_THROW(net.connect(a, a, net::core_link_params()),
               std::invalid_argument);
  EXPECT_THROW(net.connect(a, 99, net::core_link_params()),
               std::invalid_argument);
}

TEST(Network, AdjacencyUpDownControl) {
  event::Scheduler sched;
  Network net = Network::empty(sched);
  const net::NodeId a = net.add_node(net::NodeKind::kCoreRouter, "a", 0);
  const net::NodeId b = net.add_node(net::NodeKind::kCoreRouter, "b", 0);
  const net::NodeId c = net.add_node(net::NodeKind::kCoreRouter, "c", 0);
  net.connect(a, b, net::core_link_params());
  EXPECT_TRUE(net.adjacency_up(a, b));
  net.set_adjacency_up(a, b, false);
  EXPECT_FALSE(net.adjacency_up(a, b));
  EXPECT_FALSE(net.adjacency_up(b, a));
  net.set_adjacency_up(a, b, true);
  EXPECT_TRUE(net.adjacency_up(a, b));
  EXPECT_THROW(net.set_adjacency_up(a, c, false), std::invalid_argument);
  EXPECT_THROW(net.adjacency_up(a, c), std::invalid_argument);
}

TEST(Network, InstallRoutesUsesEqualCostMultipath) {
  // Diamond: src - {m1, m2} - dst.  src must get both next hops.
  event::Scheduler sched;
  Network net = Network::empty(sched);
  const net::NodeId src = net.add_node(net::NodeKind::kCoreRouter, "s", 0);
  const net::NodeId m1 = net.add_node(net::NodeKind::kCoreRouter, "m1", 0);
  const net::NodeId m2 = net.add_node(net::NodeKind::kCoreRouter, "m2", 0);
  const net::NodeId dst = net.add_node(net::NodeKind::kProvider, "d", 0);
  net.connect(src, m1, net::core_link_params());
  net.connect(src, m2, net::core_link_params());
  net.connect(m1, dst, net::core_link_params());
  net.connect(m2, dst, net::core_link_params());
  net.install_routes(ndn::Name("/d"), dst);
  const auto* entry = net.node(src).fib().lookup(ndn::Name("/d/x"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->next_hops.size(), 2u);

  // Fail one middle hop and reconverge: a single next hop remains.
  net.set_adjacency_up(src, m1, false);
  net.install_routes(ndn::Name("/d"), dst);
  entry = net.node(src).fib().lookup(ndn::Name("/d/x"));
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->next_hops.size(), 1u);
  EXPECT_EQ(entry->next_hop(), net.face_between(src, m2));
}

TEST(Network, ReattachUserValidation) {
  event::Scheduler sched;
  util::Rng rng(8);
  Network net(sched, paper_topology(1), rng);
  // Reattaching a router is rejected.
  EXPECT_THROW(net.reattach_user(net.core_routers()[0], 0),
               std::invalid_argument);
  // Reattaching a client updates the maps.
  const net::NodeId client = net.clients()[0];
  const std::size_t target =
      (net.ap_index_of(client) + 1) % net.access_points().size();
  net.reattach_user(client, target);
  EXPECT_EQ(net.ap_index_of(client), target);
  EXPECT_EQ(net.edge_router_of(client),
            net.access_points()[target].edge_router);
}

class AllPresetsBuild : public ::testing::TestWithParam<int> {};

TEST_P(AllPresetsBuild, ConstructsAndRoutes) {
  event::Scheduler sched;
  util::Rng rng(100 + GetParam());
  Network net(sched, paper_topology(GetParam()), rng);
  EXPECT_GT(net.node_count(), 0u);
  net.install_routes(ndn::Name("/provider0"), net.providers()[0]);
  EXPECT_NE(net.node(net.clients()[0]).fib().lookup(
                ndn::Name("/provider0/x")),
            nullptr);
}

INSTANTIATE_TEST_SUITE_P(Presets, AllPresetsBuild,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tactic::topology
