// Tests for the TACTIC core: tags, access paths, the compute model,
// Protocol 1 pre-checks, tag issuance/revocation, and Protocols 2-4 driven
// over a hand-built client-AP-edge-core-provider chain.

#include <gtest/gtest.h>

#include <memory>

#include "crypto/rsa.hpp"
#include "ndn/forwarder.hpp"
#include "tactic/access_path.hpp"
#include "tactic/compute_model.hpp"
#include "tactic/precheck.hpp"
#include "tactic/registration.hpp"
#include "tactic/tactic_policy.hpp"
#include "tactic/tag.hpp"
#include "topology/network.hpp"

namespace tactic::core {
namespace {

using event::kMillisecond;
using event::kSecond;

crypto::RsaKeyPair test_keypair(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return crypto::generate_rsa_keypair(rng, 512);
}

Tag::Fields basic_fields() {
  Tag::Fields fields;
  fields.provider_key_locator = "/provider0/KEY/1";
  fields.client_key_locator = "/client0/KEY/1";
  fields.access_level = 2;
  fields.access_path = 0xDEADBEEF;
  fields.expiry = 10 * kSecond;
  return fields;
}

// ---------------------------------------------------------------------------
// Tag
// ---------------------------------------------------------------------------

TEST(Tag, IssueAndVerify) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  crypto::Pki pki;
  pki.add_key("/provider0/KEY/1", keys.public_key);
  EXPECT_TRUE(verify_tag_signature(*tag, pki));
}

TEST(Tag, VerifyFailsForUnknownLocator) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  crypto::Pki pki;  // empty
  EXPECT_FALSE(verify_tag_signature(*tag, pki));
}

TEST(Tag, ForgedTagFailsVerification) {
  const auto provider = test_keypair(1);
  const auto forger = test_keypair(2);
  crypto::Pki pki;
  pki.add_key("/provider0/KEY/1", provider.public_key);
  const TagPtr forged = forge_tag(basic_fields(), forger.private_key);
  EXPECT_FALSE(verify_tag_signature(*forged, pki));
}

TEST(Tag, AnyFieldTamperBreaksVerification) {
  const auto keys = test_keypair();
  crypto::Pki pki;
  pki.add_key("/provider0/KEY/1", keys.public_key);
  pki.add_key("/provider1/KEY/1", keys.public_key);
  const TagPtr good = issue_tag(basic_fields(), keys.private_key);

  auto tampered = [&](auto mutate) {
    Tag::Fields fields = basic_fields();
    mutate(fields);
    return Tag(fields, good->signature());
  };
  EXPECT_FALSE(verify_tag_signature(
      tampered([](Tag::Fields& f) { f.access_level = 99; }), pki));
  EXPECT_FALSE(verify_tag_signature(
      tampered([](Tag::Fields& f) { f.expiry = 1000 * kSecond; }), pki));
  EXPECT_FALSE(verify_tag_signature(
      tampered([](Tag::Fields& f) { f.access_path = 0; }), pki));
  EXPECT_FALSE(verify_tag_signature(
      tampered([](Tag::Fields& f) {
        f.provider_key_locator = "/provider1/KEY/1";
      }),
      pki));
}

TEST(Tag, BloomKeyChangesWithAnyField) {
  const auto keys = test_keypair();
  const TagPtr a = issue_tag(basic_fields(), keys.private_key);
  Tag::Fields other = basic_fields();
  other.access_level = 3;
  const TagPtr b = issue_tag(other, keys.private_key);
  EXPECT_NE(a->bloom_key(), b->bloom_key());
  EXPECT_EQ(a->bloom_key().size(), 32u);
  EXPECT_TRUE(a->same_tag(*a));
  EXPECT_FALSE(a->same_tag(*b));
}

TEST(Tag, SerializationRoundsTripFields) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_EQ(tag->provider_key_locator(), "/provider0/KEY/1");
  EXPECT_EQ(tag->client_key_locator(), "/client0/KEY/1");
  EXPECT_EQ(tag->access_level(), 2u);
  EXPECT_EQ(tag->access_path(), 0xDEADBEEFu);
  EXPECT_EQ(tag->expiry(), 10 * kSecond);
}

TEST(Tag, WireSizeIsACoupleHundredBytes) {
  // Paper Section 4.A: "a tag [will] be a couple hundred bytes."
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_GT(tag->wire_size(), 100u);
  EXPECT_LT(tag->wire_size(), 400u);
}

TEST(Tag, ProviderPrefixExtraction) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_EQ(tag->provider_prefix().to_uri(), "/provider0");
}

// ---------------------------------------------------------------------------
// Access path
// ---------------------------------------------------------------------------

TEST(AccessPath, XorIsOrderIndependentAndSelfInverse) {
  const std::uint64_t a = entity_id_hash("ap1");
  const std::uint64_t b = entity_id_hash("relay2");
  EXPECT_EQ(accumulate_access_path(accumulate_access_path(0, a), b),
            accumulate_access_path(accumulate_access_path(0, b), a));
  EXPECT_EQ(accumulate_access_path(accumulate_access_path(0, a), a), 0u);
}

TEST(AccessPath, PathOfLabels) {
  const std::uint64_t direct = access_path_of({"ap1", "relay2"});
  EXPECT_EQ(direct, entity_id_hash("ap1") ^ entity_id_hash("relay2"));
  EXPECT_EQ(access_path_of({}), 0u);
}

TEST(AccessPath, DistinctEntitiesDistinctHashes) {
  EXPECT_NE(entity_id_hash("ap1"), entity_id_hash("ap2"));
  EXPECT_EQ(entity_id_hash("ap1"), entity_id_hash("ap1"));
}

// ---------------------------------------------------------------------------
// Compute model
// ---------------------------------------------------------------------------

TEST(ComputeModel, ZeroModelChargesNothing) {
  util::Rng rng(1);
  ComputeModel model = ComputeModel::zero();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.bf_lookup_cost(rng), 0);
    EXPECT_EQ(model.bf_insert_cost(rng), 0);
    EXPECT_EQ(model.sig_verify_cost(rng), 0);
  }
}

TEST(ComputeModel, DeterministicUsesMeans) {
  util::Rng rng(2);
  ComputeModel model = ComputeModel::deterministic();
  EXPECT_EQ(model.bf_lookup_cost(rng), event::from_seconds(9.14e-7));
  EXPECT_EQ(model.sig_verify_cost(rng), event::from_seconds(1.12e-5));
}

TEST(ComputeModel, PaperDefaultsNeverNegative) {
  util::Rng rng(3);
  ComputeModel model = ComputeModel::paper_defaults();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(model.bf_insert_cost(rng), 0);
    EXPECT_GE(model.sig_verify_cost(rng), 0);
  }
}

TEST(ComputeModel, PaperVerifyTailReachesMilliseconds) {
  // The printed sigma (6.49e-3 s) means a heavy tail; over many samples
  // some verifications must cost > 1 ms — that tail is what makes BF
  // resets visible in Fig. 5.
  util::Rng rng(4);
  ComputeModel model = ComputeModel::paper_defaults();
  event::Time max_cost = 0;
  for (int i = 0; i < 10000; ++i) {
    max_cost = std::max(max_cost, model.sig_verify_cost(rng));
  }
  EXPECT_GT(max_cost, event::kMillisecond);
}

// ---------------------------------------------------------------------------
// Protocol 1 pre-check
// ---------------------------------------------------------------------------

TEST(Precheck, EdgeAcceptsMatchingUnexpired) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_EQ(edge_precheck(*tag, ndn::Name("/provider0/obj1/c2"), kSecond),
            PrecheckResult::kOk);
}

TEST(Precheck, EdgeRejectsWrongProviderPrefix) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_EQ(edge_precheck(*tag, ndn::Name("/provider1/obj1/c2"), kSecond),
            PrecheckResult::kPrefixMismatch);
}

TEST(Precheck, EdgeRejectsExpired) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  EXPECT_EQ(edge_precheck(*tag, ndn::Name("/provider0/x"), 11 * kSecond),
            PrecheckResult::kExpired);
  // Boundary: expiry == now is still valid (T_e < T_current rejects).
  EXPECT_EQ(edge_precheck(*tag, ndn::Name("/provider0/x"), 10 * kSecond),
            PrecheckResult::kOk);
}

TEST(Precheck, ContentChecksAccessLevelHierarchy) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);  // AL 2
  ndn::Data data;
  data.provider_key_locator = "/provider0/KEY/1";
  data.access_level = 2;
  EXPECT_EQ(content_precheck(*tag, data), PrecheckResult::kOk);
  data.access_level = 1;  // lower level content: higher-AL tag suffices
  EXPECT_EQ(content_precheck(*tag, data), PrecheckResult::kOk);
  data.access_level = 3;  // above the tag
  EXPECT_EQ(content_precheck(*tag, data),
            PrecheckResult::kAccessLevelTooLow);
}

TEST(Precheck, ContentPublicDataSkipsChecks) {
  const auto keys = test_keypair();
  Tag::Fields fields = basic_fields();
  fields.access_level = 0;
  const TagPtr tag = issue_tag(fields, keys.private_key);
  ndn::Data data;
  data.access_level = ndn::kPublicAccessLevel;
  data.provider_key_locator = "/someone-else/KEY/1";
  EXPECT_EQ(content_precheck(*tag, data), PrecheckResult::kOk);
}

TEST(Precheck, ContentRejectsProviderKeyMismatch) {
  const auto keys = test_keypair();
  const TagPtr tag = issue_tag(basic_fields(), keys.private_key);
  ndn::Data data;
  data.access_level = 1;
  data.provider_key_locator = "/provider0/KEY/2";  // rotated key
  EXPECT_EQ(content_precheck(*tag, data),
            PrecheckResult::kProviderKeyMismatch);
}

TEST(Precheck, NackReasonMapping) {
  EXPECT_EQ(to_nack_reason(PrecheckResult::kExpired),
            ndn::NackReason::kExpiredTag);
  EXPECT_EQ(to_nack_reason(PrecheckResult::kPrefixMismatch),
            ndn::NackReason::kPrefixMismatch);
  EXPECT_EQ(to_nack_reason(PrecheckResult::kOk), ndn::NackReason::kNone);
}

// ---------------------------------------------------------------------------
// TagIssuer
// ---------------------------------------------------------------------------

TEST(TagIssuer, IssueEnrolledOnly) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  EXPECT_EQ(issuer.issue("/client0/KEY/1", 0, 0), nullptr);
  EXPECT_EQ(issuer.refusals(), 1u);
  issuer.enroll("/client0/KEY/1", 2);
  const TagPtr tag = issuer.issue("/client0/KEY/1", 7, kSecond);
  ASSERT_NE(tag, nullptr);
  EXPECT_EQ(tag->access_level(), 2u);
  EXPECT_EQ(tag->access_path(), 7u);
  EXPECT_EQ(tag->expiry(), kSecond + 10 * kSecond);
  EXPECT_EQ(issuer.tags_issued(), 1u);
}

TEST(TagIssuer, RevocationStopsIssuance) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  issuer.enroll("/client0/KEY/1", 1);
  issuer.revoke("/client0/KEY/1");
  EXPECT_TRUE(issuer.is_revoked("/client0/KEY/1"));
  EXPECT_EQ(issuer.issue("/client0/KEY/1", 0, 0), nullptr);
  // Re-enrolling clears revocation.
  issuer.enroll("/client0/KEY/1", 1);
  EXPECT_NE(issuer.issue("/client0/KEY/1", 0, 0), nullptr);
}

TEST(TagIssuer, IssuedTagsVerifyUnderPki) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  issuer.enroll("/client0/KEY/1", 1);
  const TagPtr tag = issuer.issue("/client0/KEY/1", 0, 0);
  crypto::Pki pki;
  pki.add_key("/provider0/KEY/1", keys.public_key);
  EXPECT_TRUE(verify_tag_signature(*tag, pki));
}

TEST(TagIssuer, RevokeThenReenrollIssuesFreshCredentials) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  issuer.enroll("/client0/KEY/1", 1);
  const TagPtr before = issuer.issue("/client0/KEY/1", 3, kSecond);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->access_level(), 1u);

  issuer.revoke("/client0/KEY/1");
  EXPECT_EQ(issuer.issue("/client0/KEY/1", 3, 2 * kSecond), nullptr);

  // Re-enrollment at a different access level fully supersedes both the
  // revocation and the old grant.
  issuer.enroll("/client0/KEY/1", 2);
  EXPECT_FALSE(issuer.is_revoked("/client0/KEY/1"));
  const TagPtr after = issuer.issue("/client0/KEY/1", 3, 3 * kSecond);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->access_level(), 2u);
  EXPECT_EQ(after->expiry(), 3 * kSecond + 10 * kSecond);
}

TEST(TagIssuer, IssueAtExpiryBoundary) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  issuer.enroll("/client0/KEY/1", 1);
  const TagPtr tag = issuer.issue("/client0/KEY/1", 0, 5 * kSecond);
  ASSERT_NE(tag, nullptr);
  EXPECT_EQ(tag->expiry(), 15 * kSecond);
  const ndn::Name name("/provider0/obj1/c0");
  // Protocol 1 rejects strictly after T_e: at the boundary instant the
  // tag is still honoured.
  EXPECT_EQ(edge_precheck(*tag, name, 15 * kSecond), PrecheckResult::kOk);
  EXPECT_EQ(edge_precheck(*tag, name, 15 * kSecond + 1),
            PrecheckResult::kExpired);
  // The skew-tolerance overload widens the boundary by exactly the
  // window, no further.
  EXPECT_EQ(edge_precheck(*tag, name, 17 * kSecond, 2 * kSecond),
            PrecheckResult::kOk);
  EXPECT_EQ(edge_precheck(*tag, name, 17 * kSecond + 1, 2 * kSecond),
            PrecheckResult::kExpired);
}

TEST(TagIssuer, CountersAreMonotonicAcrossLifecycle) {
  const auto keys = test_keypair();
  TagIssuer issuer("/provider0/KEY/1", keys.private_key, 10 * kSecond);
  EXPECT_EQ(issuer.tags_issued(), 0u);
  EXPECT_EQ(issuer.refusals(), 0u);

  issuer.issue("/client0/KEY/1", 0, 0);  // never enrolled
  EXPECT_EQ(issuer.refusals(), 1u);
  issuer.enroll("/client0/KEY/1", 1);
  issuer.issue("/client0/KEY/1", 0, kSecond);
  issuer.issue("/client0/KEY/1", 0, 2 * kSecond);
  EXPECT_EQ(issuer.tags_issued(), 2u);
  issuer.revoke("/client0/KEY/1");
  issuer.issue("/client0/KEY/1", 0, 3 * kSecond);
  EXPECT_EQ(issuer.refusals(), 2u);
  issuer.enroll("/client0/KEY/1", 1);
  issuer.issue("/client0/KEY/1", 0, 4 * kSecond);
  // Refusals never reset a client's issuance history and vice versa:
  // both counters only grow, and every issue() attempt lands in exactly
  // one of them.
  EXPECT_EQ(issuer.tags_issued(), 3u);
  EXPECT_EQ(issuer.refusals(), 2u);
  EXPECT_EQ(issuer.tags_issued() + issuer.refusals(), 5u);
}

// ---------------------------------------------------------------------------
// Protocols 2-4 over a hand-built chain:
//   client -- AP -- edge -- core(content router) -- producer stub
// ---------------------------------------------------------------------------

struct ProtocolFixture : public ::testing::Test {
  struct Net {
    event::Scheduler sched;
    topology::Network network = topology::Network::empty(sched);
    ndn::Forwarder& noderef(net::NodeId id) { return network.node(id); }
  } net;

  TrustAnchors anchors;
  crypto::RsaKeyPair provider_keys = test_keypair(11);
  TagIssuer issuer{"/provider0/KEY/1", provider_keys.private_key,
                   10 * kSecond};
  TacticConfig config;

  net::NodeId client, edge, core, producer;
  ndn::FaceId client_app = ndn::kInvalidFace;
  ndn::FaceId producer_app = ndn::kInvalidFace;

  std::vector<ndn::Data> client_data;
  std::vector<ndn::Nack> client_nacks;
  int produced = 0;

  EdgeTacticPolicy* edge_policy = nullptr;
  CoreTacticPolicy* core_policy = nullptr;

  void SetUp() override {
    anchors.pki.add_key("/provider0/KEY/1", provider_keys.public_key);
    anchors.protected_prefixes.insert("/provider0");
    config.bloom = {500, 5, 1e-4};

    auto& network = net.network;
    client = network.add_node(net::NodeKind::kClient, "client0", 0);
    edge = network.add_node(net::NodeKind::kEdgeRouter, "edge0", 0);
    core = network.add_node(net::NodeKind::kCoreRouter, "core0", 100);
    producer = network.add_node(net::NodeKind::kProvider, "provider0", 0);
    // The client sits behind the wireless segment "ap0" (an L2 entity);
    // its egress policy accumulates the segment identity.
    network.connect(client, edge, net::edge_link_params());
    network.connect(edge, core, net::core_link_params());
    network.connect(core, producer, net::core_link_params());

    install_policies(ComputeModel::zero());

    client_app = network.node(client).add_app_face(ndn::AppSink{
        nullptr,
        [this](const ndn::Data& d) { client_data.push_back(d); },
        [this](const ndn::Nack& n) { client_nacks.push_back(n); }});
    producer_app = network.node(producer).add_app_face(ndn::AppSink{
        [this](ndn::FaceId face, const ndn::Interest& interest) {
          ++produced;
          ndn::Data data;
          data.name = interest.name;
          data.content_size = 1024;
          data.access_level = 1;
          data.provider_key_locator = "/provider0/KEY/1";
          data.tag = interest.tag;
          data.tag_wire_size = interest.tag_wire_size;
          data.flag_f = 0.0;  // the provider vouches after validation
          // Provider-side validation (it is the trusted origin).
          if (!interest.tag ||
              !verify_tag_signature(*interest.tag, anchors.pki) ||
              content_precheck(*interest.tag, data) != PrecheckResult::kOk) {
            data.nack_attached = true;
            data.nack_reason = ndn::NackReason::kInvalidSignature;
          }
          net.network.node(producer).inject_from_app(face, std::move(data));
        },
        nullptr, nullptr});

    network.node(client).fib().add_route(
        ndn::Name("/"), network.face_between(client, edge));
    network.node(producer).fib().add_route(ndn::Name("/provider0"),
                                           producer_app);
    network.install_routes(ndn::Name("/provider0"), producer);

    issuer.enroll("/client0/KEY/1", 2);
  }

  void install_policies(ComputeModel compute) {
    auto& network = net.network;
    network.node(client).set_policy(std::make_unique<ApPolicy>("ap0"));
    auto edge_p = std::make_unique<EdgeTacticPolicy>(config, anchors,
                                                     compute, util::Rng(21));
    edge_policy = edge_p.get();
    network.node(edge).set_policy(std::move(edge_p));
    auto core_p = std::make_unique<CoreTacticPolicy>(config, anchors,
                                                     compute, util::Rng(22));
    core_policy = core_p.get();
    network.node(core).set_policy(std::move(core_p));
  }

  /// A tag as the provider would issue it for this client at this
  /// location (the access path covers the AP between client and edge).
  TagPtr client_tag(event::Time now = 0) {
    return issuer.issue("/client0/KEY/1", entity_id_hash("ap0"), now);
  }

  void express(const ndn::Name& name, TagPtr tag) {
    ndn::Interest interest;
    interest.name = name;
    static std::uint64_t nonce = 1;
    interest.nonce = nonce++;
    interest.lifetime = kSecond;
    interest.tag = std::move(tag);
    interest.tag_wire_size = interest.tag ? interest.tag->wire_size() : 0;
    net.network.node(client).inject_from_app(client_app,
                                             std::move(interest));
  }

  void run() { net.sched.run(); }
};

TEST_F(ProtocolFixture, ValidTagFetchesContent) {
  express(ndn::Name("/provider0/obj1/c0"), client_tag());
  run();
  ASSERT_EQ(client_data.size(), 1u);
  EXPECT_FALSE(client_data[0].nack_attached);
  EXPECT_EQ(produced, 1);
}

TEST_F(ProtocolFixture, NoTagIsNackedAtEdge) {
  express(ndn::Name("/provider0/obj1/c0"), nullptr);
  run();
  EXPECT_TRUE(client_data.empty());
  ASSERT_EQ(client_nacks.size(), 1u);
  EXPECT_EQ(client_nacks[0].reason, ndn::NackReason::kNoTag);
  EXPECT_EQ(edge_policy->counters().no_tag_rejections, 1u);
  EXPECT_EQ(produced, 0);  // never left the edge
}

TEST_F(ProtocolFixture, ExpiredTagDroppedAtEdge) {
  const TagPtr stale = client_tag(-20 * kSecond);  // expired before t=0
  express(ndn::Name("/provider0/obj1/c0"), stale);
  run();
  EXPECT_TRUE(client_data.empty());
  EXPECT_EQ(edge_policy->counters().precheck_rejections, 1u);
  EXPECT_EQ(produced, 0);
}

TEST_F(ProtocolFixture, WrongProviderPrefixDroppedAtEdge) {
  // Tag names provider0 but the request targets another prefix; make that
  // prefix routable and protected to isolate the pre-check.
  anchors.protected_prefixes.insert("/provider1");
  net.network.node(edge).fib().add_route(
      ndn::Name("/provider1"), net.network.face_between(edge, core));
  express(ndn::Name("/provider1/obj1/c0"), client_tag());
  run();
  EXPECT_TRUE(client_data.empty());
  EXPECT_EQ(edge_policy->counters().precheck_rejections, 1u);
}

TEST_F(ProtocolFixture, ForgedTagGetsNackedContent) {
  const auto forger = test_keypair(99);
  Tag::Fields fields = basic_fields();
  fields.access_path = entity_id_hash("ap0");
  const TagPtr forged = forge_tag(fields, forger.private_key);
  express(ndn::Name("/provider0/obj1/c0"), forged);
  run();
  // The provider detects the forgery and returns content-with-NACK; the
  // edge suppresses delivery, so the client sees nothing.
  EXPECT_TRUE(client_data.empty());
  EXPECT_EQ(produced, 1);
}

TEST_F(ProtocolFixture, FlagFZeroOnFirstUseThenNonzero) {
  const TagPtr tag = client_tag();
  express(ndn::Name("/provider0/obj1/c0"), tag);
  run();
  ASSERT_EQ(client_data.size(), 1u);
  // First use: edge miss -> F = 0; provider vouches; edge inserted.
  EXPECT_EQ(edge_policy->counters().bf_insertions, 1u);
  EXPECT_TRUE(edge_policy->bloom().contains(tag->bloom_key()));

  // Second use of the same tag: edge BF hit, so the content router (core,
  // now caching the chunk) sees F != 0 and trusts or spot-checks.
  express(ndn::Name("/provider0/obj1/c0"), tag);
  run();
  ASSERT_EQ(client_data.size(), 2u);
  EXPECT_EQ(produced, 1);  // second answered from the core cache
  EXPECT_TRUE(client_data[1].from_cache);
}

TEST_F(ProtocolFixture, ContentRouterVerifiesWhenEdgeCannotVouch) {
  // Warm the core cache with a first fetch.
  const TagPtr tag1 = client_tag();
  express(ndn::Name("/provider0/obj1/c0"), tag1);
  run();
  const std::uint64_t verifications_before =
      core_policy->counters().sig_verifications;

  // A different (fresh) tag, unknown to the edge BF: F=0 reaches the
  // content router, which must verify and insert it.
  const TagPtr tag2 = client_tag(kMillisecond);
  express(ndn::Name("/provider0/obj1/c0"), tag2);
  run();
  EXPECT_EQ(core_policy->counters().sig_verifications,
            verifications_before + 1);
  EXPECT_TRUE(core_policy->bloom().contains(tag2->bloom_key()));
  ASSERT_EQ(client_data.size(), 2u);
  EXPECT_TRUE(client_data[1].from_cache);
}

TEST_F(ProtocolFixture, InsufficientAccessLevelNackedAtContentRouter) {
  // Warm cache.
  express(ndn::Name("/provider0/obj1/c0"), client_tag());
  run();
  ASSERT_EQ(client_data.size(), 1u);

  // An AL-0 tag cannot satisfy AL-1 content: content pre-check trips at
  // the content router, content-with-NACK flows, edge drops delivery.
  issuer.enroll("/lowpriv/KEY/1", 0);
  const TagPtr low = issuer.issue("/lowpriv/KEY/1",
                                  entity_id_hash("ap0"), 0);
  express(ndn::Name("/provider0/obj1/c0"), low);
  run();
  EXPECT_EQ(client_data.size(), 1u);  // nothing new delivered
  EXPECT_GE(core_policy->counters().precheck_rejections, 1u);
}

TEST_F(ProtocolFixture, AccessPathEnforcementBlocksSharedTag) {
  config.enforce_access_path = true;
  install_policies(ComputeModel::zero());

  // A tag issued for a *different* location (AP hash differs).
  const TagPtr elsewhere =
      issuer.issue("/client0/KEY/1", entity_id_hash("some-other-ap"), 0);
  express(ndn::Name("/provider0/obj1/c0"), elsewhere);
  run();
  EXPECT_TRUE(client_data.empty());
  ASSERT_EQ(client_nacks.size(), 1u);
  EXPECT_EQ(client_nacks[0].reason, ndn::NackReason::kAccessPathMismatch);
  EXPECT_EQ(edge_policy->counters().access_path_rejections, 1u);

  // The correctly-located tag passes.
  express(ndn::Name("/provider0/obj1/c0"), client_tag());
  run();
  EXPECT_EQ(client_data.size(), 1u);
}

TEST_F(ProtocolFixture, AccessPathOffAcceptsSharedTag) {
  ASSERT_FALSE(config.enforce_access_path);
  const TagPtr elsewhere =
      issuer.issue("/client0/KEY/1", entity_id_hash("some-other-ap"), 0);
  express(ndn::Name("/provider0/obj1/c0"), elsewhere);
  run();
  // Without the future-work feature, location sharing is not detected.
  EXPECT_EQ(client_data.size(), 1u);
}

TEST_F(ProtocolFixture, RegistrationResponseInsertsIntoEdgeBloom) {
  // Simulate the provider responding to a registration with a fresh tag.
  net.network.node(producer).fib().remove_route(ndn::Name("/provider0"));
  const ndn::FaceId reg_app =
      net.network.node(producer).add_app_face(ndn::AppSink{
          [this](ndn::FaceId face, const ndn::Interest& interest) {
            ndn::Data response;
            response.name = interest.name;
            response.is_registration_response = true;
            response.tag = issuer.issue("/client0/KEY/1",
                                        interest.access_path,
                                        net.sched.now());
            response.tag_wire_size = response.tag->wire_size();
            net.network.node(producer).inject_from_app(face,
                                                       std::move(response));
          },
          nullptr, nullptr});
  net.network.node(producer).fib().add_route(ndn::Name("/provider0"),
                                             reg_app);

  ndn::Interest reg;
  reg.name = ndn::Name("/provider0/register/client0/1");
  reg.nonce = 777;
  net.network.node(client).inject_from_app(client_app, std::move(reg));
  run();
  ASSERT_EQ(client_data.size(), 1u);
  ASSERT_TRUE(client_data[0].is_registration_response);
  ASSERT_NE(client_data[0].tag, nullptr);
  // Protocol 2 lines 11-12: the fresh tag is already in the edge BF.
  EXPECT_TRUE(
      edge_policy->bloom().contains(client_data[0].tag->bloom_key()));
  // The access path accumulated by the registration Interest equals the
  // AP's identity hash, and is signed into the tag.
  EXPECT_EQ(client_data[0].tag->access_path(), entity_id_hash("ap0"));
}

TEST_F(ProtocolFixture, BloomSaturationTriggersReset) {
  TacticConfig small = config;
  small.bloom.capacity = 20;
  net.network.node(edge).set_policy(std::make_unique<EdgeTacticPolicy>(
      small, anchors, ComputeModel::zero(), util::Rng(33)));
  auto* policy = dynamic_cast<EdgeTacticPolicy*>(
      &net.network.node(edge).policy());

  // Drive enough distinct fresh tags through to saturate the small BF
  // (inserts happen on data return with F == 0).  Tags are minted at the
  // current simulation time: each drained run() advances the clock past
  // the PIT lifetimes, so stale timestamps would expire mid-test.
  for (int i = 0; i < 60; ++i) {
    express(ndn::Name("/provider0/obj1/c" + std::to_string(i)),
            client_tag(net.sched.now()));
    run();
  }
  EXPECT_GE(policy->bf_resets(), 1u);
  EXPECT_FALSE(policy->counters().requests_per_reset.empty());
}

TEST_F(ProtocolFixture, PrecheckAblationFallsThroughToCrypto) {
  config.precheck = false;
  install_policies(ComputeModel::zero());
  // An expired tag now sails past the edge (no pre-check) and is caught
  // by signature-level machinery only if invalid -- here the signature is
  // VALID, so the expired tag actually retrieves content: the ablation
  // demonstrates what Protocol 1 is for.
  express(ndn::Name("/provider0/obj1/c0"), client_tag(-20 * kSecond));
  run();
  EXPECT_EQ(client_data.size(), 1u);
}

TEST_F(ProtocolFixture, ApAccumulatesAccessPath) {
  // Verified indirectly: a registration Interest's access path arriving
  // at the producer equals hash("ap0"); see
  // RegistrationResponseInsertsIntoEdgeBloom.  Here check a content
  // Interest as observed by the core router via its PIT record.
  express(ndn::Name("/provider0/obj9/c9"), client_tag());
  run();
  SUCCEED();
}

}  // namespace
}  // namespace tactic::core
