// Cross-module property sweeps: randomized invariants that tie the
// substrates together — crypto round-trips under random inputs, Bloom
// filter guarantees across random workloads, name algebra, scheduler
// ordering under adversarial schedules, and end-to-end protocol
// invariants under randomized mini-scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>

#include "bloom/bloom_filter.hpp"
#include "crypto/aes.hpp"
#include "crypto/bignum.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "event/scheduler.hpp"
#include "ndn/name.hpp"
#include "sim/scenario.hpp"
#include "tactic/tag.hpp"
#include "util/rng.hpp"

namespace tactic {
namespace {

/// Per-seed iteration count: `def` by default, overridable through the
/// TACTIC_PROPERTY_ITERS environment variable (scaled proportionally, so
/// e.g. TACTIC_PROPERTY_ITERS=500 runs a loop defaulting to 50 for 500
/// iterations and one defaulting to 10 for 100).  Values <= 0 are
/// ignored.  Lets CI soak the properties without touching the source.
int property_iters(int def) {
  static const long scale = [] {
    const char* raw = std::getenv("TACTIC_PROPERTY_ITERS");
    return raw == nullptr ? 0L : std::atol(raw);
  }();
  if (scale <= 0) return def;
  const long scaled = (scale * def + 49) / 50;  // def=50 is the baseline
  return static_cast<int>(std::max(1L, scaled));
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110, 121, 132, 143, 154,
                                           165, 176));

// ---------------------------------------------------------------------------
// Crypto properties under random inputs
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, Sha256IsDeterministicAndSensitive) {
  for (int i = 0; i < property_iters(50); ++i) {
    util::Bytes message(rng_.uniform(300));
    for (auto& b : message) b = static_cast<std::uint8_t>(rng_());
    const util::Bytes digest = crypto::Sha256::digest(message);
    EXPECT_EQ(digest, crypto::Sha256::digest(message));
    if (!message.empty()) {
      util::Bytes flipped = message;
      flipped[rng_.uniform(flipped.size())] ^= 0x01;
      EXPECT_NE(crypto::Sha256::digest(flipped), digest);
    }
  }
}

TEST_P(SeededProperty, AesCtrRoundTripsRandomPayloads) {
  util::Bytes key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng_());
  for (int i = 0; i < property_iters(30); ++i) {
    util::Bytes payload(rng_.uniform(600));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng_());
    const std::uint64_t nonce = rng_();
    EXPECT_EQ(crypto::aes128_ctr(key, nonce,
                                 crypto::aes128_ctr(key, nonce, payload)),
              payload);
  }
}

TEST_P(SeededProperty, BignumRingAxiomsSample) {
  using crypto::BigUInt;
  for (int i = 0; i < property_iters(30); ++i) {
    const BigUInt a = BigUInt::random_bits(rng_, 16 + rng_.uniform(200));
    const BigUInt b = BigUInt::random_bits(rng_, 16 + rng_.uniform(200));
    const BigUInt c = BigUInt::random_bits(rng_, 16 + rng_.uniform(200));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(SeededProperty, ModexpMultiplicativeHomomorphism) {
  using crypto::BigUInt;
  // (x*y)^e mod n == x^e * y^e mod n — the property RSA rests on.
  BigUInt n = BigUInt::random_bits(rng_, 96);
  if (!n.is_odd()) n += BigUInt{1};
  const BigUInt e{65537};
  for (int i = 0; i < property_iters(10); ++i) {
    const BigUInt x = BigUInt::random_below(rng_, n);
    const BigUInt y = BigUInt::random_below(rng_, n);
    EXPECT_EQ(BigUInt::modexp((x * y) % n, e, n),
              (BigUInt::modexp(x, e, n) * BigUInt::modexp(y, e, n)) % n);
  }
}

TEST_P(SeededProperty, TagSerializationBijectiveOverRandomFields) {
  const crypto::RsaKeyPair keys =
      crypto::generate_rsa_keypair(rng_, 512);
  for (int i = 0; i < property_iters(10); ++i) {
    core::Tag::Fields fields;
    fields.provider_key_locator =
        "/p" + std::to_string(rng_.uniform(100)) + "/KEY/1";
    fields.client_key_locator =
        "/u" + std::to_string(rng_.uniform(1000)) + "/KEY/1";
    fields.access_level = static_cast<std::uint32_t>(rng_());
    fields.access_path = rng_();
    fields.expiry = static_cast<event::Time>(rng_() >> 1);
    const core::TagPtr tag = core::issue_tag(fields, keys.private_key);
    const core::TagPtr back = core::Tag::deserialize(tag->serialize());
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(back->same_tag(*tag));
    EXPECT_EQ(back->serialize(), tag->serialize());
  }
}

// ---------------------------------------------------------------------------
// Bloom filter: no false negatives under any random workload, FPP bound
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, BloomNeverForgetsUnderRandomWorkload) {
  bloom::BloomFilter bf({200, 5, 1e-3, 1e-3});
  std::vector<util::Bytes> inserted;
  for (int i = 0; i < property_iters(200); ++i) {
    util::Bytes element(8 + rng_.uniform(24));
    for (auto& b : element) b = static_cast<std::uint8_t>(rng_());
    bf.insert(element);
    inserted.push_back(std::move(element));
    // Every element inserted since the last reset must be found.
    for (const auto& e : inserted) EXPECT_TRUE(bf.contains(e));
    if (bf.saturated()) {
      bf.reset();
      inserted.clear();
    }
  }
}

// ---------------------------------------------------------------------------
// Name algebra
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, NameUriParseIsInverse) {
  for (int i = 0; i < property_iters(100); ++i) {
    ndn::Name name;
    const std::size_t components = rng_.uniform(6);
    for (std::size_t c = 0; c < components; ++c) {
      name = name.append("x" + std::to_string(rng_.uniform(10000)));
    }
    EXPECT_EQ(ndn::Name(name.to_uri()), name);
    // prefix(k) is always a prefix; comparison is a total order.
    const ndn::Name prefix = name.prefix(rng_.uniform(components + 1));
    EXPECT_TRUE(prefix.is_prefix_of(name));
    EXPECT_LE(prefix.compare(name), 0);
  }
}

// ---------------------------------------------------------------------------
// Scheduler: global time order under random schedules with cancellations
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, SchedulerOrderWithRandomCancellations) {
  event::Scheduler sched;
  event::Time last = -1;
  int executed = 0;
  std::vector<event::EventId> ids;
  const int total = property_iters(2000);
  for (int i = 0; i < total; ++i) {
    const event::Time when =
        static_cast<event::Time>(rng_.uniform(1000000));
    ids.push_back(sched.schedule_at(when, [&, when] {
      EXPECT_GE(when, last);
      last = when;
      ++executed;
    }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (const auto& id : ids) {
    if (rng_.bernoulli(1.0 / 3.0)) cancelled += sched.cancel(id);
  }
  sched.run();
  EXPECT_EQ(executed + cancelled, total);
}

// ---------------------------------------------------------------------------
// End-to-end: randomized mini-scenarios never leak to attackers and
// conserve chunk accounting
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, RandomMiniScenarioInvariants) {
  sim::ScenarioConfig config;
  config.topology.core_routers = 6 + rng_.uniform(10);
  config.topology.edge_routers = 2 + rng_.uniform(3);
  config.topology.providers = 1 + rng_.uniform(3);
  config.topology.clients = 2 + rng_.uniform(5);
  config.topology.attackers = 1 + rng_.uniform(3);
  config.provider.key_bits = 512;
  config.provider.catalog.objects = 5 + rng_.uniform(10);
  config.provider.catalog.chunks_per_object = 3 + rng_.uniform(5);
  config.tactic.bloom.capacity = 50 + rng_.uniform(500);
  config.client.think_time_mean =
      static_cast<event::Time>(10 + rng_.uniform(100)) *
      event::kMillisecond;
  config.attacker.think_time_mean = event::kSecond;
  config.compute = core::ComputeModel::zero();
  config.duration = 15 * event::kSecond;
  config.seed = GetParam() * 101;

  sim::Scenario scenario(config);
  const sim::Metrics& metrics = scenario.run();

  // Accounting: every request is received, NACKed, timed out, or still in
  // flight at the cutoff (bounded by the windows).
  const std::uint64_t accounted = metrics.clients.received +
                                  metrics.clients.nacks +
                                  metrics.clients.timeouts;
  EXPECT_LE(accounted, metrics.clients.requested);
  EXPECT_LE(metrics.clients.requested - accounted,
            config.topology.clients * config.client.window);

  // Security invariant: protected content never reaches attackers.
  EXPECT_EQ(metrics.attackers.received, 0u);
  // Liveness: clients make progress.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.9);
}

}  // namespace
}  // namespace tactic
