// Tests for the network chaos layer: link fault plans, router
// crash-restart with state loss, client retransmission with backoff, and
// the determinism guarantees the fault subsystem makes (same seed + same
// FaultPlan => identical metrics fingerprint and packet-trace digest).

#include <gtest/gtest.h>

#include "ndn/forwarder.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"
#include "tactic/tactic_policy.hpp"
#include "testing/fingerprint.hpp"
#include "testing/invariants.hpp"

namespace tactic {
namespace {

using event::kMillisecond;
using event::kSecond;

sim::ScenarioConfig fast_tactic(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.topology = topology::paper_topology(1);
  config.provider.key_bits = 512;  // fast setup; semantics identical
  config.duration = 30 * kSecond;
  config.seed = seed;
  return config;
}

TEST(FaultPlan, EmptyPlanIsInert) {
  const sim::FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.severe(100 * kSecond));
}

TEST(FaultPlan, SevereClassifier) {
  const event::Time duration = 100 * kSecond;
  sim::FaultPlan lossy;
  lossy.edge_links.loss = 0.3;
  EXPECT_TRUE(lossy.any());
  EXPECT_TRUE(lossy.severe(duration));
  lossy.edge_links.loss = 0.05;
  EXPECT_FALSE(lossy.severe(duration));

  // A permanent burst state counts through its stationary fraction.
  sim::FaultPlan bursty;
  bursty.edge_links.p_enter_burst = 0.5;
  bursty.edge_links.p_exit_burst = 0.5;
  bursty.edge_links.burst_loss = 1.0;  // ~50% of frames die
  EXPECT_TRUE(bursty.severe(duration));

  // Scripted outages: a crash spanning most of the run is severe, a
  // short blip is not.
  sim::FaultPlan crashy;
  crashy.crashes.push_back(
      {sim::CrashEvent::Target::kEdgeRouter, 0, 10 * kSecond, 80 * kSecond});
  EXPECT_TRUE(crashy.severe(duration));
  crashy.crashes[0].down_for = 2 * kSecond;
  EXPECT_FALSE(crashy.severe(duration));

  // down_for == 0 means "down for the rest of the run".
  sim::FaultPlan forever;
  forever.crashes.push_back(
      {sim::CrashEvent::Target::kCoreRouter, 0, 10 * kSecond, 0});
  EXPECT_TRUE(forever.severe(duration));
}

TEST(Chaos, ForwarderCrashAndRestartSemantics) {
  event::Scheduler sched;
  ndn::Forwarder node(
      sched, net::NodeInfo{0, net::NodeKind::kCoreRouter, "r"}, 10);
  // Volatile state to lose.
  node.pit().get_or_create(ndn::Name("/pending"));
  auto cached = std::make_shared<ndn::Data>();
  cached->name = ndn::Name("/cached");
  node.cs().insert(std::move(cached));
  ASSERT_EQ(node.pit().size(), 1u);
  ASSERT_EQ(node.cs().size(), 1u);

  EXPECT_TRUE(node.alive());
  node.crash();
  node.crash();  // idempotent
  EXPECT_FALSE(node.alive());
  EXPECT_EQ(node.counters().crashes, 1u);
  EXPECT_EQ(node.pit().size(), 0u);  // PIT lost
  EXPECT_EQ(node.cs().size(), 0u);   // CS lost

  // Arrivals while down are refused and counted.
  ndn::Interest interest;
  interest.name = ndn::Name("/x");
  interest.nonce = 1;
  interest.lifetime = kSecond;
  node.receive(0, ndn::make_packet(std::move(interest)));
  EXPECT_EQ(node.counters().dropped_while_down, 1u);
  EXPECT_EQ(node.counters().interests_received, 0u);

  node.restart();
  node.restart();  // idempotent
  EXPECT_TRUE(node.alive());
  EXPECT_EQ(node.counters().restarts, 1u);
}

// The pinned acceptance scenario: an edge router crash-restart wipes its
// Bloom filter, forcing the F=0 "cannot vouch" fallback and a signature
// re-validation surge, while client delivery recovers through
// retransmission.
TEST(Chaos, EdgeRestartWipesBloomAndForcesRevalidation) {
  sim::ScenarioConfig config = fast_tactic(90);
  const event::Time crash_at = 15 * kSecond;
  const event::Time down_for = kSecond;

  sim::Scenario scenario(config);
  // Crash the edge router that client 0 sits behind, so the outage is
  // guaranteed to hit live traffic.
  auto& network = scenario.network();
  const net::NodeId edge_id =
      network.edge_router_of(network.clients()[0]);
  std::size_t edge_index = 0;
  for (std::size_t i = 0; i < network.edge_routers().size(); ++i) {
    if (network.edge_routers()[i] == edge_id) edge_index = i;
  }
  // (Scheduling the crash by hand rather than via the FaultPlan so the
  // test can resolve the index from the built topology first.)
  scenario.scheduler().schedule_at(
      crash_at, [&network, edge_id] { network.node(edge_id).crash(); });
  scenario.scheduler().schedule_at(
      crash_at + down_for,
      [&network, edge_id] { network.node(edge_id).restart(); });
  (void)edge_index;

  const auto* policy = dynamic_cast<const core::TacticRouterPolicy*>(
      &network.node(edge_id).policy());
  ASSERT_NE(policy, nullptr);

  std::size_t bloom_before_crash = 0;
  std::size_t bloom_after_restart = ~std::size_t{0};
  scenario.scheduler().schedule_at(crash_at - kMillisecond, [&] {
    bloom_before_crash = policy->bloom().item_count();
  });
  // This observer was enqueued after the restart event above, so at the
  // shared timestamp it runs after restart() but before any packet (the
  // node was dead an instant ago, and links have >= ms latencies).
  scenario.scheduler().schedule_at(crash_at + down_for, [&] {
    bloom_after_restart = policy->bloom().item_count();
  });

  // Direct F=0 observation: tagged Interests the restarted edge transmits
  // before its BF refills must carry flag_f == 0 ("cannot vouch").
  std::uint64_t f0_interests_after_restart = 0;
  network.node(edge_id).add_tracer(
      [&scenario, &f0_interests_after_restart, crash_at, down_for](
          const ndn::Forwarder&, const ndn::PacketVariant& packet,
          ndn::FaceId, bool is_rx) {
        if (is_rx) return;
        const event::Time now = scenario.scheduler().now();
        if (now < crash_at + down_for || now > crash_at + down_for + kSecond)
          return;
        const auto* interest = std::get_if<ndn::InterestPtr>(&packet);
        if (interest && (*interest)->tag && (*interest)->flag_f == 0.0) {
          ++f0_interests_after_restart;
        }
      });

  const sim::Metrics& metrics = scenario.run();

  EXPECT_GT(bloom_before_crash, 0u);   // steady state had vouched tags
  EXPECT_EQ(bloom_after_restart, 0u);  // restart wiped the filter
  EXPECT_GT(policy->bloom().item_count(), 0u);  // ... and traffic refilled it
  EXPECT_GT(f0_interests_after_restart, 0u);
  EXPECT_EQ(metrics.node_crashes, 1u);
  EXPECT_EQ(metrics.node_restarts, 1u);
  EXPECT_GT(metrics.packets_dropped_while_down, 0u);

  // The F=0 fallback pushes the re-validation cost upstream: compared
  // against the identical run without the crash, core routers and the
  // provider pay strictly more signature verifications (the edge never
  // verifies in TACTIC's happy path — it re-inserts from returning F=0
  // content).
  const sim::Metrics clean = sim::Scenario(fast_tactic(90)).run();
  EXPECT_GT(metrics.core_ops.sig_verifications +
                metrics.provider_sig_verifications,
            clean.core_ops.sig_verifications +
                clean.provider_sig_verifications);
  EXPECT_EQ(clean.node_crashes, 0u);

  // Delivery recovers through retransmission rather than dying with the
  // router: the outage is visible as retries, not abandoned chunks.
  EXPECT_GT(metrics.clients.retransmissions, 0u);
  EXPECT_EQ(metrics.clients.chunks_abandoned, 0u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

// Acceptance bar: at 1% edge loss the default retry policy abandons
// nothing — every lost exchange is recovered within the retry budget.
TEST(Chaos, OnePercentEdgeLossAbandonsNothing) {
  sim::ScenarioConfig config = fast_tactic(91);
  config.faults.edge_links.loss = 0.01;

  sim::Scenario scenario(config);
  const sim::Metrics& metrics = scenario.run();

  EXPECT_GT(metrics.link_frames_lost, 0u);
  EXPECT_GT(metrics.clients.retransmissions, 0u);
  EXPECT_EQ(metrics.clients.chunks_abandoned, 0u);
  // Recovery latency samples exist exactly because retransmission did
  // real work (first-attempt-to-delivery spans for retried chunks).
  EXPECT_GT(metrics.recovery_latency.total_count(), 0u);
  // Attempt-based accounting: ratio dips by roughly the loss rate, no
  // further.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.96);
}

TEST(Chaos, RegistrationRetriesThroughAccessLinkFlap) {
  sim::ScenarioConfig config = fast_tactic(92);
  // Client 0's wireless access link is dead for the first four seconds:
  // its initial registration must survive on the unified retransmission
  // path (timeout -> backoff -> fresh-nonce retry) and succeed once the
  // link returns.
  config.faults.flaps.push_back(
      {sim::LinkFlap::Where::kClientAccess, 0, 0, 4 * kSecond, false});

  sim::Scenario scenario(config);
  const sim::Metrics& metrics = scenario.run();

  EXPECT_GT(metrics.clients.registration_retransmissions, 0u);
  EXPECT_GT(metrics.clients.tags_received, 0u);
  EXPECT_GT(metrics.clients.received, 0u);
  EXPECT_GT(metrics.link_refused_link_down, 0u);
}

// Same seed + same FaultPlan => identical metrics fingerprint and trace
// hash chain, with every fault class active at once.
TEST(Chaos, DoubleRunDeterminismWithFaults) {
  sim::ScenarioConfig config = fast_tactic(93);
  config.duration = 20 * kSecond;
  config.faults.edge_links.loss = 0.03;
  config.faults.edge_links.corruption = 0.01;
  config.faults.edge_links.p_enter_burst = 0.01;
  config.faults.edge_links.p_exit_burst = 0.3;
  config.faults.core_links.loss = 0.005;
  config.faults.crashes.push_back(
      {sim::CrashEvent::Target::kEdgeRouter, 0, 8 * kSecond, kSecond});
  config.faults.flaps.push_back(
      {sim::LinkFlap::Where::kEdgeUplink, 0, 12 * kSecond,
       13 * kSecond, false});

  auto run = [&config] {
    sim::Scenario scenario(config);
    testing::InvariantChecker checker(scenario);
    checker.arm();
    scenario.run();
    checker.finalize();
    EXPECT_TRUE(checker.ok()) << checker.report();
    return std::pair<std::string, std::string>{
        testing::fingerprint_digest(scenario.harvest()),
        checker.trace_digest()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// Corrupted frames feed the real wire decoders (the probe) but are then
// dropped as if L2 CRC caught them — none is ever honoured, so the
// security invariants hold unconditionally under corruption.
TEST(Chaos, CorruptFramesAreProbedAndRejected) {
  sim::ScenarioConfig config = fast_tactic(94);
  config.duration = 20 * kSecond;
  config.faults.edge_links.corruption = 0.05;

  sim::Scenario scenario(config);
  testing::InvariantChecker checker(scenario);
  checker.arm();
  scenario.run();
  checker.finalize();
  EXPECT_TRUE(checker.ok()) << checker.report();

  const sim::Metrics metrics = scenario.harvest();
  EXPECT_GT(metrics.link_frames_corrupted, 0u);
  // Every corrupted frame that arrived was rejected at the CRC shim.
  EXPECT_EQ(metrics.corrupt_frames_rejected, metrics.link_frames_corrupted);
}

// An all-zero plan with a different fault_seed is still "no plan": the
// run must be bit-identical to the default-config run (the fault RNG is
// never even seeded).
TEST(Chaos, EmptyPlanIsBitIdenticalToNoPlan) {
  sim::ScenarioConfig base = fast_tactic(95);
  base.duration = 15 * kSecond;
  sim::ScenarioConfig with_inert_plan = base;
  with_inert_plan.faults.fault_seed = 0xDEADBEEF;

  const sim::Metrics a = sim::Scenario(base).run();
  const sim::Metrics b = sim::Scenario(with_inert_plan).run();
  EXPECT_EQ(testing::fingerprint(a), testing::fingerprint(b));
  EXPECT_EQ(a.link_frames_lost, 0u);
  EXPECT_EQ(a.node_crashes, 0u);
}

}  // namespace
}  // namespace tactic
