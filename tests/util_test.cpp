// Unit and property tests for src/util.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/distributions.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timeseries.hpp"

namespace tactic::util {
namespace {

// ---------------------------------------------------------------------------
// bytes
// ---------------------------------------------------------------------------

TEST(Bytes, AppendIntegersAreBigEndian) {
  Bytes out;
  append_u16(out, 0x0102);
  append_u32(out, 0x03040506);
  append_u64(out, 0x0708090A0B0C0D0EULL);
  EXPECT_EQ(to_hex(out), "0102030405060708090a0b0c0d0e");
}

TEST(Bytes, ReadIntegersRoundTrip) {
  Bytes out;
  append_u16(out, 0xBEEF);
  append_u32(out, 0xDEADBEEF);
  append_u64(out, 0x0123456789ABCDEFULL);
  EXPECT_EQ(read_u16(out, 0), 0xBEEF);
  EXPECT_EQ(read_u32(out, 2), 0xDEADBEEFu);
  EXPECT_EQ(read_u64(out, 6), 0x0123456789ABCDEFULL);
}

TEST(Bytes, ReadPastEndThrows) {
  Bytes buf(3, 0);
  EXPECT_THROW(read_u32(buf, 0), std::out_of_range);
  EXPECT_THROW(read_u16(buf, 2), std::out_of_range);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x7F, 0x80, 0xFF, 0x12};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Bytes, FromHexAcceptsUppercase) {
  EXPECT_EQ(from_hex("DEADbeef"), from_hex("deadbeef"));
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, LengthPrefixedFieldsAreUnambiguous) {
  Bytes a, b;
  append_lv(a, std::string_view("ab"));
  append_lv(a, std::string_view("c"));
  append_lv(b, std::string_view("a"));
  append_lv(b, std::string_view("bc"));
  EXPECT_NE(a, b);  // "ab"+"c" must not collide with "a"+"bc"
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(from_hex("aabb"), from_hex("aabb")));
  EXPECT_FALSE(constant_time_equal(from_hex("aabb"), from_hex("aabc")));
  EXPECT_FALSE(constant_time_equal(from_hex("aabb"), from_hex("aabbcc")));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 8000; ++i) ++histogram[rng.uniform(8)];
  for (int count : histogram) {
    EXPECT_GT(count, 800);  // each bucket near 1000
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(42);
  Rng a = root.fork();
  Rng b = root.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// distributions
// ---------------------------------------------------------------------------

TEST(NormalDist, MeanAndStddev) {
  Rng rng(21);
  NormalDist dist(5.0, 2.0);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(NormalDist, ZeroStddevIsDeterministic) {
  Rng rng(3);
  NormalDist dist(1.25, 0.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng), 1.25);
}

TEST(NormalDist, SampleAtLeastClamps) {
  Rng rng(4);
  NormalDist dist(0.0, 10.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(dist.sample_at_least(rng, 0.0), 0.0);
  }
}

TEST(NormalDist, NegativeStddevThrows) {
  EXPECT_THROW(NormalDist(0.0, -1.0), std::invalid_argument);
}

TEST(ZipfDist, PmfSumsToOne) {
  ZipfDist dist(100, 0.7);
  double sum = 0;
  for (std::size_t k = 0; k < 100; ++k) sum += dist.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfDist, PmfIsMonotoneDecreasing) {
  ZipfDist dist(50, 0.7);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LE(dist.pmf(k), dist.pmf(k - 1) + 1e-15);
  }
}

TEST(ZipfDist, AlphaZeroIsUniform) {
  ZipfDist dist(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(dist.pmf(k), 0.1, 1e-9);
}

TEST(ZipfDist, SamplingMatchesPmf) {
  Rng rng(31);
  ZipfDist dist(20, 0.7);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), dist.pmf(k), 0.01);
  }
}

TEST(ZipfDist, InvalidParamsThrow) {
  EXPECT_THROW(ZipfDist(0, 0.7), std::invalid_argument);
  EXPECT_THROW(ZipfDist(10, -0.1), std::invalid_argument);
}

/// Property sweep: higher alpha concentrates more mass on rank 0.
class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, HeadMassGrowsWithAlpha) {
  const double alpha = GetParam();
  ZipfDist low(100, alpha);
  ZipfDist high(100, alpha + 0.5);
  EXPECT_LT(low.pmf(0), high.pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.5));

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(stats.empty());
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(17);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    if (i % 3 == 0) a.add(v); else b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Percentiles) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  EXPECT_DOUBLE_EQ(set.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(set.percentile(100), 100.0);
  EXPECT_NEAR(set.median(), 50.5, 1e-9);
  EXPECT_NEAR(set.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, PercentileOnEmptyIsZero) {
  SampleSet set;
  EXPECT_EQ(set.percentile(50), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 9
  h.add(-5.0);   // clamped to 0
  h.add(42.0);   // clamped to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
}

TEST(Histogram, InvalidParamsThrow) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 0, 5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// timeseries
// ---------------------------------------------------------------------------

TEST(TimeSeries, PerSecondBucketing) {
  TimeSeries series(1.0);
  series.add(0.1, 10.0);
  series.add(0.9, 20.0);
  series.add(2.5, 30.0);
  EXPECT_EQ(series.bucket_count(), 3u);
  EXPECT_EQ(series.count(0), 2u);
  EXPECT_DOUBLE_EQ(series.mean(0), 15.0);
  EXPECT_EQ(series.count(1), 0u);
  EXPECT_DOUBLE_EQ(series.mean(2), 30.0);
  EXPECT_EQ(series.total_count(), 3u);
}

TEST(TimeSeries, EventRates) {
  TimeSeries series(1.0);
  for (int i = 0; i < 5; ++i) series.add_event(0.2 * i);
  EXPECT_EQ(series.count(0), 5u);
  EXPECT_DOUBLE_EQ(series.sum(0), 5.0);
}

TEST(TimeSeries, OverallMean) {
  TimeSeries series(1.0);
  series.add(0.0, 1.0);
  series.add(1.0, 3.0);
  EXPECT_DOUBLE_EQ(series.overall_mean(), 2.0);
}

TEST(TimeSeries, RejectsNegativeTime) {
  TimeSeries series(1.0);
  EXPECT_THROW(series.add(-0.1, 1.0), std::invalid_argument);
}

TEST(TimeSeries, CustomBucketWidth) {
  TimeSeries series(10.0);
  series.add(25.0, 1.0);
  EXPECT_EQ(series.bucket_count(), 3u);
  EXPECT_EQ(series.count(2), 1u);
}

// ---------------------------------------------------------------------------
// flags
// ---------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.7", "--runs", "5",
                        "--full", "--no-precheck", "positional"};
  Flags flags(7, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 0.7);
  EXPECT_EQ(flags.get_int("runs", 0), 5);
  EXPECT_TRUE(flags.get_bool("full", false));
  EXPECT_FALSE(flags.get_bool("precheck", true));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_FALSE(flags.has("n"));
}

TEST(Flags, IntList) {
  const char* argv[] = {"prog", "--topologies=1,2,4"};
  Flags flags(2, argv);
  const auto list = flags.get_int_list("topologies", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list[2], 4);
}

TEST(Flags, DoubleList) {
  const char* argv[] = {"prog", "--fpp=1e-4,1e-2"};
  Flags flags(2, argv);
  const auto list = flags.get_double_list("fpp", {});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list[0], 1e-4);
  EXPECT_DOUBLE_EQ(list[1], 1e-2);
}

TEST(Flags, MalformedValuesThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_bool("n", false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// csv / table
// ---------------------------------------------------------------------------

TEST(Csv, EscapesSpecials) {
  const std::string path = ::testing::TempDir() + "/tactic_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"a", "b,c", "d\"e"});
    csv.row({CsvWriter::num(1.5), CsvWriter::num(std::uint64_t{7})});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,7");
  std::remove(path.c_str());
}

TEST(Table, AlignsAndPads) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "23"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 23    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt_percent(94.081), "94.08%");
  EXPECT_EQ(Table::fmt_ratio(0.99994), "0.9999");
  EXPECT_EQ(Table::fmt(std::uint64_t{123}), "123");
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelFiltering) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold and kOff messages are dropped without touching the
  // stream; these calls simply must not crash or emit (visually checked
  // via stderr capture in CI; here we exercise the paths).
  log_line(LogLevel::kDebug, "dropped");
  log_line(LogLevel::kOff, "never emitted");
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "also dropped at kOff");
  SUCCEED();
}

TEST(Log, MacroRespectsLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  TACTIC_LOG_DEBUG << expensive();  // must not evaluate below threshold
  EXPECT_EQ(evaluations, 0);
  TACTIC_LOG_ERROR << "";  // at threshold: evaluated (emits to stderr)
}

}  // namespace
}  // namespace tactic::util
