// Tests for the global name-component interning table: ID stability
// across re-registration, stable text references, uri_size/hash parity
// with the string definitions, TLV round-trips preserving interned IDs,
// and survival across router crashes that wipe all volatile forwarding
// state (FIB/PIT/CS and the TACTIC validation engine's wipe_volatile).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/forwarder.hpp"
#include "ndn/name.hpp"
#include "ndn/name_table.hpp"
#include "ndn/packet.hpp"
#include "tactic/tactic_policy.hpp"
#include "tactic/wire.hpp"
#include "util/rng.hpp"

namespace tactic::ndn {
namespace {

using event::kMillisecond;
using event::kSecond;

TEST(NameTable, ReRegistrationYieldsTheSameId) {
  NameTable& table = NameTable::instance();
  const ComponentId first = table.intern("name-table-test-alpha");
  const std::size_t size_after_first = table.size();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(table.intern("name-table-test-alpha"), first);
  }
  EXPECT_EQ(table.size(), size_after_first);  // no duplicate registration

  // Every Name construction path agrees on the interned IDs.
  const Name parsed("/name-table-test-alpha/name-table-test-beta");
  const Name built =
      Name::from_components({"name-table-test-alpha", "name-table-test-beta"});
  const Name appended =
      Name().append("name-table-test-alpha").append("name-table-test-beta");
  EXPECT_EQ(parsed.component_ids(), built.component_ids());
  EXPECT_EQ(parsed.component_ids(), appended.component_ids());
  EXPECT_EQ(parsed.component_ids()[0], first);
}

TEST(NameTable, TextReferencesStayValidAsTheTableGrows) {
  NameTable& table = NameTable::instance();
  const ComponentId id = table.intern("name-table-test-pinned");
  const std::string* address = &table.text(id);
  for (int i = 0; i < 5000; ++i) {
    table.intern("name-table-test-filler-" + std::to_string(i));
  }
  EXPECT_EQ(&table.text(id), address);  // deque storage never moves
  EXPECT_EQ(table.text(id), "name-table-test-pinned");

  const Name name("/name-table-test-pinned/x");
  EXPECT_EQ(&name.at(0), address);  // Name::at aliases the table
}

TEST(NameTable, FromIdsRoundTripsComponentIds) {
  const Name name("/a/b/c");
  const Name rebuilt = Name::from_ids(name.component_ids());
  EXPECT_EQ(rebuilt, name);
  EXPECT_EQ(rebuilt.to_uri(), "/a/b/c");
}

TEST(NameTable, UriSizeMatchesToUri) {
  EXPECT_EQ(Name().uri_size(), 1u);  // root renders as "/"
  EXPECT_EQ(Name("/").uri_size(), Name("/").to_uri().size());
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    Name name;
    const std::uint64_t depth = rng.uniform(6);
    for (std::uint64_t d = 0; d < depth; ++d) {
      name = name.append_number(rng.uniform(1u << 16));
    }
    EXPECT_EQ(name.uri_size(), name.to_uri().size()) << name.to_uri();
  }
}

TEST(NameTable, HashMatchesTheByteDefinition) {
  // hash() must stay FNV-1a over '/'+component bytes — it seeds
  // std::hash<Name> and anything fingerprint-visible.
  const Name name("/provider0/obj3/c7");
  std::uint64_t expected = 14695981039346656037ULL;
  for (unsigned char byte : std::string("/provider0/obj3/c7")) {
    expected ^= byte;
    expected *= 1099511628211ULL;
  }
  EXPECT_EQ(name.hash(), expected);
  EXPECT_EQ(std::hash<Name>{}(name), expected);
  // Identical across construction paths (and the lazy cache).
  EXPECT_EQ(Name::from_components({"provider0", "obj3", "c7"}).hash(),
            expected);
  EXPECT_EQ(name.hash(), expected);  // cached second read
}

TEST(NameTable, TlvRoundTripPreservesInternedIds) {
  const Name name("/name-table-test-tlv/obj/42");
  const util::Bytes encoded = wire::encode_name(name);
  const Name decoded = wire::decode_name(encoded);
  EXPECT_EQ(decoded, name);
  EXPECT_EQ(decoded.component_ids(), name.component_ids());
  EXPECT_EQ(decoded.to_uri(), name.to_uri());
}

// ---------------------------------------------------------------------------
// Crash interaction: the interning table models the vocabulary of names,
// not router state — a crash wipes FIB/PIT/CS (and the TACTIC engine's
// volatile structures via wipe_volatile) but never the table.
// ---------------------------------------------------------------------------

TEST(NameTable, SurvivesRouterCrashThatWipesTables) {
  NameTable& table = NameTable::instance();
  event::Scheduler sched;
  Forwarder router(sched, net::NodeInfo{0, net::NodeKind::kCoreRouter, "r"},
                   /*cs_capacity=*/16);

  const Name name("/name-table-test-crash/obj/c0");
  const ComponentId head = table.intern("name-table-test-crash");
  const std::string* text_address = &table.text(head);

  // Populate volatile state keyed on the name.
  router.fib().add_route(name.prefix(1), 0);
  router.pit().get_or_create(name);
  auto data = std::make_shared<Data>();
  data->name = name;
  data->content_size = 64;
  router.cs().insert(std::move(data));
  ASSERT_EQ(router.pit().size(), 1u);
  ASSERT_TRUE(router.cs().contains(name));

  const std::size_t table_size = table.size();
  router.crash();

  // Volatile state is gone...
  EXPECT_EQ(router.pit().size(), 0u);
  EXPECT_FALSE(router.cs().contains(name));
  // ...but the vocabulary is intact: same size, same IDs, same storage.
  EXPECT_EQ(table.size(), table_size);
  EXPECT_EQ(table.intern("name-table-test-crash"), head);
  EXPECT_EQ(&table.text(head), text_address);
  EXPECT_EQ(name.to_uri(), "/name-table-test-crash/obj/c0");
}

TEST(NameTable, SurvivesTacticWipeVolatileOnRestart) {
  NameTable& table = NameTable::instance();
  event::Scheduler sched;
  Forwarder router(sched, net::NodeInfo{0, net::NodeKind::kEdgeRouter, "e"},
                   /*cs_capacity=*/0);
  core::TrustAnchors anchors;
  util::Rng rng(7);
  router.set_policy(std::make_unique<core::EdgeTacticPolicy>(
      core::TacticConfig{}, anchors, core::ComputeModel::zero(),
      rng.fork()));

  const ComponentId id = table.intern("name-table-test-wipe");
  const std::size_t table_size = table.size();

  // restart() runs the policy's on_restart, which wipe_volatile()s the
  // validation engine (BF, queues, caches).  The interning table is not
  // router state and must come through untouched.
  router.crash();
  router.restart();

  EXPECT_EQ(table.size(), table_size);
  EXPECT_EQ(table.intern("name-table-test-wipe"), id);
  EXPECT_EQ(table.text(id), "name-table-test-wipe");
}

}  // namespace
}  // namespace tactic::ndn
