// Determinism and race gates for the parallel simulation core.
//
// The contract (docs/ARCHITECTURE.md, "Concurrency model"): with
// identical inputs, the parallel engine produces bit-identical metrics
// fingerprints and packet-trace digests to the sequential engine at any
// worker thread count.  This suite byte-compares threads {1, 2, 4}
// across the corpus modes (plain, faults, faults+overload), repeats one
// parallel configuration five times as a flake detector, pins the
// validation-lane semantics (deterministic assignment, deterministic
// steal ordering, crash wipe), and locks the canonical per-client
// metric-sample merge to the sequential accumulation order byte-exactly.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.hpp"
#include "tactic/overload.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "testing/invariants.hpp"
#include "util/timeseries.hpp"

namespace tactic {
namespace testing_ = ::tactic::testing;
namespace {

struct RunDigests {
  std::string metrics;
  std::string trace;
  std::uint64_t violations = 0;
  std::string report;
};

RunDigests digests_of(const sim::ScenarioConfig& config) {
  sim::Scenario scenario(config);
  testing_::InvariantChecker checker(scenario);
  checker.arm();
  scenario.run();
  checker.finalize();
  RunDigests run;
  run.metrics = testing_::fingerprint_digest(scenario.harvest());
  run.trace = checker.trace_digest();
  run.violations = checker.violation_count();
  run.report = checker.report();
  return run;
}

// Sixteen seeds per mode, shortened runs: this is not the golden corpus
// (ci/parity.sh pins that at full length) but the same generator axes,
// compared across engines rather than against files.
void expect_thread_parity(bool faults, bool overload) {
  testing_::GeneratorOptions options;
  options.duration = 3 * event::kSecond;
  options.with_faults = faults;
  options.with_overload = overload;
  for (std::uint64_t seed = 9000; seed < 9016; ++seed) {
    sim::ScenarioConfig config = testing_::random_config(seed, options);
    const RunDigests sequential = digests_of(config);
    EXPECT_EQ(sequential.violations, 0u) << sequential.report;
    for (const std::size_t threads : {2u, 4u}) {
      config.threads = threads;
      const RunDigests parallel = digests_of(config);
      EXPECT_EQ(sequential.metrics, parallel.metrics)
          << "metrics fingerprint diverged at seed " << seed << ", "
          << threads << " threads";
      EXPECT_EQ(sequential.trace, parallel.trace)
          << "trace digest diverged at seed " << seed << ", " << threads
          << " threads";
      EXPECT_EQ(parallel.violations, 0u) << parallel.report;
    }
  }
}

TEST(ParallelParity, Plain) { expect_thread_parity(false, false); }

TEST(ParallelParity, Faults) { expect_thread_parity(true, false); }

TEST(ParallelParity, FaultsOverload) { expect_thread_parity(true, true); }

// Lanes compose with threads: a 4-lane router must behave identically
// under either engine (lane behaviour itself differs from 1 lane — that
// is the point of lanes — so the reference is the sequential 4-lane run).
TEST(ParallelParity, MultiLane) {
  testing_::GeneratorOptions options;
  options.duration = 3 * event::kSecond;
  options.with_overload = true;
  for (std::uint64_t seed = 9100; seed < 9104; ++seed) {
    sim::ScenarioConfig config = testing_::random_config(seed, options);
    config.tactic.validation_lanes = 4;
    const RunDigests sequential = digests_of(config);
    for (const std::size_t threads : {2u, 4u}) {
      config.threads = threads;
      const RunDigests parallel = digests_of(config);
      EXPECT_EQ(sequential.metrics, parallel.metrics) << "seed " << seed;
      EXPECT_EQ(sequential.trace, parallel.trace) << "seed " << seed;
    }
  }
}

// Flake detector: real races are intermittent, so one agreeing run
// proves little.  Five repetitions of the same parallel configuration
// must produce one digest, byte-for-byte.
TEST(ParallelParity, RepeatedRunsAreByteIdentical) {
  testing_::GeneratorOptions options;
  options.duration = 3 * event::kSecond;
  options.with_faults = true;
  options.with_overload = true;
  sim::ScenarioConfig config = testing_::random_config(9042, options);
  config.threads = 4;
  const RunDigests first = digests_of(config);
  for (int repeat = 1; repeat < 5; ++repeat) {
    const RunDigests again = digests_of(config);
    EXPECT_EQ(first.metrics, again.metrics) << "repeat " << repeat;
    EXPECT_EQ(first.trace, again.trace) << "repeat " << repeat;
  }
}

TEST(Parallel, TraitorTracingRefused) {
  testing_::GeneratorOptions options;
  options.duration = 2 * event::kSecond;
  sim::ScenarioConfig config = testing_::random_config(1, options);
  config.threads = 2;
  config.enable_traitor_tracing = true;
  config.tactic.enforce_access_path = true;
  EXPECT_THROW(sim::Scenario{std::move(config)}, std::invalid_argument);
}

// --- Validation lanes (core::ValidationLanes) ---------------------------

TEST(ValidationLanes, SingleLaneMatchesValidationQueue) {
  core::ValidationQueue queue;
  core::ValidationLanes lanes(1);
  for (event::Time now : {0, 5, 9, 9, 40}) {
    const event::Time service = 7;
    EXPECT_EQ(queue.admit(now, service), lanes.admit(0, now, service));
  }
  EXPECT_EQ(lanes.steals(), 0u);  // nowhere to steal to
  EXPECT_EQ(queue.total_wait(), lanes.total_wait());
  EXPECT_EQ(queue.peak_depth(), lanes.peak_depth());
}

TEST(ValidationLanes, DeterministicStealToLowestIdleLane) {
  core::ValidationLanes lanes(3);
  // First job occupies its home lane 1.
  EXPECT_EQ(lanes.admit(1, 0, 10), 10);
  EXPECT_EQ(lanes.steals(), 0u);
  // Same instant, same busy home lane: the lowest-indexed idle lane (0)
  // takes it — no waiting, one steal.
  EXPECT_EQ(lanes.admit(1, 0, 10), 10);
  EXPECT_EQ(lanes.steals(), 1u);
  // Next job: lanes 0 and 1 busy, lane 2 idle — steal again.
  EXPECT_EQ(lanes.admit(1, 0, 10), 10);
  EXPECT_EQ(lanes.steals(), 2u);
  // All lanes busy: the job queues FIFO behind its home lane.
  EXPECT_EQ(lanes.admit(1, 0, 10), 20);
  EXPECT_EQ(lanes.steals(), 2u);
  EXPECT_EQ(lanes.depth(0), 4u);
}

TEST(ValidationLanes, IdleHomeLaneIsNeverStolenFrom) {
  core::ValidationLanes lanes(4);
  // An idle home lane takes its own job even when lower-indexed lanes
  // are also idle — stealing only rescues jobs from a busy home.
  EXPECT_EQ(lanes.admit(3, 0, 4), 4);
  EXPECT_EQ(lanes.steals(), 0u);
  EXPECT_EQ(lanes.lane_depth(3, 0), 1u);
  EXPECT_EQ(lanes.lane_depth(0, 0), 0u);
}

TEST(ValidationLanes, ResetWipesEveryLane) {
  core::ValidationLanes lanes(3);
  lanes.admit(0, 0, 100);
  lanes.admit(1, 0, 100);
  lanes.admit(2, 0, 100);
  EXPECT_EQ(lanes.depth(0), 3u);
  lanes.reset();  // crash: pending work dies with the router
  EXPECT_EQ(lanes.depth(0), 0u);
  // Post-restart jobs see fresh lanes, not the dead backlog.
  EXPECT_EQ(lanes.admit(0, 1, 10), 10);
}

TEST(ValidationLanes, ConfigureResizesAndClears) {
  core::ValidationLanes lanes(2);
  lanes.admit(0, 0, 50);
  lanes.configure(5);
  EXPECT_EQ(lanes.lanes(), 5u);
  EXPECT_EQ(lanes.depth(0), 0u);
  lanes.configure(0);  // clamped
  EXPECT_EQ(lanes.lanes(), 1u);
}

// --- Canonical metric-sample merge --------------------------------------
//
// The parallel engine buffers metric samples per client and replays them
// at harvest sorted by (when, client index, per-client position).  The
// regression below locks the replay to the sequential accumulation order
// byte-exactly (same floating-point sums, not approximately): the same
// samples added directly in event order must give bucket sums and counts
// identical to the buffered replay.
TEST(MetricMerge, BufferedReplayMatchesDirectAccumulationExactly) {
  struct Sample {
    event::Time when;
    std::size_t client;
    double value;
  };
  // Event-order stream with strictly increasing times, so canonical
  // order equals event order and direct accumulation is the reference.
  // (Same-instant cross-client samples are defined to fold in client
  // order instead — both engines share that merge; see scenario.cpp.)
  // Values are "nasty" doubles whose sums depend on accumulation order,
  // which is exactly what must match.
  std::vector<Sample> stream;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  event::Time when = 0;
  for (int i = 0; i < 500; ++i) {
    when += 1 + static_cast<event::Time>(next() % (event::kSecond / 3));
    const std::size_t client = next() % 7;
    const double value =
        static_cast<double>(next() % 1000000007ull) * 1e-7 + 1e-13;
    stream.push_back(Sample{when, client, value});
  }

  util::TimeSeries direct;
  for (const Sample& sample : stream) {
    direct.add(event::to_seconds(sample.when), sample.value);
  }

  // Per-client buffers in per-client arrival order, then the canonical
  // merge: stable-sort by when keeps (client, position) order for equal
  // times — the exact order scenario.cpp replays.
  std::vector<std::vector<std::pair<event::Time, double>>> buffers(7);
  for (const Sample& sample : stream) {
    buffers[sample.client].emplace_back(sample.when, sample.value);
  }
  struct Rec {
    event::Time when;
    std::size_t client;
    std::size_t pos;
    double value;
  };
  std::vector<Rec> merged;
  for (std::size_t c = 0; c < buffers.size(); ++c) {
    for (std::size_t i = 0; i < buffers[c].size(); ++i) {
      merged.push_back(Rec{buffers[c][i].first, c, i, buffers[c][i].second});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Rec& a, const Rec& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.client != b.client) return a.client < b.client;
    return a.pos < b.pos;
  });
  util::TimeSeries replayed;
  for (const Rec& rec : merged) {
    replayed.add(event::to_seconds(rec.when), rec.value);
  }

  ASSERT_EQ(direct.bucket_count(), replayed.bucket_count());
  for (std::size_t b = 0; b < direct.bucket_count(); ++b) {
    EXPECT_EQ(direct.count(b), replayed.count(b)) << "bucket " << b;
    // Bitwise double equality — the merge must reproduce the exact
    // accumulation order, not a nearby sum.
    EXPECT_EQ(direct.sum(b), replayed.sum(b)) << "bucket " << b;
  }
}

}  // namespace
}  // namespace tactic
