// Tests for the NDN layer: names, packets, FIB longest-prefix match, PIT
// aggregation, Content Store LRU, and the forwarding pipeline over
// hand-wired multi-node chains.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/cs.hpp"
#include "ndn/fib.hpp"
#include "ndn/forwarder.hpp"
#include "ndn/name.hpp"
#include "ndn/packet.hpp"
#include "ndn/pit.hpp"

namespace tactic::ndn {
namespace {

using event::kMillisecond;
using event::kSecond;

// ---------------------------------------------------------------------------
// Name
// ---------------------------------------------------------------------------

TEST(Name, ParseAndUri) {
  const Name name("/provider0/obj3/c7");
  EXPECT_EQ(name.size(), 3u);
  EXPECT_EQ(name.at(0), "provider0");
  EXPECT_EQ(name.at(2), "c7");
  EXPECT_EQ(name.to_uri(), "/provider0/obj3/c7");
}

TEST(Name, RootAndEmpty) {
  EXPECT_TRUE(Name("/").empty());
  EXPECT_TRUE(Name("").empty());
  EXPECT_EQ(Name("/").to_uri(), "/");
}

TEST(Name, CollapsesRedundantSlashes) {
  EXPECT_EQ(Name("//a///b/").to_uri(), "/a/b");
  EXPECT_EQ(Name("a/b"), Name("/a/b"));  // leading slash optional
}

TEST(Name, PrefixOps) {
  const Name name("/a/b/c");
  EXPECT_EQ(name.prefix(2).to_uri(), "/a/b");
  EXPECT_EQ(name.prefix(0).to_uri(), "/");
  EXPECT_EQ(name.prefix(99), name);  // clamped
  EXPECT_TRUE(Name("/a").is_prefix_of(name));
  EXPECT_TRUE(Name("/a/b/c").is_prefix_of(name));
  EXPECT_TRUE(Name("/").is_prefix_of(name));
  EXPECT_FALSE(Name("/a/b/c/d").is_prefix_of(name));
  EXPECT_FALSE(Name("/a/x").is_prefix_of(name));
}

TEST(Name, PrefixIsComponentwiseNotTextual) {
  EXPECT_FALSE(Name("/ab").is_prefix_of(Name("/abc")));
}

TEST(Name, AppendDoesNotMutate) {
  const Name base("/a");
  const Name extended = base.append("b").append_number(42);
  EXPECT_EQ(base.to_uri(), "/a");
  EXPECT_EQ(extended.to_uri(), "/a/b/42");
}

TEST(Name, CompareOrdering) {
  EXPECT_LT(Name("/a"), Name("/b"));
  EXPECT_LT(Name("/a"), Name("/a/b"));  // shorter sorts first
  EXPECT_EQ(Name("/a/b").compare(Name("/a/b")), 0);
  EXPECT_GT(Name("/b").compare(Name("/a/z/z")), 0);
}

TEST(Name, HashDistinguishesComponentBoundaries) {
  EXPECT_NE(Name("/ab/c").hash(), Name("/a/bc").hash());
  EXPECT_EQ(Name("/x/y").hash(), Name("/x/y").hash());
}

// ---------------------------------------------------------------------------
// Packets
// ---------------------------------------------------------------------------

TEST(Packet, InterestWireSizeGrowsWithTagAndPayload) {
  Interest plain;
  plain.name = Name("/p/obj1/c1");
  const std::size_t base = plain.wire_size();
  Interest with_payload = plain;
  with_payload.payload_size = 64;
  EXPECT_EQ(with_payload.wire_size(), base + 64);
}

TEST(Packet, DataWireSizeIncludesContent) {
  Data data;
  data.name = Name("/p/obj1/c1");
  data.content_size = 1024;
  data.signature_size = 128;
  EXPECT_GE(data.wire_size(), 1024u + 128u);
}

TEST(Packet, NackReasonNames) {
  EXPECT_STREQ(to_string(NackReason::kNoTag), "no-tag");
  EXPECT_STREQ(to_string(NackReason::kExpiredTag), "expired-tag");
  EXPECT_STREQ(to_string(NackReason::kAccessPathMismatch),
               "access-path-mismatch");
}

// ---------------------------------------------------------------------------
// FIB
// ---------------------------------------------------------------------------

TEST(Fib, LongestPrefixMatchWins) {
  Fib fib;
  fib.add_route(Name("/"), 1);
  fib.add_route(Name("/a"), 2);
  fib.add_route(Name("/a/b"), 3);
  EXPECT_EQ(fib.lookup(Name("/a/b/c"))->next_hop(), 3u);
  EXPECT_EQ(fib.lookup(Name("/a/x"))->next_hop(), 2u);
  EXPECT_EQ(fib.lookup(Name("/zzz"))->next_hop(), 1u);
}

TEST(Fib, NoDefaultRouteMeansMiss) {
  Fib fib;
  fib.add_route(Name("/a"), 2);
  EXPECT_EQ(fib.lookup(Name("/b")), nullptr);
}

TEST(Fib, ExactMatchOfEntryName) {
  Fib fib;
  fib.add_route(Name("/a/b"), 5);
  EXPECT_EQ(fib.lookup(Name("/a/b"))->next_hop(), 5u);
  EXPECT_EQ(fib.lookup(Name("/a")), nullptr);
  ASSERT_NE(fib.find_exact(Name("/a/b")), nullptr);
  EXPECT_EQ(fib.find_exact(Name("/a")), nullptr);
}

TEST(Fib, MultipathAccumulatesAndOrdersByCost) {
  Fib fib;
  fib.add_route(Name("/a"), 1, /*cost=*/2);
  fib.add_route(Name("/a"), 2, /*cost=*/1);
  EXPECT_EQ(fib.size(), 1u);
  const Fib::Entry* entry = fib.lookup(Name("/a/x"));
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->next_hops.size(), 2u);
  EXPECT_EQ(entry->next_hop(), 2u);  // lower cost wins
  // Updating the cost of an existing hop re-sorts rather than duplicating.
  fib.add_route(Name("/a"), 2, /*cost=*/5);
  EXPECT_EQ(fib.lookup(Name("/a/x"))->next_hops.size(), 2u);
  EXPECT_EQ(fib.lookup(Name("/a/x"))->next_hop(), 1u);
  fib.remove_route(Name("/a"));
  EXPECT_EQ(fib.lookup(Name("/a/x")), nullptr);
}

TEST(Fib, RemoveNextHopDropsEmptyEntry) {
  Fib fib;
  fib.add_route(Name("/a"), 1);
  fib.add_route(Name("/a"), 2);
  fib.remove_next_hop(Name("/a"), 1);
  ASSERT_NE(fib.lookup(Name("/a/x")), nullptr);
  EXPECT_EQ(fib.lookup(Name("/a/x"))->next_hop(), 2u);
  fib.remove_next_hop(Name("/a"), 2);
  EXPECT_EQ(fib.lookup(Name("/a/x")), nullptr);
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, SetRoutesReplacesWholesale) {
  Fib fib;
  fib.add_route(Name("/a"), 1);
  fib.set_routes(Name("/a"), {{7, 3}, {5, 1}});
  const Fib::Entry* entry = fib.lookup(Name("/a/x"));
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->next_hops.size(), 2u);
  EXPECT_EQ(entry->next_hop(), 5u);  // sorted by cost
  fib.set_routes(Name("/a"), {});    // empty set removes the entry
  EXPECT_EQ(fib.lookup(Name("/a/x")), nullptr);
}

// ---------------------------------------------------------------------------
// PIT
// ---------------------------------------------------------------------------

TEST(Pit, CreateFindErase) {
  Pit pit;
  EXPECT_EQ(pit.find(Name("/x")), nullptr);
  PitEntry& entry = pit.get_or_create(Name("/x"));
  EXPECT_EQ(entry.name, Name("/x"));
  EXPECT_EQ(pit.find(Name("/x")), &entry);
  EXPECT_EQ(pit.size(), 1u);
  pit.erase(Name("/x"));
  EXPECT_EQ(pit.find(Name("/x")), nullptr);
}

TEST(Pit, GetOrCreateIsIdempotent) {
  Pit pit;
  PitEntry& a = pit.get_or_create(Name("/x"));
  a.in_records.push_back(PitInRecord{1, 42, nullptr, 0, 0.0, 0, kSecond});
  PitEntry& b = pit.get_or_create(Name("/x"));
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.in_records.size(), 1u);
}

TEST(Pit, NonceDetection) {
  Pit pit;
  PitEntry& entry = pit.get_or_create(Name("/x"));
  entry.in_records.push_back(PitInRecord{1, 42, nullptr, 0, 0.0, 0, kSecond});
  EXPECT_TRUE(Pit::has_nonce(entry, 42));
  EXPECT_FALSE(Pit::has_nonce(entry, 43));
}

// ---------------------------------------------------------------------------
// Content Store
// ---------------------------------------------------------------------------

DataPtr make_data(const std::string& uri) {
  auto data = std::make_shared<Data>();
  data->name = Name(uri);
  data->content_size = 100;
  return data;
}

TEST(ContentStore, InsertFindCounts) {
  ContentStore cs(10);
  EXPECT_EQ(cs.find(Name("/a")), nullptr);
  EXPECT_EQ(cs.misses(), 1u);
  cs.insert(make_data("/a"));
  ASSERT_NE(cs.find(Name("/a")), nullptr);
  EXPECT_EQ(cs.hits(), 1u);
}

TEST(ContentStore, LruEviction) {
  ContentStore cs(3);
  cs.insert(make_data("/a"));
  cs.insert(make_data("/b"));
  cs.insert(make_data("/c"));
  // Touch /a so /b becomes the LRU victim.
  cs.find(Name("/a"));
  cs.insert(make_data("/d"));
  EXPECT_TRUE(cs.contains(Name("/a")));
  EXPECT_FALSE(cs.contains(Name("/b")));
  EXPECT_TRUE(cs.contains(Name("/c")));
  EXPECT_TRUE(cs.contains(Name("/d")));
  EXPECT_EQ(cs.size(), 3u);
}

TEST(ContentStore, ZeroCapacityDisablesCaching) {
  ContentStore cs(0);
  cs.insert(make_data("/a"));
  EXPECT_FALSE(cs.contains(Name("/a")));
}

// The CS shares the inserted pointer verbatim — envelope sanitation is
// the Forwarder's job now (see Forwarder.CacheInsertStripsEnvelope).
TEST(ContentStore, SharesInsertedPointer) {
  ContentStore cs(10);
  DataPtr data = make_data("/a");
  const Data* address = data.get();
  cs.insert(data);
  const DataPtr* stored = cs.find(Name("/a"));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->get(), address);  // zero-copy: same object
}

TEST(ContentStore, ReinsertRefreshesLru) {
  ContentStore cs(2);
  cs.insert(make_data("/a"));
  cs.insert(make_data("/b"));
  cs.insert(make_data("/a"));  // refresh
  cs.insert(make_data("/c"));  // evicts /b
  EXPECT_TRUE(cs.contains(Name("/a")));
  EXPECT_FALSE(cs.contains(Name("/b")));
}

// ---------------------------------------------------------------------------
// Forwarder pipeline over hand-wired chains
// ---------------------------------------------------------------------------

struct TestNet {
  event::Scheduler sched;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<Forwarder>> nodes;

  Forwarder& add(const std::string& label,
                 net::NodeKind kind = net::NodeKind::kCoreRouter,
                 std::size_t cs_capacity = 100) {
    nodes.push_back(std::make_unique<Forwarder>(
        sched,
        net::NodeInfo{static_cast<net::NodeId>(nodes.size()), kind, label},
        cs_capacity));
    return *nodes.back();
  }

  /// Wires a <-> b; returns {face on a toward b, face on b toward a}.
  std::pair<FaceId, FaceId> connect(
      Forwarder& a, Forwarder& b,
      net::LinkParams params = {1e9, kMillisecond, 100}) {
    links.push_back(std::make_unique<net::Link>(sched, params));
    net::Link* ab = links.back().get();
    links.push_back(std::make_unique<net::Link>(sched, params));
    net::Link* ba = links.back().get();
    auto fa_cell = std::make_shared<FaceId>(kInvalidFace);
    auto fb_cell = std::make_shared<FaceId>(kInvalidFace);
    const FaceId fa = a.add_link_face(ab, [&b, fb_cell](PacketVariant&& p) {
      b.receive(*fb_cell, std::move(p));
    });
    const FaceId fb = b.add_link_face(ba, [&a, fa_cell](PacketVariant&& p) {
      a.receive(*fa_cell, std::move(p));
    });
    *fa_cell = fa;
    *fb_cell = fb;
    return {fa, fb};
  }
};

Interest make_interest(const std::string& uri, std::uint64_t nonce = 1) {
  Interest interest;
  interest.name = Name(uri);
  interest.nonce = nonce;
  interest.lifetime = kSecond;
  return interest;
}

/// Consumer <-> router <-> producer chain where the producer app answers
/// every Interest under "/p".
struct Chain : TestNet {
  Forwarder* consumer;
  Forwarder* router;
  Forwarder* producer;
  FaceId consumer_app = kInvalidFace;
  FaceId producer_app = kInvalidFace;
  std::vector<Data> received;
  std::vector<Nack> nacks;
  int produced = 0;

  Chain() {
    consumer = &add("consumer", net::NodeKind::kClient, 0);
    router = &add("router");
    producer = &add("producer", net::NodeKind::kProvider, 0);
    auto [c_r, r_c] = connect(*consumer, *router);
    auto [r_p, p_r] = connect(*router, *producer);

    consumer_app = consumer->add_app_face(AppSink{
        nullptr, [this](const Data& d) { received.push_back(d); },
        [this](const Nack& n) { nacks.push_back(n); }});
    producer_app = producer->add_app_face(AppSink{
        [this](FaceId face, const Interest& interest) {
          ++produced;
          Data data;
          data.name = interest.name;
          data.content_size = 1024;
          producer->inject_from_app(face, std::move(data));
        },
        nullptr, nullptr});

    consumer->fib().add_route(Name("/"), c_r);
    router->fib().add_route(Name("/p"), r_p);
    producer->fib().add_route(Name("/p"), producer_app);
    (void)p_r;
    (void)r_c;
  }

  void express(const std::string& uri, std::uint64_t nonce = 1) {
    consumer->inject_from_app(consumer_app, make_interest(uri, nonce));
  }
};

TEST(Forwarder, EndToEndFetch) {
  Chain chain;
  chain.express("/p/obj/c0");
  chain.sched.run();
  ASSERT_EQ(chain.received.size(), 1u);
  EXPECT_EQ(chain.received[0].name, Name("/p/obj/c0"));
  EXPECT_EQ(chain.produced, 1);
  EXPECT_FALSE(chain.received[0].from_cache);
}

TEST(Forwarder, SecondFetchServedFromCache) {
  Chain chain;
  chain.express("/p/obj/c0", 1);
  chain.sched.run();
  chain.express("/p/obj/c0", 2);
  chain.sched.run();
  ASSERT_EQ(chain.received.size(), 2u);
  EXPECT_EQ(chain.produced, 1);  // router cache answered the second
  EXPECT_TRUE(chain.received[1].from_cache);
  EXPECT_EQ(chain.router->cs().hits(), 1u);
}

TEST(Forwarder, NoRouteYieldsNack) {
  Chain chain;
  chain.express("/unrouted/x");
  chain.sched.run();
  ASSERT_EQ(chain.nacks.size(), 1u);
  EXPECT_EQ(chain.nacks[0].reason, NackReason::kNoRoute);
  EXPECT_TRUE(chain.received.empty());
}

TEST(Forwarder, DuplicateNonceDropped) {
  Chain chain;
  chain.express("/p/a", 7);
  chain.express("/p/a", 7);  // same nonce while first is in flight
  chain.sched.run();
  EXPECT_EQ(chain.produced, 1);
  // The consumer's own PIT already holds (name, nonce): the duplicate is
  // detected there, one hop before the router.
  EXPECT_EQ(chain.consumer->counters().duplicate_interests, 1u);
  EXPECT_EQ(chain.received.size(), 1u);
}

TEST(Forwarder, PitExpiryCleansEntry) {
  Chain chain;
  // A producer app that swallows Interests: the router PIT entry must be
  // garbage-collected when the Interest lifetime elapses.
  chain.producer->fib().remove_route(Name("/p"));
  const FaceId blackhole =
      chain.producer->add_app_face(AppSink{});  // drops everything
  chain.producer->fib().add_route(Name("/p"), blackhole);

  chain.express("/p/slow");
  chain.sched.run_until(500 * kMillisecond);
  EXPECT_EQ(chain.router->pit().size(), 1u);  // still pending
  chain.sched.run_until(5 * kSecond);
  EXPECT_EQ(chain.router->pit().size(), 0u);  // expired and cleaned
  EXPECT_GE(chain.router->counters().pit_expirations, 1u);
}

TEST(Forwarder, CountersTrackPipeline) {
  Chain chain;
  chain.express("/p/a", 1);
  chain.sched.run();
  EXPECT_EQ(chain.router->counters().interests_received, 1u);
  EXPECT_EQ(chain.router->counters().interests_forwarded, 1u);
  EXPECT_EQ(chain.router->counters().data_received, 1u);
  EXPECT_GE(chain.router->counters().data_sent, 1u);
}

/// Two consumers behind one router aggregate on the same name.
TEST(Forwarder, PitAggregationFansOut) {
  TestNet net;
  Forwarder& c1 = net.add("c1", net::NodeKind::kClient, 0);
  Forwarder& c2 = net.add("c2", net::NodeKind::kClient, 0);
  Forwarder& router = net.add("r");
  Forwarder& producer = net.add("p", net::NodeKind::kProvider, 0);
  auto [c1_r, r_c1] = net.connect(c1, router);
  auto [c2_r, r_c2] = net.connect(c2, router);
  auto [r_p, p_r] = net.connect(router, producer);
  (void)r_c1; (void)r_c2; (void)p_r;

  int got1 = 0, got2 = 0, produced = 0;
  const FaceId a1 = c1.add_app_face(
      AppSink{nullptr, [&](const Data&) { ++got1; }, nullptr});
  const FaceId a2 = c2.add_app_face(
      AppSink{nullptr, [&](const Data&) { ++got2; }, nullptr});
  const FaceId pa = producer.add_app_face(AppSink{
      [&](FaceId face, const Interest& interest) {
        ++produced;
        Data data;
        data.name = interest.name;
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  c1.fib().add_route(Name("/"), c1_r);
  c2.fib().add_route(Name("/"), c2_r);
  router.fib().add_route(Name("/p"), r_p);
  producer.fib().add_route(Name("/p"), pa);

  c1.inject_from_app(a1, make_interest("/p/x", 1));
  c2.inject_from_app(a2, make_interest("/p/x", 2));
  net.sched.run();

  EXPECT_EQ(produced, 1);  // aggregated upstream
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(router.counters().interests_aggregated, 1u);
}

TEST(Forwarder, UnsolicitedDataDropped) {
  Chain chain;
  Data stray;
  stray.name = Name("/p/stray");
  chain.router->receive(0, make_packet(std::move(stray)));
  chain.sched.run();
  EXPECT_EQ(chain.router->counters().unsolicited_data, 1u);
  EXPECT_FALSE(chain.router->cs().contains(Name("/p/stray")));
}

TEST(Forwarder, RegistrationResponsesNotCached) {
  Chain chain;
  // Producer answers with a registration response this time.
  Forwarder& producer = *chain.producer;
  producer.fib().remove_route(Name("/p"));
  const FaceId app = producer.add_app_face(AppSink{
      [&producer](FaceId face, const Interest& interest) {
        Data data;
        data.name = interest.name;
        data.is_registration_response = true;
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  producer.fib().add_route(Name("/p"), app);

  chain.express("/p/register/u1/1");
  chain.sched.run();
  ASSERT_EQ(chain.received.size(), 1u);
  EXPECT_TRUE(chain.received[0].is_registration_response);
  EXPECT_FALSE(chain.router->cs().contains(Name("/p/register/u1/1")));
}

// What the forwarder caches is the canonical content object: response
// envelope (nack fields, flag_f, from_cache) stripped.  The stripping
// moved out of ContentStore::insert into Forwarder::on_data so clean
// packets can be shared without a copy.
TEST(Forwarder, CacheInsertStripsEnvelope) {
  Chain chain;
  Forwarder& producer = *chain.producer;
  producer.fib().remove_route(Name("/p"));
  const FaceId app = producer.add_app_face(AppSink{
      [&producer](FaceId face, const Interest& interest) {
        Data data;
        data.name = interest.name;
        data.content_size = 256;
        data.nack_reason = NackReason::kInvalidSignature;  // stale field
        data.flag_f = 0.5;
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  producer.fib().add_route(Name("/p"), app);

  chain.express("/p/dirty");
  chain.sched.run();
  ASSERT_EQ(chain.received.size(), 1u);
  const DataPtr* stored = chain.router->cs().find(Name("/p/dirty"));
  ASSERT_NE(stored, nullptr);
  EXPECT_FALSE((*stored)->nack_attached);
  EXPECT_EQ((*stored)->nack_reason, NackReason::kNone);
  EXPECT_EQ((*stored)->flag_f, 0.0);
  EXPECT_FALSE((*stored)->from_cache);
}

/// Diamond topology: consumer - router - {upper, lower} - producer, with
/// equal-cost multipath at the router.  Killing the primary path must not
/// lose Interests: the router fails over synchronously.
TEST(Forwarder, EqualCostFailoverOnDeadLink) {
  TestNet net;
  Forwarder& consumer = net.add("c", net::NodeKind::kClient, 0);
  Forwarder& router = net.add("r");
  Forwarder& upper = net.add("u");
  Forwarder& lower = net.add("l");
  Forwarder& producer = net.add("p", net::NodeKind::kProvider, 0);
  auto [c_r, r_c] = net.connect(consumer, router);
  auto [r_u, u_r] = net.connect(router, upper);
  auto [r_l, l_r] = net.connect(router, lower);
  auto [u_p, p_u] = net.connect(upper, producer);
  auto [l_p, p_l] = net.connect(lower, producer);
  (void)r_c; (void)u_r; (void)l_r; (void)p_u; (void)p_l;

  int received = 0, produced = 0;
  const FaceId app = consumer.add_app_face(
      AppSink{nullptr, [&](const Data&) { ++received; }, nullptr});
  const FaceId papp = producer.add_app_face(AppSink{
      [&](FaceId face, const Interest& interest) {
        ++produced;
        Data data;
        data.name = interest.name;
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  consumer.fib().add_route(Name("/"), c_r);
  router.fib().add_route(Name("/p"), r_u, 2);
  router.fib().add_route(Name("/p"), r_l, 2);  // equal-cost alternate
  upper.fib().add_route(Name("/p"), u_p, 1);
  lower.fib().add_route(Name("/p"), l_p, 1);
  producer.fib().add_route(Name("/p"), papp);

  consumer.inject_from_app(app, make_interest("/p/x", 1));
  net.sched.run();
  EXPECT_EQ(received, 1);

  // Kill the primary (lowest face id) upstream link; traffic must take
  // the alternate without any routing update.  Every refused attempt
  // counts one link_send_failure; the successful retry on the alternate
  // counts one failover.
  net.links[2]->set_up(false);  // router -> upper direction
  consumer.inject_from_app(app, make_interest("/p/y", 2));
  net.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(router.counters().interest_failovers, 1u);
  EXPECT_EQ(router.counters().link_send_failures, 1u);
  EXPECT_EQ(net.links[2]->counters().refused_link_down, 1u);

  // Kill the alternate too: the Interest dies at the router.  Both
  // candidate hops refuse (two more link_send_failures), no failover
  // succeeds, and the Interest is counted unsent — not failed over.
  net.links[4]->set_up(false);  // router -> lower direction
  consumer.inject_from_app(app, make_interest("/p/z", 3));
  net.sched.run_until(net.sched.now() + 5 * kSecond);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(router.counters().interests_unsent, 1u);
  EXPECT_EQ(router.counters().interest_failovers, 1u);  // unchanged
  EXPECT_EQ(router.counters().link_send_failures, 3u);
  EXPECT_EQ(produced, 2);
}

/// Same diamond, but the primary next hop refuses because its drop-tail
/// queue is full rather than because the link is down: the Interest must
/// fail over identically, and the refusal must land in the queue-full
/// half of the split link counters.
TEST(Forwarder, EqualCostFailoverOnFullQueue) {
  TestNet net;
  Forwarder& consumer = net.add("c", net::NodeKind::kClient, 0);
  Forwarder& router = net.add("r");
  Forwarder& upper = net.add("u");
  Forwarder& lower = net.add("l");
  Forwarder& producer = net.add("p", net::NodeKind::kProvider, 0);
  auto [c_r, r_c] = net.connect(consumer, router);
  // Primary upstream: slow enough that the first frame still occupies it
  // when the second arrives, with room for nothing behind it
  // (max_queue=1), yet fast enough to finish within the Interest
  // lifetime.
  auto [r_u, u_r] = net.connect(router, upper, {1e5, kMillisecond, 1});
  auto [r_l, l_r] = net.connect(router, lower);
  auto [u_p, p_u] = net.connect(upper, producer);
  auto [l_p, p_l] = net.connect(lower, producer);
  (void)r_c; (void)u_r; (void)l_r; (void)p_u; (void)p_l;

  int received = 0;
  const FaceId app = consumer.add_app_face(
      AppSink{nullptr, [&](const Data&) { ++received; }, nullptr});
  const FaceId papp = producer.add_app_face(AppSink{
      [&](FaceId face, const Interest& interest) {
        Data data;
        data.name = interest.name;
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  consumer.fib().add_route(Name("/"), c_r);
  router.fib().add_route(Name("/p"), r_u, 2);
  router.fib().add_route(Name("/p"), r_l, 2);  // equal-cost alternate
  upper.fib().add_route(Name("/p"), u_p, 1);
  lower.fib().add_route(Name("/p"), l_p, 1);
  producer.fib().add_route(Name("/p"), papp);

  // Both Interests arrive back to back: the first occupies the slow
  // primary, the second is refused by the full queue and fails over.
  consumer.inject_from_app(app, make_interest("/p/x", 1));
  consumer.inject_from_app(app, make_interest("/p/y", 2));
  net.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(router.counters().interest_failovers, 1u);
  EXPECT_EQ(router.counters().link_send_failures, 1u);
  EXPECT_EQ(router.counters().interests_unsent, 0u);
  EXPECT_EQ(net.links[2]->counters().dropped_queue_full, 1u);
  EXPECT_EQ(net.links[2]->counters().refused_link_down, 0u);
}

TEST(Forwarder, WireSizeVariant) {
  Interest interest = make_interest("/p/a");
  Data data;
  data.name = Name("/p/a");
  Nack nack{Name("/p/a"), NackReason::kNoTag, };
  EXPECT_EQ(wire_size(make_packet(Interest(interest))), interest.wire_size());
  EXPECT_EQ(wire_size(make_packet(Data(data))), data.wire_size());
  EXPECT_EQ(wire_size(make_packet(Nack(nack))), nack.wire_size());
}

}  // namespace
}  // namespace tactic::ndn
