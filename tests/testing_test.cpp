// Tests for the fuzz/invariant harness itself (src/testing): generator
// determinism, clean runs staying clean, bit-reproducibility, the
// differential TACTIC-vs-open parity, and — crucially — that a
// deliberately injected forwarder bug IS caught by the runtime
// invariants (a checker that can't fail is not a checker).

#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "testing/invariants.hpp"

namespace tactic {
// `tactic::testing` would be ambiguous with gtest's `::testing` here.
namespace testing_ = ::tactic::testing;
namespace {

testing_::GeneratorOptions quick_options() {
  testing_::GeneratorOptions options;
  options.duration = 8 * event::kSecond;
  return options;
}

struct CheckedRun {
  std::string metrics_fingerprint;
  std::string trace_digest;
  std::uint64_t violations = 0;
  std::string report;
  sim::Metrics metrics;
};

CheckedRun checked_run(const sim::ScenarioConfig& config) {
  sim::Scenario scenario(config);
  testing_::InvariantChecker checker(scenario);
  checker.arm();
  scenario.run();
  checker.finalize();
  CheckedRun run;
  run.metrics = scenario.harvest();
  run.metrics_fingerprint = testing_::fingerprint(run.metrics);
  run.trace_digest = checker.trace_digest();
  run.violations = checker.violation_count();
  run.report = checker.report();
  return run;
}

TEST(Generator, SameSeedSameConfig) {
  const auto a = testing_::random_config(42, quick_options());
  const auto b = testing_::random_config(42, quick_options());
  EXPECT_EQ(testing_::describe(a), testing_::describe(b));
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.topology.core_routers, b.topology.core_routers);
  EXPECT_EQ(a.tactic.bloom.capacity, b.tactic.bloom.capacity);
  EXPECT_EQ(a.provider.tag_validity, b.provider.tag_validity);
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = testing_::random_config(1, quick_options());
  const auto b = testing_::random_config(2, quick_options());
  EXPECT_NE(testing_::describe(a), testing_::describe(b));
}

TEST(InvariantChecker, CleanTacticRunHasNoViolations) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  const auto run = checked_run(testing_::random_config(7, options));
  EXPECT_EQ(run.violations, 0u) << run.report;
  EXPECT_GT(run.metrics.clients.received, 0u);
}

TEST(InvariantChecker, RunsAreBitReproducible) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  const auto config = testing_::random_config(11, options);
  const auto first = checked_run(config);
  const auto second = checked_run(config);
  EXPECT_EQ(first.metrics_fingerprint, second.metrics_fingerprint);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
}

TEST(InvariantChecker, InjectedExpiryBugIsCaught) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  options.inject_expiry_bug = true;
  // Seed 1 catches the fault within the first simulated second (expired
  // tags served from core caches once the edge skips Protocol 1).
  const auto run = checked_run(testing_::random_config(1, options));
  EXPECT_GT(run.violations, 0u);
  EXPECT_NE(run.report.find("expired tag honoured"), std::string::npos)
      << run.report;
}

TEST(InvariantChecker, InjectedBugLeavesOpenPolicyClean) {
  // The fault only exists in TACTIC edge routers; the same seed under
  // kNoAccessControl must stay violation-free (the checker does not
  // condemn policies whose contract allows attacker deliveries).
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kNoAccessControl;
  options.inject_expiry_bug = true;
  const auto run = checked_run(testing_::random_config(1, options));
  EXPECT_EQ(run.violations, 0u) << run.report;
}

TEST(Differential, TacticMatchesOpenDeliveryForClients) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  auto config = testing_::random_config(5, options);
  const auto tactic = checked_run(config);
  config.policy = sim::PolicyKind::kNoAccessControl;
  const auto open = checked_run(config);
  EXPECT_EQ(tactic.violations, 0u) << tactic.report;
  EXPECT_EQ(open.violations, 0u) << open.report;
  // Legitimate clients keep their delivery ratio under access control.
  EXPECT_GE(tactic.metrics.clients.delivery_ratio() + 0.1,
            open.metrics.clients.delivery_ratio());
  // Attackers do not (they fetch freely only in the open network).
  EXPECT_EQ(tactic.metrics.attackers.received, 0u);
  EXPECT_GT(open.metrics.attackers.received, 0u);
}

TEST(Generator, FaultsDrawnDeterministicallyAfterBaseConfig) {
  auto with = quick_options();
  with.with_faults = true;
  const auto a = testing_::random_config(42, with);
  const auto b = testing_::random_config(42, with);
  EXPECT_EQ(testing_::describe(a), testing_::describe(b));
  EXPECT_EQ(a.faults.fault_seed, b.faults.fault_seed);
  EXPECT_EQ(a.faults.edge_links.loss, b.faults.edge_links.loss);
  EXPECT_EQ(a.faults.crashes.size(), b.faults.crashes.size());
  EXPECT_EQ(a.faults.flaps.size(), b.faults.flaps.size());

  // Fault draws are appended AFTER every base draw, so turning them on
  // must not perturb the base scenario for the same seed.
  const auto base = testing_::random_config(42, quick_options());
  EXPECT_EQ(base.seed, a.seed);
  EXPECT_EQ(base.policy, a.policy);
  EXPECT_EQ(base.topology.core_routers, a.topology.core_routers);
  EXPECT_EQ(base.topology.aps_per_edge, a.topology.aps_per_edge);
  EXPECT_EQ(base.provider.tag_validity, a.provider.tag_validity);
  EXPECT_EQ(base.tactic.bloom.capacity, a.tactic.bloom.capacity);
  EXPECT_FALSE(base.faults.any());
}

TEST(Generator, SomeFaultSeedsStayFaultless) {
  // sample_fault_plan keeps ~1 in 4 seeds as a faultless control group;
  // over 40 seeds both populations must be represented.
  auto options = quick_options();
  options.with_faults = true;
  std::size_t faulty = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    if (testing_::random_config(seed, options).faults.any()) ++faulty;
  }
  EXPECT_GT(faulty, 0u);
  EXPECT_LT(faulty, 40u);
}

TEST(InvariantChecker, FaultyRunsAreBitReproducible) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  options.with_faults = true;
  // Seed 3 draws a non-empty plan (asserted, so a generator change that
  // silently empties it fails loudly instead of weakening the test).
  const auto config = testing_::random_config(3, options);
  ASSERT_TRUE(config.faults.any());
  const auto first = checked_run(config);
  const auto second = checked_run(config);
  EXPECT_EQ(first.violations, 0u) << first.report;
  EXPECT_EQ(first.metrics_fingerprint, second.metrics_fingerprint);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
}

TEST(Fingerprint, DistinguishesDifferentRuns) {
  auto options = quick_options();
  options.forced_policy = sim::PolicyKind::kTactic;
  const auto a = checked_run(testing_::random_config(7, options));
  const auto b = checked_run(testing_::random_config(8, options));
  EXPECT_NE(a.metrics_fingerprint, b.metrics_fingerprint);
  EXPECT_NE(testing_::fingerprint_digest(a.metrics),
            testing_::fingerprint_digest(b.metrics));
}

}  // namespace
}  // namespace tactic
