// Stage-level tests for the composable validation pipeline
// (tactic/pipeline.hpp): each ValidationStage's verdicts, counters and
// compute charges in isolation, the per-stage compute breakdown
// invariant, and the pipeline-vs-golden fingerprint-parity check over
// the fixed-seed fuzz corpus.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "sim/scenario.hpp"
#include "tactic/pipeline.hpp"
#include "tactic/tag.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "util/bytes.hpp"

namespace tactic::core {
namespace {

namespace tt = ::tactic::testing;
using event::kSecond;

crypto::RsaKeyPair test_keypair(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return crypto::generate_rsa_keypair(rng, 512);
}

Tag::Fields basic_fields() {
  Tag::Fields fields;
  fields.provider_key_locator = "/provider0/KEY/1";
  fields.client_key_locator = "/client0/KEY/1";
  fields.access_level = 2;
  fields.access_path = 0xDEADBEEF;
  fields.expiry = 10 * kSecond;
  return fields;
}

/// One engine + one signed tag, with the provider key in the PKI.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : keys_(test_keypair()) {
    anchors_.pki.add_key("/provider0/KEY/1", keys_.public_key);
    anchors_.protected_prefixes.insert("/provider0");
    tag_ = issue_tag(basic_fields(), keys_.private_key);
    name_ = ndn::Name("/provider0/videos/1");
  }

  ValidationEngine make_engine(ComputeModel compute = ComputeModel::zero()) {
    return ValidationEngine(config_, anchors_, compute, util::Rng(7));
  }

  ndn::Data protected_data() {
    ndn::Data data;
    data.access_level = 2;
    data.provider_key_locator = "/provider0/KEY/1";
    return data;
  }

  crypto::RsaKeyPair keys_;
  TrustAnchors anchors_;
  TacticConfig config_;
  TagPtr tag_;
  ndn::Name name_;
};

// ---------------------------------------------------------------------------
// PrecheckStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, PrecheckInterestPassesValidTag) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.interest_name = &name_;
  PrecheckStage stage(PrecheckStage::Check::kInterest,
                      PrecheckStage::FailAction::kSilentDrop);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kContinue);
  EXPECT_EQ(engine.counters().precheck_rejections, 0u);
  EXPECT_EQ(ctx.compute, 0);  // Protocol 1 is the un-charged cheap check
}

TEST_F(PipelineTest, PrecheckInterestRejectsExpiredTagSilently) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, 11 * kSecond);  // past expiry
  ctx.interest_name = &name_;
  PrecheckStage stage(PrecheckStage::Check::kInterest,
                      PrecheckStage::FailAction::kSilentDrop);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_TRUE(verdict.silent);
  EXPECT_EQ(verdict.reason, to_nack_reason(PrecheckResult::kExpired));
  EXPECT_EQ(engine.counters().precheck_rejections, 1u);
}

TEST_F(PipelineTest, PrecheckInterestHonoursInjectedExpiryBug) {
  config_.fault_skip_expiry_precheck = true;
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, 11 * kSecond);
  ctx.interest_name = &name_;
  PrecheckStage stage(PrecheckStage::Check::kInterest,
                      PrecheckStage::FailAction::kSilentDrop);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  EXPECT_EQ(engine.counters().precheck_rejections, 0u);
}

TEST_F(PipelineTest, PrecheckDisabledPassesEverything) {
  config_.precheck = false;
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, 11 * kSecond);  // would be expired
  ctx.interest_name = &name_;
  PrecheckStage stage(PrecheckStage::Check::kInterest,
                      PrecheckStage::FailAction::kSilentDrop);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
}

TEST_F(PipelineTest, PrecheckContentPassesPublicUnconditionally) {
  ValidationEngine engine = make_engine();
  ndn::Data data;  // access_level = kPublicAccessLevel
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.content = &data;
  PrecheckStage stage(PrecheckStage::Check::kContent,
                      PrecheckStage::FailAction::kNackPrecheckReason);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
}

TEST_F(PipelineTest, PrecheckContentFailActionSelectsNackReason) {
  ValidationEngine engine = make_engine();
  ndn::Data data = protected_data();
  data.access_level = 9;  // above the tag's AL_u = 2
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.content = &data;

  PrecheckStage precise(PrecheckStage::Check::kContent,
                        PrecheckStage::FailAction::kNackPrecheckReason);
  Verdict verdict = precise.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_FALSE(verdict.silent);
  EXPECT_EQ(verdict.reason,
            to_nack_reason(PrecheckResult::kAccessLevelTooLow));

  PrecheckStage generic(PrecheckStage::Check::kContent,
                        PrecheckStage::FailAction::kNackInvalidSignature);
  verdict = generic.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kInvalidSignature);
  EXPECT_EQ(engine.counters().precheck_rejections, 2u);
}

// ---------------------------------------------------------------------------
// BlacklistStage / AccessPathStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, BlacklistPassesWhenEmptyAndRejectsWhenListed) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  BlacklistStage stage;
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);

  anchors_.revocations.blacklist(*tag_, 3);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kExpiredTag);
  EXPECT_EQ(engine.counters().blacklist_rejections, 1u);
  EXPECT_EQ(anchors_.revocations.push_messages, 3u);
}

TEST_F(PipelineTest, AccessPathEnforcementRejectsMismatch) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.access_path = 0xDEADBEEF;  // matches the tag
  AccessPathStage stage;
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);  // not enforced

  config_.enforce_access_path = true;
  ValidationEngine strict = make_engine();
  ValidationContext match(strict, *tag_, kSecond);
  match.access_path = 0xDEADBEEF;
  EXPECT_EQ(stage.run(match).kind, Verdict::Kind::kContinue);

  ValidationContext mismatch(strict, *tag_, kSecond);
  mismatch.access_path = 0x1234;
  const Verdict verdict = stage.run(mismatch);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kAccessPathMismatch);
  EXPECT_EQ(strict.counters().access_path_rejections, 1u);
}

// ---------------------------------------------------------------------------
// NegativeCacheStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, NegativeCacheInertWhileOverloadDisabled) {
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  ValidationContext ctx(engine, *tag_, kSecond);
  NegativeCacheStage stage;
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  EXPECT_EQ(ctx.compute, 0);  // no probe, no charge
}

TEST_F(PipelineTest, NegativeCacheRejectsRememberedTag) {
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  NegativeCacheStage stage;

  ValidationContext miss(engine, *tag_, kSecond);
  EXPECT_EQ(stage.run(miss).kind, Verdict::Kind::kContinue);
  EXPECT_GT(miss.compute, 0);  // the probe is charged even on a miss
  EXPECT_EQ(engine.counters().compute_neg, engine.counters().compute_charged);

  engine.remember_invalid(*tag_, kSecond);
  ValidationContext hit(engine, *tag_, kSecond);
  const Verdict verdict = stage.run(hit);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kInvalidSignature);
  EXPECT_EQ(engine.counters().neg_cache_hits, 1u);
  EXPECT_EQ(engine.counters().neg_cache_insertions, 1u);
}

// ---------------------------------------------------------------------------
// AdmissionStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, AdmissionInertWhileOverloadDisabled) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  AdmissionStage stage(AdmissionStage::Gate::kQueueCapacity);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
}

TEST_F(PipelineTest, AdmissionShedsAtQueueCapacity) {
  config_.overload.enabled = true;
  config_.overload.queue_capacity = 1;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.charge(0, kSecond, compute, CostKind::kSignature);  // backlog of 1

  ValidationContext ctx(engine, *tag_, 0);
  AdmissionStage stage(AdmissionStage::Gate::kQueueCapacity);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kShed);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kRouterOverloaded);
  EXPECT_EQ(engine.counters().sheds_queue_full, 1u);
}

TEST_F(PipelineTest, AdmissionWatermarkShedsUnvouchedButNotRevalidating) {
  config_.overload.enabled = true;
  config_.overload.shed_watermark = 1;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.charge(0, kSecond, compute, CostKind::kSignature);

  AdmissionStage content(AdmissionStage::Gate::kWatermark,
                         /*shed_revalidating=*/false);
  ValidationContext revalidating(engine, *tag_, 0);
  revalidating.revalidating = true;
  EXPECT_EQ(content.run(revalidating).kind, Verdict::Kind::kContinue);

  ValidationContext unvouched(engine, *tag_, 0);
  EXPECT_EQ(content.run(unvouched).kind, Verdict::Kind::kShed);
  EXPECT_EQ(engine.counters().sheds_unvouched, 1u);

  AdmissionStage core(AdmissionStage::Gate::kWatermark);
  ValidationContext shed_anyway(engine, *tag_, 0);
  shed_anyway.revalidating = true;
  EXPECT_EQ(core.run(shed_anyway).kind, Verdict::Kind::kShed);
  EXPECT_EQ(engine.counters().sheds_unvouched, 2u);
}

TEST_F(PipelineTest, AdmissionPolicerShedsPastBurst) {
  config_.overload.enabled = true;
  config_.overload.policer_rate = 1.0;
  config_.overload.policer_burst = 1.0;
  config_.overload.shed_watermark = 100;  // watermark never trips here
  ValidationEngine engine = make_engine();
  AdmissionStage stage(AdmissionStage::Gate::kUnvouchedInterest);

  ValidationContext first(engine, *tag_, 0);
  first.in_face = 4;
  EXPECT_EQ(stage.run(first).kind, Verdict::Kind::kContinue);

  ValidationContext second(engine, *tag_, 0);
  second.in_face = 4;  // same face, bucket drained
  const Verdict verdict = stage.run(second);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kShed);
  EXPECT_EQ(engine.counters().policer_sheds, 1u);
}

// ---------------------------------------------------------------------------
// BloomVouchStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, BloomVouchStampMissStampsZero) {
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  ValidationContext ctx(engine, *tag_, kSecond);
  BloomVouchStage stage(BloomVouchStage::Mode::kStampInterest);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  ASSERT_TRUE(ctx.flag_f_out.has_value());
  EXPECT_EQ(*ctx.flag_f_out, 0.0);
  EXPECT_EQ(engine.counters().bf_lookups, 1u);
  EXPECT_GT(engine.counters().compute_bf, 0);
}

TEST_F(PipelineTest, BloomVouchStampHitVouchesWithFilterFpp) {
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.bloom_insert(*tag_, kSecond, compute);
  ValidationContext ctx(engine, *tag_, kSecond);
  BloomVouchStage stage(BloomVouchStage::Mode::kStampInterest);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(verdict.flag_f, engine.bloom().current_fpp());
  EXPECT_GT(verdict.flag_f, 0.0);
}

TEST_F(PipelineTest, BloomVouchStampSkipsLookupWithoutCooperation) {
  config_.flag_cooperation = false;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.bloom_insert(*tag_, kSecond, compute);  // would hit
  ValidationContext ctx(engine, *tag_, kSecond);
  BloomVouchStage stage(BloomVouchStage::Mode::kStampInterest);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  EXPECT_EQ(*ctx.flag_f_out, 0.0);
  EXPECT_EQ(engine.counters().bf_lookups, 0u);  // ablation: no lookup
}

TEST_F(PipelineTest, BloomVouchFlagAwareZeroFlagConsultsLocalFilter) {
  ValidationEngine engine = make_engine();
  BloomVouchStage stage(BloomVouchStage::Mode::kFlagAware);

  ValidationContext miss(engine, *tag_, kSecond);
  EXPECT_EQ(stage.run(miss).kind, Verdict::Kind::kContinue);
  EXPECT_FALSE(miss.flag_f_out.has_value());  // F untouched on fall-through

  event::Time compute = 0;
  engine.bloom_insert(*tag_, kSecond, compute);
  ValidationContext hit(engine, *tag_, kSecond);
  const Verdict verdict = stage.run(hit);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(verdict.flag_f, 0.0);
  EXPECT_EQ(*hit.flag_f_out, 0.0);
}

TEST_F(PipelineTest, BloomVouchFlagAwareCoinElectsRevalidation) {
  ValidationEngine engine = make_engine();
  BloomVouchStage stage(BloomVouchStage::Mode::kFlagAware);
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.flag_f_in = 1.0;  // the coin always elects re-validation
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  EXPECT_TRUE(ctx.revalidating);
  EXPECT_EQ(*ctx.flag_f_out, 1.0);  // F echoed regardless of the coin
  EXPECT_EQ(engine.counters().probabilistic_revalidations, 1u);
  EXPECT_EQ(engine.counters().bf_lookups, 0u);  // no local lookup with F>0
}

TEST_F(PipelineTest, BloomVouchCoinOnlyTrustsEdgeOnTails) {
  ValidationEngine engine = make_engine();
  BloomVouchStage stage(BloomVouchStage::Mode::kCoinOnly);
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.flag_f_in = 1e-300;  // tails, for any realisable draw
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(verdict.flag_f, 1e-300);
  EXPECT_EQ(*ctx.flag_f_out, 1e-300);
  EXPECT_FALSE(ctx.revalidating);
  EXPECT_EQ(engine.counters().probabilistic_revalidations, 0u);
}

TEST_F(PipelineTest, BloomVouchCoinOnlyHeadsFallsThroughUnstamped) {
  ValidationEngine engine = make_engine();
  BloomVouchStage stage(BloomVouchStage::Mode::kCoinOnly);
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.flag_f_in = 1.0;
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kContinue);
  EXPECT_TRUE(ctx.revalidating);
  EXPECT_FALSE(ctx.flag_f_out.has_value());
  EXPECT_EQ(engine.counters().probabilistic_revalidations, 1u);
}

// ---------------------------------------------------------------------------
// SignatureVerifyStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, SignatureVerifyEdgeAggregateInsertsOnSuccess) {
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  ValidationContext ctx(engine, *tag_, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kEdgeAggregate);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(engine.counters().sig_verifications, 1u);
  EXPECT_EQ(engine.counters().bf_insertions, 1u);
  EXPECT_GT(engine.counters().compute_sig, 0);
  EXPECT_FALSE(ctx.flag_f_out.has_value());  // edge aggregates keep F as-is
}

TEST_F(PipelineTest, SignatureVerifyEdgeAggregateDropsForgerySilently) {
  const TagPtr forged =
      forge_tag(basic_fields(), test_keypair(2).private_key);
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *forged, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kEdgeAggregate);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_TRUE(verdict.silent);  // "drop otherwise"
  EXPECT_EQ(engine.counters().sig_failures, 1u);
  EXPECT_EQ(engine.counters().bf_insertions, 0u);
}

TEST_F(PipelineTest, SignatureVerifyCacheHitFreshInsertsAndStampsZero) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kCacheHit);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(*ctx.flag_f_out, 0.0);
  EXPECT_EQ(engine.counters().bf_insertions, 1u);
}

TEST_F(PipelineTest, SignatureVerifyCacheHitRevalidationDoesNotInsert) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.flag_f_in = 0.25;
  ctx.revalidating = true;
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kCacheHit);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(verdict.flag_f, 0.25);  // the echoed F stands
  EXPECT_EQ(engine.counters().bf_insertions, 0u);
}

TEST_F(PipelineTest, SignatureVerifyCoreAggregateInsertsOnRevalidation) {
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.revalidating = true;
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kCoreAggregate);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);
  EXPECT_EQ(*ctx.flag_f_out, 0.0);  // Protocol 4 re-stamps F=0
  EXPECT_EQ(engine.counters().bf_insertions, 1u);
}

TEST_F(PipelineTest, SignatureVerifyFailureNacksInvalidSignature) {
  const TagPtr forged =
      forge_tag(basic_fields(), test_keypair(2).private_key);
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *forged, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kCacheHit);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_FALSE(verdict.silent);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kInvalidSignature);
}

TEST_F(PipelineTest, SignatureVerifyConsultsNegativeCacheUnderOverload) {
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  engine.remember_invalid(*tag_, kSecond);
  ValidationContext ctx(engine, *tag_, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kCacheHit);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(engine.counters().neg_cache_hits, 1u);
  EXPECT_EQ(engine.counters().sig_verifications, 0u);  // probe short-circuits
  EXPECT_GT(engine.counters().compute_neg, 0);
  EXPECT_EQ(engine.counters().compute_sig, 0);
}

TEST_F(PipelineTest, SignatureVerifyChargeOnlyAlwaysSucceeds) {
  TrustAnchors empty;  // no keys: a real verification would fail
  ValidationEngine engine(config_, empty, ComputeModel::deterministic(),
                          util::Rng(7));
  ValidationContext ctx(engine, *tag_, kSecond);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kChargeOnly);
  EXPECT_EQ(stage.run(ctx).kind, Verdict::Kind::kVouch);
  EXPECT_EQ(engine.counters().sig_verifications, 1u);
  EXPECT_EQ(engine.counters().sig_failures, 0u);
  EXPECT_GT(engine.counters().compute_sig, 0);
}

// ---------------------------------------------------------------------------
// AuthorizedSetStage
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, AuthorizedSetFiltersOnClientKeyMembership) {
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  AuthorizedSetStage stage;

  ValidationContext unknown(engine, *tag_, kSecond);
  const Verdict rejected = stage.run(unknown);
  EXPECT_EQ(rejected.kind, Verdict::Kind::kReject);
  EXPECT_EQ(rejected.reason, ndn::NackReason::kInvalidSignature);

  engine.bloom().insert(util::to_bytes(tag_->client_key_locator()));
  ValidationContext member(engine, *tag_, kSecond);
  EXPECT_EQ(stage.run(member).kind, Verdict::Kind::kContinue);
  EXPECT_EQ(engine.counters().bf_lookups, 2u);
  EXPECT_GT(engine.counters().compute_bf, 0);
}

// ---------------------------------------------------------------------------
// Pipeline assembly and the charge() seam
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, PipelineStopsAtFirstTerminalVerdict) {
  ValidationEngine engine = make_engine();
  anchors_.revocations.blacklist(*tag_, 1);
  ValidationPipeline pipeline = ValidationPipeline::edge_interest();
  ValidationContext ctx(engine, *tag_, kSecond);
  ctx.interest_name = &name_;
  const Verdict verdict = pipeline.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kReject);
  EXPECT_EQ(verdict.reason, ndn::NackReason::kExpiredTag);
  // The blacklist fired before any BF work: nothing further was charged.
  EXPECT_EQ(engine.counters().bf_lookups, 0u);
  EXPECT_EQ(engine.counters().compute_charged, 0);
}

TEST_F(PipelineTest, RoleAssembliesHaveDocumentedShape) {
  EXPECT_EQ(ValidationPipeline::edge_interest().size(), 7u);
  EXPECT_EQ(ValidationPipeline::edge_aggregate().size(), 4u);
  EXPECT_EQ(ValidationPipeline::content_cache_hit().size(), 4u);
  EXPECT_EQ(ValidationPipeline::core_aggregate().size(), 4u);
  EXPECT_EQ(ValidationPipeline::prob_bf_interest().size(), 2u);
}

TEST_F(PipelineTest, ComputeBreakdownSumsToTotalCharge) {
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine(ComputeModel::deterministic());
  ValidationPipeline pipeline = ValidationPipeline::edge_interest();
  for (int i = 0; i < 50; ++i) {
    ValidationContext ctx(engine, *tag_, i * kSecond);
    ctx.interest_name = &name_;
    pipeline.run(ctx);
  }
  const TacticCounters& c = engine.counters();
  EXPECT_GT(c.compute_charged, 0);
  EXPECT_EQ(c.compute_bf + c.compute_sig + c.compute_neg, c.compute_charged);
}

TEST_F(PipelineTest, WipeVolatileClearsEngineState) {
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.bloom_insert(*tag_, kSecond, compute);
  engine.remember_invalid(*tag_, kSecond);
  EXPECT_TRUE(engine.bloom().contains(tag_->bloom_key()));
  EXPECT_GT(engine.neg_cache().size(), 0u);

  engine.wipe_volatile();
  EXPECT_FALSE(engine.bloom().contains(tag_->bloom_key()));
  EXPECT_EQ(engine.neg_cache().size(), 0u);
  EXPECT_EQ(engine.counters().requests_since_reset, 0u);
}

// ---------------------------------------------------------------------------
// Fingerprint parity against the pre-refactor goldens
// ---------------------------------------------------------------------------

struct GoldenEntry {
  std::string mode;
  std::uint64_t seed = 0;
  std::string digest;
};

std::vector<GoldenEntry> load_goldens(const std::string& mode) {
  std::ifstream in(TACTIC_GOLDEN_FINGERPRINTS);
  EXPECT_TRUE(in.is_open())
      << "missing golden list: " TACTIC_GOLDEN_FINGERPRINTS;
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    GoldenEntry entry;
    fields >> entry.mode >> entry.seed >> entry.digest;
    if (entry.mode == mode) entries.push_back(entry);
  }
  return entries;
}

// Re-runs the fixed-seed fuzz corpus for one mode and compares every
// scenario's metrics fingerprint against the digest captured from the
// pre-pipeline monolith.  Keep the generator knobs in sync with
// src/testing/fingerprint_corpus.cpp (16 seeds from 9000, duration 6).
void check_parity(const std::string& mode, bool faults, bool overload) {
  const std::vector<GoldenEntry> goldens = load_goldens(mode);
  ASSERT_GE(goldens.size(), 16u);
  tt::GeneratorOptions generator;
  generator.duration = event::from_seconds(6.0);
  generator.with_faults = faults;
  generator.with_overload = overload;
  for (const GoldenEntry& golden : goldens) {
    sim::Scenario scenario(tt::random_config(golden.seed, generator));
    scenario.run();
    EXPECT_EQ(tt::fingerprint_digest(scenario.harvest()),
              golden.digest)
        << "behaviour drift at mode=" << mode << " seed=" << golden.seed
        << " (repro: fuzz_scenarios --seed " << golden.seed << " --repro"
        << (faults ? " --faults" : "") << (overload ? " --overload" : "")
        << ")";
  }
}

TEST(PipelineParity, PlainCorpusMatchesGoldenFingerprints) {
  check_parity("plain", false, false);
}

TEST(PipelineParity, FaultsCorpusMatchesGoldenFingerprints) {
  check_parity("faults", true, false);
}

TEST(PipelineParity, FaultsOverloadCorpusMatchesGoldenFingerprints) {
  check_parity("faults+overload", true, true);
}

}  // namespace
}  // namespace tactic::core
