// Tests for the TLV layer and the TACTIC packet wire codec: round-trips,
// canonical encodings, malformed-input rejection, and randomized
// encode/decode property sweeps.

#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "ndn/tlv.hpp"
#include "tactic/tag.hpp"
#include "tactic/tactic_policy.hpp"
#include "tactic/wire.hpp"
#include "util/rng.hpp"

namespace tactic::wire {
namespace {

using util::Bytes;

// ---------------------------------------------------------------------------
// TLV primitives
// ---------------------------------------------------------------------------

TEST(Tlv, NumberEncodingWidths) {
  Bytes out;
  ndn::append_tlv_number(out, 42);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  ndn::append_tlv_number(out, 252);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  ndn::append_tlv_number(out, 253);
  EXPECT_EQ(out.size(), 3u);  // 253 marker + u16
  out.clear();
  ndn::append_tlv_number(out, 0xFFFF);
  EXPECT_EQ(out.size(), 3u);
  out.clear();
  ndn::append_tlv_number(out, 0x10000);
  EXPECT_EQ(out.size(), 5u);  // 254 marker + u32
  out.clear();
  ndn::append_tlv_number(out, 0x100000000ULL);
  EXPECT_EQ(out.size(), 9u);  // 255 marker + u64
}

TEST(Tlv, NumberRoundTrip) {
  for (std::uint64_t v :
       {0ull, 1ull, 252ull, 253ull, 65535ull, 65536ull, 4294967295ull,
        4294967296ull, ~0ull}) {
    Bytes out;
    ndn::append_tlv_number(out, v);
    ndn::TlvReader reader(out);
    EXPECT_EQ(reader.read_number(), v);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(Tlv, ElementRoundTrip) {
  Bytes out;
  ndn::append_tlv(out, 0x42, util::to_bytes("payload"));
  ndn::TlvReader reader(out);
  const auto element = reader.expect_element(0x42);
  EXPECT_EQ(std::string(element.value.begin(), element.value.end()),
            "payload");
  EXPECT_TRUE(reader.at_end());
}

TEST(Tlv, UintElementUsesShortestWidth) {
  for (const auto& [value, expected_len] :
       std::vector<std::pair<std::uint64_t, std::size_t>>{
           {0x00, 1}, {0xFF, 1}, {0x100, 2}, {0xFFFF, 2}, {0x10000, 4},
           {0xFFFFFFFF, 4}, {0x100000000ULL, 8}}) {
    Bytes out;
    ndn::append_tlv_uint(out, 0x10, value);
    ndn::TlvReader reader(out);
    const auto element = reader.expect_element(0x10);
    EXPECT_EQ(element.value.size(), expected_len) << value;
    EXPECT_EQ(ndn::TlvReader::to_uint(element), value);
  }
}

TEST(Tlv, TruncationThrows) {
  Bytes out;
  ndn::append_tlv(out, 0x42, Bytes(100, 0xAA));
  out.resize(out.size() - 1);
  ndn::TlvReader reader(out);
  EXPECT_THROW(reader.read_element(), ndn::TlvError);
}

TEST(Tlv, WrongTypeThrows) {
  Bytes out;
  ndn::append_tlv(out, 0x42, {});
  ndn::TlvReader reader(out);
  EXPECT_THROW(reader.expect_element(0x43), ndn::TlvError);
}

TEST(Tlv, ReadOptionalLeavesReaderOnMismatch) {
  Bytes out;
  ndn::append_tlv(out, 0x42, {});
  ndn::TlvReader reader(out);
  EXPECT_FALSE(reader.read_optional(0x43).has_value());
  EXPECT_TRUE(reader.read_optional(0x42).has_value());
  EXPECT_TRUE(reader.at_end());
}

// ---------------------------------------------------------------------------
// Tag serialization round-trip
// ---------------------------------------------------------------------------

core::TagPtr make_tag(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
  core::Tag::Fields fields;
  fields.provider_key_locator = "/provider0/KEY/1";
  fields.client_key_locator = "/client3/KEY/1";
  fields.access_level = 7;
  fields.access_path = 0x1122334455667788ULL;
  fields.expiry = 12 * event::kSecond + 345;
  return core::issue_tag(fields, keys.private_key);
}

TEST(TagWire, SerializeDeserializeRoundTrip) {
  const core::TagPtr tag = make_tag();
  const core::TagPtr back = core::Tag::deserialize(tag->serialize());
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->same_tag(*tag));
  EXPECT_EQ(back->provider_key_locator(), tag->provider_key_locator());
  EXPECT_EQ(back->client_key_locator(), tag->client_key_locator());
  EXPECT_EQ(back->access_level(), tag->access_level());
  EXPECT_EQ(back->access_path(), tag->access_path());
  EXPECT_EQ(back->expiry(), tag->expiry());
  EXPECT_EQ(back->signature(), tag->signature());
}

TEST(TagWire, DeserializeRejectsMalformed) {
  const core::TagPtr tag = make_tag();
  Bytes wire = tag->serialize();
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_EQ(core::Tag::deserialize(
                  util::BytesView(wire.data(), cut)),
              nullptr)
        << "cut=" << cut;
  }
  // Trailing garbage.
  wire.push_back(0x00);
  EXPECT_EQ(core::Tag::deserialize(wire), nullptr);
}

// ---------------------------------------------------------------------------
// Packet codec
// ---------------------------------------------------------------------------

TEST(PacketWire, InterestRoundTripPlain) {
  ndn::Interest interest;
  interest.name = ndn::Name("/provider0/obj1/c2");
  interest.nonce = 0xDEADBEEFCAFEULL;
  interest.lifetime = 750 * event::kMillisecond;
  const auto back = decode_interest(encode(interest));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, interest.name);
  EXPECT_EQ(back->nonce, interest.nonce);
  EXPECT_EQ(back->lifetime, interest.lifetime);
  EXPECT_EQ(back->tag, nullptr);
  EXPECT_EQ(back->flag_f, 0.0);
}

TEST(PacketWire, InterestRoundTripWithTacticExtensions) {
  ndn::Interest interest;
  interest.name = ndn::Name("/provider0/obj1/c2");
  interest.nonce = 7;
  interest.tag = make_tag();
  interest.tag_wire_size = interest.tag->wire_size();
  interest.flag_f = 3.0517578125e-05;  // an exact double
  interest.access_path = 0xAABBCCDDEEFF0011ULL;
  interest.payload_size = 64;
  const auto back = decode_interest(encode(interest));
  ASSERT_TRUE(back.has_value());
  ASSERT_NE(back->tag, nullptr);
  EXPECT_TRUE(back->tag->same_tag(*interest.tag));
  EXPECT_EQ(back->tag_wire_size, interest.tag_wire_size);
  EXPECT_EQ(back->flag_f, interest.flag_f);  // bit-exact
  EXPECT_EQ(back->access_path, interest.access_path);
  EXPECT_EQ(back->payload_size, interest.payload_size);
}

TEST(PacketWire, DataRoundTripFull) {
  ndn::Data data;
  data.name = ndn::Name("/provider0/obj9/c49");
  data.content_size = 4096;
  data.access_level = 3;
  data.provider_key_locator = "/provider0/KEY/1";
  data.signature_size = 128;
  data.tag = make_tag();
  data.tag_wire_size = data.tag->wire_size();
  data.nack_attached = true;
  data.nack_reason = ndn::NackReason::kInvalidSignature;
  data.flag_f = 0.25;
  data.from_cache = true;
  const auto back = decode_data(encode(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, data.name);
  EXPECT_EQ(back->content_size, data.content_size);
  EXPECT_EQ(back->access_level, data.access_level);
  EXPECT_EQ(back->provider_key_locator, data.provider_key_locator);
  EXPECT_EQ(back->signature_size, data.signature_size);
  EXPECT_TRUE(back->tag->same_tag(*data.tag));
  EXPECT_TRUE(back->nack_attached);
  EXPECT_EQ(back->nack_reason, data.nack_reason);
  EXPECT_EQ(back->flag_f, data.flag_f);
  EXPECT_TRUE(back->from_cache);
}

TEST(PacketWire, RegistrationResponseRoundTrip) {
  ndn::Data data;
  data.name = ndn::Name("/provider0/register/client1/99");
  data.is_registration_response = true;
  data.tag = make_tag();
  data.tag_wire_size = data.tag->wire_size();
  const auto back = decode_data(encode(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_registration_response);
  EXPECT_TRUE(back->tag->same_tag(*data.tag));
}

TEST(PacketWire, NackRoundTrip) {
  ndn::Nack nack{ndn::Name("/p/x"), ndn::NackReason::kAccessPathMismatch};
  const auto back = decode_nack(encode(nack));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, nack.name);
  EXPECT_EQ(back->reason, nack.reason);
}

TEST(PacketWire, VariantDispatch) {
  ndn::Interest interest;
  interest.name = ndn::Name("/a");
  ndn::Data data;
  data.name = ndn::Name("/b");
  ndn::Nack nack{ndn::Name("/c"), ndn::NackReason::kNoRoute};
  EXPECT_TRUE(std::holds_alternative<ndn::InterestPtr>(
      *decode(encode(ndn::make_packet(ndn::Interest(interest))))));
  EXPECT_TRUE(std::holds_alternative<ndn::DataPtr>(
      *decode(encode(ndn::make_packet(ndn::Data(data))))));
  EXPECT_TRUE(std::holds_alternative<ndn::NackPtr>(
      *decode(encode(ndn::make_packet(ndn::Nack(nack))))));
}

TEST(PacketWire, DeterministicEncoding) {
  ndn::Interest interest;
  interest.name = ndn::Name("/provider0/obj1/c2");
  interest.nonce = 7;
  interest.tag = make_tag();
  EXPECT_EQ(encode(interest), encode(interest));
  // And encode(decode(x)) == x.
  const Bytes wire = encode(interest);
  EXPECT_EQ(encode(*decode_interest(wire)), wire);
}

TEST(PacketWire, MalformedInputsRejectedNotThrown) {
  EXPECT_FALSE(decode(Bytes{}).has_value());
  EXPECT_FALSE(decode(Bytes{0x99, 0x00}).has_value());  // unknown type
  ndn::Data data;
  data.name = ndn::Name("/b");
  Bytes wire = encode(data);
  // Truncate at every length.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        decode_data(util::BytesView(wire.data(), cut)).has_value());
  }
  // Trailing garbage after a valid packet.
  wire.push_back(0x00);
  EXPECT_FALSE(decode_data(wire).has_value());
  // Interest bytes fed to the data decoder.
  ndn::Interest interest;
  interest.name = ndn::Name("/a");
  EXPECT_FALSE(decode_data(encode(interest)).has_value());
}

TEST(PacketWire, CorruptedTagRejected) {
  ndn::Interest interest;
  interest.name = ndn::Name("/p/a");
  interest.nonce = 1;
  interest.tag = make_tag();
  Bytes wire = encode(interest);
  // Flip a byte inside the tag's signature area (near the end of the
  // packet, before the trailing optional TLVs which are absent here).
  wire[wire.size() - 10] ^= 0xFF;
  const auto back = decode_interest(wire);
  // Either the packet decodes with a different (still structurally valid)
  // tag, or it is rejected; it must never equal the original tag.
  if (back.has_value() && back->tag != nullptr) {
    EXPECT_FALSE(back->tag->same_tag(*interest.tag));
  }
}

/// Randomized property sweep: random structurally-valid packets must
/// round-trip bit-exactly.
class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzz, RandomInterestsRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    ndn::Interest interest;
    ndn::Name name;
    const std::size_t components = 1 + rng.uniform(5);
    for (std::size_t c = 0; c < components; ++c) {
      name = name.append("c" + std::to_string(rng.uniform(1000)));
    }
    interest.name = name;
    interest.nonce = rng();
    interest.lifetime = static_cast<event::Time>(rng.uniform(10'000'000'000));
    interest.flag_f = rng.bernoulli(0.5) ? rng.uniform_double() : 0.0;
    interest.access_path = rng.bernoulli(0.5) ? rng() : 0;
    interest.payload_size = rng.uniform(1000);
    const Bytes wire = encode(interest);
    const auto back = decode_interest(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(encode(*back), wire);
    EXPECT_EQ(back->name, interest.name);
    EXPECT_EQ(back->flag_f, interest.flag_f);
  }
}

TEST_P(PacketFuzz, RandomBytesNeverCrashDecoder) {
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.uniform(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    // Must not throw or crash; value is irrelevant.
    (void)decode(junk);
    (void)decode_interest(junk);
    (void)decode_data(junk);
    (void)decode_nack(junk);
    (void)core::Tag::deserialize(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Adversarial wire fuzzing: random bytes into the raw TLV reader, and
// bit-flipped / truncated / spliced variants of VALID packets into the
// decoders.  Corruption must always be rejected cleanly (nullopt /
// TlvError / nullptr) — never a crash, hang, or silently identical
// packet.
// ---------------------------------------------------------------------------

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// A fully-loaded valid packet of each kind (every optional TLV set).
  std::vector<Bytes> valid_wires() {
    ndn::Interest interest;
    interest.name = ndn::Name("/provider0/obj1/c2");
    interest.nonce = 0xDEADBEEF;
    interest.lifetime = 750 * event::kMillisecond;
    interest.tag = make_tag(GetParam());
    interest.tag_wire_size = interest.tag->wire_size();
    interest.flag_f = 0.125;
    interest.access_path = 0xAABBCCDDEEFF0011ULL;
    interest.payload_size = 64;
    ndn::Data data;
    data.name = ndn::Name("/provider0/obj9/c49");
    data.content_size = 4096;
    data.access_level = 3;
    data.provider_key_locator = "/provider0/KEY/1";
    data.signature_size = 128;
    data.tag = interest.tag;
    data.tag_wire_size = interest.tag_wire_size;
    data.nack_attached = true;
    data.nack_reason = ndn::NackReason::kInvalidSignature;
    data.flag_f = 0.25;
    data.from_cache = true;
    ndn::Nack nack{ndn::Name("/provider0/obj1/c2"),
                   ndn::NackReason::kExpiredTag};
    return {encode(interest), encode(data), encode(nack)};
  }
};

TEST_P(WireFuzz, RawTlvReaderRejectsRandomBytesCleanly) {
  util::Rng rng(GetParam() * 7919);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.uniform(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    ndn::TlvReader reader(junk);
    try {
      while (!reader.at_end()) (void)reader.read_element();
    } catch (const ndn::TlvError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST_P(WireFuzz, BitFlippedPacketsNeverCrashDecoders) {
  util::Rng rng(GetParam() * 104729);
  for (const Bytes& wire : valid_wires()) {
    for (int i = 0; i < 300; ++i) {
      Bytes mutated = wire;
      const std::size_t flips = 1 + rng.uniform(3);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t bit = rng.uniform(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      // Decoders must reject or produce a re-encodable packet — never
      // throw or crash.
      if (const auto packet = decode(mutated)) (void)encode(*packet);
      (void)decode_interest(mutated);
      (void)decode_data(mutated);
      (void)decode_nack(mutated);
    }
  }
}

TEST_P(WireFuzz, TruncatedAndSplicedPacketsRejected) {
  util::Rng rng(GetParam() * 31337);
  const std::vector<Bytes> wires = valid_wires();
  for (const Bytes& wire : wires) {
    for (int i = 0; i < 100; ++i) {
      const std::size_t cut = rng.uniform(wire.size());
      EXPECT_FALSE(
          decode(util::BytesView(wire.data(), cut)).has_value());
    }
  }
  // Two valid packets spliced back to back: trailing bytes => reject.
  for (int i = 0; i < 50; ++i) {
    Bytes spliced = wires[rng.uniform(wires.size())];
    const Bytes& tail = wires[rng.uniform(wires.size())];
    spliced.insert(spliced.end(), tail.begin(), tail.end());
    EXPECT_FALSE(decode(spliced).has_value());
    EXPECT_FALSE(decode_interest(spliced).has_value());
    EXPECT_FALSE(decode_data(spliced).has_value());
    EXPECT_FALSE(decode_nack(spliced).has_value());
  }
}

TEST_P(WireFuzz, BitFlippedTagsNeverDecodeAsTheOriginal) {
  util::Rng rng(GetParam() * 65537);
  const core::TagPtr tag = make_tag(GetParam() + 100);
  const Bytes wire = tag->serialize();
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = wire;
    const std::size_t bit = rng.uniform(mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const core::TagPtr back = core::Tag::deserialize(mutated);
    // A flipped bit either breaks the framing (nullptr) or lands in a
    // field/signature byte — in which case the tag must differ, and its
    // Bloom key with it (no corrupted tag can impersonate the original
    // in a router's filter).
    if (back != nullptr) {
      EXPECT_FALSE(back->same_tag(*tag));
      EXPECT_NE(back->bloom_key(), tag->bloom_key());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Wire fidelity: run the actual protocol machinery across links that
// serialize and re-parse every packet.  Everything the TACTIC protocols
// need (tag, signature, F, access path, NACK marks) must survive a real
// transport.
// ---------------------------------------------------------------------------

TEST(WireFidelity, TacticFlowSurvivesSerializingTransport) {
  event::Scheduler sched;
  std::vector<std::unique_ptr<net::Link>> links;

  ndn::Forwarder client(sched, {0, net::NodeKind::kClient, "client0"}, 0);
  ndn::Forwarder edge(sched, {1, net::NodeKind::kEdgeRouter, "edge0"}, 0);
  ndn::Forwarder producer(sched, {2, net::NodeKind::kProvider, "prov"}, 0);

  // Wire a <-> b with an encode->bytes->decode pipe in each direction.
  auto pipe = [&](ndn::Forwarder& a, ndn::Forwarder& b) {
    links.push_back(std::make_unique<net::Link>(
        sched, net::LinkParams{1e9, event::kMillisecond, 100}));
    net::Link* ab = links.back().get();
    links.push_back(std::make_unique<net::Link>(
        sched, net::LinkParams{1e9, event::kMillisecond, 100}));
    net::Link* ba = links.back().get();
    auto fa = std::make_shared<ndn::FaceId>();
    auto fb = std::make_shared<ndn::FaceId>();
    *fa = a.add_link_face(ab, [&b, fb](ndn::PacketVariant&& p) {
      const util::Bytes bytes = encode(p);           // serialize
      auto parsed = decode(bytes);                   // re-parse
      ASSERT_TRUE(parsed.has_value()) << "codec dropped a live packet";
      b.receive(*fb, std::move(*parsed));
    });
    *fb = b.add_link_face(ba, [&a, fa](ndn::PacketVariant&& p) {
      const util::Bytes bytes = encode(p);
      auto parsed = decode(bytes);
      ASSERT_TRUE(parsed.has_value()) << "codec dropped a live packet";
      a.receive(*fa, std::move(*parsed));
    });
    return std::make_pair(*fa, *fb);
  };
  auto [c_e, e_c] = pipe(client, edge);
  auto [e_p, p_e] = pipe(edge, producer);
  (void)e_c;
  (void)p_e;

  // Real TACTIC machinery on the edge.
  util::Rng rng(5);
  const crypto::RsaKeyPair provider_keys =
      crypto::generate_rsa_keypair(rng, 512);
  core::TrustAnchors anchors;
  anchors.pki.add_key("/provider0/KEY/1", provider_keys.public_key);
  anchors.protected_prefixes.insert("/provider0");
  core::TacticConfig tactic_config;
  tactic_config.bloom = {100, 5, 1e-4, 1e-4};
  auto edge_policy = std::make_unique<core::EdgeTacticPolicy>(
      tactic_config, anchors, core::ComputeModel::zero(), util::Rng(6));
  auto* edge_policy_ptr = edge_policy.get();
  edge.set_policy(std::move(edge_policy));

  // Producer validates the (deserialized!) tag for real.
  int producer_valid = 0, producer_invalid = 0;
  const ndn::FaceId papp = producer.add_app_face(ndn::AppSink{
      [&](ndn::FaceId face, const ndn::Interest& interest) {
        ndn::Data data;
        data.name = interest.name;
        data.access_level = 1;
        data.provider_key_locator = "/provider0/KEY/1";
        data.tag = interest.tag;
        data.tag_wire_size = interest.tag_wire_size;
        const bool valid =
            interest.tag &&
            core::verify_tag_signature(*interest.tag, anchors.pki);
        (valid ? producer_valid : producer_invalid) += 1;
        if (!valid) {
          data.nack_attached = true;
          data.nack_reason = ndn::NackReason::kInvalidSignature;
        }
        producer.inject_from_app(face, std::move(data));
      },
      nullptr, nullptr});
  producer.fib().add_route(ndn::Name("/provider0"), papp);
  edge.fib().add_route(ndn::Name("/provider0"), e_p);
  client.fib().add_route(ndn::Name("/"), c_e);

  int received = 0;
  const ndn::FaceId capp = client.add_app_face(ndn::AppSink{
      nullptr, [&](const ndn::Data& data) { received += !data.nack_attached; },
      nullptr});

  // A genuine tag fetched over the serialized transport retrieves content.
  core::Tag::Fields fields;
  fields.provider_key_locator = "/provider0/KEY/1";
  fields.client_key_locator = "/client0/KEY/1";
  fields.access_level = 2;
  fields.expiry = 100 * event::kSecond;
  const core::TagPtr tag = core::issue_tag(fields, provider_keys.private_key);

  ndn::Interest interest;
  interest.name = ndn::Name("/provider0/obj0/c0");
  interest.nonce = 1;
  interest.tag = tag;
  interest.tag_wire_size = tag->wire_size();
  client.inject_from_app(capp, std::move(interest));
  sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(producer_valid, 1);
  // The tag that crossed the wire landed in the edge BF under the SAME
  // Bloom key (byte-exact round-trip of fields + signature).
  EXPECT_TRUE(edge_policy_ptr->bloom().contains(tag->bloom_key()));

  // A forged tag still fails after transport.
  const crypto::RsaKeyPair forger = crypto::generate_rsa_keypair(rng, 512);
  ndn::Interest forged;
  forged.name = ndn::Name("/provider0/obj0/c1");
  forged.nonce = 2;
  forged.tag = core::forge_tag(fields, forger.private_key);
  forged.tag_wire_size = forged.tag->wire_size();
  client.inject_from_app(capp, std::move(forged));
  sched.run();
  EXPECT_EQ(received, 1);  // nothing new delivered
  EXPECT_EQ(producer_invalid, 1);
}

}  // namespace
}  // namespace tactic::wire
