// Tests for the implemented future-work extensions: client mobility
// ("test our mechanism ... under nodes mobility") and traitor tracing
// ("preventing the clients from sharing their tags with unauthorized
// users"), plus the TraitorTracer unit behaviour.

#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "tactic/access_path.hpp"
#include "tactic/traitor_tracing.hpp"

namespace tactic::sim {
namespace {

using event::kSecond;

// ---------------------------------------------------------------------------
// TraitorTracer unit behaviour
// ---------------------------------------------------------------------------

TEST(TraitorTracer, FlagsAfterThreshold) {
  std::vector<std::string> revoked;
  core::TraitorTracer tracer({3}, [&](const std::string& locator) {
    revoked.push_back(locator);
  });
  tracer.report("/alice/KEY/1", 1, 2, 0);
  tracer.report("/alice/KEY/1", 1, 2, 0);
  EXPECT_FALSE(tracer.is_flagged("/alice/KEY/1"));
  EXPECT_TRUE(revoked.empty());
  tracer.report("/alice/KEY/1", 1, 2, 0);
  EXPECT_TRUE(tracer.is_flagged("/alice/KEY/1"));
  ASSERT_EQ(revoked.size(), 1u);
  EXPECT_EQ(revoked[0], "/alice/KEY/1");
}

TEST(TraitorTracer, RevokesOnlyOnce) {
  int revocations = 0;
  core::TraitorTracer tracer({2}, [&](const std::string&) { ++revocations; });
  for (int i = 0; i < 10; ++i) tracer.report("/a/KEY/1", 1, 2, 0);
  EXPECT_EQ(revocations, 1);
  EXPECT_EQ(tracer.reports_received(), 10u);
}

TEST(TraitorTracer, TracksClientsIndependently) {
  core::TraitorTracer tracer({3}, nullptr);
  tracer.report("/a/KEY/1", 1, 2, 0);
  tracer.report("/b/KEY/1", 1, 2, 0);
  tracer.report("/a/KEY/1", 1, 2, 0);
  EXPECT_EQ(tracer.report_count("/a/KEY/1"), 2u);
  EXPECT_EQ(tracer.report_count("/b/KEY/1"), 1u);
  EXPECT_EQ(tracer.report_count("/nobody/KEY/1"), 0u);
  EXPECT_TRUE(tracer.flagged().empty());
}

TEST(TraitorTracer, WorksWithoutRevokeCallback) {
  core::TraitorTracer tracer({1}, nullptr);
  tracer.report("/a/KEY/1", 1, 2, 0);
  EXPECT_TRUE(tracer.is_flagged("/a/KEY/1"));
}

// ---------------------------------------------------------------------------
// Mobility
// ---------------------------------------------------------------------------

ScenarioConfig mobility_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.topology.core_routers = 12;
  config.topology.edge_routers = 4;
  config.topology.aps_per_edge = 2;
  config.topology.providers = 2;
  config.topology.clients = 5;
  config.topology.attackers = 0;
  config.provider.key_bits = 512;
  config.provider.catalog.objects = 10;
  config.provider.catalog.chunks_per_object = 10;
  config.client.think_time_mean = 20 * event::kMillisecond;
  config.compute = core::ComputeModel::zero();
  config.tactic.enforce_access_path = true;
  config.duration = 40 * kSecond;
  config.seed = seed;
  return config;
}

TEST(Mobility, MovedClientReregistersAndKeepsStreaming) {
  ScenarioConfig config = mobility_config(71);
  Scenario scenario(config);

  const net::NodeId mover_node = scenario.network().clients()[0];
  workload::ClientApp& mover = *scenario.clients()[0];
  const std::size_t old_ap = scenario.network().ap_index_of(mover_node);
  const std::size_t new_ap =
      (old_ap + 1) % scenario.network().access_points().size();

  // Move halfway through; count deliveries before and after.
  std::uint64_t before_move = 0;
  scenario.scheduler().schedule(20 * kSecond, [&] {
    before_move = mover.counters().chunks_received;
    scenario.move_user(mover_node, new_ap);
  });

  const Metrics& metrics = scenario.run();
  (void)metrics;

  EXPECT_EQ(scenario.network().ap_index_of(mover_node), new_ap);
  // Streaming resumed at the new location...
  EXPECT_GT(mover.counters().chunks_received, before_move + 50);
  // ...because the client re-registered after the access-path NACK.
  EXPECT_GT(mover.counters().nacks_received, 0u);
  // The refreshed tag is bound to the new AP.
  const core::TagPtr tag0 = mover.current_tag(0);
  const core::TagPtr tag1 = mover.current_tag(1);
  const std::uint64_t new_ap_hash = core::entity_id_hash(
      scenario.network().access_points()[new_ap].label);
  ASSERT_TRUE(tag0 || tag1);
  if (tag0) EXPECT_EQ(tag0->access_path(), new_ap_hash);
  if (tag1) EXPECT_EQ(tag1->access_path(), new_ap_hash);
}

TEST(Mobility, MoveAcrossEdgeRoutersWorks) {
  ScenarioConfig config = mobility_config(72);
  Scenario scenario(config);
  const net::NodeId mover_node = scenario.network().clients()[0];
  workload::ClientApp& mover = *scenario.clients()[0];

  // Find an AP under a *different* edge router.
  const net::NodeId old_edge = scenario.network().edge_router_of(mover_node);
  std::size_t target_ap = ~std::size_t{0};
  for (std::size_t i = 0;
       i < scenario.network().access_points().size(); ++i) {
    if (scenario.network().access_points()[i].edge_router != old_edge) {
      target_ap = i;
      break;
    }
  }
  ASSERT_NE(target_ap, ~std::size_t{0});

  std::uint64_t before_move = 0;
  scenario.scheduler().schedule(20 * kSecond, [&] {
    before_move = mover.counters().chunks_received;
    scenario.move_user(mover_node, target_ap);
  });
  scenario.run();

  EXPECT_NE(scenario.network().edge_router_of(mover_node), old_edge);
  EXPECT_GT(mover.counters().chunks_received, before_move + 50);
}

TEST(Mobility, WithoutApEnforcementMoveIsSeamless) {
  ScenarioConfig config = mobility_config(73);
  config.tactic.enforce_access_path = false;  // paper-parity setting
  Scenario scenario(config);
  const net::NodeId mover_node = scenario.network().clients()[0];
  workload::ClientApp& mover = *scenario.clients()[0];
  const std::size_t new_ap =
      (scenario.network().ap_index_of(mover_node) + 1) %
      scenario.network().access_points().size();
  scenario.scheduler().schedule(20 * kSecond,
                                [&] { scenario.move_user(mover_node, new_ap); });
  const Metrics& metrics = scenario.run();
  // No location binding -> old tags keep working; no extra NACK churn.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.98);
  EXPECT_EQ(mover.counters().nacks_received, 0u);
}

// ---------------------------------------------------------------------------
// Traitor tracing, end to end
// ---------------------------------------------------------------------------

TEST(TraitorTracingE2E, SharingClientGetsFlaggedAndRevoked) {
  ScenarioConfig config = mobility_config(74);
  config.topology.attackers = 2;
  config.attacker_mix = {workload::AttackerMode::kSharedTag};
  config.attacker.think_time_mean = 200 * event::kMillisecond;
  config.enable_traitor_tracing = true;
  config.traitor_tracing.report_threshold = 10;
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();

  // The shared tags were rejected (AP mismatch) ...
  EXPECT_EQ(metrics.attackers.received, 0u);
  // ... reported to the tracer ...
  ASSERT_NE(scenario.traitor_tracer(), nullptr);
  EXPECT_GE(scenario.traitor_tracer()->reports_received(), 10u);
  // ... and at least one tag-owner was flagged and revoked everywhere.
  ASSERT_FALSE(scenario.traitor_tracer()->flagged().empty());
  const std::string& traitor = scenario.traitor_tracer()->flagged().front();
  for (auto& provider : scenario.providers()) {
    EXPECT_TRUE(provider->issuer().is_revoked(traitor));
  }
}

TEST(TraitorTracingE2E, HonestMobileClientNotFlagged) {
  ScenarioConfig config = mobility_config(75);
  config.enable_traitor_tracing = true;
  // Threshold comfortably above one request window (5).
  config.traitor_tracing.report_threshold = 10;
  Scenario scenario(config);

  const net::NodeId mover_node = scenario.network().clients()[0];
  workload::ClientApp& mover = *scenario.clients()[0];
  const std::size_t new_ap =
      (scenario.network().ap_index_of(mover_node) + 1) %
      scenario.network().access_points().size();
  scenario.scheduler().schedule(20 * kSecond,
                                [&] { scenario.move_user(mover_node, new_ap); });
  scenario.run();

  // The move produced a few mismatch reports but stayed under threshold:
  // the honest client is not punished.
  const std::string locator =
      workload::ProviderApp::client_key_locator(mover.label());
  EXPECT_FALSE(scenario.traitor_tracer()->is_flagged(locator));
  for (auto& provider : scenario.providers()) {
    EXPECT_FALSE(provider->issuer().is_revoked(locator));
  }
  EXPECT_GT(mover.counters().chunks_received, 100u);
}

TEST(TraitorTracingE2E, DisabledByDefault) {
  ScenarioConfig config = mobility_config(76);
  Scenario scenario(config);
  EXPECT_EQ(scenario.traitor_tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// Eager revocation (extension): blacklist pushes vs TACTIC's tag expiry
// ---------------------------------------------------------------------------

TEST(EagerRevocation, BlacklistKillsOutstandingTagImmediately) {
  ScenarioConfig config = mobility_config(91);
  config.tactic.enforce_access_path = false;
  config.provider.tag_validity = 1000 * kSecond;  // expiry would be slow
  Scenario scenario(config);

  workload::ClientApp& victim = *scenario.clients()[0];
  const std::string locator =
      workload::ProviderApp::client_key_locator(victim.label());
  const event::Time cut_at = 20 * kSecond;
  std::uint64_t after_cut = 0;
  victim.on_latency_sample = [&](event::Time when, double) {
    if (when > cut_at + kSecond) ++after_cut;
  };
  scenario.scheduler().schedule(
      cut_at, [&] { scenario.revoke_client_eagerly(locator); });
  scenario.run();

  // Despite ~1000 s of residual tag lifetime, the victim got (almost)
  // nothing after the push (in-flight data within 1 s is tolerated).
  EXPECT_EQ(after_cut, 0u);
  EXPECT_GT(victim.counters().chunks_received, 100u);  // it worked before
  // The push paid one message per router.
  const std::size_t routers =
      scenario.network().edge_routers().size() +
      scenario.network().core_routers().size();
  EXPECT_GE(scenario.anchors().revocations.push_messages, routers);
  // Edge routers saw and rejected the blacklisted tag.
  std::uint64_t rejections = 0;
  for (const net::NodeId id : scenario.network().edge_routers()) {
    const auto* policy = dynamic_cast<const core::TacticRouterPolicy*>(
        &scenario.network().node(id).policy());
    ASSERT_NE(policy, nullptr);
    rejections += policy->counters().blacklist_rejections;
  }
  EXPECT_GT(rejections, 0u);
}

TEST(EagerRevocation, OtherClientsUnaffected) {
  ScenarioConfig config = mobility_config(92);
  config.tactic.enforce_access_path = false;
  Scenario scenario(config);
  const std::string locator = workload::ProviderApp::client_key_locator(
      scenario.clients()[0]->label());
  scenario.scheduler().schedule(10 * kSecond, [&] {
    scenario.revoke_client_eagerly(locator);
  });
  const Metrics& metrics = scenario.run();
  EXPECT_GT(scenario.clients()[1]->counters().chunks_received, 100u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.9);
}

TEST(EagerRevocation, EmptyBlacklistIsFree) {
  core::RevocationBlacklist blacklist;
  EXPECT_TRUE(blacklist.empty());
  EXPECT_EQ(blacklist.push_messages, 0u);
}

// ---------------------------------------------------------------------------
// Content signatures (paper Section 6.B: fake content from a malicious
// prefix-hijacking provider is detected by client-side verification)
// ---------------------------------------------------------------------------

TEST(ContentSignatures, SignedContentVerifiesEndToEnd) {
  ScenarioConfig config = mobility_config(77);
  config.provider.sign_content = true;
  config.client.verify_content = true;
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  // Everything delivered carries a genuine provider signature.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.98);
  std::uint64_t failures = 0;
  for (auto& client : scenario.clients()) {
    failures += client->counters().content_verification_failures;
  }
  EXPECT_EQ(failures, 0u);
}

TEST(ContentSignatures, PrefixHijackDetectedByClients) {
  // A malicious producer hijacks /provider0 at one client's edge router
  // (the paper's misrouted-FIB scenario) and answers with unsigned fake
  // content.  The verifying client detects and drops every fake chunk.
  ScenarioConfig config = mobility_config(78);
  config.tactic.enforce_access_path = false;
  config.provider.sign_content = true;
  config.client.verify_content = true;
  // Public catalog isolates content authenticity from access control: a
  // prefix hijack also swallows registration Interests, so tag-gated
  // content would simply never be requested.
  config.provider.catalog.public_fraction = 1.0;
  Scenario scenario(config);

  // Hijack: a rogue node adjacent to the victim's edge router claims
  // /provider0 with a cheaper route.
  topology::Network& net = scenario.network();
  const net::NodeId victim_node = net.clients()[0];
  const net::NodeId victim_edge = net.edge_router_of(victim_node);
  const net::NodeId rogue =
      net.add_node(net::NodeKind::kProvider, "rogue", 0);
  net.connect(rogue, victim_edge, net::core_link_params());
  int fakes_served = 0;
  const ndn::FaceId rogue_app = net.node(rogue).add_app_face(ndn::AppSink{
      [&](ndn::FaceId face, const ndn::Interest& interest) {
        ++fakes_served;
        ndn::Data fake;
        fake.name = interest.name;
        fake.content_size = 1024;
        fake.access_level = ndn::kPublicAccessLevel;  // skip tag checks
        fake.provider_key_locator = "/provider0/KEY/1";  // impersonation
        fake.tag = interest.tag;
        fake.tag_wire_size = interest.tag_wire_size;
        net.node(rogue).inject_from_app(face, std::move(fake));
      },
      nullptr, nullptr});
  net.node(rogue).fib().add_route(ndn::Name("/provider0"), rogue_app);
  // Poison the victim edge's FIB: the rogue is "closer" than the origin.
  net.node(victim_edge)
      .fib()
      .set_routes(ndn::Name("/provider0"),
                  {{net.face_between(victim_edge, rogue), 0}});

  const Metrics& metrics = scenario.run();
  (void)metrics;

  EXPECT_GT(fakes_served, 0);  // the hijack was exercised
  std::uint64_t failures = 0;
  for (auto& client : scenario.clients()) {
    failures += client->counters().content_verification_failures;
  }
  // Every fake chunk that reached a client was detected and dropped.
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace tactic::sim
