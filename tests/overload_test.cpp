// Tests for the overload-resilience layer: the deterministic validation
// queue, negative-tag verdict cache, and token-bucket primitives; bounded
// PIT with LRU eviction; the client back-off ceiling; and the pinned
// scenario-level guarantees — an attacker flood is shed while valid
// clients keep their delivery, a staged BF reset suppresses the
// re-validation surge, a disabled layer is bit-identical to the
// pre-overload model, and everything stays deterministic.

#include <gtest/gtest.h>

#include "ndn/forwarder.hpp"
#include "sim/scenario.hpp"
#include "tactic/overload.hpp"
#include "tactic/tactic_policy.hpp"
#include "testing/fingerprint.hpp"
#include "testing/invariants.hpp"

namespace tactic {
namespace {

using event::kMillisecond;
using event::kSecond;

// ---------------------------------------------------------------------------
// ValidationQueue
// ---------------------------------------------------------------------------

TEST(ValidationQueue, FifoBacklogAndWaitAccounting) {
  core::ValidationQueue queue;
  // First job: empty server, no wait.
  EXPECT_EQ(queue.admit(0, 10), 10);
  // Second job arrives while the first is in service: waits 10.
  EXPECT_EQ(queue.admit(0, 5), 15);
  EXPECT_EQ(queue.total_wait(), 10);
  EXPECT_EQ(queue.peak_depth(), 2u);

  EXPECT_EQ(queue.depth(0), 2u);
  EXPECT_EQ(queue.depth(12), 1u);  // first completed at 10
  EXPECT_EQ(queue.depth(15), 0u);  // exactly-at-completion is done
}

TEST(ValidationQueue, IdleGapResetsBacklog) {
  core::ValidationQueue queue;
  EXPECT_EQ(queue.admit(0, 10), 10);
  // Arrives long after the server went idle: full-service delay only.
  EXPECT_EQ(queue.admit(50, 5), 5);
  EXPECT_EQ(queue.total_wait(), 0);
}

TEST(ValidationQueue, ResetDropsPendingWork) {
  core::ValidationQueue queue;
  queue.admit(0, 100);
  queue.admit(0, 100);
  ASSERT_EQ(queue.depth(0), 2u);
  queue.reset();
  EXPECT_EQ(queue.depth(0), 0u);
  // The server is free again immediately.
  EXPECT_EQ(queue.admit(0, 7), 7);
}

// ---------------------------------------------------------------------------
// NegativeTagCache
// ---------------------------------------------------------------------------

TEST(NegativeTagCache, TtlExpiryErasesLazily) {
  core::NegativeTagCache cache(/*capacity=*/4, /*ttl=*/10);
  cache.insert("a", 0);
  EXPECT_TRUE(cache.contains("a", 5));
  EXPECT_TRUE(cache.contains("a", 9));    // valid until insert time + ttl
  EXPECT_FALSE(cache.contains("a", 10));  // expired — and erased
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);  // expiry is not a capacity eviction
}

TEST(NegativeTagCache, CapacityEvictsOldestVerdict) {
  core::NegativeTagCache cache(/*capacity=*/2, /*ttl=*/100);
  cache.insert("a", 0);
  cache.insert("b", 1);
  cache.insert("c", 2);  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.contains("a", 3));
  EXPECT_TRUE(cache.contains("b", 3));
  EXPECT_TRUE(cache.contains("c", 3));
}

TEST(NegativeTagCache, ReinsertRefreshesAndMovesToBack) {
  core::NegativeTagCache cache(/*capacity=*/2, /*ttl=*/100);
  cache.insert("a", 0);
  cache.insert("b", 1);
  cache.insert("a", 2);  // refresh: "b" is now the oldest
  cache.insert("c", 3);  // evicts "b", not "a"
  EXPECT_TRUE(cache.contains("a", 4));
  EXPECT_FALSE(cache.contains("b", 4));
  EXPECT_TRUE(cache.contains("c", 4));
}

// A probe landing exactly on the expiry instant misses (and erases), so
// an immediate re-insert opens a fresh TTL window rather than refreshing
// a verdict that just died — the boundary is closed on the miss side.
TEST(NegativeTagCache, ExpiryExactlyAtProbeTimeStartsFreshWindow) {
  core::NegativeTagCache cache(/*capacity=*/2, /*ttl=*/10);
  cache.insert("a", 0);                   // valid on [0, 10)
  EXPECT_FALSE(cache.contains("a", 10));  // boundary probe: miss + erase
  EXPECT_EQ(cache.size(), 0u);
  cache.insert("a", 10);  // new window [10, 20)
  EXPECT_TRUE(cache.contains("a", 19));
  EXPECT_FALSE(cache.contains("a", 20));
  EXPECT_EQ(cache.evictions(), 0u);  // TTL churn never counts as eviction
}

// TTL-vs-capacity interaction: expired entries that were never probed
// still occupy slots, so capacity eviction charges for deadwood — and a
// lazy probe-erasure afterwards frees a slot that the next insert then
// does not have to evict for.  Eviction order stays verdict age, never
// expiry-awareness.
TEST(NegativeTagCache, CapacityCountsUnprobedExpiredEntries) {
  core::NegativeTagCache cache(/*capacity=*/2, /*ttl=*/5);
  cache.insert("a", 0);  // expires at 5
  cache.insert("b", 1);  // expires at 6
  // Both are long dead at t=10, but nothing probed them: still resident.
  EXPECT_EQ(cache.size(), 2u);
  cache.insert("c", 10);  // at capacity: evicts the oldest verdict ("a")
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  // Probing the dead "b" erases it lazily — an expiry, not an eviction.
  EXPECT_FALSE(cache.contains("b", 10));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  // The freed slot absorbs the next insert without evicting live "c".
  cache.insert("d", 10);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains("c", 11));
  EXPECT_TRUE(cache.contains("d", 11));
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TEST(TokenBucket, BurstThenRefill) {
  core::TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));  // burst spent
  // One second later one token has dripped back in.
  EXPECT_TRUE(bucket.try_take(kSecond));
  EXPECT_FALSE(bucket.try_take(kSecond));
  // Refill caps at the burst size no matter how long the idle gap.
  EXPECT_TRUE(bucket.try_take(100 * kSecond));
  EXPECT_TRUE(bucket.try_take(100 * kSecond));
  EXPECT_FALSE(bucket.try_take(100 * kSecond));
}

// ---------------------------------------------------------------------------
// Bounded PIT with LRU eviction
// ---------------------------------------------------------------------------

TEST(BoundedPit, LruEvictionAtCapacity) {
  event::Scheduler sched;
  ndn::Forwarder node(
      sched, net::NodeInfo{0, net::NodeKind::kCoreRouter, "r"}, 0);
  // Route everything to a sink app face so Interests create PIT entries.
  const ndn::FaceId sink = node.add_app_face({});
  const ndn::FaceId in = node.add_app_face({});
  node.fib().add_route(ndn::Name("/"), sink);
  node.set_pit_capacity(4);

  auto send = [&](const std::string& uri, std::uint64_t nonce) {
    ndn::Interest interest;
    interest.name = ndn::Name(uri);
    interest.nonce = nonce;
    interest.lifetime = 100 * kSecond;
    node.receive(in, ndn::make_packet(std::move(interest)));
  };

  for (int i = 0; i < 6; ++i) {
    send("/n" + std::to_string(i), 100 + i);
  }
  // Capacity held; the two oldest entries (/n0, /n1) were evicted.
  EXPECT_EQ(node.pit().size(), 4u);
  EXPECT_EQ(node.counters().pit_evictions, 2u);
  EXPECT_EQ(node.pit().find(ndn::Name("/n0")), nullptr);
  EXPECT_EQ(node.pit().find(ndn::Name("/n1")), nullptr);
  EXPECT_NE(node.pit().find(ndn::Name("/n2")), nullptr);

  // Touching /n2 (the find() above already did) protects it: the next
  // eviction takes /n3 instead.
  send("/n6", 200);
  EXPECT_NE(node.pit().find(ndn::Name("/n2")), nullptr);
  EXPECT_EQ(node.pit().find(ndn::Name("/n3")), nullptr);
  EXPECT_EQ(node.counters().pit_evictions, 3u);

  // Evicted entries' expiry timers were cancelled: running the scheduler
  // past every lifetime fires only the survivors' timers.
  sched.run_until(200 * kSecond);
  EXPECT_EQ(node.pit().size(), 0u);
  EXPECT_EQ(node.counters().pit_expirations, 4u);
}

TEST(BoundedPit, UnboundedByDefault) {
  event::Scheduler sched;
  ndn::Forwarder node(
      sched, net::NodeInfo{0, net::NodeKind::kCoreRouter, "r"}, 0);
  EXPECT_EQ(node.pit_capacity(), 0u);
  const ndn::FaceId sink = node.add_app_face({});
  const ndn::FaceId in = node.add_app_face({});
  node.fib().add_route(ndn::Name("/"), sink);
  for (int i = 0; i < 50; ++i) {
    ndn::Interest interest;
    interest.name = ndn::Name("/n" + std::to_string(i));
    interest.nonce = 100 + i;
    interest.lifetime = kSecond;
    node.receive(in, ndn::make_packet(std::move(interest)));
  }
  EXPECT_EQ(node.pit().size(), 50u);
  EXPECT_EQ(node.counters().pit_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Scenario helpers
// ---------------------------------------------------------------------------

sim::ScenarioConfig small_tactic(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.topology.core_routers = 8;
  config.topology.edge_routers = 3;
  config.topology.providers = 2;
  config.topology.clients = 4;
  config.topology.attackers = 3;
  config.topology.core_cs_capacity = 200;
  config.provider.key_bits = 512;  // fast setup; semantics identical
  config.duration = 30 * kSecond;
  config.seed = seed;
  return config;
}

/// A forged-tag flood an order of magnitude above the legitimate tempo.
/// The short Interest lifetime matters: with the layer off, the edge
/// suppresses validity NACKs, so each forged Interest still pulls a
/// full NACK-carrying Data across the shared downstream links before the
/// attacker's window slot times out and refills — the congestion that
/// hurts bystander clients.
sim::ScenarioConfig flood_config(std::uint64_t seed) {
  sim::ScenarioConfig config = small_tactic(seed);
  config.attacker.think_time_mean = 100 * kMillisecond;
  config.attacker.window = 80;
  config.attacker.interest_lifetime = 50 * kMillisecond;
  config.attacker_mix = {workload::AttackerMode::kForgedTag};
  config.compute = core::ComputeModel::deterministic();
  // A tight metro backbone: the per-station access links stay at the
  // 10 Mbps default, but the shared router-to-router links are the
  // bottleneck the un-shed NACK flood saturates.
  config.topology.core_link.bits_per_second = 4e6;
  return config;
}

void enable_overload(sim::ScenarioConfig& config) {
  core::OverloadConfig& ov = config.tactic.overload;
  ov.enabled = true;
  ov.queue_capacity = 16;
  ov.shed_watermark = 2;
  ov.neg_cache_capacity = 512;
  ov.neg_cache_ttl = 5 * kSecond;
  ov.policer_rate = 40.0;
  ov.policer_burst = 10.0;
}

struct OverloadTotals {
  std::uint64_t sheds = 0;
  std::uint64_t neg_hits = 0;
  std::uint64_t neg_insertions = 0;
  std::uint64_t verifications = 0;
};

OverloadTotals totals_of(const sim::Metrics& metrics) {
  OverloadTotals t;
  for (const sim::RouterOps* ops : {&metrics.edge_ops, &metrics.core_ops}) {
    t.sheds += ops->sheds_queue_full + ops->sheds_unvouched +
               ops->policer_sheds;
    t.neg_hits += ops->neg_cache_hits;
    t.neg_insertions += ops->neg_cache_insertions;
    t.verifications += ops->sig_verifications;
  }
  t.verifications += metrics.provider_sig_verifications;
  return t;
}

// ---------------------------------------------------------------------------
// Client back-off ceiling
// ---------------------------------------------------------------------------

// Regression: an absurd backoff factor used to overflow the delay
// arithmetic after a couple of retries.  With the ceiling the client
// keeps retrying every ~retry_backoff_max instead, so an outage spanning
// several ceilings still resolves within the retry budget.
TEST(BackoffCeiling, ClampKeepsRetriesFlowing) {
  sim::ScenarioConfig config = small_tactic(7);
  config.topology.attackers = 0;
  config.duration = 20 * kSecond;
  config.client.max_retries = 10;
  config.client.retry_backoff_factor = 1e6;  // unclamped: overflows
  config.client.retry_backoff_max = 2 * kSecond;
  // Client 0's access link is dead for the first 12 seconds; only
  // repeated, ceiling-clamped retries carry its registration through.
  config.faults.flaps.push_back(
      {sim::LinkFlap::Where::kClientAccess, 0, 0, 12 * kSecond, false});

  sim::Scenario scenario(config);
  const sim::Metrics& metrics = scenario.run();

  // With the unclamped exponential the second retry would sit ~5.8 days
  // out; the run observing several retransmissions proves the ceiling.
  EXPECT_GE(metrics.clients.retransmissions +
                metrics.clients.registration_retransmissions,
            4u);
  EXPECT_GT(metrics.clients.tags_received, 0u);
  EXPECT_GT(metrics.clients.received, 0u);
}

// ---------------------------------------------------------------------------
// Attacker flood regression
// ---------------------------------------------------------------------------

TEST(OverloadLayer, FloodIsShedAndClientsProtected) {
  sim::ScenarioConfig off = flood_config(21);
  sim::ScenarioConfig on = off;
  enable_overload(on);

  const sim::Metrics with_layer = sim::Scenario(on).run();
  const sim::Metrics without = sim::Scenario(off).run();

  const OverloadTotals shed = totals_of(with_layer);
  const OverloadTotals open = totals_of(without);

  // The layer visibly worked: the policer and the watermark both shed
  // suspect traffic at the edge.
  EXPECT_GT(shed.sheds, 0u);
  EXPECT_GT(with_layer.edge_ops.policer_sheds, 0u);
  // Off means off: no shed/neg-cache activity whatsoever.
  EXPECT_EQ(open.sheds, 0u);
  EXPECT_EQ(open.neg_hits, 0u);
  EXPECT_EQ(open.neg_insertions, 0u);

  // The flood bought strictly less verifier work with the layer on: the
  // negative cache bounds repeats and the shed requests never queue.
  EXPECT_LT(shed.verifications, open.verifications);

  // Attackers stayed blocked either way.
  EXPECT_EQ(with_layer.attackers.received, 0u);
  EXPECT_EQ(without.attackers.received, 0u);

  // Valid clients come out strictly ahead under the flood with the
  // layer on (the shed flood no longer saturates the shared links).
  EXPECT_GT(with_layer.clients.delivery_ratio(),
            without.clients.delivery_ratio());
}

// With the policer off and watermarks out of the way, forged-tag repeats
// exercise the designed neg-cache pipeline: the first repeat per TTL
// window costs one upstream signature verification, the NACK-carrying
// Data teaches the edge on its way down, and every further repeat dies
// at the edge for the price of a cache probe.
TEST(OverloadLayer, NegativeCacheShortCircuitsRepeatedForgeries) {
  sim::ScenarioConfig off = small_tactic(26);
  off.attacker_mix = {workload::AttackerMode::kForgedTag};
  off.attacker.think_time_mean = 20 * kMillisecond;
  off.attacker.window = 4;
  off.compute = core::ComputeModel::deterministic();

  sim::ScenarioConfig on = off;
  core::OverloadConfig& ov = on.tactic.overload;
  ov.enabled = true;
  ov.queue_capacity = 512;
  ov.shed_watermark = 256;  // let the flood through to the verifiers
  ov.neg_cache_capacity = 512;
  ov.neg_cache_ttl = 5 * kSecond;
  ov.policer_rate = 0.0;

  const sim::Metrics cached = sim::Scenario(on).run();
  const sim::Metrics open = sim::Scenario(off).run();

  const OverloadTotals t = totals_of(cached);
  EXPECT_GT(t.neg_insertions, 0u);
  EXPECT_GT(t.neg_hits, 0u);
  // The edge specifically learned from the NACKed Data passing down and
  // then rejected repeats itself.
  EXPECT_GT(cached.edge_ops.neg_cache_insertions, 0u);
  EXPECT_GT(cached.edge_ops.neg_cache_hits, 0u);
  // A repeated forged tag now costs ~one verification per TTL window
  // instead of one per Interest.
  EXPECT_LT(t.verifications, totals_of(open).verifications);
  EXPECT_EQ(cached.attackers.received, 0u);
  EXPECT_EQ(open.attackers.received, 0u);
  // Legitimate clients are untouched by the cache.
  EXPECT_GT(cached.clients.delivery_ratio(), 0.95);
}

TEST(OverloadLayer, BoundedPitEvictsUnderFlood) {
  sim::ScenarioConfig config = flood_config(22);
  config.router_pit_capacity = 4;

  const sim::Metrics metrics = sim::Scenario(config).run();
  EXPECT_GT(metrics.pit_evictions, 0u);
  // Clients still make progress with a tiny PIT.
  EXPECT_GT(metrics.clients.received, 0u);
}

// ---------------------------------------------------------------------------
// Staged BF reset
// ---------------------------------------------------------------------------

// A small Bloom filter saturates repeatedly under tag churn.  Rotating
// with a drain window (staged reset) keeps vouching through the refill,
// so the instant-wipe variant pays strictly more signature verifications
// for the same traffic.
TEST(OverloadLayer, StagedResetSuppressesRevalidationSurge) {
  sim::ScenarioConfig base = small_tactic(23);
  base.duration = 40 * kSecond;
  base.topology.attackers = 0;
  base.topology.clients = 6;
  base.provider.tag_validity = 3 * kSecond;  // churn refills the BF fast
  base.tactic.bloom.capacity = 10;
  base.compute = core::ComputeModel::deterministic();
  enable_overload(base);
  // Isolate the reset policy: no shedding, no policing.
  base.tactic.overload.queue_capacity = 1u << 20;
  base.tactic.overload.shed_watermark = 1u << 20;
  base.tactic.overload.policer_rate = 0.0;

  sim::ScenarioConfig staged = base;
  staged.tactic.overload.staged_bf_reset = true;
  staged.tactic.overload.staged_reset_grace = 2 * kSecond;
  sim::ScenarioConfig instant = base;
  instant.tactic.overload.staged_bf_reset = false;

  const sim::Metrics with_drain = sim::Scenario(staged).run();
  const sim::Metrics wiped = sim::Scenario(instant).run();

  const std::uint64_t staged_rotations =
      with_drain.edge_ops.staged_resets + with_drain.core_ops.staged_resets;
  const std::uint64_t drain_hits =
      with_drain.edge_ops.draining_hits + with_drain.core_ops.draining_hits;
  ASSERT_GT(staged_rotations, 0u);  // the scenario actually saturated
  EXPECT_GT(drain_hits, 0u);        // and the old filter kept vouching
  EXPECT_EQ(wiped.edge_ops.staged_resets + wiped.core_ops.staged_resets,
            0u);

  // Same saturation pressure either way (resets still counted)...
  EXPECT_GT(wiped.edge_ops.bf_resets + wiped.core_ops.bf_resets, 0u);
  // ...but the instant wipe triggers the re-validation surge.
  EXPECT_LT(totals_of(with_drain).verifications,
            totals_of(wiped).verifications);
}

// ---------------------------------------------------------------------------
// Default-off identity and determinism
// ---------------------------------------------------------------------------

// Every knob set but `enabled` false must leave the run bit-identical to
// a configuration that never mentions the overload layer.
TEST(OverloadLayer, DisabledLayerIsBitIdentical) {
  const sim::ScenarioConfig plain = small_tactic(24);
  sim::ScenarioConfig knobs = plain;
  knobs.tactic.overload.enabled = false;
  knobs.tactic.overload.queue_capacity = 3;
  knobs.tactic.overload.shed_watermark = 1;
  knobs.tactic.overload.neg_cache_capacity = 7;
  knobs.tactic.overload.neg_cache_ttl = kSecond;
  knobs.tactic.overload.policer_rate = 50.0;
  knobs.tactic.overload.policer_burst = 1.0;
  knobs.tactic.overload.staged_bf_reset = true;
  knobs.tactic.overload.staged_reset_grace = 10 * kSecond;

  const sim::Metrics a = sim::Scenario(plain).run();
  const sim::Metrics b = sim::Scenario(knobs).run();
  EXPECT_EQ(testing::fingerprint(a), testing::fingerprint(b));
  const OverloadTotals t = totals_of(b);
  EXPECT_EQ(t.sheds, 0u);
  EXPECT_EQ(t.neg_hits, 0u);
  EXPECT_EQ(b.clients.overload_nacks, 0u);
}

// Same seed + overload + faults => identical fingerprint and trace chain,
// with the runtime invariants clean.
TEST(OverloadLayer, DoubleRunDeterminismWithFloodAndFaults) {
  sim::ScenarioConfig config = flood_config(25);
  config.duration = 20 * kSecond;
  enable_overload(config);
  config.router_pit_capacity = 256;
  config.faults.edge_links.loss = 0.02;
  config.faults.crashes.push_back(
      {sim::CrashEvent::Target::kEdgeRouter, 0, 8 * kSecond, kSecond});

  auto run = [&config] {
    sim::Scenario scenario(config);
    testing::InvariantChecker checker(scenario);
    checker.arm();
    scenario.run();
    checker.finalize();
    EXPECT_TRUE(checker.ok()) << checker.report();
    return std::pair<std::string, std::string>{
        testing::fingerprint_digest(scenario.harvest()),
        checker.trace_digest()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace tactic
