// Differential table-equivalence suite: the LC-trie Fib against the
// retained LinearFib reference.
//
// The trie is a pure lookup-structure swap — for every operation
// sequence, lookup() and find_exact() must return entries with identical
// prefixes and next-hop lists, and size() must agree.  The property
// sweeps randomize prefix sets over a small component alphabet (so
// shared prefixes, splits, and merges actually happen) and interleave
// add/remove/set_routes with lookups; fixed adversarial cases cover the
// edges a randomized sweep can miss.  Seeds scale through
// TACTIC_PROPERTY_ITERS like tests/property_test.cpp.
//
// The suite also pins the new table-cost counters: FIB lookups bounded
// by the name's component count (not the table size), PIT expiry
// bookkeeping amortized O(1), CS eviction O(1) — the regression tests
// for the latent O(n) scans this refactor removed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/cs.hpp"
#include "ndn/fib.hpp"
#include "ndn/name.hpp"
#include "ndn/pit.hpp"
#include "util/rng.hpp"

namespace tactic::ndn {
namespace {

/// Per-seed iteration count, scaled by TACTIC_PROPERTY_ITERS (same
/// convention as tests/property_test.cpp: def=50 is the baseline).
int property_iters(int def) {
  static const long scale = [] {
    const char* raw = std::getenv("TACTIC_PROPERTY_ITERS");
    return raw == nullptr ? 0L : std::atol(raw);
  }();
  if (scale <= 0) return def;
  const long scaled = (scale * def + 49) / 50;
  return static_cast<int>(std::max(1L, scaled));
}

class TableDiffProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};

  /// Random name over a deliberately small alphabet: components "c0".."c6"
  /// and depth 0..4, so prefix sharing, edge splits, and last-component
  /// collisions are common rather than vanishing-probability events.
  Name random_name(std::uint64_t max_depth = 4) {
    const std::uint64_t depth = rng_.uniform(max_depth + 1);
    Name name;
    for (std::uint64_t d = 0; d < depth; ++d) {
      name = name.append("c" + std::to_string(rng_.uniform(7)));
    }
    return name;
  }

  std::vector<FibNextHop> random_hops() {
    std::vector<FibNextHop> hops;
    const std::uint64_t n = 1 + rng_.uniform(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      hops.push_back(FibNextHop{static_cast<FaceId>(rng_.uniform(5)),
                                static_cast<std::uint32_t>(rng_.uniform(4))});
    }
    return hops;
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, TableDiffProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110, 121, 132, 143, 154,
                                           165, 176));

void expect_same_entry(const FibEntry* trie, const FibEntry* linear,
                       const Name& query) {
  if (linear == nullptr) {
    ASSERT_EQ(trie, nullptr) << "trie matched " << trie->prefix.to_uri()
                             << " for " << query.to_uri()
                             << " but linear matched nothing";
    return;
  }
  ASSERT_NE(trie, nullptr) << "linear matched " << linear->prefix.to_uri()
                           << " for " << query.to_uri()
                           << " but trie matched nothing";
  EXPECT_EQ(trie->prefix, linear->prefix) << "for " << query.to_uri();
  ASSERT_EQ(trie->next_hops.size(), linear->next_hops.size());
  for (std::size_t i = 0; i < trie->next_hops.size(); ++i) {
    EXPECT_EQ(trie->next_hops[i].face, linear->next_hops[i].face);
    EXPECT_EQ(trie->next_hops[i].cost, linear->next_hops[i].cost);
  }
}

TEST_P(TableDiffProperty, TrieLpmEquivalentToLinearLpm) {
  for (int round = 0; round < property_iters(20); ++round) {
    Fib trie;
    LinearFib linear;
    const std::uint64_t inserts = 1 + rng_.uniform(60);
    std::vector<Name> inserted;
    for (std::uint64_t i = 0; i < inserts; ++i) {
      const Name prefix = random_name();
      const FaceId face = static_cast<FaceId>(rng_.uniform(5));
      const auto cost = static_cast<std::uint32_t>(rng_.uniform(4));
      trie.add_route(prefix, face, cost);
      linear.add_route(prefix, face, cost);
      inserted.push_back(prefix);
    }
    ASSERT_EQ(trie.size(), linear.size());
    for (int q = 0; q < 50; ++q) {
      const Name query = random_name(6);
      expect_same_entry(trie.lookup(query), linear.lookup(query), query);
      expect_same_entry(trie.find_exact(query), linear.find_exact(query),
                        query);
    }
    // Every inserted prefix must be exactly findable in both.
    for (const Name& prefix : inserted) {
      expect_same_entry(trie.find_exact(prefix), linear.find_exact(prefix),
                        prefix);
    }
  }
}

TEST_P(TableDiffProperty, InterleavedMutationsStayEquivalent) {
  Fib trie;
  LinearFib linear;
  std::vector<Name> pool;
  const int steps = property_iters(400);
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t op = rng_.uniform(10);
    if (op < 4 || pool.empty()) {  // add_route
      const Name prefix = random_name();
      const FaceId face = static_cast<FaceId>(rng_.uniform(5));
      const auto cost = static_cast<std::uint32_t>(rng_.uniform(4));
      trie.add_route(prefix, face, cost);
      linear.add_route(prefix, face, cost);
      pool.push_back(prefix);
    } else if (op < 6) {  // set_routes (possibly empty => removal)
      const Name& prefix = pool[rng_.uniform(pool.size())];
      std::vector<FibNextHop> hops;
      if (!rng_.bernoulli(0.25)) hops = random_hops();
      trie.set_routes(prefix, hops);
      linear.set_routes(prefix, hops);
    } else if (op < 8) {  // remove_next_hop (drops entry when last)
      const Name& prefix = pool[rng_.uniform(pool.size())];
      const FaceId face = static_cast<FaceId>(rng_.uniform(5));
      trie.remove_next_hop(prefix, face);
      linear.remove_next_hop(prefix, face);
    } else {  // remove_route
      const std::size_t pick = rng_.uniform(pool.size());
      trie.remove_route(pool[pick]);
      linear.remove_route(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(trie.size(), linear.size()) << "after step " << step;
    const Name query = random_name(6);
    expect_same_entry(trie.lookup(query), linear.lookup(query), query);
    expect_same_entry(trie.find_exact(query), linear.find_exact(query),
                      query);
  }
  // Drain everything: the trie must prune back to just its root.
  for (const Name& prefix : pool) {
    trie.remove_route(prefix);
    linear.remove_route(prefix);
  }
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(linear.size(), 0u);
  EXPECT_EQ(trie.lookup(random_name(6)), nullptr);
}

TEST_P(TableDiffProperty, HighFanoutRootPromotesAndStaysEquivalent) {
  // Hundreds of distinct first components force the root's child table
  // through the sorted-vector -> open-addressing promotion.
  Fib trie;
  LinearFib linear;
  std::vector<Name> prefixes;
  for (int i = 0; i < 400; ++i) {
    const Name prefix =
        Name().append("fan" + std::to_string(GetParam()) + "-" +
                      std::to_string(i));
    trie.add_route(prefix, static_cast<FaceId>(i % 5), 1);
    linear.add_route(prefix, static_cast<FaceId>(i % 5), 1);
    prefixes.push_back(prefix);
  }
  for (const Name& prefix : prefixes) {
    expect_same_entry(trie.lookup(prefix.append("tail")),
                      linear.lookup(prefix.append("tail")), prefix);
  }
  // Erase most of them (drives the hash table back toward demotion).
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    if (i % 50 != 0) {
      trie.remove_route(prefixes[i]);
      linear.remove_route(prefixes[i]);
    }
  }
  ASSERT_EQ(trie.size(), linear.size());
  for (const Name& prefix : prefixes) {
    expect_same_entry(trie.lookup(prefix), linear.lookup(prefix), prefix);
  }
}

// ---------------------------------------------------------------------------
// Fixed adversarial cases
// ---------------------------------------------------------------------------

TEST(TableDiff, SharedPrefixesDifferingInLastComponent) {
  Fib trie;
  LinearFib linear;
  const std::vector<std::string> uris = {
      "/a/b/c/d1", "/a/b/c/d2", "/a/b/c", "/a/b/x", "/a"};
  FaceId face = 0;
  for (const auto& uri : uris) {
    trie.add_route(Name(uri), face);
    linear.add_route(Name(uri), face);
    ++face;
  }
  for (const auto& query :
       {"/a/b/c/d1", "/a/b/c/d2", "/a/b/c/d3", "/a/b/c/d1/e", "/a/b/c",
        "/a/b/x/y", "/a/b", "/a", "/z", "/"}) {
    expect_same_entry(trie.lookup(Name(query)), linear.lookup(Name(query)),
                      Name(query));
  }
}

TEST(TableDiff, EmptyNameAndRootEntry) {
  Fib trie;
  LinearFib linear;
  // Lookup of the empty name with no routes at all.
  expect_same_entry(trie.lookup(Name()), linear.lookup(Name()), Name());
  // The root entry ("/") matches everything, including the empty name.
  trie.add_route(Name("/"), 3);
  linear.add_route(Name("/"), 3);
  for (const auto& query : {"/", "/a", "/a/b/c"}) {
    expect_same_entry(trie.lookup(Name(query)), linear.lookup(Name(query)),
                      Name(query));
  }
  expect_same_entry(trie.find_exact(Name()), linear.find_exact(Name()),
                    Name());
  // Removing the root entry empties both.
  trie.remove_route(Name("/"));
  linear.remove_route(Name("/"));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.lookup(Name("/a")), nullptr);
  EXPECT_EQ(linear.lookup(Name("/a")), nullptr);
}

TEST(TableDiff, SingleComponentNames) {
  Fib trie;
  LinearFib linear;
  trie.add_route(Name("/a"), 1);
  linear.add_route(Name("/a"), 1);
  trie.add_route(Name("/ab"), 2);  // "ab" is NOT an extension of "a":
  linear.add_route(Name("/ab"), 2);  // components are atoms, not bytes
  expect_same_entry(trie.lookup(Name("/a")), linear.lookup(Name("/a")),
                    Name("/a"));
  expect_same_entry(trie.lookup(Name("/ab")), linear.lookup(Name("/ab")),
                    Name("/ab"));
  expect_same_entry(trie.lookup(Name("/ab/x")), linear.lookup(Name("/ab/x")),
                    Name("/ab/x"));
  EXPECT_EQ(trie.lookup(Name("/b")), nullptr);
}

TEST(TableDiff, EdgeSplitKeepsDeepEntryReachable) {
  // Insert a deep prefix first (one compressed edge), then a shallower
  // one that splits that edge in the middle.
  Fib trie;
  LinearFib linear;
  trie.add_route(Name("/p/q/r/s/t"), 1);
  linear.add_route(Name("/p/q/r/s/t"), 1);
  trie.add_route(Name("/p/q"), 2);
  linear.add_route(Name("/p/q"), 2);
  for (const auto& query :
       {"/p/q/r/s/t", "/p/q/r/s/t/u", "/p/q/r", "/p/q", "/p"}) {
    expect_same_entry(trie.lookup(Name(query)), linear.lookup(Name(query)),
                      Name(query));
  }
  // Removing the shallow entry must re-merge the pass-through node.
  trie.remove_route(Name("/p/q"));
  linear.remove_route(Name("/p/q"));
  expect_same_entry(trie.lookup(Name("/p/q/r/s/t")),
                    linear.lookup(Name("/p/q/r/s/t")), Name("/p/q/r/s/t"));
  EXPECT_EQ(trie.lookup(Name("/p/q/r")), nullptr);
}

TEST(TableDiff, SetImplRefusesNonEmptyTable) {
  Fib fib;
  fib.set_impl(Fib::Impl::kLinear);   // empty: fine
  fib.set_impl(Fib::Impl::kLcTrie);   // back again: fine
  fib.add_route(Name("/a"), 1);
  EXPECT_THROW(fib.set_impl(Fib::Impl::kLinear), std::logic_error);
}

TEST(TableDiff, LinearImplBehindTheFibFacade) {
  Fib fib;
  fib.set_impl(Fib::Impl::kLinear);
  fib.add_route(Name("/a/b"), 1);
  fib.add_route(Name("/a"), 2);
  ASSERT_EQ(fib.size(), 2u);
  const FibEntry* entry = fib.lookup(Name("/a/b/c"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix, Name("/a/b"));
  fib.remove_route(Name("/a/b"));
  entry = fib.lookup(Name("/a/b/c"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix, Name("/a"));
}

// ---------------------------------------------------------------------------
// Cost regressions: the latent O(n) scans must stay gone.
// ---------------------------------------------------------------------------

TEST(TableCost, FibLookupWorkIsBoundedByNameDepthNotTableSize) {
  Fib fib;
  for (int i = 0; i < 10000; ++i) {
    fib.add_route(Name().append("p" + std::to_string(i)).append("x"), 1);
  }
  const Name query("/p123/x/chunk/7");
  const auto before = fib.counters();
  for (int i = 0; i < 100; ++i) fib.lookup(query);
  const auto after = fib.counters();
  EXPECT_EQ(after.lookups - before.lookups, 100u);
  // Each lookup touches at most components+1 nodes (root + one per
  // matched edge) regardless of the 10^4 entries resident.
  EXPECT_LE(after.nodes_visited - before.nodes_visited,
            100u * (query.size() + 1));
}

TEST(TableCost, PitLookupAndInsertCountsArePinned) {
  Pit pit;
  const Name a("/pit-cost/a");
  const Name b("/pit-cost/b");
  EXPECT_EQ(pit.find(a), nullptr);          // 1 lookup, miss
  pit.get_or_create(a);                     // 1 lookup + 1 insert
  pit.get_or_create(a);                     // 1 lookup, no insert
  EXPECT_NE(pit.find(a), nullptr);          // 1 lookup
  pit.get_or_create(b);                     // 1 lookup + 1 insert
  pit.erase(a);                             // not counted as a lookup
  EXPECT_EQ(pit.counters().lookups, 5u);
  EXPECT_EQ(pit.counters().inserts, 2u);
}

TEST(TableCost, PitExpiryPollingIsAmortizedConstantNotTableScan) {
  Pit pit;
  constexpr int kEntries = 2000;
  for (int i = 0; i < kEntries; ++i) {
    PitEntry& entry = pit.get_or_create(Name("/pit-exp").append_number(i));
    pit.set_expiry(entry, static_cast<event::Time>(1000 + i));
  }
  // Steady-state sampling: each poll examines the heap top only — the
  // total work over many polls stays far below polls * table-size.
  const auto before = pit.counters().expiry_polls;
  for (int poll = 0; poll < 100; ++poll) {
    const auto min = pit.min_expiry();
    ASSERT_TRUE(min.has_value());
    EXPECT_EQ(*min, 1000u);
  }
  EXPECT_EQ(pit.counters().expiry_polls - before, 100u);

  // Erase-heavy phase: each stale record is discarded at most once, so
  // total poll work is bounded by set_expiry calls + polls, never
  // polls * entries.
  for (int i = 0; i < kEntries; ++i) {
    pit.erase(Name("/pit-exp").append_number(i));
    pit.min_expiry();
  }
  EXPECT_LE(pit.counters().expiry_polls, 2u * kEntries + 200u);
  EXPECT_FALSE(pit.min_expiry().has_value());
}

TEST(TableCost, PitSlotReuseKeepsEntryReferencesStable) {
  Pit pit;
  PitEntry& first = pit.get_or_create(Name("/reuse/a"));
  const PitEntry* address = &first;
  pit.erase(Name("/reuse/a"));
  // The freed slot is recycled for the next insert: same storage, fresh
  // entry (the arena keeps in_records capacity, not contents).
  PitEntry& second = pit.get_or_create(Name("/reuse/b"));
  EXPECT_EQ(&second, address);
  EXPECT_TRUE(second.in_records.empty());
  EXPECT_EQ(second.name, Name("/reuse/b"));
}

TEST(TableCost, CsEvictionIsCountedAndBounded) {
  ContentStore cs(4);
  for (int i = 0; i < 10; ++i) {
    auto data = std::make_shared<Data>();
    data->name = Name("/cs-evict").append_number(i);
    data->content_size = 8;
    cs.insert(std::move(data));
  }
  EXPECT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs.evictions(), 6u);  // one O(1) tail-pop per overflow
  // The four most recent survive.
  EXPECT_TRUE(cs.contains(Name("/cs-evict/9")));
  EXPECT_FALSE(cs.contains(Name("/cs-evict/0")));
}

}  // namespace
}  // namespace tactic::ndn
