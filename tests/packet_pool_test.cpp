// Packet pool and copy-on-write seam (docs/ARCHITECTURE.md, "Packet
// memory model"): slot recycling, COW aliasing, cached-wire
// invalidation, crash wipe, and double-run determinism with pooling on.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ndn/packet_pool.hpp"
#include "sim/scenario.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"

namespace tactic::ndn {
namespace {

/// Restores the process-wide pooling switch on scope exit.
struct PoolingGuard {
  bool saved = PacketPool::pooling_enabled();
  ~PoolingGuard() { PacketPool::set_pooling_enabled(saved); }
};

TEST(PacketPool, ReleaseRecyclesSlotWithCapacity) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto first = pool.make_interest();
  first->name = Name("/pool/reuse/c0");
  first->nonce = 7;
  const Interest* address = first.get();
  EXPECT_EQ(pool.counters().acquires, 1u);
  EXPECT_EQ(pool.counters().refills, 1u);
  EXPECT_EQ(pool.free_interest_slots(), 0u);

  first.reset();  // last release: slot returns to the free list
  EXPECT_EQ(pool.free_interest_slots(), 1u);

  auto second = pool.make_interest();
  EXPECT_EQ(second.get(), address);  // same slot, recycled
  EXPECT_EQ(pool.counters().reuses, 1u);
  EXPECT_EQ(pool.counters().refills, 1u);  // no slab growth
  // reset_for_reuse cleared the fields.
  EXPECT_TRUE(second->name.empty());
  EXPECT_EQ(second->nonce, 0u);
  EXPECT_EQ(pool.interest_slot_count(), 1u);
}

TEST(PacketPool, SlotOutlivesPoolHandleRefcount) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  InterestPtr keeper;
  {
    auto interest = pool.make_interest();
    interest->name = Name("/pool/refcount");
    keeper = std::move(interest);  // freeze into the shared const view
  }
  EXPECT_EQ(keeper.use_count(), 1);
  EXPECT_EQ(pool.free_interest_slots(), 0u);  // still live
  InterestPtr alias = keeper;
  EXPECT_EQ(keeper.use_count(), 2);
  alias.reset();
  keeper.reset();
  EXPECT_EQ(pool.free_interest_slots(), 1u);  // last release recycled it
}

TEST(PacketPool, CowEditsInPlaceWhenUnique) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto interest = pool.make_interest();
  interest->name = Name("/cow/unique");
  CowInterest cow(InterestPtr(std::move(interest)), pool);
  const Interest* address = cow.shared().get();
  cow.edit().nonce = 42;
  EXPECT_EQ(cow.shared().get(), address);  // no clone
  EXPECT_EQ(cow->nonce, 42u);
  EXPECT_EQ(pool.counters().inplace_edits, 1u);
  EXPECT_EQ(pool.counters().cow_clones, 0u);
}

TEST(PacketPool, CowClonesWhenAliasedAndReaderIsUntouched) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto data = pool.make_data();
  data->name = Name("/cow/aliased");
  data->flag_f = 0.0;
  DataPtr reader = std::move(data);  // e.g. the ContentStore's reference
  CowData cow(DataPtr(reader), pool);
  ASSERT_EQ(reader.use_count(), 2);

  cow.edit().flag_f = 0.75;

  EXPECT_NE(cow.shared().get(), reader.get());  // cloned into a new slot
  EXPECT_EQ(cow->flag_f, 0.75);
  EXPECT_EQ(reader->flag_f, 0.0);  // aliased reader never observes edits
  EXPECT_EQ(reader->name, cow->name);
  EXPECT_EQ(pool.counters().cow_clones, 1u);

  // The clone is uniquely held now: further edits stay in place.
  const Data* clone_address = cow.shared().get();
  cow.edit().flag_f = 0.5;
  EXPECT_EQ(cow.shared().get(), clone_address);
  EXPECT_EQ(pool.counters().inplace_edits, 1u);
}

TEST(PacketPool, WireSizeCacheInvalidatedByEditAndClone) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto interest = pool.make_interest();
  interest->name = Name("/wire/cache/a");
  CowInterest cow(InterestPtr(std::move(interest)), pool);
  const std::size_t before = cow->wire_size();

  cow.edit().name = Name("/wire/cache/a-much-longer-name-component");
  const std::size_t after = cow->wire_size();
  EXPECT_GT(after, before);  // a stale cache would have reported `before`

  // Clone path: alias the packet so edit() clones, then grow the name
  // again — the clone must not inherit the source's memoized size.
  InterestPtr alias = cow.shared();
  cow.edit().name = Name("/wire/cache/a-much-longer-name-component/plus");
  EXPECT_GT(cow->wire_size(), after);
  EXPECT_EQ(alias->wire_size(), after);  // reader's own cache still right
}

TEST(PacketPool, SignedPortionBuiltOnceAndRebuiltAfterEdit) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto data = pool.make_data();
  data->name = Name("/signed/x");
  data->content_size = 9;
  const util::Bytes& first = data->signed_portion();
  const util::Bytes snapshot = first;
  // Memoized: the second call returns the same buffer, unchanged.
  EXPECT_EQ(&data->signed_portion(), &first);
  EXPECT_EQ(data->signed_portion(), snapshot);

  CowData cow(DataPtr(std::move(data)), pool);
  cow.edit().content_size = 10;
  EXPECT_NE(cow->signed_portion(), snapshot);  // rebuilt, not stale
}

TEST(PacketPool, WipeVolatileDropsFreeSlotCapacityOnly) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  PacketPool pool;

  auto live = pool.make_data();
  live->name = Name("/wipe/live");
  auto dead = pool.make_data();
  dead->name = Name("/wipe/dead/with/a/long/name");
  dead.reset();
  ASSERT_EQ(pool.free_data_slots(), 1u);

  pool.wipe_volatile();  // crash path; ASan checks nothing leaks

  EXPECT_EQ(pool.free_data_slots(), 1u);
  EXPECT_EQ(live->name, Name("/wipe/live"));  // live packets untouched
  live.reset();
  auto fresh = pool.make_data();  // recycles the wiped slot fine
  EXPECT_TRUE(fresh->name.empty());
}

TEST(PacketPool, PoolingOffFallsBackToPlainAllocation) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(false);
  PacketPool pool;

  auto a = pool.make_interest();
  a.reset();
  auto b = pool.make_interest();
  EXPECT_EQ(pool.counters().acquires, 2u);
  EXPECT_EQ(pool.counters().reuses, 0u);  // no slab involved
  EXPECT_EQ(pool.interest_slot_count(), 0u);
}

/// Fingerprint of one small fixed-seed scenario run.
std::string run_digest(std::uint64_t seed) {
  testing::GeneratorOptions generator;
  generator.duration = event::from_seconds(2.0);
  sim::Scenario scenario(testing::random_config(seed, generator));
  scenario.run();
  return testing::fingerprint_digest(scenario.harvest());
}

TEST(PacketPool, DoubleRunDeterministicAndPoolingInvisible) {
  PoolingGuard guard;
  PacketPool::set_pooling_enabled(true);
  const std::string first = run_digest(4242);
  const std::string second = run_digest(4242);
  EXPECT_EQ(first, second);  // slot recycling leaks no cross-run state

  PacketPool::set_pooling_enabled(false);
  EXPECT_EQ(run_digest(4242), first);  // allocation strategy invisible
}

}  // namespace
}  // namespace tactic::ndn
