// Tests for the discrete-event scheduler: ordering guarantees, FIFO
// tie-breaking, cancellation, and reentrancy.

#include <gtest/gtest.h>

#include <vector>

#include "event/parallel.hpp"
#include "event/scheduler.hpp"

namespace tactic::event {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond + 500 * kMillisecond), 2.5);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(3 * kSecond, [&] { order.push_back(3); });
  sched.schedule(1 * kSecond, [&] { order.push_back(1); });
  sched.schedule(2 * kSecond, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 3 * kSecond);
}

TEST(Scheduler, FifoWithinSameInstant) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(kSecond, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesDuringRun) {
  Scheduler sched;
  Time seen = -1;
  sched.schedule(5 * kMillisecond, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen, 5 * kMillisecond);
}

TEST(Scheduler, ZeroDelayRunsAfterCurrentInstantQueue) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(0, [&] {
    order.push_back(1);
    sched.schedule(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, HandlersCanScheduleMore) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sched.schedule(kMillisecond, chain);
  };
  sched.schedule(0, chain);
  sched.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.now(), 99 * kMillisecond);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const EventId id = sched.schedule(kSecond, [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler sched;
  const EventId id = sched.schedule(kSecond, [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelAfterExecutionFails) {
  Scheduler sched;
  const EventId id = sched.schedule(kMillisecond, [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelInvalidIdFails) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(1 * kSecond, [&] { order.push_back(1); });
  sched.schedule(2 * kSecond, [&] { order.push_back(2); });
  sched.schedule(3 * kSecond, [&] { order.push_back(3); });
  sched.run_until(2 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 2 * kSecond);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenIdle) {
  Scheduler sched;
  sched.run_until(10 * kSecond);
  EXPECT_EQ(sched.now(), 10 * kSecond);
}

TEST(Scheduler, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Scheduler, ScheduleAtPastThrows) {
  Scheduler sched;
  sched.schedule(kSecond, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(0, [] {}), std::invalid_argument);
}

TEST(Scheduler, Counters) {
  Scheduler sched;
  sched.schedule(kSecond, [] {});
  const EventId cancelled = sched.schedule(kSecond, [] {});
  sched.schedule(2 * kSecond, [] {});
  EXPECT_EQ(sched.pending_count(), 3u);
  sched.cancel(cancelled);
  EXPECT_EQ(sched.pending_count(), 2u);
  sched.run();
  EXPECT_EQ(sched.executed_count(), 2u);
  EXPECT_EQ(sched.pending_count(), 0u);
}

// ---------------------------------------------------------------------------
// Regression pins for same-instant FIFO and cancellation semantics under
// adversarial patterns.  These nail down behaviour the deterministic
// fuzzer's bit-reproducibility check depends on: a scheduler that
// reorders ties or resurrects cancelled events would change packet
// traces between otherwise identical runs.
// ---------------------------------------------------------------------------

TEST(Scheduler, SameInstantFifoSurvivesInterleavedSchedules) {
  // Ties broken by sequence number even when the same instant is reached
  // via different (delay, schedule_at) combinations and interleaved with
  // events at other times.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(2 * kSecond, [&] { order.push_back(20); });
  sched.schedule_at(kSecond, [&] { order.push_back(0); });
  sched.schedule(kSecond, [&] { order.push_back(1); });
  sched.schedule(3 * kSecond, [&] { order.push_back(30); });
  sched.schedule_at(kSecond, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 20, 30}));
}

TEST(Scheduler, CancelSameInstantSiblingDuringDispatch) {
  // A handler cancels a later event scheduled for the SAME instant: the
  // cancel must succeed and the sibling must be skipped, even though it
  // already sits in the dispatch queue for the current time.
  Scheduler sched;
  std::vector<int> order;
  EventId sibling;
  sched.schedule(kSecond, [&] {
    order.push_back(1);
    EXPECT_TRUE(sched.cancel(sibling));
  });
  sibling = sched.schedule(kSecond, [&] { order.push_back(2); });
  sched.schedule(kSecond, [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sched.executed_count(), 2u);
}

TEST(Scheduler, CancelSelfDuringExecutionFails) {
  // By the time a handler runs its own id is no longer pending, so a
  // self-cancel reports false and has no effect.
  Scheduler sched;
  EventId self;
  bool ran = false;
  self = sched.schedule(kSecond, [&] {
    ran = true;
    EXPECT_FALSE(sched.cancel(self));
  });
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.executed_count(), 1u);
}

TEST(Scheduler, ZeroDelayReschedulesKeepFifoAcrossHandlers) {
  // Two handlers at the same instant each reschedule themselves with zero
  // delay: the followers must run in the same relative order as their
  // parents (A, B, A', B'), not interleaved arbitrarily.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(kSecond, [&] {
    order.push_back(1);
    sched.schedule(0, [&] { order.push_back(3); });
  });
  sched.schedule(kSecond, [&] {
    order.push_back(2);
    sched.schedule(0, [&] { order.push_back(4); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sched.now(), kSecond);
}

TEST(Scheduler, CancelAndReplaceKeepsSurvivorOrder) {
  // Timer-refresh pattern: cancel a pending event and schedule a
  // replacement at the same instant.  The replacement is a NEW event and
  // must run after every survivor scheduled before it.
  Scheduler sched;
  std::vector<int> order;
  const EventId stale = sched.schedule(kSecond, [&] { order.push_back(1); });
  sched.schedule(kSecond, [&] { order.push_back(2); });
  EXPECT_TRUE(sched.cancel(stale));
  sched.schedule(kSecond, [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(Scheduler, AdversarialCancelStormCountsStayConsistent) {
  // Dense same-instant bursts with every other event cancelled — some
  // before run(), some from inside handlers — must never double-execute,
  // resurrect, or lose events.
  Scheduler sched;
  std::vector<EventId> ids;
  int executed = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.schedule(kSecond, [&] { ++executed; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    cancelled += sched.cancel(ids[i]);
  }
  // A same-instant saboteur scheduled last cancels the tail survivor.
  sched.schedule(kSecond, [&] { EXPECT_FALSE(sched.cancel(ids[99])); });
  sched.run();
  EXPECT_EQ(cancelled, 50);
  EXPECT_EQ(executed, 50);
  // 50 survivors + the saboteur.
  EXPECT_EQ(sched.executed_count(), 51u);
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler sched;
  Time last = -1;
  int executed = 0;
  // Pseudo-random delays; verify global non-decreasing execution times.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const Time when = static_cast<Time>(state % (1000 * kMillisecond));
    sched.schedule_at(when, [&, when] {
      EXPECT_GE(when, last);
      last = when;
      ++executed;
    });
  }
  sched.run();
  EXPECT_EQ(executed, 10000);
}


// --- run_before (the parallel engine's epoch primitive) -----------------

TEST(Scheduler, RunBeforeExcludesTheBoundaryInstant) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(5, [&] { order.push_back(1); });
  scheduler.schedule_at(10, [&] { order.push_back(2); });  // on the bound
  scheduler.schedule_at(12, [&] { order.push_back(3); });
  EXPECT_EQ(scheduler.run_before(10), 10);
  EXPECT_EQ(scheduler.now(), 10);
  EXPECT_EQ(order, (std::vector<int>{1}));
  // The boundary event is still pending and runs in the next phase.
  scheduler.run_until(12);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- ParallelScheduler --------------------------------------------------

TEST(ParallelScheduler, LookaheadBoundaryEventIsDelivered) {
  ParallelScheduler engine(2);
  engine.set_lookahead(10);
  int ran_at = -1;
  // A cross-partition arrival landing exactly on the next epoch boundary
  // — the tightest arrival conservative lookahead permits — must run,
  // and at its own timestamp.
  engine.schedule_global(0, [&] {
    engine.post(0, 1, 10, [&] {
      ran_at = static_cast<int>(engine.partition(1).now());
    });
  });
  engine.run_until(30);
  EXPECT_EQ(ran_at, 10);
}

TEST(ParallelScheduler, MergedArrivalsKeepDeterministicOrder) {
  // Same-instant cross-partition arrivals have no global FIFO; the
  // barrier merge orders them by (when, source partition, source seq) —
  // the rule that makes any real-time posting interleaving reproducible.
  ParallelScheduler engine(3);
  engine.set_lookahead(5);
  std::vector<int> order;
  engine.schedule_global(0, [&] {
    // Post in a scrambled real-time order; partition 2 first.
    engine.post(2, 0, 5, [&] { order.push_back(20); });
    engine.post(1, 0, 5, [&] { order.push_back(10); });
    engine.post(1, 0, 5, [&] { order.push_back(11); });
    engine.post(2, 0, 7, [&] { order.push_back(21); });
    engine.post(1, 0, 7, [&] { order.push_back(12); });
  });
  engine.run_until(20);
  // when=5: partition 1's posts (seq order), then partition 2's.
  // when=7: partition 1 before partition 2.
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 12, 21}));
}

TEST(ParallelScheduler, GlobalHandlerCanCancelAcrossPartitions) {
  // A global event runs with every worker parked, so it may reach into
  // any partition — here cancelling an event another partition owns
  // before its instant arrives.
  ParallelScheduler engine(2);
  engine.set_lookahead(4);
  bool ran = false;
  const EventId doomed =
      engine.partition(1).schedule_at(9, [&] { ran = true; });
  engine.schedule_global(6, [&] {
    EXPECT_TRUE(engine.partition(1).cancel(doomed));
  });
  engine.run_until(20);
  EXPECT_FALSE(ran);
}

TEST(ParallelScheduler, GlobalEventsShortenEpochsAndRunQuiesced) {
  // An epoch would span [8, 16); a global at 10 must clip it so the
  // handler observes every partition stopped exactly at 10.
  ParallelScheduler engine(2);
  engine.set_lookahead(8);
  Time seen_p0 = -1;
  Time seen_p1 = -1;
  engine.partition(0).schedule_at(3, [] {});
  engine.partition(1).schedule_at(15, [] {});
  engine.schedule_global(10, [&] {
    seen_p0 = engine.partition(0).now();
    seen_p1 = engine.partition(1).now();
  });
  engine.run_until(20);
  EXPECT_EQ(seen_p0, 10);
  EXPECT_EQ(seen_p1, 10);
  EXPECT_GE(engine.stats().global_events, 1u);
}

TEST(ParallelScheduler, RepeatedRunUntilAdvancesLikeSequential) {
  ParallelScheduler engine(2);
  engine.set_lookahead(3);
  std::vector<int> ticks;
  for (int t = 1; t <= 9; t += 2) {
    engine.partition(t % 2).schedule_at(t, [&ticks, t] {
      ticks.push_back(t);
    });
  }
  engine.run_until(4);
  EXPECT_EQ(ticks, (std::vector<int>{1, 3}));
  engine.run_until(9);
  EXPECT_EQ(ticks, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(engine.now(), 9);
  EXPECT_EQ(engine.executed_count(), 5u);
}

}  // namespace
}  // namespace tactic::event
