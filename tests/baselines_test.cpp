// Tests for the Table II baseline mechanisms, validating the architectural
// property each one trades away (cache reuse, bandwidth protection,
// per-hop crypto) relative to TACTIC.

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace tactic::baselines {
namespace {

using event::kSecond;

sim::ScenarioConfig base_config(std::uint64_t seed, sim::PolicyKind policy) {
  sim::ScenarioConfig config;
  config.topology.core_routers = 8;
  config.topology.edge_routers = 3;
  config.topology.providers = 2;
  config.topology.clients = 4;
  config.topology.attackers = 2;
  config.provider.catalog.objects = 10;
  config.provider.catalog.chunks_per_object = 5;
  config.provider.key_bits = 512;
  config.client.think_time_mean = 20 * event::kMillisecond;
  config.attacker.think_time_mean = 100 * event::kMillisecond;
  config.compute = core::ComputeModel::zero();
  config.duration = 25 * kSecond;
  config.seed = seed;
  config.policy = policy;
  return config;
}

TEST(PolicyKind, Names) {
  EXPECT_STREQ(to_string(sim::PolicyKind::kTactic), "TACTIC");
  EXPECT_STREQ(to_string(sim::PolicyKind::kClientSideAc), "client-side-AC");
  EXPECT_STREQ(to_string(sim::PolicyKind::kPerRequestAuth),
               "per-request-auth");
  EXPECT_STREQ(to_string(sim::PolicyKind::kProbBf), "prob-bf");
}

TEST(NoAccessControl, EveryoneGetsEverything) {
  sim::Scenario scenario(
      base_config(31, sim::PolicyKind::kNoAccessControl));
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
  // With no enforcement anywhere, attackers retrieve content freely.
  EXPECT_GT(metrics.attackers.delivery_ratio(), 0.9);
}

TEST(ClientSideAc, AttackersWasteBandwidthButClientsDecrypt) {
  sim::Scenario scenario(base_config(32, sim::PolicyKind::kClientSideAc));
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
  // The defining weakness (paper Section 1): unauthorized users still
  // pull (encrypted) content — pure bandwidth waste / DDoS exposure.
  EXPECT_GT(metrics.attackers.received, 0u);
  // No router does any crypto.
  EXPECT_EQ(metrics.edge_ops.sig_verifications, 0u);
  EXPECT_EQ(metrics.core_ops.sig_verifications, 0u);
}

TEST(PerRequestAuth, NoCacheReuseForProtectedContent) {
  sim::Scenario scenario(
      base_config(33, sim::PolicyKind::kPerRequestAuth));
  const auto& metrics = scenario.run();
  // Aggregated bystanders are not served (they were never authenticated),
  // so the client delivery ratio dips below TACTIC's — part of this
  // baseline's cost.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.80);
  // Every delivered protected chunk was served (and verified) by the
  // provider — no cache ever answers.  Allow a handful in flight at the
  // measurement cutoff.
  EXPECT_EQ(metrics.cs_hits, 0u);
  EXPECT_NEAR(static_cast<double>(metrics.clients.received),
              static_cast<double>(metrics.provider_content_served),
              static_cast<double>(metrics.clients.received) * 0.01 + 10);
  EXPECT_GT(metrics.provider_sig_verifications, 0u);
  // Attackers blocked at the provider.
  EXPECT_EQ(metrics.attackers.received, 0u);
}

TEST(PerRequestAuth, ProviderBurdenExceedsTactic) {
  const sim::Metrics auth_metrics =
      sim::Scenario(base_config(34, sim::PolicyKind::kPerRequestAuth)).run();
  const sim::Metrics tactic_metrics =
      sim::Scenario(base_config(34, sim::PolicyKind::kTactic)).run();
  // TACTIC's provider verifies a handful of tags; the always-online
  // baseline verifies per request.
  EXPECT_GT(auth_metrics.provider_sig_verifications,
            10 * std::max<std::uint64_t>(
                     1, tactic_metrics.provider_sig_verifications));
}

TEST(ProbBf, RouterCryptoPerRequest) {
  sim::Scenario scenario(base_config(35, sim::PolicyKind::kProbBf));
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.9);
  // Attackers (not in the authorized set) are filtered at the edge.
  EXPECT_EQ(metrics.attackers.received, 0u);
  // The per-hop verification burden: at least one signature verification
  // per delivered chunk at the edge alone.
  EXPECT_GE(metrics.edge_ops.sig_verifications, metrics.clients.received);
}

TEST(ProbBf, TacticDoesFarFewerVerifications) {
  const sim::Metrics prob_metrics =
      sim::Scenario(base_config(36, sim::PolicyKind::kProbBf)).run();
  const sim::Metrics tactic_metrics =
      sim::Scenario(base_config(36, sim::PolicyKind::kTactic)).run();
  const std::uint64_t prob_total =
      prob_metrics.edge_ops.sig_verifications +
      prob_metrics.core_ops.sig_verifications;
  const std::uint64_t tactic_total =
      tactic_metrics.edge_ops.sig_verifications +
      tactic_metrics.core_ops.sig_verifications;
  // TACTIC replaces per-request verification with BF lookups; the gap is
  // orders of magnitude.
  EXPECT_GT(prob_total, 50 * std::max<std::uint64_t>(1, tactic_total));
}

TEST(Tactic, CachesStayUsableUnlikePerRequestAuth) {
  const sim::Metrics tactic_metrics =
      sim::Scenario(base_config(37, sim::PolicyKind::kTactic)).run();
  EXPECT_GT(tactic_metrics.cs_hits, 0u);
  // And the provider serves strictly less than everything delivered.
  EXPECT_LT(tactic_metrics.provider_content_served,
            tactic_metrics.clients.received);
}

}  // namespace
}  // namespace tactic::baselines
