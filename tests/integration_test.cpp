// Scenario-level integration tests: the system invariants the paper's
// evaluation rests on, checked over full runs of the real stack
// (crypto + Bloom + NDN + topology + TACTIC + workload).

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace tactic::sim {
namespace {

using event::kSecond;

ScenarioConfig fast_topo1(std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.topology = topology::paper_topology(1);
  config.provider.key_bits = 512;  // fast setup; semantics identical
  config.duration = 30 * kSecond;
  config.seed = seed;
  config.attacker.think_time_mean = 2 * kSecond;  // denser attack traffic
  return config;
}

TEST(Integration, TableIVInvariant_ClientsHighAttackersZero) {
  Scenario scenario(fast_topo1(41));
  const Metrics& metrics = scenario.run();
  // Paper Table IV: clients ~0.9997+, attackers ~0-0.78%.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.99);
  EXPECT_LT(metrics.attackers.delivery_ratio(), 0.01);
  EXPECT_GT(metrics.clients.requested, 10000u);
  EXPECT_GT(metrics.attackers.requested, 50u);
}

TEST(Integration, DeterministicAcrossRuns) {
  const Metrics a = Scenario(fast_topo1(7)).run();
  const Metrics b = Scenario(fast_topo1(7)).run();
  EXPECT_EQ(a.clients.requested, b.clients.requested);
  EXPECT_EQ(a.clients.received, b.clients.received);
  EXPECT_EQ(a.attackers.requested, b.attackers.requested);
  EXPECT_EQ(a.edge_ops.bf_lookups, b.edge_ops.bf_lookups);
  EXPECT_EQ(a.edge_ops.sig_verifications, b.edge_ops.sig_verifications);
  EXPECT_EQ(a.link_bytes_sent, b.link_bytes_sent);
}

TEST(Integration, SeedsChangeOutcomes) {
  const Metrics a = Scenario(fast_topo1(1)).run();
  const Metrics b = Scenario(fast_topo1(2)).run();
  EXPECT_NE(a.clients.requested, b.clients.requested);
}

TEST(Integration, Fig7Invariant_LookupsDominateVerifications) {
  Scenario scenario(fast_topo1(42));
  const Metrics& metrics = scenario.run();
  // Fig. 7: BF lookups (cheap) happen orders of magnitude more often than
  // signature verifications (expensive) at the edge.
  EXPECT_GT(metrics.edge_ops.bf_lookups, 1000u);
  EXPECT_GT(metrics.edge_ops.bf_lookups,
            100 * std::max<std::uint64_t>(
                      1, metrics.edge_ops.sig_verifications));
  // Core routers do drastically less work than edge routers (request
  // aggregation + cooperation), per the paper's Fig. 7 discussion.
  EXPECT_LT(metrics.core_ops.bf_lookups, metrics.edge_ops.bf_lookups / 10);
}

TEST(Integration, Fig6Invariant_TagRatesTrackValidity) {
  // Shorter tag validity means more frequent re-registration (paper
  // Fig. 6 inset: 10 s vs 100 s).  Over a 30 s run the first-touch
  // registrations are a fixed floor; the re-registration component must
  // decrease monotonically with the validity period.
  auto tags_requested_at = [](event::Time validity) {
    ScenarioConfig config = fast_topo1(43);
    config.provider.tag_validity = validity;
    return Scenario(config).run().clients.tags_requested;
  };
  const std::uint64_t te5 = tags_requested_at(5 * kSecond);
  const std::uint64_t te10 = tags_requested_at(10 * kSecond);
  const std::uint64_t te1000 = tags_requested_at(1000 * kSecond);
  EXPECT_GT(te5, te10);
  EXPECT_GT(te10, te1000);
  EXPECT_GT(static_cast<double>(te5),
            1.3 * static_cast<double>(te1000));
}

TEST(Integration, TagChurnDrivesBloomInsertions) {
  Scenario scenario(fast_topo1(44));
  const Metrics& metrics = scenario.run();
  // Each issued tag is inserted at (at least) the issuing client's edge
  // router when the registration response passes it.
  EXPECT_GE(metrics.edge_ops.bf_insertions, metrics.clients.tags_received);
}

TEST(Integration, SmallBloomResetsMoreThanLarge) {
  ScenarioConfig small_bf = fast_topo1(45);
  small_bf.tactic.bloom.capacity = 25;
  ScenarioConfig large_bf = fast_topo1(45);
  large_bf.tactic.bloom.capacity = 2500;

  const Metrics small = Scenario(small_bf).run();
  const Metrics large = Scenario(large_bf).run();
  // Table V's trend: growing the BF eliminates (nearly) all resets.
  EXPECT_GT(small.edge_ops.bf_resets, large.edge_ops.bf_resets);
  EXPECT_GT(small.edge_ops.bf_resets, 0u);
}

TEST(Integration, ResetsForceReverification) {
  ScenarioConfig config = fast_topo1(46);
  config.tactic.bloom.capacity = 25;  // frequent resets
  const Metrics churning = Scenario(config).run();

  ScenarioConfig stable = fast_topo1(46);
  stable.tactic.bloom.capacity = 5000;  // never resets in 30 s
  const Metrics quiet = Scenario(stable).run();

  // After each edge reset, tags re-enter with F = 0 and must be
  // re-vouched upstream; total verification work grows.
  const std::uint64_t churn_verifies =
      churning.edge_ops.sig_verifications +
      churning.core_ops.sig_verifications +
      churning.provider_sig_verifications;
  const std::uint64_t quiet_verifies =
      quiet.edge_ops.sig_verifications + quiet.core_ops.sig_verifications +
      quiet.provider_sig_verifications;
  EXPECT_GT(churn_verifies, quiet_verifies);
}

TEST(Integration, NoLinkOverloadInSteadyState) {
  Scenario scenario(fast_topo1(47));
  const Metrics& metrics = scenario.run();
  // Drop-tail losses should be a negligible fraction of traffic.
  EXPECT_LT(metrics.link_frames_dropped, metrics.clients.requested / 100);
}

TEST(Integration, CachesServeRepeatTraffic) {
  Scenario scenario(fast_topo1(48));
  const Metrics& metrics = scenario.run();
  EXPECT_GT(metrics.cache_hit_ratio(), 0.02);
  EXPECT_LT(metrics.provider_content_served, metrics.clients.received);
}

TEST(Integration, ZeroAttackersConfigWorks) {
  ScenarioConfig config = fast_topo1(49);
  config.topology.attackers = 0;
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  EXPECT_EQ(metrics.attackers.requested, 0u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.99);
}

TEST(Integration, PublicContentNeedsNoTags) {
  ScenarioConfig config = fast_topo1(50);
  config.provider.catalog.public_fraction = 1.0;  // everything public
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.99);
  // No protected prefixes -> no registrations ever needed.
  EXPECT_EQ(metrics.clients.tags_requested, 0u);
  // Attackers legitimately read public content; that is not a breach.
  EXPECT_GT(metrics.attackers.delivery_ratio(), 0.5);
}

TEST(Integration, RunTwiceThrows) {
  Scenario scenario(fast_topo1(51));
  scenario.run();
  EXPECT_THROW(scenario.run(), std::logic_error);
}

TEST(Integration, CachedContentSurvivesProviderOutage) {
  // The paper's core availability argument: clients with valid tags keep
  // retrieving *cached* content even when the provider (the would-be
  // always-online authentication server) is unreachable.
  ScenarioConfig config = fast_topo1(52);
  config.duration = 40 * kSecond;
  // Tags outlive the outage so only content availability is at stake.
  config.provider.tag_validity = 120 * kSecond;
  // One-shot requests: retrying dead-provider chunks through backoff only
  // throttles the request stream this test measures cache service with.
  config.client.max_retries = 0;
  Scenario scenario(config);

  // Count deliveries before/after the outage begins.
  const event::Time cut_at = 20 * kSecond;
  std::uint64_t after_cut = 0;
  for (auto& client : scenario.clients()) {
    client->on_latency_sample = [&, base = client->on_latency_sample](
                                    event::Time when, double latency) {
      if (base) base(when, latency);
      if (when > cut_at) ++after_cut;
    };
  }
  scenario.scheduler().schedule(cut_at, [&] {
    for (std::size_t i = 0; i < scenario.providers().size(); ++i) {
      const net::NodeId provider = scenario.network().providers()[i];
      scenario.set_adjacency_up(
          provider, scenario.network().gateway_of(provider), false,
          /*reconverge=*/false);
    }
  });
  scenario.run();
  // In-network caches keep a meaningful share of traffic alive.
  EXPECT_GT(after_cut, 1000u);
}

TEST(Integration, RoutingReconvergesAroundCoreFailure) {
  ScenarioConfig config = fast_topo1(53);
  config.duration = 40 * kSecond;
  Scenario scenario(config);

  // At t=20s, cut every adjacency of the busiest core router and let the
  // routing reconverge; delivery must recover.
  scenario.scheduler().schedule(20 * kSecond, [&] {
    net::NodeId busiest = scenario.network().core_routers()[0];
    std::uint64_t best = 0;
    for (const net::NodeId id : scenario.network().core_routers()) {
      const std::uint64_t seen =
          scenario.network().node(id).counters().interests_received;
      if (seen > best) {
        best = seen;
        busiest = id;
      }
    }
    for (net::NodeId other = 0; other < scenario.network().node_count();
         ++other) {
      if (other == busiest) continue;
      try {
        scenario.set_adjacency_up(busiest, other, false,
                                  /*reconverge=*/false);
      } catch (const std::invalid_argument&) {
      }
    }
    // One reconvergence pass after the failure is detected.
    scenario.reconverge();
  });
  const Metrics& metrics = scenario.run();
  // Some requests die during the outage window, but the system recovers:
  // overall delivery stays high.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, InvariantsHoldOnAllPaperTopologies) {
  ScenarioConfig config;
  config.topology = topology::paper_topology(GetParam());
  config.provider.key_bits = 512;
  config.duration = 12 * kSecond;
  config.seed = 60 + static_cast<std::uint64_t>(GetParam());
  config.attacker.think_time_mean = 2 * kSecond;
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.98);
  EXPECT_LT(metrics.attackers.delivery_ratio(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, TopologySweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tactic::sim
