// Tests for the adaptive overload-control layer: the gradient admission
// controller and per-face outlier quarantine as units, the log-bucket
// quantile sketch backing the wait-time percentiles, and the scenario
// contracts — adaptive knobs with the layer disabled are bit-identical
// to the static overload model, adaptive without overload is inert,
// kRouterOverloaded NACKs propagate through the multi-hop edge chain to
// clients whose backoff stays clamped, and everything is deterministic
// across double runs under faults + overload + adaptive.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>

#include "sim/scenario.hpp"
#include "tactic/adaptive.hpp"
#include "testing/fingerprint.hpp"
#include "testing/invariants.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tactic {
namespace {

using event::kMillisecond;
using event::kSecond;

// ---------------------------------------------------------------------------
// QuantileHistogram
// ---------------------------------------------------------------------------

TEST(QuantileHistogram, EmptyAndZeroBucket) {
  util::QuantileHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.quantile(0.5), 0.0);

  // x <= 0 lands in the zero bucket whose representative is exactly 0.
  hist.add(0.0);
  hist.add(-1.0);
  hist.add(8.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.quantile(0.0), 0.0);
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  EXPECT_GT(hist.quantile(1.0), 0.0);
  // Sum (and so the mean) is exact, not bucketed.
  EXPECT_DOUBLE_EQ(hist.sum(), 7.0);
}

TEST(QuantileHistogram, QuantilesWithinBucketResolution) {
  util::QuantileHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.add(static_cast<double>(i));
  // Log-bucketed: each estimate is the midpoint of the sample's bucket,
  // so it tracks the exact quantile within the bucket's relative width.
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 0.25 * 50.0);
  EXPECT_NEAR(hist.quantile(0.95), 95.0, 0.25 * 95.0);
  EXPECT_NEAR(hist.quantile(0.99), 99.0, 0.25 * 99.0);
  // Monotone in q.
  EXPECT_LE(hist.quantile(0.5), hist.quantile(0.95));
  EXPECT_LE(hist.quantile(0.95), hist.quantile(0.99));
}

TEST(QuantileHistogram, MergeMatchesCombinedStream) {
  util::QuantileHistogram left, right, combined;
  util::Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_double() * 1e-2;  // wait-time scale
    (i % 2 == 0 ? left : right).add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.sum(), combined.sum());
  // Bucket-wise merge is exact: every quantile agrees, not just nearly.
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileHistogram, ResetClears) {
  util::QuantileHistogram hist;
  hist.add(1.0);
  hist.reset();
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// GradientController
// ---------------------------------------------------------------------------

core::AdaptiveConfig unit_config() {
  core::AdaptiveConfig config;
  config.enabled = true;
  config.sample_window = 100 * kMillisecond;
  config.min_window_samples = 4;
  config.probe_interval_windows = 1000;  // out of the way unless probed
  config.probe_jitter_windows = 0;
  config.min_limit = 4;
  config.max_limit = 256;
  config.watermark_fraction = 0.5;
  return config;
}

// Fills one sample window with identical sojourns and closes it by
// recording the first sample of the next window.
void feed_window(core::GradientController& controller, event::Time start,
                 event::Time sojourn, int samples) {
  for (int i = 0; i < samples; ++i) controller.record(start, sojourn);
  controller.record(start + 100 * kMillisecond, sojourn);
}

TEST(GradientController, FirstWindowSeedsBaselineAndGrowsLimit) {
  const core::AdaptiveConfig config = unit_config();
  util::Rng rng(1);
  core::GradientController controller(config, 16, &rng);
  EXPECT_EQ(controller.concurrency_limit(), 16u);
  EXPECT_EQ(controller.shed_watermark(), 8u);  // fraction of the limit

  feed_window(controller, 0, kMillisecond, 8);
  EXPECT_EQ(controller.windows_closed(), 1u);
  // The seeding window measures p50 == minRTT, so the gradient is the
  // full headroom and the limit takes a growth step (gradient * limit
  // + sqrt(limit) = 1.1 * 16 + 4).
  EXPECT_NEAR(controller.gradient(), 1.0 + config.headroom, 1e-9);
  EXPECT_GT(controller.min_rtt_s(), 0.0);
  EXPECT_EQ(controller.concurrency_limit(), 22u);
  EXPECT_EQ(controller.shed_watermark(), 11u);
}

TEST(GradientController, CongestionClampsGradientAndShrinksLimit) {
  util::Rng rng(1);
  core::GradientController controller(unit_config(), 64, &rng);
  feed_window(controller, 0, kMillisecond, 8);  // baseline ~1 ms
  const std::size_t grown = controller.concurrency_limit();

  // Sojourns blow up 100x: the raw gradient would be ~0.011 but the
  // per-window clamp holds it at gradient_min so one bad window cannot
  // collapse the limit past one halving (plus the additive sqrt term).
  feed_window(controller, 200 * kMillisecond, 100 * kMillisecond, 8);
  EXPECT_DOUBLE_EQ(controller.gradient(), 0.5);
  const std::size_t expected = static_cast<std::size_t>(std::llround(
      0.5 * static_cast<double>(grown) +
      std::sqrt(static_cast<double>(grown))));
  EXPECT_EQ(controller.concurrency_limit(), expected);
}

TEST(GradientController, RepeatedFastWindowsSaturateAtMaxLimit) {
  util::Rng rng(1);
  core::GradientController controller(unit_config(), 16, &rng);
  for (int w = 0; w < 20; ++w) {
    feed_window(controller, w * 200 * kMillisecond, kMillisecond, 8);
  }
  EXPECT_EQ(controller.concurrency_limit(), 256u);
  EXPECT_EQ(controller.shed_watermark(), 128u);
}

TEST(GradientController, UninformativeWindowCarriesNoSignal) {
  util::Rng rng(1);
  core::GradientController controller(unit_config(), 16, &rng);
  // Three samples < min_window_samples: the window closes but the limit,
  // gradient, and baseline stay untouched.
  feed_window(controller, 0, kMillisecond, 2);
  EXPECT_EQ(controller.windows_closed(), 1u);
  EXPECT_EQ(controller.concurrency_limit(), 16u);
  EXPECT_DOUBLE_EQ(controller.gradient(), 1.0);
  EXPECT_DOUBLE_EQ(controller.min_rtt_s(), 0.0);
}

TEST(GradientController, ProbeTightensWatermarkOnlyThenRemeasures) {
  core::AdaptiveConfig config = unit_config();
  config.probe_interval_windows = 2;
  util::Rng rng(1);
  core::GradientController controller(config, 64, &rng);

  feed_window(controller, 0, kMillisecond, 8);
  EXPECT_FALSE(controller.probing());
  feed_window(controller, 200 * kMillisecond, kMillisecond, 8);
  // Two informative windows elapsed: the open window is a minRTT probe.
  ASSERT_TRUE(controller.probing());
  // During the probe only the unvouched watermark drops to min_limit;
  // the hard capacity keeps its current value (vouched traffic is never
  // probe-shed).
  EXPECT_EQ(controller.shed_watermark(), config.min_limit);
  const std::size_t limit_during_probe = controller.concurrency_limit();
  EXPECT_GT(limit_during_probe, config.min_limit);

  // Fill the probe window [300 ms, 400 ms) with slower sojourns (it
  // already holds the previous feed's closing sample) and close it.
  for (int i = 0; i < 7; ++i) {
    controller.record(310 * kMillisecond, 2 * kMillisecond);
  }
  controller.record(450 * kMillisecond, 2 * kMillisecond);
  EXPECT_FALSE(controller.probing());
  EXPECT_EQ(controller.minrtt_probes(), 1u);
  // The probe window's p50 replaced the baseline.
  EXPECT_NEAR(controller.min_rtt_s(), event::to_seconds(2 * kMillisecond),
              0.3 * event::to_seconds(2 * kMillisecond));
}

TEST(GradientController, ResetPreservesLifetimeCounters) {
  core::AdaptiveConfig config = unit_config();
  config.probe_interval_windows = 2;
  util::Rng rng(1);
  core::GradientController controller(config, 16, &rng);
  feed_window(controller, 0, kMillisecond, 8);
  feed_window(controller, 200 * kMillisecond, kMillisecond, 8);
  ASSERT_TRUE(controller.probing());
  for (int i = 0; i < 7; ++i) {
    controller.record(310 * kMillisecond, kMillisecond);
  }
  controller.record(450 * kMillisecond, kMillisecond);  // closes the probe
  const std::uint64_t windows = controller.windows_closed();
  const std::uint64_t probes = controller.minrtt_probes();
  ASSERT_GT(windows, 0u);
  ASSERT_EQ(probes, 1u);

  controller.reset();  // crash recovery
  EXPECT_EQ(controller.concurrency_limit(), 16u);
  EXPECT_DOUBLE_EQ(controller.gradient(), 1.0);
  EXPECT_DOUBLE_EQ(controller.min_rtt_s(), 0.0);
  EXPECT_FALSE(controller.probing());
  // Harvested totals stay cumulative across restarts.
  EXPECT_EQ(controller.windows_closed(), windows);
  EXPECT_EQ(controller.minrtt_probes(), probes);
}

// ---------------------------------------------------------------------------
// FaceOutlierDetector
// ---------------------------------------------------------------------------

core::AdaptiveConfig quarantine_config() {
  core::AdaptiveConfig config;
  config.enabled = true;
  config.quarantine_consecutive = 3;
  config.quarantine_base = 2 * kSecond;
  config.quarantine_factor = 2.0;
  config.quarantine_max = 8 * kSecond;
  config.quarantine_jitter = 0.0;  // exact interval boundaries
  return config;
}

TEST(FaceOutlierDetector, EjectsAfterConsecutiveBadVerdicts) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  const std::uint64_t face = 7;

  detector.on_bad_verdict(face, 0);
  detector.on_bad_verdict(face, 1);
  EXPECT_TRUE(detector.admits(face, 2));  // two strikes: still in
  detector.on_bad_verdict(face, 2);
  EXPECT_EQ(detector.ejections(), 1u);
  EXPECT_FALSE(detector.admits(face, 3));
  EXPECT_EQ(detector.quarantined_faces(3), 1u);
  // The interval is exactly quarantine_base with jitter off: the first
  // admit at/after the boundary is the probation probe.
  EXPECT_FALSE(detector.admits(face, 2 + 2 * kSecond - 1));
  EXPECT_TRUE(detector.admits(face, 2 + 2 * kSecond));
  EXPECT_EQ(detector.probes(), 1u);
  EXPECT_EQ(detector.quarantined_faces(2 + 2 * kSecond), 0u);
}

TEST(FaceOutlierDetector, GoodVerdictBreaksTheStreak) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  const std::uint64_t face = 7;
  detector.on_bad_verdict(face, 0);
  detector.on_bad_verdict(face, 1);
  detector.on_good_verdict(face, 2);  // resets consecutive_bad
  detector.on_bad_verdict(face, 3);
  detector.on_bad_verdict(face, 4);
  EXPECT_EQ(detector.ejections(), 0u);
  detector.on_bad_verdict(face, 5);  // third consecutive
  EXPECT_EQ(detector.ejections(), 1u);
}

TEST(FaceOutlierDetector, FailedProbeReEjectsWithGrowingInterval) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  const std::uint64_t face = 7;
  for (int i = 0; i < 3; ++i) detector.on_bad_verdict(face, 0);
  ASSERT_FALSE(detector.admits(face, 1));

  // First probe fails: straight back out for base * factor = 4 s.
  event::Time t = 2 * kSecond;
  ASSERT_TRUE(detector.admits(face, t));
  detector.on_bad_verdict(face, t);
  EXPECT_EQ(detector.ejections(), 2u);
  EXPECT_FALSE(detector.admits(face, t + 4 * kSecond - 1));
  ASSERT_TRUE(detector.admits(face, t + 4 * kSecond));

  // Second failure: 8 s, the quarantine_max ceiling...
  t += 4 * kSecond;
  detector.on_bad_verdict(face, t);
  EXPECT_EQ(detector.ejections(), 3u);
  ASSERT_TRUE(detector.admits(face, t + 8 * kSecond));

  // ...which holds for every later failure (no unbounded exponent).
  t += 8 * kSecond;
  detector.on_bad_verdict(face, t);
  EXPECT_FALSE(detector.admits(face, t + 8 * kSecond - 1));
  EXPECT_TRUE(detector.admits(face, t + 8 * kSecond));
}

TEST(FaceOutlierDetector, SuccessfulProbeReadmitsAndDecaysHistory) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  const std::uint64_t face = 7;
  for (int i = 0; i < 3; ++i) detector.on_bad_verdict(face, 0);
  // Fail one probe so the ejection history reaches 2.
  detector.on_bad_verdict(face, 2 * kSecond);
  ASSERT_EQ(detector.ejections(), 2u);

  // The next probe succeeds: readmitted, and one level of history
  // decays — the next ejection backs off from base * factor, not
  // base * factor^2.
  const event::Time healed = 2 * kSecond + 4 * kSecond;
  ASSERT_TRUE(detector.admits(face, healed));
  detector.on_good_verdict(face, healed);
  EXPECT_EQ(detector.readmissions(), 1u);
  EXPECT_TRUE(detector.admits(face, healed + 1));

  for (int i = 0; i < 3; ++i) detector.on_bad_verdict(face, healed + 1);
  EXPECT_EQ(detector.ejections(), 3u);
  EXPECT_FALSE(detector.admits(face, healed + 1 + 4 * kSecond - 1));
  EXPECT_TRUE(detector.admits(face, healed + 1 + 4 * kSecond));
}

TEST(FaceOutlierDetector, StaleVerdictsInsideQuarantineAreIgnored) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  const std::uint64_t face = 7;
  for (int i = 0; i < 3; ++i) detector.on_bad_verdict(face, 0);
  ASSERT_EQ(detector.ejections(), 1u);
  // Verdicts for traffic admitted before the ejection land mid-interval;
  // neither extends the quarantine nor heals it.
  detector.on_bad_verdict(face, kSecond);
  detector.on_good_verdict(face, kSecond);
  EXPECT_EQ(detector.ejections(), 1u);
  EXPECT_EQ(detector.readmissions(), 0u);
  EXPECT_FALSE(detector.admits(face, 2 * kSecond - 1));
  EXPECT_TRUE(detector.admits(face, 2 * kSecond));
}

TEST(FaceOutlierDetector, ZeroConsecutiveDisablesQuarantine) {
  core::AdaptiveConfig config = quarantine_config();
  config.quarantine_consecutive = 0;
  util::Rng rng(1);
  core::FaceOutlierDetector detector(config, &rng);
  for (int i = 0; i < 100; ++i) detector.on_bad_verdict(7, i);
  EXPECT_EQ(detector.ejections(), 0u);
  EXPECT_TRUE(detector.admits(7, 200));
}

TEST(FaceOutlierDetector, ResetClearsFacesButKeepsLifetimeCounters) {
  util::Rng rng(1);
  core::FaceOutlierDetector detector(quarantine_config(), &rng);
  for (int i = 0; i < 3; ++i) detector.on_bad_verdict(7, 0);
  ASSERT_FALSE(detector.admits(7, 1));
  detector.reset();  // crash recovery: per-face memory dies
  EXPECT_TRUE(detector.admits(7, 1));
  EXPECT_EQ(detector.quarantined_faces(1), 0u);
  EXPECT_EQ(detector.ejections(), 1u);  // the total survives
}

// ---------------------------------------------------------------------------
// Scenario helpers
// ---------------------------------------------------------------------------

sim::ScenarioConfig small_tactic(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.topology.core_routers = 8;
  config.topology.edge_routers = 3;
  config.topology.providers = 2;
  config.topology.clients = 4;
  config.topology.attackers = 3;
  config.topology.core_cs_capacity = 200;
  config.provider.key_bits = 512;  // fast setup; semantics identical
  config.duration = 30 * kSecond;
  config.seed = seed;
  return config;
}

/// A churning forged-tag flood (fresh forgery per Interest) that neither
/// the BF nor the negative-tag cache absorbs — the brute-force verifier
/// DoS the adaptive layer exists to survive.
sim::ScenarioConfig churn_flood_config(std::uint64_t seed) {
  sim::ScenarioConfig config = small_tactic(seed);
  config.attacker.think_time_mean = 100 * kMillisecond;
  config.attacker.window = 80;
  config.attacker.interest_lifetime = 50 * kMillisecond;
  config.attacker_mix = {workload::AttackerMode::kForgedTagChurn};
  config.compute = core::ComputeModel::deterministic();
  config.topology.core_link.bits_per_second = 4e6;
  return config;
}

void enable_overload(sim::ScenarioConfig& config) {
  core::OverloadConfig& ov = config.tactic.overload;
  ov.enabled = true;
  ov.queue_capacity = 64;
  ov.shed_watermark = 32;
  ov.neg_cache_capacity = 512;
  ov.neg_cache_ttl = 5 * kSecond;
  ov.policer_rate = 0.0;
}

std::uint64_t adaptive_activity(const sim::Metrics& metrics) {
  std::uint64_t total = 0;
  for (const sim::RouterOps* ops : {&metrics.edge_ops, &metrics.core_ops}) {
    total += ops->adaptive_windows + ops->adaptive_minrtt_probes +
             ops->quarantine_sheds + ops->quarantine_ejections +
             ops->quarantine_probes + ops->quarantine_readmissions +
             ops->adaptive_limit;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Scenario contracts
// ---------------------------------------------------------------------------

// The layer visibly engages under a churning flood: windows close, the
// flood faces are ejected, and their traffic dies at admission without
// the verdict quantiles recording it.
TEST(AdaptiveLayer, ChurningFloodTripsQuarantine) {
  sim::ScenarioConfig config = churn_flood_config(31);
  enable_overload(config);
  config.tactic.adaptive.enabled = true;

  const sim::Metrics metrics = sim::Scenario(config).run();
  EXPECT_GT(metrics.edge_ops.adaptive_windows, 0u);
  EXPECT_GT(metrics.edge_ops.quarantine_ejections, 0u);
  EXPECT_GT(metrics.edge_ops.quarantine_sheds, 0u);
  EXPECT_GT(metrics.edge_ops.quarantine_probes, 0u);
  EXPECT_GT(metrics.edge_ops.adaptive_limit, 0u);
  // The wait-quantile sketch tracked the sojourns that were admitted.
  EXPECT_FALSE(metrics.edge_ops.validation_wait_hist.empty());
  EXPECT_LE(metrics.edge_ops.validation_wait_p50_s(),
            metrics.edge_ops.validation_wait_p95_s());
  EXPECT_LE(metrics.edge_ops.validation_wait_p95_s(),
            metrics.edge_ops.validation_wait_p99_s());
  // Attackers stayed blocked; clients stayed served.
  EXPECT_EQ(metrics.attackers.received, 0u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

// Every adaptive knob set but `enabled` false must leave the run
// bit-identical to the static overload layer (the ci/parity.sh
// contract, pinned here as a unit test).
TEST(AdaptiveLayer, DisabledAdaptiveIsBitIdenticalToStaticOverload) {
  sim::ScenarioConfig plain = churn_flood_config(32);
  enable_overload(plain);

  sim::ScenarioConfig knobs = plain;
  core::AdaptiveConfig& ad = knobs.tactic.adaptive;
  ad.enabled = false;
  ad.sample_window = 50 * kMillisecond;
  ad.min_window_samples = 2;
  ad.probe_interval_windows = 3;
  ad.headroom = 0.5;
  ad.min_limit = 2;
  ad.max_limit = 32;
  ad.quarantine_consecutive = 1;
  ad.quarantine_base = kSecond;

  const sim::Metrics a = sim::Scenario(plain).run();
  const sim::Metrics b = sim::Scenario(knobs).run();
  EXPECT_EQ(testing::fingerprint(a), testing::fingerprint(b));
  EXPECT_EQ(adaptive_activity(b), 0u);
}

// Adaptive on top of a disabled overload layer has nothing to control:
// the run is bit-identical to a config that never mentions either.
TEST(AdaptiveLayer, AdaptiveWithoutOverloadIsInert) {
  const sim::ScenarioConfig plain = small_tactic(33);
  sim::ScenarioConfig knobs = plain;
  knobs.tactic.adaptive.enabled = true;

  const sim::Metrics a = sim::Scenario(plain).run();
  const sim::Metrics b = sim::Scenario(knobs).run();
  EXPECT_EQ(testing::fingerprint(a), testing::fingerprint(b));
  EXPECT_EQ(adaptive_activity(b), 0u);
}

// kRouterOverloaded NACK propagation through the multi-hop chain
// (router -> edge -> AP -> client): with the gradient controller pinned
// tight and slow verification, legitimate unvouched traffic gets shed,
// the NACK crosses the edge unsuppressed, and the client backs off with
// the retry_backoff_max ceiling keeping the exponential clamped.
TEST(AdaptiveLayer, OverloadNackCrossesEdgeChainWithClampedBackoff) {
  sim::ScenarioConfig config = small_tactic(34);
  config.topology.attackers = 0;
  config.topology.clients = 8;
  config.topology.aps_per_edge = 2;
  config.provider.tag_validity = 3 * kSecond;  // renewal churn
  config.tactic.bloom.capacity = 8;            // vouching rarely sticks
  core::ComputeModel::Params compute;          // slow IoT-class verifier
  compute.bf_lookup = {9.14e-7, 0.0};
  compute.bf_insert = {3.35e-7, 0.0};
  compute.sig_verify = {8e-3, 0.0};
  compute.neg_lookup = {1.5e-7, 0.0};
  config.compute = core::ComputeModel(compute);
  enable_overload(config);
  config.tactic.adaptive.enabled = true;
  config.tactic.adaptive.max_limit = 6;  // shed line stays within reach
  config.tactic.adaptive.min_limit = 2;
  config.tactic.adaptive.watermark_fraction = 0.34;
  // An absurd backoff factor: without the ceiling the first overload
  // retry would sit ~minutes out and delivery would collapse.
  config.client.max_retries = 10;
  config.client.retry_backoff_factor = 1e6;
  config.client.retry_backoff_max = kSecond;

  const sim::Metrics metrics = sim::Scenario(config).run();

  // Routers shed legitimate-but-unvouched traffic...
  EXPECT_GT(metrics.edge_ops.sheds_unvouched + metrics.edge_ops.sheds_queue_full +
                metrics.core_ops.sheds_unvouched +
                metrics.core_ops.sheds_queue_full,
            0u);
  // ...and the NACKs made it through the edge chain to the clients.
  EXPECT_GT(metrics.clients.overload_nacks, 0u);
  // Each one triggered a backoff-then-retry; the clamp kept the retries
  // inside the run (unclamped, every shed chunk would be abandoned).
  EXPECT_GT(metrics.clients.retransmissions, 0u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.9);
}

// Same seed + faults + overload + adaptive => identical fingerprint and
// trace chain, with the runtime invariants clean.
TEST(AdaptiveLayer, DoubleRunDeterminismWithFaultsAndFlood) {
  sim::ScenarioConfig config = churn_flood_config(35);
  config.duration = 20 * kSecond;
  enable_overload(config);
  config.tactic.adaptive.enabled = true;
  config.router_pit_capacity = 256;
  config.faults.edge_links.loss = 0.02;
  config.faults.crashes.push_back(
      {sim::CrashEvent::Target::kEdgeRouter, 0, 8 * kSecond, kSecond});

  auto run = [&config] {
    sim::Scenario scenario(config);
    testing::InvariantChecker checker(scenario);
    checker.arm();
    scenario.run();
    checker.finalize();
    EXPECT_TRUE(checker.ok()) << checker.report();
    return std::pair<std::string, std::string>{
        testing::fingerprint_digest(scenario.harvest()),
        checker.trace_digest()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace tactic
