// Tests for the workload layer: catalog naming/AL/encryption, the
// provider app (registration, serving, revocation), the Zipf-window
// client, and attacker strategies — each over a minimal live network.

#include <gtest/gtest.h>

#include <memory>

#include "sim/scenario.hpp"
#include "tactic/access_path.hpp"
#include "topology/network.hpp"
#include "workload/attacker_app.hpp"
#include "crypto/sha256.hpp"
#include "workload/catalog.hpp"
#include "workload/client_app.hpp"
#include "workload/provider_app.hpp"

namespace tactic::workload {
namespace {

using event::kSecond;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

CatalogParams small_catalog() {
  CatalogParams params;
  params.objects = 10;
  params.chunks_per_object = 5;
  params.chunk_size = 256;
  return params;
}

TEST(Catalog, NamesRoundTrip) {
  util::Rng rng(1);
  Catalog catalog(ndn::Name("/provider3"), small_catalog(), rng);
  const ndn::Name name = catalog.chunk_name(7, 3);
  EXPECT_EQ(name.to_uri(), "/provider3/obj7/c3");
  const auto parsed = catalog.parse(name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 7u);
  EXPECT_EQ(parsed->second, 3u);
}

TEST(Catalog, ParseRejectsForeignAndMalformed) {
  util::Rng rng(2);
  Catalog catalog(ndn::Name("/provider3"), small_catalog(), rng);
  EXPECT_FALSE(catalog.parse(ndn::Name("/other/obj1/c1")).has_value());
  EXPECT_FALSE(catalog.parse(ndn::Name("/provider3/obj1")).has_value());
  EXPECT_FALSE(catalog.parse(ndn::Name("/provider3/objX/c1")).has_value());
  EXPECT_FALSE(catalog.parse(ndn::Name("/provider3/obj99/c1")).has_value());
  EXPECT_FALSE(catalog.parse(ndn::Name("/provider3/obj1/c99")).has_value());
  EXPECT_FALSE(
      catalog.parse(ndn::Name("/provider3/register/u/1")).has_value());
}

TEST(Catalog, AccessLevelTiers) {
  util::Rng rng(3);
  CatalogParams params = small_catalog();
  params.public_fraction = 0.2;   // 2 public objects
  params.high_al_fraction = 0.3;  // 3 high-AL objects at the tail
  Catalog catalog(ndn::Name("/p"), params, rng);
  EXPECT_EQ(catalog.access_level(0), 0u);
  EXPECT_EQ(catalog.access_level(1), 0u);
  EXPECT_EQ(catalog.access_level(2), params.base_access_level);
  EXPECT_EQ(catalog.access_level(9), params.base_access_level + 1);
  EXPECT_EQ(catalog.access_level(7), params.base_access_level + 1);
}

TEST(Catalog, PlaintextDeterministicAndSized) {
  util::Rng rng(4);
  Catalog catalog(ndn::Name("/p"), small_catalog(), rng);
  const util::Bytes a = catalog.chunk_plaintext(1, 2);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a, catalog.chunk_plaintext(1, 2));
  EXPECT_NE(a, catalog.chunk_plaintext(1, 3));
}

TEST(Catalog, CiphertextDecryptsWithContentKey) {
  util::Rng rng(5);
  Catalog catalog(ndn::Name("/p"), small_catalog(), rng);
  const util::Bytes ct = catalog.chunk_ciphertext(2, 4);
  EXPECT_NE(ct, catalog.chunk_plaintext(2, 4));
  const std::uint64_t nonce =
      crypto::sha256_prefix64(catalog.chunk_name(2, 4).to_uri());
  EXPECT_EQ(crypto::aes128_ctr(catalog.content_key(), nonce, ct),
            catalog.chunk_plaintext(2, 4));
}

TEST(Catalog, EmptyCatalogThrows) {
  util::Rng rng(6);
  CatalogParams params;
  params.objects = 0;
  EXPECT_THROW(Catalog(ndn::Name("/p"), params, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Apps over a tiny scenario
// ---------------------------------------------------------------------------

sim::ScenarioConfig tiny_config(std::uint64_t seed = 5) {
  sim::ScenarioConfig config;
  config.topology.core_routers = 8;
  config.topology.edge_routers = 3;
  config.topology.providers = 2;
  config.topology.clients = 4;
  config.topology.attackers = 2;
  config.provider.catalog.objects = 10;
  config.provider.catalog.chunks_per_object = 5;
  config.provider.key_bits = 512;
  config.client.think_time_mean = 20 * event::kMillisecond;
  config.attacker.think_time_mean = 200 * event::kMillisecond;
  config.compute = core::ComputeModel::zero();
  config.duration = 25 * kSecond;
  config.seed = seed;
  return config;
}

TEST(ProviderApp, RegistersKeyAndProtectedPrefix) {
  sim::ScenarioConfig config = tiny_config();
  sim::Scenario scenario(config);
  EXPECT_EQ(scenario.anchors().pki.size(), 2u);
  EXPECT_TRUE(scenario.anchors().protected_prefixes.count("/provider0"));
  EXPECT_TRUE(scenario.anchors().protected_prefixes.count("/provider1"));
  EXPECT_EQ(scenario.providers()[0]->prefix().to_uri(), "/provider0");
  EXPECT_EQ(scenario.providers()[0]->key_locator(), "/provider0/KEY/1");
}

TEST(ProviderApp, FullyPublicCatalogIsNotProtected) {
  sim::ScenarioConfig config = tiny_config();
  config.provider.catalog.public_fraction = 1.0;
  sim::Scenario scenario(config);
  EXPECT_TRUE(scenario.anchors().protected_prefixes.empty());
}

TEST(ProviderApp, IssuesTagsToEnrolledClients) {
  sim::ScenarioConfig config = tiny_config();
  sim::Scenario scenario(config);
  scenario.run();
  std::uint64_t issued = 0;
  for (auto& provider : scenario.providers()) {
    issued += provider->counters().tags_issued;
  }
  EXPECT_GT(issued, 0u);
}

TEST(ClientApp, StreamsChunksAndRefreshesTags) {
  sim::ScenarioConfig config = tiny_config();
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.clients.requested, 100u);
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
  // Tag validity 10 s over a 25 s run: every client re-registered.
  EXPECT_GE(metrics.clients.tags_requested,
            scenario.clients().size() * 2);
  EXPECT_EQ(metrics.clients.tags_received, metrics.clients.tags_requested);
}

TEST(ClientApp, WindowBoundsOutstandingRequests) {
  sim::ScenarioConfig config = tiny_config();
  config.client.window = 2;
  config.client.think_time_mean = 0;
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  // With a window of 2 and zero think time the client is RTT-bound; it
  // must still deliver nearly everything it asked for.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

TEST(ClientApp, RevokedClientStopsGettingTags) {
  sim::ScenarioConfig config = tiny_config();
  sim::Scenario scenario(config);
  // Revoke client 0 everywhere before the run starts.
  const std::string locator = workload::ProviderApp::client_key_locator(
      scenario.clients()[0]->label());
  for (auto& provider : scenario.providers()) {
    provider->issuer().revoke(locator);
  }
  scenario.run();
  EXPECT_EQ(scenario.clients()[0]->counters().tags_received, 0u);
  EXPECT_EQ(scenario.clients()[0]->counters().chunks_received, 0u);
  // Other clients are unaffected.
  EXPECT_GT(scenario.clients()[1]->counters().chunks_received, 0u);
}

TEST(ClientApp, LatencySamplesFeedTimeSeries) {
  sim::ScenarioConfig config = tiny_config();
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.latency.total_count(), 0u);
  EXPECT_GT(metrics.mean_latency(), 0.0);
  EXPECT_LT(metrics.mean_latency(), 1.0);
}

TEST(AttackerModes, NamesAreStable) {
  EXPECT_STREQ(to_string(AttackerMode::kNoTag), "no-tag");
  EXPECT_STREQ(to_string(AttackerMode::kForgedTag), "forged-tag");
  EXPECT_STREQ(to_string(AttackerMode::kExpiredTag), "expired-tag");
  EXPECT_STREQ(to_string(AttackerMode::kSharedTag), "shared-tag");
}

class AttackerModeSweep
    : public ::testing::TestWithParam<AttackerMode> {};

TEST_P(AttackerModeSweep, SingleModeNeverRetrievesContent) {
  sim::ScenarioConfig config = tiny_config(17);
  config.attacker_mix = {GetParam()};
  config.attacker.think_time_mean = 100 * event::kMillisecond;
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.attackers.requested, 10u);
  EXPECT_EQ(metrics.attackers.received, 0u)
      << "mode " << to_string(GetParam());
  // Clients keep working in the presence of the attack.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Threats, AttackerModeSweep,
    ::testing::Values(AttackerMode::kNoTag, AttackerMode::kForgedTag,
                      AttackerMode::kExpiredTag,
                      AttackerMode::kInsufficientAccessLevel,
                      AttackerMode::kWrongProvider));

TEST(AttackerApp, SharedTagSucceedsWithoutApEnforcement) {
  // Threat (e) with the access-path feature OFF (the paper's simulation
  // setting): a shared, genuinely valid tag retrieves content.
  sim::ScenarioConfig config = tiny_config(19);
  config.attacker_mix = {AttackerMode::kSharedTag};
  config.attacker.think_time_mean = 100 * event::kMillisecond;
  config.tactic.enforce_access_path = false;
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  EXPECT_GT(metrics.attackers.received, 0u);
}

TEST(AttackerApp, SharedTagBlockedByApEnforcement) {
  // Our implementation of the paper's future-work feature closes it.
  sim::ScenarioConfig config = tiny_config(19);
  config.attacker_mix = {AttackerMode::kSharedTag};
  config.attacker.think_time_mean = 100 * event::kMillisecond;
  config.tactic.enforce_access_path = true;
  sim::Scenario scenario(config);
  const auto& metrics = scenario.run();
  EXPECT_EQ(metrics.attackers.received, 0u);
  // Clients are location-consistent, so enforcement does not hurt them.
  EXPECT_GT(metrics.clients.delivery_ratio(), 0.95);
}

TEST(ProviderApp, RealKeyEncryptionWhenClientKeysKnown) {
  // End-to-end confidentiality machinery: a provider encrypts its content
  // key under a real client RSA key.
  util::Rng rng(23);
  const crypto::RsaKeyPair client_keys =
      crypto::generate_rsa_keypair(rng, 512);

  event::Scheduler sched;
  topology::Network net = topology::Network::empty(sched);
  const net::NodeId p =
      net.add_node(net::NodeKind::kProvider, "provider0", 0);
  core::TrustAnchors anchors;
  ProviderConfig config;
  config.catalog = small_catalog();
  config.key_bits = 512;
  ProviderApp provider(net.node(p), "/provider0", config, anchors,
                       util::Rng(24));
  provider.set_client_key_lookup(
      [&](const std::string& label) -> const crypto::RsaPublicKey* {
        return label == "client0" ? &client_keys.public_key : nullptr;
      });
  provider.issuer().enroll(ProviderApp::client_key_locator("client0"), 2);

  // Deliver a registration Interest straight to the provider app face.
  ndn::Interest reg;
  reg.name = provider.registration_name("client0", 1);
  const ndn::FaceId app_face =
      net.node(p).fib().lookup(reg.name)->next_hop();
  net.node(p).inject_from_app(app_face, std::move(reg));
  sched.run();
  EXPECT_EQ(provider.counters().key_encryptions, 1u);
  EXPECT_EQ(provider.counters().tags_issued, 1u);
}

}  // namespace
}  // namespace tactic::workload
