// Tests for the link layer: serialization delay, propagation, FIFO
// queueing, and drop-tail behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "event/scheduler.hpp"
#include "net/link.hpp"
#include "net/node.hpp"

namespace tactic::net {
namespace {

using event::kMillisecond;
using event::kSecond;
using event::Time;

TEST(NodeKind, Names) {
  EXPECT_STREQ(to_string(NodeKind::kClient), "client");
  EXPECT_STREQ(to_string(NodeKind::kEdgeRouter), "edge");
  EXPECT_STREQ(to_string(NodeKind::kCoreRouter), "core");
  EXPECT_STREQ(to_string(NodeKind::kProvider), "provider");
  EXPECT_TRUE(is_router(NodeKind::kEdgeRouter));
  EXPECT_TRUE(is_router(NodeKind::kCoreRouter));
  EXPECT_FALSE(is_router(NodeKind::kClient));
  EXPECT_FALSE(is_router(NodeKind::kAccessPoint));
}

TEST(LinkParams, PaperPresets) {
  const LinkParams core = core_link_params();
  EXPECT_DOUBLE_EQ(core.bits_per_second, 500e6);
  EXPECT_EQ(core.propagation_delay, kMillisecond);
  const LinkParams edge = edge_link_params();
  EXPECT_DOUBLE_EQ(edge.bits_per_second, 10e6);
  EXPECT_EQ(edge.propagation_delay, 2 * kMillisecond);
}

TEST(Link, SingleFrameDelay) {
  event::Scheduler sched;
  // 1 Mbps, 10 ms propagation: a 1000-byte frame serializes in 8 ms.
  Link link(sched, {1e6, 10 * kMillisecond, 10});
  Time arrival = -1;
  link.send(1000, [&] { arrival = sched.now(); });
  sched.run();
  EXPECT_EQ(arrival, 18 * kMillisecond);
  EXPECT_EQ(link.counters().frames_sent, 1u);
  EXPECT_EQ(link.counters().bytes_sent, 1000u);
}

TEST(Link, BackToBackFramesSerialize) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 10});
  std::vector<Time> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.send(1000, [&] { arrivals.push_back(sched.now()); });
  }
  sched.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1000-byte frame takes 8 ms on the wire; they queue FIFO.
  EXPECT_EQ(arrivals[0], 8 * kMillisecond);
  EXPECT_EQ(arrivals[1], 16 * kMillisecond);
  EXPECT_EQ(arrivals[2], 24 * kMillisecond);
}

TEST(Link, IdleGapsDoNotAccumulate) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 10});
  std::vector<Time> arrivals;
  link.send(1000, [&] { arrivals.push_back(sched.now()); });
  sched.schedule(100 * kMillisecond, [&] {
    link.send(1000, [&] { arrivals.push_back(sched.now()); });
  });
  sched.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], 108 * kMillisecond);  // restarts from idle
}

TEST(Link, DropTailWhenQueueFull) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 2});
  int delivered = 0;
  EXPECT_TRUE(link.send(1000, [&] { ++delivered; }));
  EXPECT_TRUE(link.send(1000, [&] { ++delivered; }));
  EXPECT_FALSE(link.send(1000, [&] { ++delivered; }));  // queue full
  EXPECT_EQ(link.counters().dropped_queue_full, 1u);
  EXPECT_EQ(link.counters().refused_link_down, 0u);
  EXPECT_EQ(link.counters().frames_dropped(), 1u);
  sched.run();
  EXPECT_EQ(delivered, 2);
  // Queue drained: sending works again.
  EXPECT_TRUE(link.send(1000, [&] { ++delivered; }));
  sched.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Link, QueueDepthTracksInFlight) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 10});
  EXPECT_EQ(link.queue_depth(), 0u);
  link.send(1000, [] {});
  link.send(1000, [] {});
  EXPECT_EQ(link.queue_depth(), 2u);
  sched.run();
  EXPECT_EQ(link.queue_depth(), 0u);
}

TEST(Link, TinyFrameStillTakesNonzeroTime) {
  event::Scheduler sched;
  Link link(sched, {500e6, 0, 10});
  Time arrival = -1;
  link.send(0, [&] { arrival = sched.now(); });
  sched.run();
  EXPECT_GE(arrival, 1);  // at least one nanosecond of serialization
}

TEST(Link, DownLinkRefusesButInFlightArrives) {
  event::Scheduler sched;
  Link link(sched, {1e6, 10 * kMillisecond, 10});
  int delivered = 0;
  EXPECT_TRUE(link.up());
  EXPECT_TRUE(link.send(1000, [&] { ++delivered; }));
  link.set_up(false);
  EXPECT_FALSE(link.up());
  EXPECT_FALSE(link.send(1000, [&] { ++delivered; }));
  EXPECT_EQ(link.counters().refused_link_down, 1u);
  EXPECT_EQ(link.counters().dropped_queue_full, 0u);
  EXPECT_EQ(link.counters().frames_dropped(), 1u);
  sched.run();
  EXPECT_EQ(delivered, 1);  // the frame already on the wire still arrives
  link.set_up(true);
  EXPECT_TRUE(link.send(1000, [&] { ++delivered; }));
  sched.run();
  EXPECT_EQ(delivered, 2);
}

TEST(LinkFaults, LossIsSilentAndDeterministic) {
  // Same seed => identical per-frame fates; the sender still sees
  // send()==true for lost frames (wireless loss is silent).
  auto run = [](std::uint64_t seed) {
    event::Scheduler sched;
    Link link(sched, {1e6, 0, 1000});
    LinkFaultParams faults;
    faults.loss = 0.3;
    link.set_fault_model(faults, util::Rng(seed));
    std::vector<int> delivered;
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(link.send(100, [&delivered, i] { delivered.push_back(i); }));
    }
    sched.run();
    EXPECT_EQ(link.counters().frames_sent, 200u);
    EXPECT_EQ(link.counters().frames_lost, 200u - delivered.size());
    return delivered;
  };
  const std::vector<int> a = run(7);
  const std::vector<int> b = run(7);
  const std::vector<int> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different fates
  EXPECT_GT(a.size(), 100u);  // ~70% should survive
  EXPECT_LT(a.size(), 200u);  // some loss must occur
}

TEST(LinkFaults, GilbertElliottLosesInBursts) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 100000});
  LinkFaultParams faults;
  faults.p_enter_burst = 0.05;
  faults.p_exit_burst = 0.3;
  faults.burst_loss = 1.0;  // everything in the bad state dies
  link.set_fault_model(faults, util::Rng(42));
  std::vector<bool> fate;  // true = delivered
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = fate.size();
    fate.push_back(false);
    link.send(10, [&fate, n] { fate[n] = true; });
  }
  sched.run();
  // Losses must cluster: count loss runs of length >= 2.
  std::size_t losses = 0, paired_losses = 0;
  for (std::size_t i = 0; i < fate.size(); ++i) {
    if (!fate[i]) {
      ++losses;
      if (i > 0 && !fate[i - 1]) ++paired_losses;
    }
  }
  ASSERT_GT(losses, 0u);
  // With p_exit 0.3 a loss is followed by another loss ~70% of the time —
  // far above the ~14% stationary loss rate i.i.d. loss would give.
  EXPECT_GT(static_cast<double>(paired_losses) / static_cast<double>(losses),
            0.4);
  EXPECT_EQ(link.counters().frames_lost, losses);
}

TEST(LinkFaults, CorruptionReportsFateAndSeed) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 1000});
  LinkFaultParams faults;
  faults.corruption = 1.0;  // every frame arrives mangled
  link.set_fault_model(faults, util::Rng(3));
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < 5; ++i) {
    link.send(100, Link::DeliverFn([&](const FrameFate& f) {
                EXPECT_TRUE(f.corrupted);
                seeds.push_back(f.corruption_seed);
              }));
  }
  sched.run();
  ASSERT_EQ(seeds.size(), 5u);
  EXPECT_EQ(link.counters().frames_corrupted, 5u);
  // Per-frame corruption seeds differ (each frame flips different bits).
  EXPECT_NE(seeds[0], seeds[1]);
}

TEST(LinkFaults, FateObliviousOverloadDropsCorruptFrames) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 1000});
  LinkFaultParams faults;
  faults.corruption = 1.0;
  link.set_fault_model(faults, util::Rng(3));
  int delivered = 0;
  link.send(100, [&delivered] { ++delivered; });  // plain closure: L2 CRC shim
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.counters().frames_corrupted, 1u);
}

TEST(LinkFaults, NoFaultModelMeansNoFaultCounters) {
  event::Scheduler sched;
  Link link(sched, {1e6, 0, 10});
  int delivered = 0;
  for (int i = 0; i < 5; ++i) link.send(100, [&delivered] { ++delivered; });
  sched.run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(link.counters().frames_lost, 0u);
  EXPECT_EQ(link.counters().frames_corrupted, 0u);
  EXPECT_FALSE(link.fault_params().any());
}

TEST(Link, FastLinkDeliversQuickly) {
  event::Scheduler sched;
  Link link(sched, core_link_params());
  Time arrival = -1;
  link.send(1024, [&] { arrival = sched.now(); });
  sched.run();
  // 1024 bytes at 500 Mbps ~= 16.4 us, plus 1 ms propagation.
  EXPECT_GT(arrival, kMillisecond);
  EXPECT_LT(arrival, kMillisecond + 30 * event::kMicrosecond);
}

}  // namespace
}  // namespace tactic::net
