// Tests for the Bloom-filter substrate: the no-false-negative guarantee,
// analytic FPP accuracy, saturation-triggered reset, and the counting
// variant.

#include <gtest/gtest.h>

#include <string>

#include "bloom/bloom_filter.hpp"
#include "util/rng.hpp"

namespace tactic::bloom {
namespace {

util::Bytes element(int i) {
  const std::string s = "element-" + std::to_string(i);
  return util::to_bytes(s);
}

TEST(BloomMath, TheoreticalFppKnownPoints) {
  // Empty filter never false-positives; fully loaded approaches 1.
  EXPECT_DOUBLE_EQ(theoretical_fpp(1000, 5, 0), 0.0);
  EXPECT_GT(theoretical_fpp(1000, 5, 10000), 0.99);
  // Monotone in items.
  EXPECT_LT(theoretical_fpp(10000, 5, 100), theoretical_fpp(10000, 5, 200));
}

TEST(BloomMath, BitsForCapacityAchievesTarget) {
  for (double target : {1e-2, 1e-4}) {
    for (std::size_t capacity : {100u, 500u, 5000u}) {
      const std::size_t bits = bits_for_capacity(capacity, 5, target);
      EXPECT_LE(theoretical_fpp(bits, 5, capacity), target * 1.05)
          << capacity << " @ " << target;
    }
  }
}

TEST(BloomMath, BitsGrowWithCapacityAndShrinkWithFpp) {
  EXPECT_LT(bits_for_capacity(500, 5, 1e-4),
            bits_for_capacity(5000, 5, 1e-4));
  EXPECT_GT(bits_for_capacity(500, 5, 1e-4),
            bits_for_capacity(500, 5, 1e-2));
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf({500, 5, 1e-4});
  for (int i = 0; i < 500; ++i) bf.insert(element(i));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(bf.contains(element(i))) << i;
  }
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter bf({500, 5, 1e-4});
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(bf.contains(element(i)));
}

TEST(BloomFilter, MeasuredFppNearAnalytic) {
  BloomFilter bf({500, 5, 1e-2});
  for (int i = 0; i < 500; ++i) bf.insert(element(i));
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    false_positives += bf.contains(element(100000 + i));
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_NEAR(measured, bf.current_fpp(), 5e-3);
}

TEST(BloomFilter, SaturationAndReset) {
  BloomFilter bf({100, 5, 1e-4});
  EXPECT_FALSE(bf.saturated());
  std::size_t inserted = 0;
  while (!bf.saturated()) {
    bf.insert(element(static_cast<int>(inserted++)));
    ASSERT_LT(inserted, 10000u);
  }
  // Saturation should trip in the vicinity of the design capacity.
  EXPECT_GT(inserted, 80u);
  EXPECT_LT(inserted, 130u);
  EXPECT_EQ(bf.reset_count(), 0u);
  bf.reset();
  EXPECT_EQ(bf.reset_count(), 1u);
  EXPECT_EQ(bf.item_count(), 0u);
  EXPECT_FALSE(bf.saturated());
  EXPECT_FALSE(bf.contains(element(0)));
}

TEST(BloomFilter, CurrentFppGrowsWithInserts) {
  BloomFilter bf({500, 5, 1e-4});
  double last = bf.current_fpp();
  EXPECT_EQ(last, 0.0);
  for (int i = 0; i < 400; ++i) {
    bf.insert(element(i));
    const double now = bf.current_fpp();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0.0);
}

TEST(BloomFilter, InvalidParamsThrow) {
  EXPECT_THROW(BloomFilter({0, 5, 1e-4}), std::invalid_argument);
  EXPECT_THROW(BloomFilter({500, 0, 1e-4}), std::invalid_argument);
  EXPECT_THROW(BloomFilter({500, 5, 0.0}), std::invalid_argument);
  EXPECT_THROW(BloomFilter({500, 5, 1.5}), std::invalid_argument);
}

/// Property sweep across parameter combinations: inserted elements are
/// always found, and the analytic FPP at design capacity stays within the
/// design target.
struct BloomSweepParam {
  std::size_t capacity;
  std::size_t hashes;
  double fpp;
};

class BloomSweep : public ::testing::TestWithParam<BloomSweepParam> {};

TEST_P(BloomSweep, NoFalseNegativesAtCapacity) {
  const auto p = GetParam();
  BloomFilter bf({p.capacity, p.hashes, p.fpp});
  for (std::size_t i = 0; i < p.capacity; ++i) {
    bf.insert(element(static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < p.capacity; ++i) {
    EXPECT_TRUE(bf.contains(element(static_cast<int>(i))));
  }
  EXPECT_LE(bf.current_fpp(), p.fpp * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    Params, BloomSweep,
    ::testing::Values(BloomSweepParam{100, 3, 1e-2},
                      BloomSweepParam{500, 5, 1e-4},
                      BloomSweepParam{1000, 5, 1e-4},
                      BloomSweepParam{1500, 5, 1e-4},
                      BloomSweepParam{5000, 7, 1e-3}));

TEST(BloomFilter, DesignFppDecoupledFromSaturationThreshold) {
  // Fig. 8's sweep: the bit array is sized by design_fpp, while max_fpp
  // only moves the reset threshold.  Same design -> same bits; a looser
  // threshold then takes ~3x more inserts to trip (for 1e-4 -> 1e-2).
  BloomFilter strict({100, 5, /*max_fpp=*/1e-4, /*design_fpp=*/1e-4});
  BloomFilter loose({100, 5, /*max_fpp=*/1e-2, /*design_fpp=*/1e-4});
  EXPECT_EQ(strict.bit_count(), loose.bit_count());

  auto inserts_to_saturate = [](BloomFilter& bf) {
    std::size_t n = 0;
    while (!bf.saturated()) {
      bf.insert(element(static_cast<int>(n++)));
      EXPECT_LT(n, 100000u);
    }
    return n;
  };
  const std::size_t strict_n = inserts_to_saturate(strict);
  const std::size_t loose_n = inserts_to_saturate(loose);
  EXPECT_GT(loose_n, 2 * strict_n);
  EXPECT_LT(loose_n, 5 * strict_n);
}

TEST(BloomFilter, LargerDesignFppMeansFewerBits) {
  BloomFilter tight({500, 5, 1e-4, 1e-4});
  BloomFilter roomy({500, 5, 1e-2, 1e-2});
  EXPECT_GT(tight.bit_count(), roomy.bit_count());
}

TEST(CountingBloom, InsertRemoveRoundTrip) {
  CountingBloomFilter cbf({500, 5, 1e-4});
  for (int i = 0; i < 100; ++i) cbf.insert(element(i));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(cbf.contains(element(i)));
  for (int i = 0; i < 50; ++i) cbf.remove(element(i));
  // Removed elements are (almost surely) gone; kept ones must remain.
  int still_there = 0;
  for (int i = 0; i < 50; ++i) still_there += cbf.contains(element(i));
  EXPECT_LT(still_there, 5);
  for (int i = 50; i < 100; ++i) EXPECT_TRUE(cbf.contains(element(i)));
  EXPECT_EQ(cbf.item_count(), 50u);
}

TEST(CountingBloom, DoubleInsertSurvivesOneRemove) {
  CountingBloomFilter cbf({500, 5, 1e-4});
  cbf.insert(element(1));
  cbf.insert(element(1));
  cbf.remove(element(1));
  EXPECT_TRUE(cbf.contains(element(1)));
  cbf.remove(element(1));
  EXPECT_FALSE(cbf.contains(element(1)));
}

}  // namespace
}  // namespace tactic::bloom
