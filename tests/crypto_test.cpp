// Known-answer and property tests for the from-scratch crypto substrate.
//
// SHA-256 / HMAC / AES are pinned to published vectors (FIPS 180-4,
// RFC 4231, FIPS 197, SP 800-38A); bignum and RSA are checked by algebraic
// properties and round-trips.

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/bignum.hpp"
#include "crypto/hmac.hpp"
#include "crypto/pki.hpp"
#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace tactic::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_bytes;
using util::to_hex;

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST examples)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (char c : msg) ctx.update(std::string_view(&c, 1));
  EXPECT_EQ(ctx.finish(), Sha256::digest(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding around the 55/56/63/64-byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 ctx;
  ctx.update(std::string_view("x"));
  ctx.finish();
  EXPECT_THROW(ctx.update(std::string_view("y")), std::logic_error);
  EXPECT_THROW(ctx.finish(), std::logic_error);
  ctx.reset();
  EXPECT_EQ(ctx.finish(), Sha256::digest(std::string_view("")));
}

TEST(Sha256, Prefix64MatchesDigest) {
  const Bytes digest = Sha256::digest(std::string_view("node7"));
  EXPECT_EQ(sha256_prefix64("node7"), util::read_u64(digest, 0));
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, std::string_view("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               std::string_view(
                                   "what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes long_key(200, 0x42);
  const Bytes direct = hmac_sha256(long_key, std::string_view("msg"));
  const Bytes hashed_key = Sha256::digest(long_key);
  EXPECT_EQ(direct, hmac_sha256(hashed_key, std::string_view("msg")));
}

TEST(Hmac, VerifyDetectsTamper) {
  const Bytes key = to_bytes("k");
  Bytes mac = hmac_sha256(key, std::string_view("payload"));
  EXPECT_TRUE(hmac_sha256_verify(key, to_bytes("payload"), mac));
  mac[0] ^= 1;
  EXPECT_FALSE(hmac_sha256_verify(key, to_bytes("payload"), mac));
}

// ---------------------------------------------------------------------------
// AES-128 (FIPS 197 appendix C, SP 800-38A)
// ---------------------------------------------------------------------------

TEST(Aes128, Fips197Vector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, Sp80038aEcbVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes block = from_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, WrongKeySizeThrows) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes(17, 0)), std::invalid_argument);
}

TEST(AesCtr, RoundTripAllSizes) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  for (std::size_t size : {0u, 1u, 15u, 16u, 17u, 100u, 1024u}) {
    Bytes plaintext(size);
    for (std::size_t i = 0; i < size; ++i) {
      plaintext[i] = static_cast<std::uint8_t>(i * 7 + 1);
    }
    const Bytes ciphertext = aes128_ctr(key, 0x1234, plaintext);
    EXPECT_EQ(ciphertext.size(), size);
    if (size > 0) EXPECT_NE(ciphertext, plaintext);
    EXPECT_EQ(aes128_ctr(key, 0x1234, ciphertext), plaintext);
  }
}

TEST(AesCtr, DifferentNoncesDiffer) {
  const Bytes key(16, 0x11);
  const Bytes msg(64, 0x22);
  EXPECT_NE(aes128_ctr(key, 1, msg), aes128_ctr(key, 2, msg));
}

// ---------------------------------------------------------------------------
// BigUInt
// ---------------------------------------------------------------------------

TEST(BigUInt, ConstructionAndHex) {
  EXPECT_EQ(BigUInt{0}.to_hex(), "0");
  EXPECT_EQ(BigUInt{255}.to_hex(), "ff");
  EXPECT_EQ(BigUInt{0x123456789ABCDEFULL}.to_hex(), "123456789abcdef");
  EXPECT_EQ(BigUInt::from_hex("deadbeefcafebabe").to_u64(),
            0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(BigUInt::from_hex("abc").to_u64(), 0xABCu);  // odd-length hex
}

TEST(BigUInt, BytesRoundTrip) {
  const Bytes bytes = from_hex("0102030405060708090a0b0c0d0e0f10");
  const BigUInt v = BigUInt::from_bytes_be(bytes);
  EXPECT_EQ(v.to_bytes_be(), bytes);
  EXPECT_EQ(v.to_bytes_be(20).size(), 20u);  // left-padded
  EXPECT_EQ(BigUInt::from_bytes_be(v.to_bytes_be(20)), v);
}

TEST(BigUInt, BitLengthAndBits) {
  EXPECT_EQ(BigUInt{0}.bit_length(), 0u);
  EXPECT_EQ(BigUInt{1}.bit_length(), 1u);
  EXPECT_EQ(BigUInt{255}.bit_length(), 8u);
  EXPECT_EQ(BigUInt{256}.bit_length(), 9u);
  const BigUInt v = BigUInt::from_hex("8000000000000001");
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
}

TEST(BigUInt, Comparisons) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffff");
  const BigUInt b = BigUInt::from_hex("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
  EXPECT_NE(a, b);
}

TEST(BigUInt, AddSubCarryChains) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffff");
  const BigUInt one{1};
  const BigUInt sum = a + one;
  EXPECT_EQ(sum.to_hex(), "1000000000000000000000000");
  EXPECT_EQ(sum - one, a);
  EXPECT_EQ(a - a, BigUInt{0});
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt{1} - BigUInt{2}, std::underflow_error);
}

TEST(BigUInt, MultiplicationKnown) {
  EXPECT_EQ((BigUInt::from_hex("ffffffff") * BigUInt::from_hex("ffffffff"))
                .to_hex(),
            "fffffffe00000001");
  EXPECT_EQ(BigUInt{0} * BigUInt{123}, BigUInt{0});
}

TEST(BigUInt, Shifts) {
  const BigUInt v = BigUInt::from_hex("1234567890abcdef");
  EXPECT_EQ((v << 4).to_hex(), "1234567890abcdef0");
  EXPECT_EQ((v >> 4).to_hex(), "1234567890abcde");
  EXPECT_EQ((v << 64) >> 64, v);
  EXPECT_EQ(v >> 100, BigUInt{0});
  EXPECT_EQ((BigUInt{1} << 128).bit_length(), 129u);
}

TEST(BigUInt, DivmodProperty) {
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const BigUInt a = BigUInt::random_bits(rng, 64 + rng.uniform(192));
    const BigUInt b = BigUInt::random_bits(rng, 16 + rng.uniform(128));
    const auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigUInt, DivmodEdgeCases) {
  EXPECT_THROW(BigUInt::divmod(BigUInt{1}, BigUInt{0}), std::domain_error);
  const auto [q1, r1] = BigUInt::divmod(BigUInt{5}, BigUInt{7});
  EXPECT_EQ(q1, BigUInt{0});
  EXPECT_EQ(r1, BigUInt{5});
  const auto [q2, r2] = BigUInt::divmod(BigUInt{7}, BigUInt{7});
  EXPECT_EQ(q2, BigUInt{1});
  EXPECT_EQ(r2, BigUInt{0});
}

TEST(BigUInt, KnuthD6AddBackCase) {
  // A divisor/dividend pair engineered to hit the rare "add back" branch:
  // top limbs equal, forcing q_hat overestimation.
  const BigUInt num = BigUInt::from_hex("80000000000000000000000000000000");
  const BigUInt den = BigUInt::from_hex("800000000000000000000001");
  const auto [q, r] = BigUInt::divmod(num, den);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigUInt, ModexpSmallAgainstNaive) {
  for (std::uint64_t base : {2ull, 5ull, 7ull}) {
    for (std::uint64_t mod : {19ull, 97ull, 65537ull, 1000000007ull}) {
      std::uint64_t expected = 1;
      for (int i = 0; i < 117; ++i) expected = expected * base % mod;
      EXPECT_EQ(BigUInt::modexp(base, BigUInt{117}, BigUInt{mod}).to_u64(),
                expected)
          << base << "^117 mod " << mod;
    }
  }
}

TEST(BigUInt, ModexpEvenModulus) {
  // Even modulus exercises the non-Montgomery path.
  std::uint64_t expected = 1;
  for (int i = 0; i < 50; ++i) expected = expected * 3 % 1000000ull;
  EXPECT_EQ(BigUInt::modexp(BigUInt{3}, BigUInt{50}, BigUInt{1000000})
                .to_u64(),
            expected);
}

TEST(BigUInt, ModexpFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, a not
  // divisible by p — with a large Montgomery modulus.
  util::Rng rng(55);
  const BigUInt p = random_prime(rng, 256);
  for (int i = 0; i < 5; ++i) {
    const BigUInt a = BigUInt{2} + BigUInt::random_below(rng, p - BigUInt{3});
    EXPECT_EQ(BigUInt::modexp(a, p - BigUInt{1}, p), BigUInt{1});
  }
}

TEST(BigUInt, ModexpMatchesNaiveBigOperands) {
  // Cross-check Montgomery against multiply-divide reduction.
  util::Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    BigUInt mod = BigUInt::random_bits(rng, 128);
    if (!mod.is_odd()) mod += BigUInt{1};
    const BigUInt base = BigUInt::random_bits(rng, 120);
    const BigUInt exp = BigUInt::random_bits(rng, 24);
    // Naive square-and-multiply with divide-based reduction.
    BigUInt naive{1};
    const BigUInt b = base % mod;
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      naive = (naive * naive) % mod;
      if (exp.bit(bit)) naive = (naive * b) % mod;
    }
    EXPECT_EQ(BigUInt::modexp(base, exp, mod), naive);
  }
}

TEST(BigUInt, GcdAndInverse) {
  EXPECT_EQ(BigUInt::gcd(BigUInt{48}, BigUInt{18}), BigUInt{6});
  EXPECT_EQ(BigUInt::gcd(BigUInt{17}, BigUInt{0}), BigUInt{17});
  const auto inv = BigUInt::mod_inverse(BigUInt{3}, BigUInt{40});
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv * BigUInt{3}) % BigUInt{40}, BigUInt{1});
  EXPECT_FALSE(BigUInt::mod_inverse(BigUInt{6}, BigUInt{40}).has_value());
}

TEST(BigUInt, ModInverseProperty) {
  util::Rng rng(88);
  const BigUInt m = random_prime(rng, 128);
  for (int i = 0; i < 20; ++i) {
    const BigUInt a = BigUInt{1} + BigUInt::random_below(rng, m - BigUInt{1});
    const auto inv = BigUInt::mod_inverse(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ((*inv * a) % m, BigUInt{1});
  }
}

TEST(BigUInt, RandomBitsExactLength) {
  util::Rng rng(12);
  for (std::size_t bits : {1u, 8u, 31u, 32u, 33u, 64u, 100u, 512u}) {
    EXPECT_EQ(BigUInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigUInt, RandomBelowRespectsBound) {
  util::Rng rng(13);
  const BigUInt bound = BigUInt::from_hex("1000");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

// ---------------------------------------------------------------------------
// primality
// ---------------------------------------------------------------------------

TEST(Prime, KnownSmallPrimes) {
  util::Rng rng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7919ull, 65537ull}) {
    EXPECT_TRUE(is_probable_prime(BigUInt{p}, rng)) << p;
  }
}

TEST(Prime, KnownComposites) {
  util::Rng rng(2);
  for (std::uint64_t c : {1ull, 4ull, 561ull /*Carmichael*/, 65536ull,
                          7917ull, 1000000016000000063ull /*p*q*/}) {
    EXPECT_FALSE(is_probable_prime(BigUInt{c}, rng)) << c;
  }
}

TEST(Prime, LargeKnownPrime) {
  util::Rng rng(3);
  // 2^89 - 1 is a Mersenne prime.
  const BigUInt m89 = (BigUInt{1} << 89) - BigUInt{1};
  EXPECT_TRUE(is_probable_prime(m89, rng));
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  const BigUInt m67 = (BigUInt{1} << 67) - BigUInt{1};
  EXPECT_FALSE(is_probable_prime(m67, rng));
}

TEST(Prime, RandomPrimeHasRequestedShape) {
  util::Rng rng(4);
  for (std::size_t bits : {64u, 128u, 256u}) {
    const BigUInt p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.bit(bits - 2));  // second-highest bit forced
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

// ---------------------------------------------------------------------------
// RSA
// ---------------------------------------------------------------------------

class RsaKeySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaKeySizes, SignVerifyRoundTrip) {
  util::Rng rng(GetParam());
  const RsaKeyPair pair = generate_rsa_keypair(rng, GetParam());
  EXPECT_EQ(pair.public_key.n().bit_length(), GetParam());
  const Bytes msg = to_bytes("tag fields to protect");
  const Bytes sig = pair.private_key.sign_pkcs1_sha256(msg);
  EXPECT_EQ(sig.size(), pair.public_key.modulus_size());
  EXPECT_TRUE(pair.public_key.verify_pkcs1_sha256(msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaKeySizes, ::testing::Values(512, 768, 1024));

TEST(Rsa, VerifyRejectsTamperedMessage) {
  util::Rng rng(123);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  const Bytes sig = pair.private_key.sign_pkcs1_sha256(to_bytes("hello"));
  EXPECT_FALSE(pair.public_key.verify_pkcs1_sha256(to_bytes("hellp"), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  util::Rng rng(124);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  Bytes sig = pair.private_key.sign_pkcs1_sha256(to_bytes("hello"));
  for (std::size_t i = 0; i < sig.size(); i += 13) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(pair.public_key.verify_pkcs1_sha256(to_bytes("hello"), bad));
  }
}

TEST(Rsa, VerifyRejectsWrongKey) {
  util::Rng rng(125);
  const RsaKeyPair a = generate_rsa_keypair(rng, 512);
  const RsaKeyPair b = generate_rsa_keypair(rng, 512);
  const Bytes sig = a.private_key.sign_pkcs1_sha256(to_bytes("msg"));
  EXPECT_FALSE(b.public_key.verify_pkcs1_sha256(to_bytes("msg"), sig));
}

TEST(Rsa, VerifyRejectsWrongLengthSignature) {
  util::Rng rng(126);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  Bytes sig = pair.private_key.sign_pkcs1_sha256(to_bytes("msg"));
  sig.push_back(0);
  EXPECT_FALSE(pair.public_key.verify_pkcs1_sha256(to_bytes("msg"), sig));
}

TEST(Rsa, DeterministicKeygenForSeed) {
  util::Rng a(7), b(7);
  const RsaKeyPair ka = generate_rsa_keypair(a, 512);
  const RsaKeyPair kb = generate_rsa_keypair(b, 512);
  EXPECT_EQ(ka.public_key.n(), kb.public_key.n());
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  util::Rng rng(127);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  const Bytes secret = to_bytes("aes-content-key!");
  const Bytes ct = pair.public_key.encrypt_pkcs1(rng, secret);
  EXPECT_EQ(ct.size(), pair.public_key.modulus_size());
  EXPECT_EQ(pair.private_key.decrypt_pkcs1(ct), secret);
}

TEST(Rsa, EncryptIsRandomized) {
  util::Rng rng(128);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  const Bytes secret = to_bytes("k");
  EXPECT_NE(pair.public_key.encrypt_pkcs1(rng, secret),
            pair.public_key.encrypt_pkcs1(rng, secret));
}

TEST(Rsa, DecryptRejectsGarbage) {
  util::Rng rng(129);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  Bytes garbage(pair.public_key.modulus_size(), 0x01);
  EXPECT_TRUE(pair.private_key.decrypt_pkcs1(garbage).empty());
  EXPECT_TRUE(pair.private_key.decrypt_pkcs1(Bytes(3, 0)).empty());
}

TEST(Rsa, MessageTooLongThrows) {
  util::Rng rng(130);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  const Bytes big(pair.public_key.modulus_size() - 10, 0xAA);
  EXPECT_THROW(pair.public_key.encrypt_pkcs1(rng, big),
               std::invalid_argument);
}

TEST(Rsa, FingerprintIdentifiesKey) {
  util::Rng rng(131);
  const RsaKeyPair a = generate_rsa_keypair(rng, 512);
  const RsaKeyPair b = generate_rsa_keypair(rng, 512);
  EXPECT_EQ(a.public_key.fingerprint().size(), 32u);
  EXPECT_NE(a.public_key.fingerprint(), b.public_key.fingerprint());
}

// ---------------------------------------------------------------------------
// PKI
// ---------------------------------------------------------------------------

TEST(Pki, RegisterAndFind) {
  util::Rng rng(140);
  const RsaKeyPair pair = generate_rsa_keypair(rng, 512);
  Pki pki;
  EXPECT_EQ(pki.find("/provider0/KEY/1"), nullptr);
  pki.add_key("/provider0/KEY/1", pair.public_key);
  ASSERT_NE(pki.find("/provider0/KEY/1"), nullptr);
  EXPECT_EQ(pki.find("/provider0/KEY/1")->n(), pair.public_key.n());
  EXPECT_TRUE(pki.contains("/provider0/KEY/1"));
  EXPECT_EQ(pki.size(), 1u);
  pki.clear();
  EXPECT_EQ(pki.size(), 0u);
}

TEST(Pki, ReplaceKey) {
  util::Rng rng(141);
  const RsaKeyPair a = generate_rsa_keypair(rng, 512);
  const RsaKeyPair b = generate_rsa_keypair(rng, 512);
  Pki pki;
  pki.add_key("/p/KEY/1", a.public_key);
  pki.add_key("/p/KEY/1", b.public_key);
  EXPECT_EQ(pki.size(), 1u);
  EXPECT_EQ(pki.find("/p/KEY/1")->n(), b.public_key.n());
}

}  // namespace
}  // namespace tactic::crypto
