// Tests for the sim metrics layer: traffic totals, router-op aggregation,
// the multi-seed accumulator, and the compute-charge bookkeeping that
// feeds Fig. 5's analysis.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"

namespace tactic::sim {
namespace {

TEST(TrafficTotals, DeliveryRatio) {
  TrafficTotals totals;
  EXPECT_EQ(totals.delivery_ratio(), 0.0);  // no requests -> 0, not NaN
  totals.requested = 200;
  totals.received = 150;
  EXPECT_DOUBLE_EQ(totals.delivery_ratio(), 0.75);
}

TEST(TrafficTotals, Accumulation) {
  TrafficTotals a, b;
  a.requested = 10;
  a.received = 9;
  a.tags_requested = 2;
  b.requested = 5;
  b.received = 5;
  b.nacks = 1;
  a += b;
  EXPECT_EQ(a.requested, 15u);
  EXPECT_EQ(a.received, 14u);
  EXPECT_EQ(a.nacks, 1u);
  EXPECT_EQ(a.tags_requested, 2u);
}

TEST(RouterOps, AccumulationIncludesCompute) {
  RouterOps a, b;
  a.bf_lookups = 100;
  a.compute_charged_s = 0.5;
  b.bf_lookups = 50;
  b.sig_verifications = 3;
  b.compute_charged_s = 0.25;
  a += b;
  EXPECT_EQ(a.bf_lookups, 150u);
  EXPECT_EQ(a.sig_verifications, 3u);
  EXPECT_DOUBLE_EQ(a.compute_charged_s, 0.75);
}

TEST(Metrics, MeanRequestsPerReset) {
  EXPECT_EQ(Metrics::mean_requests_per_reset({}), 0.0);
  EXPECT_DOUBLE_EQ(Metrics::mean_requests_per_reset({100, 200, 300}),
                   200.0);
}

TEST(Metrics, CacheHitRatioHandlesZero) {
  Metrics metrics;
  EXPECT_EQ(metrics.cache_hit_ratio(), 0.0);
  metrics.cs_hits = 1;
  metrics.cs_misses = 3;
  EXPECT_DOUBLE_EQ(metrics.cache_hit_ratio(), 0.25);
}

TEST(MetricsAccumulator, AveragesAcrossRuns) {
  Metrics run1, run2;
  run1.clients.requested = 100;
  run1.clients.received = 100;
  run2.clients.requested = 200;
  run2.clients.received = 100;
  run1.edge_ops.bf_lookups = 10;
  run2.edge_ops.bf_lookups = 30;
  MetricsAccumulator acc;
  acc.add(run1);
  acc.add(run2);
  EXPECT_EQ(acc.runs, 2u);
  EXPECT_DOUBLE_EQ(acc.client_requested.mean(), 150.0);
  EXPECT_DOUBLE_EQ(acc.client_delivery.mean(), 0.75);  // (1.0 + 0.5)/2
  EXPECT_DOUBLE_EQ(acc.edge_lookups.mean(), 20.0);
}

// ---------------------------------------------------------------------------
// Compute-charge accounting against a live run
// ---------------------------------------------------------------------------

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.topology.core_routers = 8;
  config.topology.edge_routers = 3;
  config.topology.providers = 2;
  config.topology.clients = 4;
  config.topology.attackers = 2;
  config.provider.key_bits = 512;
  config.provider.catalog.objects = 10;
  config.provider.catalog.chunks_per_object = 5;
  config.client.think_time_mean = 20 * event::kMillisecond;
  config.duration = 20 * event::kSecond;
  config.seed = seed;
  return config;
}

TEST(ComputeCharge, ZeroModelChargesNothing) {
  ScenarioConfig config = small_config(81);
  config.compute = core::ComputeModel::zero();
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  EXPECT_EQ(metrics.edge_ops.compute_charged_s, 0.0);
  EXPECT_EQ(metrics.core_ops.compute_charged_s, 0.0);
  EXPECT_GT(metrics.edge_ops.bf_lookups, 0u);  // ops still happened
}

TEST(ComputeCharge, DeterministicModelMatchesOpCounts) {
  ScenarioConfig config = small_config(82);
  config.compute = core::ComputeModel::deterministic();
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  // With the deterministic model every op charges exactly its mean, so
  // total charge is a linear combination of the op counts.
  const double expected_edge =
      9.14e-7 * static_cast<double>(metrics.edge_ops.bf_lookups) +
      3.35e-7 * static_cast<double>(metrics.edge_ops.bf_insertions) +
      1.12e-5 * static_cast<double>(metrics.edge_ops.sig_verifications);
  EXPECT_NEAR(metrics.edge_ops.compute_charged_s, expected_edge,
              expected_edge * 0.01 + 1e-6);
}

TEST(ComputeCharge, PaperModelChargesMoreThanDeterministic) {
  // The paper's printed sigmas create a heavy non-negative tail, so the
  // charged total exceeds the mean-only model on the same op volume.
  ScenarioConfig deterministic = small_config(83);
  deterministic.compute = core::ComputeModel::deterministic();
  ScenarioConfig paper = small_config(83);
  paper.compute = core::ComputeModel::paper_defaults();
  const Metrics det = Scenario(deterministic).run();
  const Metrics pap = Scenario(paper).run();
  EXPECT_GT(pap.edge_ops.compute_charged_s + pap.core_ops.compute_charged_s,
            det.edge_ops.compute_charged_s + det.core_ops.compute_charged_s);
}

TEST(PacketTrace, RecordsFilteredRows) {
  const std::string path = ::testing::TempDir() + "/tactic_trace_test.csv";
  ScenarioConfig config = small_config(85);
  config.duration = 5 * event::kSecond;
  Scenario scenario(config);
  {
    PacketTrace trace(path);
    trace.set_name_filter(ndn::Name("/provider0"));
    trace.attach(scenario.network());
    scenario.run();
    EXPECT_GT(trace.rows_written(), 100u);
  }
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("time_s"), std::string::npos);
  EXPECT_NE(header.find("flag_f"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, row)) {
    ++rows;
    // The filter held: every traced name is under /provider0.
    EXPECT_NE(row.find("/provider0"), std::string::npos) << row;
  }
  EXPECT_GT(rows, 100u);
  std::remove(path.c_str());
}

TEST(PacketTrace, SingleNodeAttachment) {
  const std::string path = ::testing::TempDir() + "/tactic_trace_one.csv";
  ScenarioConfig config = small_config(86);
  config.duration = 5 * event::kSecond;
  Scenario scenario(config);
  {
    PacketTrace trace(path);
    const net::NodeId edge = scenario.network().edge_routers()[0];
    trace.attach(scenario.network().node(edge));
    scenario.run();
    // Only one node traced; far fewer rows than a full-network trace,
    // and every row names that node.
    EXPECT_GT(trace.rows_written(), 0u);
  }
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  while (std::getline(in, row)) {
    EXPECT_NE(row.find("edge"), std::string::npos) << row;
  }
  std::remove(path.c_str());
}

TEST(Metrics, LatencySeriesCoversRun) {
  ScenarioConfig config = small_config(84);
  Scenario scenario(config);
  const Metrics& metrics = scenario.run();
  // Samples in (almost) every second of the 20 s run.
  std::size_t busy_seconds = 0;
  for (std::size_t s = 0; s < metrics.latency.bucket_count(); ++s) {
    busy_seconds += metrics.latency.count(s) > 0;
  }
  EXPECT_GE(busy_seconds, 18u);
  EXPECT_LE(metrics.latency.bucket_count(), 21u);
}

}  // namespace
}  // namespace tactic::sim
