// Batched validation (docs/ARCHITECTURE.md, "Batched stages"): the
// engine-level batcher's flush triggers (size cap, deadline, queue
// drain), crash semantics, DeferredVerdict delivery contract,
// sig_verify_batch_cost properties, and the differential equivalence
// harness — closed-loop scenarios run batched and unbatched must
// deliver the exact same per-client verdict multiset across the fixed
// fuzz-seed corpus in plain, faulted, and faulted+overloaded modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "event/scheduler.hpp"
#include "sim/scenario.hpp"
#include "tactic/pipeline.hpp"
#include "tactic/tag.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "util/bytes.hpp"

namespace tactic::core {
namespace {

namespace tt = ::tactic::testing;
using event::kMillisecond;
using event::kSecond;

/// Same env-scaled iteration knob as property_test.cpp.
int property_iters(int def) {
  static const long scale = [] {
    const char* raw = std::getenv("TACTIC_PROPERTY_ITERS");
    return raw == nullptr ? 0L : std::atol(raw);
  }();
  if (scale <= 0) return def;
  const long scaled = (scale * def + 49) / 50;
  return static_cast<int>(std::max(1L, scaled));
}

crypto::RsaKeyPair test_keypair(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return crypto::generate_rsa_keypair(rng, 512);
}

Tag::Fields basic_fields(const std::string& provider = "/provider0") {
  Tag::Fields fields;
  fields.provider_key_locator = provider + "/KEY/1";
  fields.client_key_locator = "/client0/KEY/1";
  fields.access_level = 2;
  fields.access_path = 0xDEADBEEF;
  fields.expiry = 100 * kSecond;
  return fields;
}

/// One engine with a scheduler bound, batching on by default.
class BatchingTest : public ::testing::Test {
 protected:
  BatchingTest() : keys_(test_keypair()) {
    anchors_.pki.add_key("/provider0/KEY/1", keys_.public_key);
    anchors_.protected_prefixes.insert("/provider0");
    tag_ = issue_tag(basic_fields(), keys_.private_key);
    config_.batch.enabled = true;
  }

  ValidationEngine make_engine(
      ComputeModel compute = ComputeModel::deterministic()) {
    ValidationEngine engine(config_, anchors_, compute, util::Rng(7));
    engine.bind_scheduler(&scheduler_);
    return engine;
  }

  /// The deterministic model's (constant) single-verification charge.
  static event::Time single_verify_cost() {
    ComputeModel model = ComputeModel::deterministic();
    util::Rng rng(99);
    return model.sig_verify_cost(rng);
  }

  crypto::RsaKeyPair keys_;
  TrustAnchors anchors_;
  TacticConfig config_;
  TagPtr tag_;
  event::Scheduler scheduler_;
};

// ---------------------------------------------------------------------------
// Flush triggers
// ---------------------------------------------------------------------------

TEST_F(BatchingTest, InactiveWithoutSchedulerOrFlag) {
  ValidationEngine bound = make_engine();
  EXPECT_TRUE(bound.batching_active());

  ValidationEngine unbound(config_, anchors_, ComputeModel::deterministic(),
                           util::Rng(7));
  EXPECT_FALSE(unbound.batching_active());

  config_.batch.enabled = false;
  ValidationEngine disabled = make_engine();
  EXPECT_FALSE(disabled.batching_active());
}

TEST_F(BatchingTest, SizeCapFlushFiresAllVerdictsWithAmortizedCharge) {
  config_.batch.max_batch = 3;
  config_.batch.max_hold = 50 * kMillisecond;
  ValidationEngine engine = make_engine();
  std::vector<event::Time> extras;
  for (int i = 0; i < 3; ++i) {
    event::Time compute = 0;
    auto batched =
        engine.verify_signature_batched(*tag_, scheduler_.now(), compute);
    ASSERT_TRUE(batched.ok);
    ASSERT_NE(batched.deferred, nullptr);
    batched.deferred->bind(
        [&extras](event::Time extra) { extras.push_back(extra); });
    EXPECT_EQ(compute, 0);  // the signature charge waits for the flush
  }
  // The third join hit the size cap: one amortized charge, all three
  // verdicts fired with the same completion delay.
  const TacticCounters& c = engine.counters();
  EXPECT_EQ(c.sig_batches_flushed, 1u);
  EXPECT_EQ(c.sig_batch_flush_size_cap, 1u);
  EXPECT_EQ(c.sig_batch_flush_deadline, 0u);
  EXPECT_EQ(c.sig_batched_items, 3u);
  EXPECT_EQ(c.sig_batch_peak, 3u);
  EXPECT_EQ(c.sig_verifications, 3u);

  const event::Time single = single_verify_cost();
  const event::Time amortized = static_cast<event::Time>(
      static_cast<double>(single) * engine.compute_model().sig_batch_factor(3));
  EXPECT_EQ(c.compute_sig, amortized);
  EXPECT_EQ(c.compute_charged, amortized);
  EXPECT_LT(amortized, 3 * single);  // strictly cheaper than one-by-one
  EXPECT_EQ(c.sig_batch_unbatched_equiv, 3 * single);

  ASSERT_EQ(extras.size(), 3u);
  EXPECT_EQ(extras[0], amortized);  // instantaneous model: delay = charge
  EXPECT_EQ(extras[1], extras[0]);
  EXPECT_EQ(extras[2], extras[0]);
}

TEST_F(BatchingTest, MaxHoldZeroFlushesAtEndOfInstant) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 0;
  ValidationEngine engine = make_engine();
  std::vector<event::Time> extras;
  for (int i = 0; i < 2; ++i) {
    event::Time compute = 0;
    auto batched = engine.verify_signature_batched(*tag_, 0, compute);
    ASSERT_TRUE(batched.ok);
    batched.deferred->bind(
        [&extras](event::Time extra) { extras.push_back(extra); });
  }
  // Nothing fires until the scheduler reaches the deadline event queued
  // at now — the "end of the current instant" coalescing window.
  EXPECT_TRUE(extras.empty());
  EXPECT_EQ(engine.sig_batch_depth(*tag_), 2u);
  scheduler_.run_until(kMillisecond);
  EXPECT_EQ(extras.size(), 2u);
  EXPECT_EQ(engine.counters().sig_batch_flush_deadline, 1u);
  EXPECT_EQ(engine.sig_batch_depth(*tag_), 0u);
}

TEST_F(BatchingTest, DeadlineFlushChargesAtTheDeadline) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 5 * kMillisecond;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  auto batched = engine.verify_signature_batched(*tag_, 0, compute);
  event::Time fired_at = 0;
  batched.deferred->bind([&](event::Time) { fired_at = scheduler_.now(); });
  scheduler_.run_until(kSecond);
  EXPECT_EQ(fired_at, 5 * kMillisecond);
  EXPECT_EQ(engine.counters().sig_batch_flush_deadline, 1u);
  EXPECT_EQ(engine.counters().sig_batches_flushed, 1u);
}

TEST_F(BatchingTest, QueueDrainFlushesImmediatelyWhenIdle) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 50 * kMillisecond;
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  auto batched = engine.verify_signature_batched(*tag_, 0, compute);
  bool fired = false;
  batched.deferred->bind([&](event::Time) { fired = true; });
  // The validation queue was idle at join time: holding the item would
  // be pure latency, so it flushed as part of the queue drain.
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.counters().sig_batch_flush_queue_drain, 1u);
}

TEST_F(BatchingTest, QueueBacklogHoldsTheBatchForCompany) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 50 * kMillisecond;
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine();
  event::Time backlog = 0;
  engine.charge(0, kSecond, backlog, CostKind::kSignature);  // busy server
  event::Time compute = 0;
  auto batched = engine.verify_signature_batched(*tag_, 0, compute);
  bool fired = false;
  batched.deferred->bind([&](event::Time) { fired = true; });
  EXPECT_FALSE(fired);  // backlog => accumulate until cap or deadline
  EXPECT_EQ(engine.counters().sig_batch_flush_queue_drain, 0u);
  EXPECT_EQ(engine.sig_batch_depth(*tag_), 1u);
  scheduler_.run_until(kSecond);
  EXPECT_TRUE(fired);  // ... which the deadline then provides
  EXPECT_EQ(engine.counters().sig_batch_flush_deadline, 1u);
}

TEST_F(BatchingTest, ProvidersBatchIndependently) {
  config_.batch.max_batch = 2;
  config_.batch.max_hold = 50 * kMillisecond;
  const crypto::RsaKeyPair other = test_keypair(2);
  anchors_.pki.add_key("/provider1/KEY/1", other.public_key);
  const TagPtr tag1 =
      issue_tag(basic_fields("/provider1"), other.private_key);
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  engine.verify_signature_batched(*tag_, 0, compute);
  engine.verify_signature_batched(*tag1, 0, compute);
  // Two one-item batches, not one two-item batch: a batch-RSA pass only
  // amortizes over signatures under the same public key.
  EXPECT_EQ(engine.counters().sig_batches_flushed, 0u);
  EXPECT_EQ(engine.sig_batch_depth(*tag_), 1u);
  EXPECT_EQ(engine.sig_batch_depth(*tag1), 1u);
  engine.flush_all_batches();
  EXPECT_EQ(engine.counters().sig_batches_flushed, 2u);
}

TEST_F(BatchingTest, CrashDropsPendingBatchWithoutChargeOrDelivery) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 5 * kMillisecond;
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  auto a = engine.verify_signature_batched(*tag_, 0, compute);
  auto b = engine.verify_signature_batched(*tag_, 0, compute);
  bool fired = false;
  a.deferred->bind([&](event::Time) { fired = true; });

  const event::Time charged_before = engine.counters().compute_sig;
  engine.wipe_volatile();  // router crash
  EXPECT_EQ(engine.counters().sig_batches_dropped, 1u);
  EXPECT_TRUE(a.deferred->dropped());
  EXPECT_FALSE(a.deferred->pending());
  EXPECT_FALSE(fired);
  // Binding after the crash (a late forwarder continuation) stays mute.
  bool late = false;
  b.deferred->bind([&](event::Time) { late = true; });
  EXPECT_FALSE(late);
  // The cancelled deadline never resurrects the batch.
  scheduler_.run_until(kSecond);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(late);
  EXPECT_EQ(engine.counters().sig_batches_flushed, 0u);
  EXPECT_EQ(engine.counters().compute_sig, charged_before);
}

TEST_F(BatchingTest, InvalidSignatureRejectsSynchronously) {
  const TagPtr forged =
      forge_tag(basic_fields(), test_keypair(2).private_key);
  ValidationEngine engine = make_engine();
  event::Time compute = 0;
  auto batched = engine.verify_signature_batched(*forged, 0, compute);
  EXPECT_FALSE(batched.ok);  // the verdict itself never waits
  EXPECT_EQ(engine.counters().sig_failures, 1u);
}

TEST_F(BatchingTest, NegativeCacheShortCircuitsBatchedVerify) {
  config_.overload.enabled = true;
  ValidationEngine engine = make_engine();
  engine.remember_invalid(*tag_, 0);
  event::Time compute = 0;
  auto batched = engine.verify_signature_batched(*tag_, 0, compute);
  EXPECT_FALSE(batched.ok);
  EXPECT_EQ(batched.deferred, nullptr);  // no batch slot, no deferred
  EXPECT_EQ(engine.counters().neg_cache_hits, 1u);
  EXPECT_EQ(engine.counters().sig_verifications, 0u);
  EXPECT_GT(compute, 0);  // the neg-cache probe is still charged
}

TEST_F(BatchingTest, SignatureVerifyStageDefersVerdictWhileBatching) {
  config_.batch.max_batch = 8;
  config_.batch.max_hold = 0;
  ValidationEngine engine = make_engine();
  ValidationContext ctx(engine, *tag_, 0);
  SignatureVerifyStage stage(SignatureVerifyStage::Mode::kEdgeAggregate);
  const Verdict verdict = stage.run(ctx);
  EXPECT_EQ(verdict.kind, Verdict::Kind::kVouch);  // verdict known now
  ASSERT_NE(ctx.deferred, nullptr);                // departure deferred
  EXPECT_TRUE(ctx.deferred->pending());
  EXPECT_EQ(engine.counters().bf_insertions, 1u);  // side effects intact
  scheduler_.run_until(kMillisecond);
  EXPECT_FALSE(ctx.deferred->pending());
}

// ---------------------------------------------------------------------------
// DeferredVerdict delivery contract
// ---------------------------------------------------------------------------

TEST(DeferredVerdictTest, BindThenFireDeliversExactlyOnce) {
  ndn::DeferredVerdict verdict;
  int calls = 0;
  event::Time seen = 0;
  verdict.bind([&](event::Time extra) { ++calls; seen = extra; });
  EXPECT_TRUE(verdict.pending());
  verdict.fire(7);
  verdict.fire(9);  // idempotent
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 7);
  EXPECT_FALSE(verdict.pending());
}

TEST(DeferredVerdictTest, FireBeforeBindBuffersTheDelay) {
  // The flush can run before the forwarder binds its continuation (the
  // queue-drain trigger fires inside the stage); delivery must not be
  // lost, and the buffered extra delay must be the one from the flush.
  ndn::DeferredVerdict verdict;
  verdict.fire(42);
  int calls = 0;
  event::Time seen = 0;
  verdict.bind([&](event::Time extra) { ++calls; seen = extra; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 42);
}

TEST(DeferredVerdictTest, DropSuppressesDeliveryForever) {
  ndn::DeferredVerdict verdict;
  int calls = 0;
  verdict.drop();
  verdict.bind([&](event::Time) { ++calls; });
  verdict.fire(1);
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(verdict.dropped());

  ndn::DeferredVerdict bound;
  bound.bind([&](event::Time) { ++calls; });
  bound.drop();
  bound.fire(1);
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// sig_verify_batch_cost properties
// ---------------------------------------------------------------------------

class BatchCostProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchCostProperty, MatchesSingleDrawAtOneMonotoneAndSubLinear) {
  const int iters = property_iters(50);
  util::Rng meta(GetParam());
  for (int i = 0; i < iters; ++i) {
    ComputeModel base = ComputeModel::paper_defaults();
    const double marginal = meta.uniform_double();  // [0, 1)
    base.set_batch_marginals(marginal, 0.25);
    const std::uint64_t draw_seed = meta();

    // NormalDist caches a Marsaglia spare inside the model, so
    // draw-for-draw comparisons need a fresh model copy per call, not
    // just a same-seeded rng.
    //
    // n = 1 is exactly one single-verification draw: same RNG
    // consumption, same charge — the no-company case costs nothing
    // extra, which is what lets the layer default to tiny batches.
    util::Rng single_rng(draw_seed);
    util::Rng batch_rng(draw_seed);
    ComputeModel single_model = base;
    ComputeModel batch_model = base;
    const event::Time single = single_model.sig_verify_cost(single_rng);
    EXPECT_EQ(batch_model.sig_verify_batch_cost(1, batch_rng), single);
    EXPECT_EQ(single_rng(), batch_rng());  // streams aligned

    event::Time previous = single;
    for (std::size_t n = 2; n <= 16; ++n) {
      util::Rng rng(draw_seed);
      ComputeModel model = base;
      const event::Time total = model.sig_verify_batch_cost(n, rng);
      // Total cost is monotone in n ...
      EXPECT_GE(total, previous) << "n=" << n << " marginal=" << marginal;
      // ... and sub-linear: n together never cost more than n alone,
      // strictly less for any real draw and marginal < 1.
      EXPECT_LE(total, static_cast<event::Time>(n) * single)
          << "n=" << n << " marginal=" << marginal;
      if (single > 0 && marginal < 1.0) {
        EXPECT_LT(total, static_cast<event::Time>(n) * single)
            << "n=" << n << " marginal=" << marginal;
      }
      previous = total;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchCostProperty,
                         ::testing::Values(11u, 23u, 37u));

// ---------------------------------------------------------------------------
// Differential equivalence: batched == unbatched verdict multisets
// ---------------------------------------------------------------------------

// Closed-loop variant of a fuzzer-sampled scenario: every user issues a
// fixed request population (caps exhausted well before the end of the
// run), so batching's millisecond-scale timing shifts cannot change
// *which* requests exist — only when their verdicts land.  Stochastic
// frame faults are masked (their draws are keyed by frame order, so a
// timing shift would reassign losses); scripted crash-restarts and link
// flaps stay.  Overload shedding thresholds are raised and the policer
// disabled: back-pressure depends on instantaneous queue depth, which
// batching legitimately reshapes, and kRouterOverloaded is excluded from
// the multiset as a load signal rather than a verdict.
sim::ScenarioConfig closed_loop_config(std::uint64_t seed, bool faults,
                                       bool overload) {
  tt::GeneratorOptions options;
  options.duration = event::from_seconds(8.0);
  options.forced_policy = sim::PolicyKind::kTactic;
  options.with_faults = faults;
  options.with_overload = overload;
  sim::ScenarioConfig config = tt::random_config(seed, options);
  config.client.max_chunks = 25;
  config.attacker.max_chunks = 12;
  config.attacker.window = std::max<std::size_t>(config.attacker.window, 4);
  config.attacker.think_time_mean =
      std::min(config.attacker.think_time_mean, 50 * kMillisecond);
  config.faults.edge_links = net::LinkFaultParams{};
  config.faults.core_links = net::LinkFaultParams{};
  if (config.tactic.overload.enabled) {
    config.tactic.overload.queue_capacity = 1u << 20;
    config.tactic.overload.shed_watermark = 1u << 20;
    config.tactic.overload.policer_rate = 0.0;
  }
  config.tactic.batch.enabled = false;
  return config;
}

std::string run_verdicts(sim::ScenarioConfig config) {
  sim::Scenario scenario(std::move(config));
  scenario.run();
  scenario.drain(10 * kSecond);
  return tt::verdict_multiset(scenario);
}

void check_equivalence(bool faults, bool overload) {
  constexpr std::uint64_t kBaseSeed = 9100;
  constexpr std::uint64_t kSeeds = 16;
  for (std::uint64_t seed = kBaseSeed; seed < kBaseSeed + kSeeds; ++seed) {
    const sim::ScenarioConfig unbatched =
        closed_loop_config(seed, faults, overload);
    sim::ScenarioConfig batched = unbatched;
    batched.tactic.batch.enabled = true;
    batched.tactic.batch.max_batch = 2 + seed % 7;
    batched.tactic.batch.max_hold = (seed % 3) * kMillisecond;
    EXPECT_EQ(run_verdicts(unbatched), run_verdicts(batched))
        << "verdict divergence at seed=" << seed << " faults=" << faults
        << " overload=" << overload
        << " max_batch=" << batched.tactic.batch.max_batch
        << " max_hold=" << batched.tactic.batch.max_hold;
  }
}

TEST(BatchingEquivalence, PlainScenariosDeliverIdenticalVerdicts) {
  check_equivalence(/*faults=*/false, /*overload=*/false);
}

TEST(BatchingEquivalence, FaultedScenariosDeliverIdenticalVerdicts) {
  check_equivalence(/*faults=*/true, /*overload=*/false);
}

TEST(BatchingEquivalence, OverloadedScenariosDeliverIdenticalVerdicts) {
  check_equivalence(/*faults=*/true, /*overload=*/true);
}

TEST(BatchingEquivalence, BatchedRunsAreBitReproducible) {
  sim::ScenarioConfig config =
      closed_loop_config(9103, /*faults=*/true, /*overload=*/true);
  config.tactic.batch.enabled = true;
  config.tactic.batch.max_batch = 6;
  config.tactic.batch.max_hold = 2 * kMillisecond;

  sim::Scenario first(config);
  first.run();
  const std::string first_digest = tt::fingerprint_digest(first.harvest());
  const std::string first_verdicts = tt::verdict_multiset(first);

  sim::Scenario second(config);
  second.run();
  EXPECT_EQ(tt::fingerprint_digest(second.harvest()), first_digest);
  EXPECT_EQ(tt::verdict_multiset(second), first_verdicts);
}

}  // namespace
}  // namespace tactic::core
