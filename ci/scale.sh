#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep in bigtables mode under ASan+UBSan:
# every edge/core router FIB is pre-populated with 10^4-10^5 random
# prefixes before the workload, pushing the interned-name tables (LC-trie
# FIB, slab PIT, interned-key CS) toward the million-entry regime while
# the runtime invariant checker stays armed.  Each scenario additionally
# re-runs on the retained linear-reference FIB and the metrics
# fingerprint + packet-trace digest are byte-compared — the trie must be
# a pure lookup-structure swap, bit-identical to the reference.  Random
# fault plans and overload configurations stay on, so crash-restarts
# wipe and rebuild the big tables mid-run.  Any sanitizer report aborts
# the run (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/scale.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Same base-seed convention as ci/flood.sh / ci/batch.sh: failures
# reproduce locally with the printed --seed/--repro line.  Prepopulation
# makes each run markedly heavier (two extra passes per seed: repeat +
# linear reference), so the sweep trades run count for table size.
"$BUILD_DIR/fuzz_scenarios" --runs 10 --duration 8 --seed 9000 \
  --faults --overload --bigtables

echo "scale: OK"
