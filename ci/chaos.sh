#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep WITH random fault plans (lossy/bursty/
# corrupting links, router crash-restarts, link flaps) under ASan+UBSan.
# Exercises the chaos layer end to end: the runtime invariant checker
# stays armed — security invariants must hold under any fault plan, and
# every scenario is run twice and byte-compared, so fault injection that
# breaks determinism fails the sweep.  Any sanitizer report aborts the
# run (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/chaos.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Fixed base seed so CI failures reproduce locally with the printed
# --seed/--repro line.  Longer scenarios than ci/sanitize.sh's sweep:
# crash-restart and flap schedules need room to fire and recover.
"$BUILD_DIR/fuzz_scenarios" --runs 16 --duration 12 --seed 7000 --faults

echo "chaos: OK"
