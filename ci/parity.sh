#!/usr/bin/env bash
# Behaviour-preservation gate for the validation pipeline: builds the
# tree with ASan+UBSan, runs the fixed-seed fuzz corpus (plain, faults,
# faults+overload — 16 seeds each), and diffs the metrics-fingerprint
# digests against the checked-in golden list.  Any behavioural drift in
# router policy code — an extra RNG draw, a reordered charge, a dropped
# counter — fails the diff; a mismatching seed reproduces with
# `fuzz_scenarios --seed N --repro [--faults] [--overload]`.
#
# The goldens were captured from the pre-pipeline monolith; regenerate
# them ONLY for an intentional behaviour change, with
#   build/fingerprint_corpus > tests/golden/fingerprints.txt
#   build/fingerprint_corpus --verdicts > tests/golden/verdicts.txt
# and say so in the commit message.
#
# The corpus runs with the batching layer OFF (the generator never
# samples it without --batch), so this diff is also the bit-identity
# check for a disabled batch layer: any batch code that leaks into the
# unbatched path — a stray RNG draw, a rounded charge, a counter that
# prints when it shouldn't — fails here.  The verdict corpus pins the
# order-insensitive per-user verdict multisets the batching equivalence
# harness (tests/batching_test.cpp) compares.
#
# Usage: ci/parity.sh [build-dir]    (default: build-sanitize)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"
GOLDEN="tests/golden/fingerprints.txt"
VERDICT_GOLDEN="tests/golden/verdicts.txt"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fingerprint_corpus

# Both pooling modes must match the same goldens: packet-slab recycling
# (the default) is a pure allocation strategy, so turning it off with
# --no-pool may not move a single byte of any digest.
for POOL_FLAG in "" "--no-pool"; do
  SUFFIX="${POOL_FLAG:+.nopool}"

  # shellcheck disable=SC2086  # POOL_FLAG is intentionally word-split
  "$BUILD_DIR/fingerprint_corpus" $POOL_FLAG \
    > "$BUILD_DIR/fingerprints$SUFFIX.txt"

  if ! diff -u "$GOLDEN" "$BUILD_DIR/fingerprints$SUFFIX.txt"; then
    echo "parity: FINGERPRINT MISMATCH against $GOLDEN" \
      "(pooling ${POOL_FLAG:-on})" >&2
    exit 1
  fi

  # shellcheck disable=SC2086
  "$BUILD_DIR/fingerprint_corpus" --verdicts $POOL_FLAG \
    > "$BUILD_DIR/verdicts$SUFFIX.txt"

  if ! diff -u "$VERDICT_GOLDEN" "$BUILD_DIR/verdicts$SUFFIX.txt"; then
    echo "parity: VERDICT MISMATCH against $VERDICT_GOLDEN" \
      "(pooling ${POOL_FLAG:-on})" >&2
    exit 1
  fi
done

# Parallel-engine determinism: the corpus must be bit-identical at any
# worker thread count.  The threads=1 output equals the goldens (diffed
# above), so 2 and 4 threads are compared against the goldens directly;
# verdict multisets likewise.  Lane counts CHANGE behaviour (multi-lane
# validation reorders queueing), so lanes=4 runs are never compared to
# the goldens — only across thread counts at the fixed lane count.
for THREADS in 2 4; do
  "$BUILD_DIR/fingerprint_corpus" --threads "$THREADS" \
    > "$BUILD_DIR/fingerprints.t$THREADS.txt"
  if ! diff -u "$GOLDEN" "$BUILD_DIR/fingerprints.t$THREADS.txt"; then
    echo "parity: FINGERPRINT MISMATCH at $THREADS threads" >&2
    exit 1
  fi
  "$BUILD_DIR/fingerprint_corpus" --verdicts --threads "$THREADS" \
    > "$BUILD_DIR/verdicts.t$THREADS.txt"
  if ! diff -u "$VERDICT_GOLDEN" "$BUILD_DIR/verdicts.t$THREADS.txt"; then
    echo "parity: VERDICT MISMATCH at $THREADS threads" >&2
    exit 1
  fi
done

LANES_REF="$BUILD_DIR/fingerprints.lanes4.t1.txt"
"$BUILD_DIR/fingerprint_corpus" --lanes 4 > "$LANES_REF"
for THREADS in 2 4; do
  OUT="$BUILD_DIR/fingerprints.lanes4.t$THREADS.txt"
  "$BUILD_DIR/fingerprint_corpus" --lanes 4 --threads "$THREADS" > "$OUT"
  if ! diff -u "$LANES_REF" "$OUT"; then
    echo "parity: FINGERPRINT MISMATCH at 4 lanes, $THREADS threads" \
      "(vs 4 lanes, 1 thread)" >&2
    exit 1
  fi
done

echo "parity: OK ($(wc -l < "$GOLDEN") fingerprints and" \
  "$(wc -l < "$VERDICT_GOLDEN") verdict multisets bit-identical," \
  "pooling on and off; threads 1/2/4 identical at 1 and 4 lanes)"
