#!/usr/bin/env bash
# Behaviour-preservation gate for the validation pipeline: builds the
# tree with ASan+UBSan, runs the fixed-seed fuzz corpus (plain, faults,
# faults+overload — 16 seeds each), and diffs the metrics-fingerprint
# digests against the checked-in golden list.  Any behavioural drift in
# router policy code — an extra RNG draw, a reordered charge, a dropped
# counter — fails the diff; a mismatching seed reproduces with
# `fuzz_scenarios --seed N --repro [--faults] [--overload]`.
#
# The goldens were captured from the pre-pipeline monolith; regenerate
# them ONLY for an intentional behaviour change, with
#   build/fingerprint_corpus > tests/golden/fingerprints.txt
# and say so in the commit message.
#
# Usage: ci/parity.sh [build-dir]    (default: build-sanitize)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"
GOLDEN="tests/golden/fingerprints.txt"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fingerprint_corpus

"$BUILD_DIR/fingerprint_corpus" > "$BUILD_DIR/fingerprints.txt"

if ! diff -u "$GOLDEN" "$BUILD_DIR/fingerprints.txt"; then
  echo "parity: FINGERPRINT MISMATCH against $GOLDEN" >&2
  exit 1
fi

echo "parity: OK ($(wc -l < "$GOLDEN") fingerprints bit-identical)"
