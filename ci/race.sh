#!/usr/bin/env bash
# Race gate for the parallel engine: builds the tree with ThreadSanitizer
# (-DTACTIC_TSAN=ON, a separate build dir — TSan and ASan runtimes cannot
# coexist) and runs the workloads that actually exercise cross-thread
# code at 2 and 4 worker threads:
#
#   - the fixed-seed parity corpus (plain, faults, faults+overload), so
#     every cross-partition path — inbox posts, pool releases on foreign
#     threads, issuer calls from attacker strategies, the invariant
#     checker's concurrent on_packet — runs under the race detector;
#   - a scenario-fuzz sweep with --faults --overload --adaptive, whose
#     runs also re-execute and byte-compare digests, so nondeterminism
#     and races are both fatal here.
#
# Any TSan report aborts the process (-fno-sanitize-recover=all) and
# fails the script.  Thread count 1 is deliberately not run here: it
# spawns no workers, so there is nothing for TSan to see that
# ci/sanitize.sh does not already cover.
#
# Usage: ci/race.sh [build-dir]    (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_TSAN=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target fingerprint_corpus --target fuzz_scenarios

for THREADS in 2 4; do
  echo "race: parity corpus at $THREADS threads"
  "$BUILD_DIR/fingerprint_corpus" --threads "$THREADS" \
    > "$BUILD_DIR/fingerprints.t$THREADS.txt"

  echo "race: fuzz sweep at $THREADS threads"
  "$BUILD_DIR/fuzz_scenarios" --runs 4 --duration 6 \
    --faults --overload --adaptive --threads "$THREADS"
done

echo "race: OK (corpus + fuzz sweep clean under TSan at 2 and 4 threads)"
