#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep with random fault plans AND random
# overload-resilience configurations (validation queues, load shedding,
# negative-tag caches, staged BF resets, bounded PITs, attacker floods)
# under ASan+UBSan.  Exercises the overload layer end to end: the runtime
# invariant checker stays armed — a disabled layer must be perfectly
# inert, bounded PITs must never exceed capacity, and the security
# invariants must hold under any shedding decision.  Every scenario runs
# twice and is byte-compared, so any overload mechanism that breaks
# determinism fails the sweep.  Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/flood.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Fixed base seed so CI failures reproduce locally with the printed
# --seed/--repro line.  Flood scenarios multiply the packet rate, so the
# sweep trades duration for breadth relative to ci/chaos.sh.
"$BUILD_DIR/fuzz_scenarios" --runs 16 --duration 10 --seed 9000 \
  --faults --overload

echo "flood: OK"
