#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep with the batched-validation layer ON,
# stacked on random fault plans and overload-resilience configurations,
# under ASan+UBSan.  Exercises the batcher end to end: per-provider
# signature batches flushing on size cap / deadline / queue drain,
# deferred verdict delivery through the forwarder, batches dropped by
# crash-restarts, and same-instant BF probe coalescing — all with the
# runtime invariant checker armed.  Every scenario runs twice and is
# byte-compared, so a batcher that breaks determinism (a flush-time RNG
# draw, an unordered flush) fails the sweep.  Any sanitizer report
# aborts the run (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/batch.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Same fixed base seed as ci/flood.sh so the two sweeps share base, fault
# and overload draws — the batch draws come strictly after, so a seed
# failing here but not in ci/flood.sh isolates the batching layer.
"$BUILD_DIR/fuzz_scenarios" --runs 16 --duration 10 --seed 9000 \
  --faults --overload --batch

echo "batch: OK"
