#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep with random fault plans, random
# overload-resilience configurations AND the tag-lifecycle layer (skewed
# node clocks, skew-tolerant expiry, outage grace mode, proactive
# renewal) under ASan+UBSan.  The lifecycle knobs are sampled strictly
# after every other layer's draws, so the base/fault/overload
# configurations for a seed are identical to the ci/flood.sh sweep —
# only the lifecycle layer differs.  The runtime invariant checker stays
# armed: a disabled lifecycle layer must be perfectly inert, a tolerance
# window covering the worst-case clock error must eliminate skew-induced
# rejections of live tags, and the security invariants must hold no
# matter how far any clock wanders (tolerance + grace + skew are sampled
# to stay below one tag validity).  Every scenario runs twice and is
# byte-compared, so skewed clocks that leak nondeterminism fail the
# sweep.  Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/lifecycle.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Same fixed base seed as ci/flood.sh and ci/adaptive.sh so the sweeps
# cover the same base scenarios with different top layers armed.
"$BUILD_DIR/fuzz_scenarios" --runs 16 --duration 10 --seed 9000 \
  --faults --overload --skew

echo "lifecycle: OK"
