#!/usr/bin/env bash
# Fixed-seed scenario-fuzz sweep with random fault plans, random
# overload-resilience configurations AND the adaptive overload-control
# layer (gradient admission controller + per-face outlier quarantine)
# under ASan+UBSan.  The adaptive knobs are sampled strictly after every
# other layer's draws, so the base/fault/overload/batch configurations
# for a seed are identical to the ci/flood.sh sweep — only the adaptive
# layer differs.  The runtime invariant checker stays armed: a disabled
# adaptive layer must be perfectly inert, and the security invariants
# must hold under any admission or quarantine decision.  Every scenario
# runs twice and is byte-compared, so a controller or quarantine clock
# that leaks nondeterminism fails the sweep.  Any sanitizer report
# aborts the run (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/adaptive.sh [build-dir]    (default: build-sanitize)
#
# Reuses the sanitizer build tree; run after (or instead of)
# ci/sanitize.sh — the cmake step below is a no-op when it already ran.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_scenarios

# Same fixed base seed as ci/flood.sh so the two sweeps cover the same
# base scenarios with and without the adaptive layer armed.
"$BUILD_DIR/fuzz_scenarios" --runs 16 --duration 10 --seed 9000 \
  --faults --overload --adaptive

echo "adaptive: OK"
