#!/usr/bin/env bash
# Allocation gate for the zero-copy packet path (docs/ARCHITECTURE.md,
# "Packet memory model"): builds bench/packet_path under ASan+UBSan and
# runs it at a fixed seed.  The binary fails (non-zero exit) unless
#
#   - the steady-state hot-path exchange performs ZERO heap allocations
#     after warmup (pooled packets, recycled scheduler slots, cached
#     wire sizes), and
#   - on the plain corpus scenario, the marginal allocations per
#     delivered chunk flatline — the second window's marginal cost must
#     not exceed the first window's average — with pooling beating the
#     make_shared baseline.
#
# The probe's operator new forwards to malloc, so ASan still sees every
# allocation: the same run checks for leaks (crash wipe_volatile paths
# included) and UB.  Results land in BENCH_packet_path.json.
#
# Usage: ci/alloc.sh [build-dir]    (default: build-sanitize)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target packet_path

"$BUILD_DIR/bench/packet_path" --seed 9000 \
  --json "$BUILD_DIR/BENCH_packet_path.json"

echo "alloc: OK"
