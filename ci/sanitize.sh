#!/usr/bin/env bash
# Builds the whole tree with ASan+UBSan and runs the tier-1 test suite
# plus a short scenario-fuzz sweep under the sanitizers.  Any sanitizer
# report aborts the run (-fno-sanitize-recover=all) and fails the script.
#
# Usage: ci/sanitize.sh [build-dir]    (default: build-sanitize)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DTACTIC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Short fuzz sweep: exercises the full simulator (crypto, Bloom filters,
# forwarder, PIT, workloads) under the sanitizers with the runtime
# invariant checker armed.
"$BUILD_DIR/fuzz_scenarios" --runs 5 --duration 6

echo "sanitize: OK"
