// Example: mobile clients roaming across the wireless edge — the paper's
// future work ("we also plan to test our mechanism in a real testbed
// under nodes mobility"), exercised here together with the other
// future-work item, traitor tracing.
//
// A commuter streams content while hopping between access points every
// few seconds.  With access-path enforcement on, each hop invalidates the
// location binding in its tags; the first request from the new cell is
// NACKed and the client transparently re-registers ("a mobile client
// needs to request a new tag every time she moves to a new location").
// Meanwhile a credential-sharing ring replays a subscriber's tags from
// other cells — and the traitor tracer catches the *owner* of the shared
// credential and revokes it everywhere.
//
// Run: ./build/examples/mobile_roaming [--duration 60] [--hop-every 8]

#include <cstdio>

#include "sim/scenario.hpp"
#include "util/flags.hpp"

using namespace tactic;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double duration_s = flags.get_double("duration", 60.0);
  const double hop_every_s = flags.get_double("hop-every", 8.0);

  sim::ScenarioConfig config;
  config.topology.core_routers = 20;
  config.topology.edge_routers = 6;
  config.topology.aps_per_edge = 3;  // 18 cells to roam across
  config.topology.providers = 3;
  config.topology.clients = 12;
  config.topology.attackers = 3;  // the credential-sharing ring
  config.attacker_mix = {workload::AttackerMode::kSharedTag};
  config.attacker.think_time_mean = 500 * event::kMillisecond;
  config.duration = event::from_seconds(duration_s);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.provider.key_bits = 512;
  config.tactic.enforce_access_path = true;
  config.enable_traitor_tracing = true;
  config.traitor_tracing.report_threshold = 12;

  sim::Scenario scenario(config);

  // The last client is the commuter: hop to a random other AP
  // periodically.  (The sharing ring borrows credentials from the
  // first few clients; the tracer rightly flags a credential's *owner*,
  // so the roaming demo uses a client whose credential stays private.)
  const net::NodeId commuter_node = scenario.network().clients().back();
  workload::ClientApp& commuter = *scenario.clients().back();
  util::Rng hop_rng(99);
  int hops = 0;
  std::function<void()> hop = [&] {
    const std::size_t ap_count =
        scenario.network().access_points().size();
    std::size_t target = hop_rng.uniform(ap_count);
    if (target == scenario.network().ap_index_of(commuter_node)) {
      target = (target + 1) % ap_count;
    }
    scenario.move_user(commuter_node, target);
    ++hops;
    std::printf("t=%5.1fs  commuter hops to %s (edge %s)\n",
                event::to_seconds(scenario.scheduler().now()),
                scenario.network().ap_of(commuter_node).label.c_str(),
                scenario.network()
                    .node(scenario.network().edge_router_of(commuter_node))
                    .info()
                    .label.c_str());
    scenario.scheduler().schedule(event::from_seconds(hop_every_s), hop);
  };
  scenario.scheduler().schedule(event::from_seconds(hop_every_s), hop);

  std::printf("roaming for %.0f simulated seconds, hopping every ~%.0fs\n\n",
              duration_s, hop_every_s);
  const sim::Metrics& metrics = scenario.run();

  std::printf("\ncommuter: %d hops, %llu chunks received, %llu tags "
              "fetched, %llu NACKs absorbed\n",
              hops,
              static_cast<unsigned long long>(
                  commuter.counters().chunks_received),
              static_cast<unsigned long long>(
                  commuter.counters().tags_received),
              static_cast<unsigned long long>(
                  commuter.counters().nacks_received));
  std::printf("all clients: %.2f%% delivery despite the roaming and the "
              "sharing ring\n",
              100.0 * metrics.clients.delivery_ratio());
  std::printf("sharing ring: %llu probes, %llu chunks obtained\n",
              static_cast<unsigned long long>(metrics.attackers.requested),
              static_cast<unsigned long long>(metrics.attackers.received));

  const core::TraitorTracer& tracer = *scenario.traitor_tracer();
  std::printf("\ntraitor tracer: %llu mismatch reports from edge routers; "
              "flagged %zu credential owner(s):\n",
              static_cast<unsigned long long>(tracer.reports_received()),
              tracer.flagged().size());
  for (const std::string& locator : tracer.flagged()) {
    std::printf("  %s -> revoked at every provider\n", locator.c_str());
  }
  std::printf("(tracing names the credential OWNER — whether it shared or "
              "was stolen from, the credential is burned and the owner "
              "must re-enroll)\n");
  const std::string commuter_locator =
      workload::ProviderApp::client_key_locator(commuter.label());
  std::printf("commuter flagged? %s (mobility re-registration keeps honest "
              "clients under the reporting threshold)\n",
              tracer.is_flagged(commuter_locator) ? "YES (bug!)" : "no");
  return 0;
}
