// Example: a subscription video service at the wireless edge.
//
// The workload the paper's introduction motivates: popular (Zipf) video
// content, pervasive caching, paying subscribers, and freeloaders trying
// to watch without an account.  Demonstrates:
//   - cache utilization under TACTIC (subscribers are served from
//     in-network caches without the provider seeing the requests);
//   - mid-run revocation: a subscriber stops paying, the provider refuses
//     its next tag refresh, and its access ends within one tag-validity
//     window — no content re-encryption, no network-wide invalidation.
//
// Run: ./build/examples/video_edge_cdn [--duration 60] [--seed 1]

#include <cstdio>

#include "sim/scenario.hpp"
#include "util/flags.hpp"

using namespace tactic;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  sim::ScenarioConfig config;
  config.topology = topology::paper_topology(1);
  config.duration =
      event::from_seconds(flags.get_double("duration", 60.0));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.provider.key_bits = 512;
  // Video catalogs: fewer, larger titles; strong popularity skew.
  config.provider.catalog.objects = 20;
  config.provider.catalog.chunks_per_object = 100;
  config.provider.catalog.chunk_size = 4096;
  config.client.zipf_alpha = 1.0;
  config.provider.tag_validity = 10 * event::kSecond;

  sim::Scenario scenario(config);

  // One subscriber stops paying a third of the way in: the provider
  // refuses further tag refreshes.  Access dies with the current tag.
  workload::ClientApp& churned = *scenario.clients().front();
  const std::string churned_locator =
      workload::ProviderApp::client_key_locator(churned.label());
  const event::Time revoke_at = config.duration / 3;
  scenario.scheduler().schedule(revoke_at, [&] {
    for (auto& provider : scenario.providers()) {
      provider->issuer().revoke(churned_locator);
    }
    std::printf("t=%.0fs: subscription of %s cancelled (provider-side "
                "revocation — one map update, nothing re-encrypted)\n",
                event::to_seconds(revoke_at), churned.label().c_str());
  });

  // Track the churned subscriber's deliveries per 10-second window.
  util::TimeSeries churned_deliveries(10.0);
  churned.on_latency_sample = [&](event::Time when, double) {
    churned_deliveries.add_event(event::to_seconds(when));
  };

  std::printf("streaming for %.0f simulated seconds...\n\n",
              event::to_seconds(config.duration));
  const sim::Metrics& metrics = scenario.run();

  std::printf("subscribers: %llu chunks requested, %.2f%% delivered, "
              "mean latency %.1f ms\n",
              static_cast<unsigned long long>(metrics.clients.requested),
              100.0 * metrics.clients.delivery_ratio(),
              1e3 * metrics.mean_latency());
  std::printf("cache hit ratio: %.1f%% (provider served only %llu of %llu "
              "delivered chunks)\n",
              100.0 * metrics.cache_hit_ratio(),
              static_cast<unsigned long long>(
                  metrics.provider_content_served),
              static_cast<unsigned long long>(metrics.clients.received));
  std::printf("freeloaders: %llu requests, %llu chunks obtained\n",
              static_cast<unsigned long long>(metrics.attackers.requested),
              static_cast<unsigned long long>(metrics.attackers.received));

  std::printf("\ncancelled subscriber's deliveries per 10 s window:\n");
  for (std::size_t window = 0; window < churned_deliveries.bucket_count();
       ++window) {
    std::printf("  t=[%3zu,%3zu)s : %4zu chunks%s\n", window * 10,
                (window + 1) * 10, churned_deliveries.count(window),
                event::from_seconds(static_cast<double>(window) * 10.0) >=
                        revoke_at + config.provider.tag_validity
                    ? "   <- revoked and tag expired"
                    : "");
  }
  std::printf(
      "\nthe cancelled subscriber kept watching only until its last tag "
      "expired (%llu s validity), then every request died at the edge\n",
      static_cast<unsigned long long>(config.provider.tag_validity /
                                      event::kSecond));
  return 0;
}
