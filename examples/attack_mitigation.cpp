// Example: bandwidth-waste / DDoS mitigation.
//
// The paper's core security argument against client-side enforcement
// (Section 1): if the network serves everyone and only decryption is
// restricted, revoked or unauthorized users can still pull encrypted
// content — wasting edge bandwidth and enabling DDoS.  TACTIC stops the
// request at the first router that cannot validate its tag.
//
// This example floods the same topology with aggressive attackers under
// (a) client-side enforcement and (b) TACTIC, and compares the bytes the
// attackers manage to draw across the wireless edge.
//
// Run: ./build/examples/attack_mitigation [--duration 45] [--attack-rate 20]

#include <cstdio>

#include "sim/scenario.hpp"
#include "util/flags.hpp"

using namespace tactic;

namespace {

sim::Metrics run_policy(sim::PolicyKind policy, double duration_s,
                        double attacks_per_second, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.topology = topology::paper_topology(1);
  config.topology.attackers = 30;  // an actual botnet, not a third
  config.duration = event::from_seconds(duration_s);
  config.seed = seed;
  config.policy = policy;
  config.provider.key_bits = 512;
  // Aggressive attack pacing: think time = window / rate.
  config.attacker.think_time_mean = event::from_seconds(
      static_cast<double>(config.attacker.window) / attacks_per_second);
  config.attacker_mix = {workload::AttackerMode::kNoTag,
                         workload::AttackerMode::kForgedTag,
                         workload::AttackerMode::kExpiredTag};
  sim::Scenario scenario(config);
  return scenario.run();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 45.0);
  const double rate = flags.get_double("attack-rate", 20.0);

  std::printf("30 bots at ~%.0f requests/s each, %.0f s run\n\n", rate,
              duration);

  const sim::Metrics exposed =
      run_policy(sim::PolicyKind::kClientSideAc, duration, rate, 7);
  const sim::Metrics protected_run =
      run_policy(sim::PolicyKind::kTactic, duration, rate, 7);

  auto report = [](const char* name, const sim::Metrics& metrics) {
    const double attacker_bytes =
        static_cast<double>(metrics.attackers.received) * 1024.0;
    std::printf("%-18s bots pulled %7llu chunks (~%.1f MB of edge "
                "bandwidth); clients at %.2f%% delivery, %.1f ms latency\n",
                name,
                static_cast<unsigned long long>(metrics.attackers.received),
                attacker_bytes / 1e6,
                100.0 * metrics.clients.delivery_ratio(),
                1e3 * metrics.mean_latency());
  };
  report("client-side AC:", exposed);
  report("TACTIC:", protected_run);

  const double reduction =
      exposed.attackers.received == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(
                               protected_run.attackers.received) /
                               static_cast<double>(
                                   exposed.attackers.received));
  std::printf("\nTACTIC removed %.2f%% of the attack traffic from the "
              "network: invalid requests die at the edge pre-check or "
              "come back NACK-marked and are never delivered\n",
              reduction);
  std::printf(
      "attacker requests under TACTIC: %llu sent, %llu NACKed, %llu "
      "timed out\n",
      static_cast<unsigned long long>(protected_run.attackers.requested),
      static_cast<unsigned long long>(protected_run.attackers.nacks),
      static_cast<unsigned long long>(protected_run.attackers.timeouts));
  return 0;
}
