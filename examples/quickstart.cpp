// Quickstart: the whole TACTIC flow on a hand-built five-node network.
//
//   client --(wireless, "ap0")-- edge router -- core router -- provider
//
// Walks through: provider setup (keys, catalog, protected prefix), client
// registration (tag issuance, RSA-encrypted content key), a tagged fetch
// validated in-network, real AES decryption of the chunk payload, a cache
// hit served by the core router, and an attacker with a forged tag being
// refused — all with the library's real crypto.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"
#include "sim/scenario.hpp"
#include "tactic/access_path.hpp"
#include "tactic/tactic_policy.hpp"
#include "topology/network.hpp"
#include "workload/provider_app.hpp"

using namespace tactic;

int main() {
  event::Scheduler scheduler;
  topology::Network net = topology::Network::empty(scheduler);
  core::TrustAnchors anchors;

  // --- Nodes and links ----------------------------------------------------
  const net::NodeId client =
      net.add_node(net::NodeKind::kClient, "client0", 0);
  const net::NodeId edge =
      net.add_node(net::NodeKind::kEdgeRouter, "edge0", 0);
  const net::NodeId core_router =
      net.add_node(net::NodeKind::kCoreRouter, "core0", 100);
  const net::NodeId producer =
      net.add_node(net::NodeKind::kProvider, "provider0", 0);
  net.connect(client, edge, net::edge_link_params());    // 10 Mbps, 2 ms
  net.connect(edge, core_router, net::core_link_params());  // 500 Mbps, 1 ms
  net.connect(core_router, producer, net::core_link_params());

  // --- Provider: RSA key, catalog, registration service -------------------
  workload::ProviderConfig provider_config;
  provider_config.catalog.objects = 5;
  provider_config.catalog.chunks_per_object = 3;
  provider_config.tag_validity = 10 * event::kSecond;
  provider_config.key_bits = 1024;
  workload::ProviderApp provider(net.node(producer), "/provider0",
                                 provider_config, anchors, util::Rng(1));
  net.install_routes(provider.prefix(), producer);
  std::printf("provider up: prefix %s, key locator %s (%zu-byte RSA)\n",
              provider.prefix().to_uri().c_str(),
              provider.key_locator().c_str(),
              provider.public_key().modulus_size());

  // The client owns a real keypair; the provider will RSA-encrypt the
  // content key for it at registration.
  util::Rng client_rng(2);
  const crypto::RsaKeyPair client_keys =
      crypto::generate_rsa_keypair(client_rng, 1024);
  provider.set_client_key_lookup(
      [&](const std::string& label) -> const crypto::RsaPublicKey* {
        return label == "client0" ? &client_keys.public_key : nullptr;
      });
  provider.issuer().enroll(
      workload::ProviderApp::client_key_locator("client0"), /*AL=*/2);

  // --- TACTIC policies on the routers, AP identity on the client ----------
  core::TacticConfig tactic_config;
  tactic_config.bloom = {500, 5, 1e-4, 1e-4};
  tactic_config.enforce_access_path = true;  // the full feature set
  net.node(client).set_policy(std::make_unique<core::ApPolicy>("ap0"));
  net.node(edge).set_policy(std::make_unique<core::EdgeTacticPolicy>(
      tactic_config, anchors, core::ComputeModel::paper_defaults(),
      util::Rng(3)));
  net.node(core_router).set_policy(std::make_unique<core::CoreTacticPolicy>(
      tactic_config, anchors, core::ComputeModel::paper_defaults(),
      util::Rng(4)));

  // --- Client app face ----------------------------------------------------
  core::TagPtr my_tag;
  int chunks_received = 0;
  ndn::FaceId client_face = ndn::kInvalidFace;
  client_face = net.node(client).add_app_face(ndn::AppSink{
      nullptr,
      [&](const ndn::Data& data) {
        if (data.is_registration_response) {
          my_tag = data.tag;
          std::printf(
              "client: tag received (AL=%u, expires t=%.1fs, %zu bytes "
              "on the wire)\n",
              my_tag->access_level(), event::to_seconds(my_tag->expiry()),
              my_tag->wire_size());
          return;
        }
        if (data.nack_attached) {
          std::printf("client: NACK for %s (%s)\n",
                      data.name.to_uri().c_str(),
                      ndn::to_string(data.nack_reason));
          return;
        }
        ++chunks_received;
        std::printf("client: got %s (%zu bytes)%s\n",
                    data.name.to_uri().c_str(), data.content_size,
                    data.from_cache ? " [from in-network cache]" : "");
      },
      [&](const ndn::Nack& nack) {
        std::printf("client: standalone NACK for %s (%s)\n",
                    nack.name.to_uri().c_str(),
                    ndn::to_string(nack.reason));
      }});
  net.node(client).fib().add_route(ndn::Name("/"),
                                   net.face_between(client, edge));

  auto express = [&](const ndn::Name& name, core::TagPtr tag,
                     std::uint64_t nonce) {
    ndn::Interest interest;
    interest.name = name;
    interest.nonce = nonce;
    interest.tag = std::move(tag);
    interest.tag_wire_size = interest.tag ? interest.tag->wire_size() : 0;
    net.node(client).inject_from_app(client_face, std::move(interest));
  };

  // --- 1. Register --------------------------------------------------------
  std::printf("\n[1] client registers with the provider\n");
  express(provider.registration_name("client0", 1), nullptr, 100);
  scheduler.run();

  // --- 2. Tagged fetch, validated in-network ------------------------------
  std::printf("\n[2] client fetches a protected chunk with its tag\n");
  express(provider.catalog().chunk_name(0, 0), my_tag, 101);
  scheduler.run();

  // Decrypt the chunk for real: the catalog's AES key is what the
  // provider sent (RSA-encrypted) at registration.
  const util::Bytes ciphertext = provider.catalog().chunk_ciphertext(0, 0);
  const std::uint64_t nonce = crypto::sha256_prefix64(
      provider.catalog().chunk_name(0, 0).to_uri());
  const util::Bytes plaintext =
      crypto::aes128_ctr(provider.catalog().content_key(), nonce, ciphertext);
  std::printf(
      "client: decrypted chunk with the provider's AES key -> %s\n",
      plaintext == provider.catalog().chunk_plaintext(0, 0)
          ? "plaintext verified"
          : "DECRYPTION MISMATCH");

  // --- 3. Cache hit -------------------------------------------------------
  std::printf("\n[3] a second fetch is served from the core router cache\n");
  express(provider.catalog().chunk_name(0, 0), my_tag, 102);
  scheduler.run();

  // --- 4. Forged tag ------------------------------------------------------
  std::printf("\n[4] an attacker forges a tag (wrong signing key)\n");
  util::Rng forger_rng(9);
  const crypto::RsaKeyPair forger =
      crypto::generate_rsa_keypair(forger_rng, 1024);
  core::Tag::Fields forged_fields;
  forged_fields.provider_key_locator = provider.key_locator();
  forged_fields.client_key_locator = "/mallory/KEY/1";
  forged_fields.access_level = 99;
  forged_fields.access_path = core::entity_id_hash("ap0");
  forged_fields.expiry = scheduler.now() + 10 * event::kSecond;
  express(provider.catalog().chunk_name(0, 1),
          core::forge_tag(forged_fields, forger.private_key), 103);
  scheduler.run();
  std::printf(
      "(the content router detected the forgery; the edge suppressed "
      "delivery -> the request times out at the attacker)\n");

  // --- 5. Tag shared to a different location ------------------------------
  std::printf(
      "\n[5] the tag is replayed from another location (access path)\n");
  net.node(client).set_policy(
      std::make_unique<core::ApPolicy>("somewhere-else"));
  express(provider.catalog().chunk_name(0, 2), my_tag, 104);
  scheduler.run();

  std::printf("\nsummary: %d chunks delivered; edge router did %llu BF "
              "lookups, %llu insertions, %llu signature verifications\n",
              chunks_received,
              static_cast<unsigned long long>(
                  dynamic_cast<core::TacticRouterPolicy&>(
                      net.node(edge).policy())
                      .counters()
                      .bf_lookups),
              static_cast<unsigned long long>(
                  dynamic_cast<core::TacticRouterPolicy&>(
                      net.node(edge).policy())
                      .counters()
                      .bf_insertions),
              static_cast<unsigned long long>(
                  dynamic_cast<core::TacticRouterPolicy&>(
                      net.node(edge).policy())
                      .counters()
                      .sig_verifications));
  return 0;
}
