// Command-line scenario runner: every ScenarioConfig knob as a flag, one
// full metrics report out.  The fastest way to poke at the system without
// writing code.
//
//   ./build/examples/run_scenario --topology 2 --duration 120 \
//       --policy tactic --bf-size 500 --max-fpp 1e-4 --tag-validity 10 \
//       --access-path --traitor-tracing --seed 3
//
// Flags (defaults in brackets):
//   --topology N        Table III preset 1..4 [1]
//   --duration S        simulated seconds [60]
//   --seed N            root seed [1]
//   --policy P          tactic | none | client-side | per-request |
//                       prob-bf [tactic]
//   --bf-size N         router Bloom capacity [500]
//   --max-fpp F         BF saturation threshold [1e-4]
//   --tag-validity S    tag expiry period [10]
//   --access-path       enforce access-path authentication [off]
//   --traitor-tracing   enable the tracer (implies --access-path) [off]
//   --no-precheck       ablate Protocol 1 [on]
//   --no-cooperation    ablate flag-F cooperation [on]
//   --key-bits N        provider RSA modulus [512]
//   --clients N / --attackers N   override the preset's counts

#include <cstdio>
#include <iostream>

#include "sim/scenario.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace tactic;

namespace {

sim::PolicyKind parse_policy(const std::string& name) {
  if (name == "tactic") return sim::PolicyKind::kTactic;
  if (name == "none") return sim::PolicyKind::kNoAccessControl;
  if (name == "client-side") return sim::PolicyKind::kClientSideAc;
  if (name == "per-request") return sim::PolicyKind::kPerRequestAuth;
  if (name == "prob-bf") return sim::PolicyKind::kProbBf;
  throw std::invalid_argument("unknown --policy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  sim::ScenarioConfig config;
  config.topology =
      topology::paper_topology(static_cast<int>(flags.get_int("topology", 1)));
  config.duration = event::from_seconds(flags.get_double("duration", 60.0));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.policy = parse_policy(flags.get_string("policy", "tactic"));
  config.tactic.bloom.capacity =
      static_cast<std::size_t>(flags.get_int("bf-size", 500));
  config.tactic.bloom.max_fpp = flags.get_double("max-fpp", 1e-4);
  config.provider.tag_validity =
      event::from_seconds(flags.get_double("tag-validity", 10.0));
  config.tactic.enforce_access_path = flags.get_bool("access-path", false);
  config.enable_traitor_tracing = flags.get_bool("traitor-tracing", false);
  if (config.enable_traitor_tracing) config.tactic.enforce_access_path = true;
  config.tactic.precheck = flags.get_bool("precheck", true);
  config.tactic.flag_cooperation = flags.get_bool("cooperation", true);
  config.provider.key_bits =
      static_cast<std::size_t>(flags.get_int("key-bits", 512));
  if (flags.has("clients")) {
    config.topology.clients =
        static_cast<std::size_t>(flags.get_int("clients", 35));
  }
  if (flags.has("attackers")) {
    config.topology.attackers =
        static_cast<std::size_t>(flags.get_int("attackers", 15));
  }

  std::printf("policy=%s topology: %zu core + %zu edge routers, %zu "
              "clients, %zu attackers; %.0fs @ seed %llu\n\n",
              to_string(config.policy), config.topology.core_routers,
              config.topology.edge_routers, config.topology.clients,
              config.topology.attackers,
              event::to_seconds(config.duration),
              static_cast<unsigned long long>(config.seed));

  sim::Scenario scenario(config);
  const sim::Metrics& m = scenario.run();

  util::Table table({"metric", "clients", "attackers"});
  table.add_row({"chunks requested", util::Table::fmt(m.clients.requested),
                 util::Table::fmt(m.attackers.requested)});
  table.add_row({"chunks received", util::Table::fmt(m.clients.received),
                 util::Table::fmt(m.attackers.received)});
  table.add_row({"delivery ratio",
                 util::Table::fmt_ratio(m.clients.delivery_ratio()),
                 util::Table::fmt_ratio(m.attackers.delivery_ratio())});
  table.add_row({"NACKs", util::Table::fmt(m.clients.nacks),
                 util::Table::fmt(m.attackers.nacks)});
  table.add_row({"timeouts", util::Table::fmt(m.clients.timeouts),
                 util::Table::fmt(m.attackers.timeouts)});
  table.add_row({"tags requested / received",
                 util::Table::fmt(m.clients.tags_requested) + " / " +
                     util::Table::fmt(m.clients.tags_received),
                 "-"});
  table.print(std::cout);

  util::Table routers({"router class", "BF lookups", "BF inserts",
                       "sig verifies", "BF resets", "compute (s)"});
  routers.add_row({"edge", util::Table::fmt(m.edge_ops.bf_lookups),
                   util::Table::fmt(m.edge_ops.bf_insertions),
                   util::Table::fmt(m.edge_ops.sig_verifications),
                   util::Table::fmt(m.edge_ops.bf_resets),
                   util::Table::fmt(m.edge_ops.compute_charged_s, 4)});
  routers.add_row({"core", util::Table::fmt(m.core_ops.bf_lookups),
                   util::Table::fmt(m.core_ops.bf_insertions),
                   util::Table::fmt(m.core_ops.sig_verifications),
                   util::Table::fmt(m.core_ops.bf_resets),
                   util::Table::fmt(m.core_ops.compute_charged_s, 4)});
  std::printf("\n");
  routers.print(std::cout);

  std::printf("\nmean latency %.2f ms | cache hit %.1f%% | provider "
              "verifies %llu, tags issued %llu, served %llu | wire %.1f MB"
              ", %llu frames dropped\n",
              1e3 * m.mean_latency(), 100.0 * m.cache_hit_ratio(),
              static_cast<unsigned long long>(m.provider_sig_verifications),
              static_cast<unsigned long long>(m.provider_tags_issued),
              static_cast<unsigned long long>(m.provider_content_served),
              static_cast<double>(m.link_bytes_sent) / 1e6,
              static_cast<unsigned long long>(m.link_frames_dropped));
  if (scenario.traitor_tracer() != nullptr) {
    std::printf("traitor tracer: %llu reports, %zu flagged\n",
                static_cast<unsigned long long>(
                    scenario.traitor_tracer()->reports_received()),
                scenario.traitor_tracer()->flagged().size());
  }
  return 0;
}
