// Example: an IoT/M2M telemetry fleet at the wireless edge.
//
// "TACTIC is designed to be relevant for a wide range of clients, which
// will make up tomorrow's mobile edge devices (e.g., cars, smartphones,
// and other IoT/CPS devices)" (paper Section 1).  This example models a
// dense fleet of constrained meters pulling small configuration/firmware
// chunks: tiny request windows, small payloads, short tag validity (tight
// revocation for compromised devices), and reports the per-device and
// per-router costs that make or break constrained deployments:
// the client-side cost is one registration per validity window —
// no client-side ABE/broadcast-encryption math (Table II's client
// computation column).
//
// Run: ./build/examples/iot_fleet [--devices 120] [--duration 60]

#include <cstdio>

#include "sim/scenario.hpp"
#include "util/flags.hpp"

using namespace tactic;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::int64_t devices = flags.get_int("devices", 120);

  sim::ScenarioConfig config;
  config.topology.core_routers = 40;
  config.topology.edge_routers = 12;
  config.topology.aps_per_edge = 2;  // dense wireless cells
  config.topology.providers = 3;     // device vendor / utility / city
  config.topology.clients = static_cast<std::size_t>(devices);
  config.topology.attackers = static_cast<std::size_t>(devices / 10);
  config.duration =
      event::from_seconds(flags.get_double("duration", 60.0));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.provider.key_bits = 512;
  // Constrained devices: window of 2, small chunks, sparse polling.
  config.client.window = 2;
  config.client.think_time_mean = 500 * event::kMillisecond;
  config.provider.catalog.objects = 30;
  config.provider.catalog.chunks_per_object = 10;
  config.provider.catalog.chunk_size = 256;
  // Tight revocation for compromised devices.
  config.provider.tag_validity = 5 * event::kSecond;
  // Compromised devices replay stale credentials.
  config.attacker_mix = {workload::AttackerMode::kExpiredTag,
                         workload::AttackerMode::kForgedTag};
  config.attacker.think_time_mean = 5 * event::kSecond;

  std::printf("fleet: %lld devices, %zu rogue, %zu edge routers, "
              "%zu vendors, %llu s tag validity\n\n",
              static_cast<long long>(devices), config.topology.attackers,
              config.topology.edge_routers, config.topology.providers,
              static_cast<unsigned long long>(config.provider.tag_validity /
                                              event::kSecond));

  sim::Scenario scenario(config);
  const sim::Metrics& metrics = scenario.run();

  const double seconds = event::to_seconds(config.duration);
  const double per_device_reqs =
      static_cast<double>(metrics.clients.requested) /
      (static_cast<double>(devices) * seconds);
  const double per_device_tags =
      static_cast<double>(metrics.clients.tags_requested) /
      (static_cast<double>(devices) * seconds);

  std::printf("fleet telemetry: %.2f chunk requests/device/s at %.2f%% "
              "delivery, %.1f ms mean latency\n",
              per_device_reqs, 100.0 * metrics.clients.delivery_ratio(),
              1e3 * metrics.mean_latency());
  std::printf("device-side access-control cost: %.3f registrations"
              "/device/s (one signed tag each; no client-side crypto "
              "beyond one RSA decryption of the content key)\n",
              per_device_tags);
  std::printf("rogue devices: %llu probes, %llu chunks leaked\n",
              static_cast<unsigned long long>(metrics.attackers.requested),
              static_cast<unsigned long long>(metrics.attackers.received));

  const double edge_router_count =
      static_cast<double>(config.topology.edge_routers);
  std::printf(
      "\nper-edge-router load over the run: %.0f BF lookups, %.0f BF "
      "insertions, %.0f signature verifications (%.1f us-scale ops vs "
      "one RSA verify per request in router-crypto schemes)\n",
      static_cast<double>(metrics.edge_ops.bf_lookups) / edge_router_count,
      static_cast<double>(metrics.edge_ops.bf_insertions) /
          edge_router_count,
      static_cast<double>(metrics.edge_ops.sig_verifications) /
          edge_router_count,
      1e6 * 9.14e-7);
  std::printf("total simulated router compute charged: %.3f s across the "
              "whole ISP for %llu delivered chunks\n",
              metrics.edge_ops.compute_charged_s +
                  metrics.core_ops.compute_charged_s,
              static_cast<unsigned long long>(metrics.clients.received));
  return 0;
}
