# Empty dependencies file for video_edge_cdn.
# This may be replaced when dependencies are built.
