file(REMOVE_RECURSE
  "CMakeFiles/video_edge_cdn.dir/video_edge_cdn.cpp.o"
  "CMakeFiles/video_edge_cdn.dir/video_edge_cdn.cpp.o.d"
  "video_edge_cdn"
  "video_edge_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_edge_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
