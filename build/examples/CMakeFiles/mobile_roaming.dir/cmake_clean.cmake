file(REMOVE_RECURSE
  "CMakeFiles/mobile_roaming.dir/mobile_roaming.cpp.o"
  "CMakeFiles/mobile_roaming.dir/mobile_roaming.cpp.o.d"
  "mobile_roaming"
  "mobile_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
