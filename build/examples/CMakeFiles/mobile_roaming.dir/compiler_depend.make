# Empty compiler generated dependencies file for mobile_roaming.
# This may be replaced when dependencies are built.
