# Empty dependencies file for tactic_event.
# This may be replaced when dependencies are built.
