file(REMOVE_RECURSE
  "CMakeFiles/tactic_event.dir/scheduler.cpp.o"
  "CMakeFiles/tactic_event.dir/scheduler.cpp.o.d"
  "libtactic_event.a"
  "libtactic_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
