file(REMOVE_RECURSE
  "libtactic_event.a"
)
