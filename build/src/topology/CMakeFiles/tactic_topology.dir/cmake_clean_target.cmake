file(REMOVE_RECURSE
  "libtactic_topology.a"
)
