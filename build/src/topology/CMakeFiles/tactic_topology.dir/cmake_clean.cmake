file(REMOVE_RECURSE
  "CMakeFiles/tactic_topology.dir/graph.cpp.o"
  "CMakeFiles/tactic_topology.dir/graph.cpp.o.d"
  "CMakeFiles/tactic_topology.dir/isp.cpp.o"
  "CMakeFiles/tactic_topology.dir/isp.cpp.o.d"
  "CMakeFiles/tactic_topology.dir/network.cpp.o"
  "CMakeFiles/tactic_topology.dir/network.cpp.o.d"
  "libtactic_topology.a"
  "libtactic_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
