
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/tactic_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/tactic_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/isp.cpp" "src/topology/CMakeFiles/tactic_topology.dir/isp.cpp.o" "gcc" "src/topology/CMakeFiles/tactic_topology.dir/isp.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/tactic_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/tactic_topology.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndn/CMakeFiles/tactic_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tactic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/tactic_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tactic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
