# Empty dependencies file for tactic_topology.
# This may be replaced when dependencies are built.
