# Empty compiler generated dependencies file for tactic_workload.
# This may be replaced when dependencies are built.
