file(REMOVE_RECURSE
  "libtactic_workload.a"
)
