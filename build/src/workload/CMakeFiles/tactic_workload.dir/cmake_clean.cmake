file(REMOVE_RECURSE
  "CMakeFiles/tactic_workload.dir/attacker_app.cpp.o"
  "CMakeFiles/tactic_workload.dir/attacker_app.cpp.o.d"
  "CMakeFiles/tactic_workload.dir/catalog.cpp.o"
  "CMakeFiles/tactic_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/tactic_workload.dir/client_app.cpp.o"
  "CMakeFiles/tactic_workload.dir/client_app.cpp.o.d"
  "CMakeFiles/tactic_workload.dir/provider_app.cpp.o"
  "CMakeFiles/tactic_workload.dir/provider_app.cpp.o.d"
  "libtactic_workload.a"
  "libtactic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
