# Empty dependencies file for tactic_workload.
# This may be replaced when dependencies are built.
