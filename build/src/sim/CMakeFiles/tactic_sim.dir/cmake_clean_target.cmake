file(REMOVE_RECURSE
  "libtactic_sim.a"
)
