file(REMOVE_RECURSE
  "CMakeFiles/tactic_sim.dir/metrics.cpp.o"
  "CMakeFiles/tactic_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/tactic_sim.dir/scenario.cpp.o"
  "CMakeFiles/tactic_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/tactic_sim.dir/trace.cpp.o"
  "CMakeFiles/tactic_sim.dir/trace.cpp.o.d"
  "libtactic_sim.a"
  "libtactic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
