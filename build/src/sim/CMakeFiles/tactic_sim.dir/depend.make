# Empty dependencies file for tactic_sim.
# This may be replaced when dependencies are built.
