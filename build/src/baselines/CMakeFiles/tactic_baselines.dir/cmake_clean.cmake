file(REMOVE_RECURSE
  "CMakeFiles/tactic_baselines.dir/baselines.cpp.o"
  "CMakeFiles/tactic_baselines.dir/baselines.cpp.o.d"
  "libtactic_baselines.a"
  "libtactic_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
