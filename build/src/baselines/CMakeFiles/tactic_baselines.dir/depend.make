# Empty dependencies file for tactic_baselines.
# This may be replaced when dependencies are built.
