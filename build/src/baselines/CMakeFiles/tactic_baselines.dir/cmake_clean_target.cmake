file(REMOVE_RECURSE
  "libtactic_baselines.a"
)
