# Empty dependencies file for tactic_util.
# This may be replaced when dependencies are built.
