file(REMOVE_RECURSE
  "libtactic_util.a"
)
