file(REMOVE_RECURSE
  "CMakeFiles/tactic_util.dir/bytes.cpp.o"
  "CMakeFiles/tactic_util.dir/bytes.cpp.o.d"
  "CMakeFiles/tactic_util.dir/csv.cpp.o"
  "CMakeFiles/tactic_util.dir/csv.cpp.o.d"
  "CMakeFiles/tactic_util.dir/distributions.cpp.o"
  "CMakeFiles/tactic_util.dir/distributions.cpp.o.d"
  "CMakeFiles/tactic_util.dir/flags.cpp.o"
  "CMakeFiles/tactic_util.dir/flags.cpp.o.d"
  "CMakeFiles/tactic_util.dir/log.cpp.o"
  "CMakeFiles/tactic_util.dir/log.cpp.o.d"
  "CMakeFiles/tactic_util.dir/rng.cpp.o"
  "CMakeFiles/tactic_util.dir/rng.cpp.o.d"
  "CMakeFiles/tactic_util.dir/stats.cpp.o"
  "CMakeFiles/tactic_util.dir/stats.cpp.o.d"
  "CMakeFiles/tactic_util.dir/table.cpp.o"
  "CMakeFiles/tactic_util.dir/table.cpp.o.d"
  "CMakeFiles/tactic_util.dir/timeseries.cpp.o"
  "CMakeFiles/tactic_util.dir/timeseries.cpp.o.d"
  "libtactic_util.a"
  "libtactic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
