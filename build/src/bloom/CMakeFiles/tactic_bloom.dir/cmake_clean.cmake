file(REMOVE_RECURSE
  "CMakeFiles/tactic_bloom.dir/bloom_filter.cpp.o"
  "CMakeFiles/tactic_bloom.dir/bloom_filter.cpp.o.d"
  "libtactic_bloom.a"
  "libtactic_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
