file(REMOVE_RECURSE
  "libtactic_bloom.a"
)
