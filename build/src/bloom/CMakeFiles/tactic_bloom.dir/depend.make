# Empty dependencies file for tactic_bloom.
# This may be replaced when dependencies are built.
