# Empty compiler generated dependencies file for tactic_ndn.
# This may be replaced when dependencies are built.
