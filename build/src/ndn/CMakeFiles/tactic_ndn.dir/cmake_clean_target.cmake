file(REMOVE_RECURSE
  "libtactic_ndn.a"
)
