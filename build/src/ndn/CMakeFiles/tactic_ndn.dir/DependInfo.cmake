
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndn/cs.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/cs.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/cs.cpp.o.d"
  "/root/repo/src/ndn/fib.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/fib.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/fib.cpp.o.d"
  "/root/repo/src/ndn/forwarder.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/forwarder.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/forwarder.cpp.o.d"
  "/root/repo/src/ndn/name.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/name.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/name.cpp.o.d"
  "/root/repo/src/ndn/packet.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/packet.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/packet.cpp.o.d"
  "/root/repo/src/ndn/pit.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/pit.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/pit.cpp.o.d"
  "/root/repo/src/ndn/policy.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/policy.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/policy.cpp.o.d"
  "/root/repo/src/ndn/tlv.cpp" "src/ndn/CMakeFiles/tactic_ndn.dir/tlv.cpp.o" "gcc" "src/ndn/CMakeFiles/tactic_ndn.dir/tlv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tactic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/tactic_event.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tactic_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
