file(REMOVE_RECURSE
  "CMakeFiles/tactic_ndn.dir/cs.cpp.o"
  "CMakeFiles/tactic_ndn.dir/cs.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/fib.cpp.o"
  "CMakeFiles/tactic_ndn.dir/fib.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/forwarder.cpp.o"
  "CMakeFiles/tactic_ndn.dir/forwarder.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/name.cpp.o"
  "CMakeFiles/tactic_ndn.dir/name.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/packet.cpp.o"
  "CMakeFiles/tactic_ndn.dir/packet.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/pit.cpp.o"
  "CMakeFiles/tactic_ndn.dir/pit.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/policy.cpp.o"
  "CMakeFiles/tactic_ndn.dir/policy.cpp.o.d"
  "CMakeFiles/tactic_ndn.dir/tlv.cpp.o"
  "CMakeFiles/tactic_ndn.dir/tlv.cpp.o.d"
  "libtactic_ndn.a"
  "libtactic_ndn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_ndn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
