file(REMOVE_RECURSE
  "CMakeFiles/tactic_core.dir/access_path.cpp.o"
  "CMakeFiles/tactic_core.dir/access_path.cpp.o.d"
  "CMakeFiles/tactic_core.dir/compute_model.cpp.o"
  "CMakeFiles/tactic_core.dir/compute_model.cpp.o.d"
  "CMakeFiles/tactic_core.dir/precheck.cpp.o"
  "CMakeFiles/tactic_core.dir/precheck.cpp.o.d"
  "CMakeFiles/tactic_core.dir/registration.cpp.o"
  "CMakeFiles/tactic_core.dir/registration.cpp.o.d"
  "CMakeFiles/tactic_core.dir/tactic_policy.cpp.o"
  "CMakeFiles/tactic_core.dir/tactic_policy.cpp.o.d"
  "CMakeFiles/tactic_core.dir/tag.cpp.o"
  "CMakeFiles/tactic_core.dir/tag.cpp.o.d"
  "CMakeFiles/tactic_core.dir/traitor_tracing.cpp.o"
  "CMakeFiles/tactic_core.dir/traitor_tracing.cpp.o.d"
  "CMakeFiles/tactic_core.dir/wire.cpp.o"
  "CMakeFiles/tactic_core.dir/wire.cpp.o.d"
  "libtactic_core.a"
  "libtactic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
