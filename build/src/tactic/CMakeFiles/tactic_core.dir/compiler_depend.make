# Empty compiler generated dependencies file for tactic_core.
# This may be replaced when dependencies are built.
