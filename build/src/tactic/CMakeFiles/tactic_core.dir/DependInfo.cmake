
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tactic/access_path.cpp" "src/tactic/CMakeFiles/tactic_core.dir/access_path.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/access_path.cpp.o.d"
  "/root/repo/src/tactic/compute_model.cpp" "src/tactic/CMakeFiles/tactic_core.dir/compute_model.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/compute_model.cpp.o.d"
  "/root/repo/src/tactic/precheck.cpp" "src/tactic/CMakeFiles/tactic_core.dir/precheck.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/precheck.cpp.o.d"
  "/root/repo/src/tactic/registration.cpp" "src/tactic/CMakeFiles/tactic_core.dir/registration.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/registration.cpp.o.d"
  "/root/repo/src/tactic/tactic_policy.cpp" "src/tactic/CMakeFiles/tactic_core.dir/tactic_policy.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/tactic_policy.cpp.o.d"
  "/root/repo/src/tactic/tag.cpp" "src/tactic/CMakeFiles/tactic_core.dir/tag.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/tag.cpp.o.d"
  "/root/repo/src/tactic/traitor_tracing.cpp" "src/tactic/CMakeFiles/tactic_core.dir/traitor_tracing.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/traitor_tracing.cpp.o.d"
  "/root/repo/src/tactic/wire.cpp" "src/tactic/CMakeFiles/tactic_core.dir/wire.cpp.o" "gcc" "src/tactic/CMakeFiles/tactic_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndn/CMakeFiles/tactic_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tactic_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tactic_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tactic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/tactic_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tactic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
