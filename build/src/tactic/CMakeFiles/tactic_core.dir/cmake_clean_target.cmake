file(REMOVE_RECURSE
  "libtactic_core.a"
)
