file(REMOVE_RECURSE
  "libtactic_net.a"
)
