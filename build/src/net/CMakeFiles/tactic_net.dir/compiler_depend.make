# Empty compiler generated dependencies file for tactic_net.
# This may be replaced when dependencies are built.
