file(REMOVE_RECURSE
  "CMakeFiles/tactic_net.dir/link.cpp.o"
  "CMakeFiles/tactic_net.dir/link.cpp.o.d"
  "CMakeFiles/tactic_net.dir/node.cpp.o"
  "CMakeFiles/tactic_net.dir/node.cpp.o.d"
  "libtactic_net.a"
  "libtactic_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
