# Empty dependencies file for tactic_crypto.
# This may be replaced when dependencies are built.
