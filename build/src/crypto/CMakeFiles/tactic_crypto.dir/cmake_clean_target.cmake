file(REMOVE_RECURSE
  "libtactic_crypto.a"
)
