file(REMOVE_RECURSE
  "CMakeFiles/tactic_crypto.dir/aes.cpp.o"
  "CMakeFiles/tactic_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/bignum.cpp.o"
  "CMakeFiles/tactic_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/hmac.cpp.o"
  "CMakeFiles/tactic_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/pki.cpp.o"
  "CMakeFiles/tactic_crypto.dir/pki.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/prime.cpp.o"
  "CMakeFiles/tactic_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/rsa.cpp.o"
  "CMakeFiles/tactic_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/tactic_crypto.dir/sha256.cpp.o"
  "CMakeFiles/tactic_crypto.dir/sha256.cpp.o.d"
  "libtactic_crypto.a"
  "libtactic_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
