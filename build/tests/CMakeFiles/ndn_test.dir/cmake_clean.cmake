file(REMOVE_RECURSE
  "CMakeFiles/ndn_test.dir/ndn_test.cpp.o"
  "CMakeFiles/ndn_test.dir/ndn_test.cpp.o.d"
  "ndn_test"
  "ndn_test.pdb"
  "ndn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
