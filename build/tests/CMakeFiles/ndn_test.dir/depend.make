# Empty dependencies file for ndn_test.
# This may be replaced when dependencies are built.
