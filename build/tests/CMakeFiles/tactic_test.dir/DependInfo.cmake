
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tactic_test.cpp" "tests/CMakeFiles/tactic_test.dir/tactic_test.cpp.o" "gcc" "tests/CMakeFiles/tactic_test.dir/tactic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tactic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tactic_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tactic_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tactic_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tactic/CMakeFiles/tactic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/tactic_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tactic_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ndn/CMakeFiles/tactic_ndn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tactic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/tactic_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tactic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
