# Empty dependencies file for tactic_test.
# This may be replaced when dependencies are built.
