file(REMOVE_RECURSE
  "CMakeFiles/tactic_test.dir/tactic_test.cpp.o"
  "CMakeFiles/tactic_test.dir/tactic_test.cpp.o.d"
  "tactic_test"
  "tactic_test.pdb"
  "tactic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
