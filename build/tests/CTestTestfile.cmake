# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ndn_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/tactic_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
