# Empty compiler generated dependencies file for fig6_tag_rates.
# This may be replaced when dependencies are built.
