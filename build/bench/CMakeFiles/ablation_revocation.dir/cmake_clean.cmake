file(REMOVE_RECURSE
  "CMakeFiles/ablation_revocation.dir/ablation_revocation.cpp.o"
  "CMakeFiles/ablation_revocation.dir/ablation_revocation.cpp.o.d"
  "ablation_revocation"
  "ablation_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
