file(REMOVE_RECURSE
  "CMakeFiles/table5_bf_resets.dir/table5_bf_resets.cpp.o"
  "CMakeFiles/table5_bf_resets.dir/table5_bf_resets.cpp.o.d"
  "table5_bf_resets"
  "table5_bf_resets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bf_resets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
