# Empty dependencies file for table5_bf_resets.
# This may be replaced when dependencies are built.
