file(REMOVE_RECURSE
  "CMakeFiles/ablation_flag_cooperation.dir/ablation_flag_cooperation.cpp.o"
  "CMakeFiles/ablation_flag_cooperation.dir/ablation_flag_cooperation.cpp.o.d"
  "ablation_flag_cooperation"
  "ablation_flag_cooperation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flag_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
