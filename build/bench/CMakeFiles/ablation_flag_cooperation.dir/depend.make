# Empty dependencies file for ablation_flag_cooperation.
# This may be replaced when dependencies are built.
