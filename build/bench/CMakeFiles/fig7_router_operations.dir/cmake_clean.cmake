file(REMOVE_RECURSE
  "CMakeFiles/fig7_router_operations.dir/fig7_router_operations.cpp.o"
  "CMakeFiles/fig7_router_operations.dir/fig7_router_operations.cpp.o.d"
  "fig7_router_operations"
  "fig7_router_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_router_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
