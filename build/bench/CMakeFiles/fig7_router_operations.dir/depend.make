# Empty dependencies file for fig7_router_operations.
# This may be replaced when dependencies are built.
