# Empty compiler generated dependencies file for fig5_latency_bf_size.
# This may be replaced when dependencies are built.
