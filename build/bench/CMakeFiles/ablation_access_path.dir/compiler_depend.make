# Empty compiler generated dependencies file for ablation_access_path.
# This may be replaced when dependencies are built.
