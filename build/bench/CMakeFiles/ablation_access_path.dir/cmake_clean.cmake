file(REMOVE_RECURSE
  "CMakeFiles/ablation_access_path.dir/ablation_access_path.cpp.o"
  "CMakeFiles/ablation_access_path.dir/ablation_access_path.cpp.o.d"
  "ablation_access_path"
  "ablation_access_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_access_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
