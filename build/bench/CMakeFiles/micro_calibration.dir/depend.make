# Empty dependencies file for micro_calibration.
# This may be replaced when dependencies are built.
