file(REMOVE_RECURSE
  "CMakeFiles/micro_calibration.dir/micro_calibration.cpp.o"
  "CMakeFiles/micro_calibration.dir/micro_calibration.cpp.o.d"
  "micro_calibration"
  "micro_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
