# Empty compiler generated dependencies file for resilience_provider_outage.
# This may be replaced when dependencies are built.
