file(REMOVE_RECURSE
  "CMakeFiles/resilience_provider_outage.dir/resilience_provider_outage.cpp.o"
  "CMakeFiles/resilience_provider_outage.dir/resilience_provider_outage.cpp.o.d"
  "resilience_provider_outage"
  "resilience_provider_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_provider_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
