file(REMOVE_RECURSE
  "CMakeFiles/fig8_bf_reset_threshold.dir/fig8_bf_reset_threshold.cpp.o"
  "CMakeFiles/fig8_bf_reset_threshold.dir/fig8_bf_reset_threshold.cpp.o.d"
  "fig8_bf_reset_threshold"
  "fig8_bf_reset_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bf_reset_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
