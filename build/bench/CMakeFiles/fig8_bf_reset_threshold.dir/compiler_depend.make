# Empty compiler generated dependencies file for fig8_bf_reset_threshold.
# This may be replaced when dependencies are built.
