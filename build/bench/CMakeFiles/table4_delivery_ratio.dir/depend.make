# Empty dependencies file for table4_delivery_ratio.
# This may be replaced when dependencies are built.
