file(REMOVE_RECURSE
  "CMakeFiles/table4_delivery_ratio.dir/table4_delivery_ratio.cpp.o"
  "CMakeFiles/table4_delivery_ratio.dir/table4_delivery_ratio.cpp.o.d"
  "table4_delivery_ratio"
  "table4_delivery_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_delivery_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
