file(REMOVE_RECURSE
  "CMakeFiles/ablation_precheck.dir/ablation_precheck.cpp.o"
  "CMakeFiles/ablation_precheck.dir/ablation_precheck.cpp.o.d"
  "ablation_precheck"
  "ablation_precheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
