# Empty dependencies file for ablation_precheck.
# This may be replaced when dependencies are built.
