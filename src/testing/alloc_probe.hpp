#pragma once
// Heap-allocation probe for the zero-copy packet-path benchmarks.
//
// Including alloc_probe.cpp in a target replaces the global operator
// new/delete with counting wrappers; alloc_count()/free_count() then
// read the totals.  Link it ONLY into binaries that exist to measure
// allocation behaviour (bench/packet_path) — the override is
// process-wide.  It composes with ASan/UBSan: the wrappers forward to
// malloc/free, which the sanitizers intercept as usual, so ci/alloc.sh
// gets leak/UB checking and allocation counts from the same run.

#include <cstdint>

namespace tactic::testing {

/// Global operator-new invocations so far (0 if the probe TU is not
/// linked in).
std::uint64_t alloc_count();

/// Global operator-delete invocations that carried a non-null pointer.
std::uint64_t free_count();

/// Diagnostics: while armed, the next `limit` allocations dump raw
/// backtraces to stderr (glibc backtrace_symbols_fd; pipe through
/// c++filt / addr2line).  For chasing stray allocations on paths that
/// are meant to be allocation-free.
void trace_next_allocs(std::uint64_t limit);

}  // namespace tactic::testing
