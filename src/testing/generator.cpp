#include "testing/generator.hpp"

#include <algorithm>
#include <cstdio>

#include "util/rng.hpp"

namespace tactic::testing {

namespace {

sim::PolicyKind sample_policy(util::Rng& rng) {
  constexpr sim::PolicyKind kAll[] = {
      sim::PolicyKind::kTactic,        sim::PolicyKind::kNoAccessControl,
      sim::PolicyKind::kClientSideAc,  sim::PolicyKind::kPerRequestAuth,
      sim::PolicyKind::kProbBf,
  };
  return kAll[rng.uniform(std::size(kAll))];
}

// Samples a bounded-severity fault plan.  Roughly 3 in 4 seeds get a
// non-empty plan; link-loss rates stay below the FaultPlan::severe
// threshold on their own, while stacked crash/flap schedules can push a
// plan over it — the invariant checker then budgets liveness (never
// security) accordingly.
sim::FaultPlan sample_fault_plan(util::Rng& rng, event::Time duration) {
  sim::FaultPlan plan;
  plan.fault_seed = rng();
  if (rng.bernoulli(0.25)) return plan;  // faultless control group

  if (rng.bernoulli(0.8)) {  // lossy wireless edge
    plan.edge_links.loss = 0.002 + 0.08 * rng.uniform_double();
    if (rng.bernoulli(0.5)) {  // Gilbert–Elliott bursts on top
      plan.edge_links.p_enter_burst = 0.005 + 0.02 * rng.uniform_double();
      plan.edge_links.p_exit_burst = 0.2 + 0.4 * rng.uniform_double();
      plan.edge_links.burst_loss = 0.5 + 0.5 * rng.uniform_double();
    }
    if (rng.bernoulli(0.4)) {
      plan.edge_links.corruption = 0.001 + 0.02 * rng.uniform_double();
    }
  }
  if (rng.bernoulli(0.3)) {  // mildly lossy backbone
    plan.core_links.loss = 0.001 + 0.01 * rng.uniform_double();
    if (rng.bernoulli(0.3)) {
      plan.core_links.corruption = 0.001 + 0.005 * rng.uniform_double();
    }
  }

  const std::uint64_t span =
      static_cast<std::uint64_t>(std::max<event::Time>(duration, 1));
  const std::size_t crash_count = rng.uniform(3);  // 0..2
  for (std::size_t i = 0; i < crash_count; ++i) {
    sim::CrashEvent crash;
    crash.target = rng.bernoulli(0.6) ? sim::CrashEvent::Target::kEdgeRouter
                                      : sim::CrashEvent::Target::kCoreRouter;
    crash.index = rng.uniform(8);
    crash.at = static_cast<event::Time>(rng.uniform(span));
    crash.down_for = static_cast<event::Time>(
        100 * event::kMillisecond + rng.uniform(span / 8 + 1));
    plan.crashes.push_back(crash);
  }

  const std::size_t flap_count = rng.uniform(3);  // 0..2
  for (std::size_t i = 0; i < flap_count; ++i) {
    sim::LinkFlap flap;
    flap.where = rng.bernoulli(0.5) ? sim::LinkFlap::Where::kClientAccess
                                    : sim::LinkFlap::Where::kEdgeUplink;
    flap.index = rng.uniform(8);
    flap.down_at = static_cast<event::Time>(rng.uniform(span));
    flap.up_at = flap.down_at + static_cast<event::Time>(
                                    50 * event::kMillisecond +
                                    rng.uniform(span / 8 + 1));
    flap.reconverge = rng.bernoulli(0.5);
    plan.flaps.push_back(flap);
  }
  return plan;
}

// Samples the overload-resilience layer (docs/OVERLOAD.md).  ~85% of
// seeds enable it; half of those also bound the PIT, and half turn the
// attackers into a flood so the shedding paths actually fire.
void sample_overload(util::Rng& rng, sim::ScenarioConfig& config) {
  if (!rng.bernoulli(0.85)) return;  // layer-off control group
  core::OverloadConfig& ov = config.tactic.overload;
  ov.enabled = true;
  ov.queue_capacity = 16 + rng.uniform(112);
  ov.shed_watermark = std::max<std::size_t>(
      8, ov.queue_capacity / 2 + rng.uniform(ov.queue_capacity / 2 + 1));
  ov.neg_cache_capacity = 64 + rng.uniform(960);
  ov.neg_cache_ttl = (1 + rng.uniform(8)) * event::kSecond;
  if (rng.bernoulli(0.5)) {
    ov.policer_rate = 20.0 + 180.0 * rng.uniform_double();
    ov.policer_burst = 10.0 + 30.0 * rng.uniform_double();
  }
  ov.staged_bf_reset = rng.bernoulli(0.5);
  ov.staged_reset_grace = (1 + rng.uniform(4)) * event::kSecond;
  if (rng.bernoulli(0.5)) {
    config.router_pit_capacity = 128 + rng.uniform(896);
  }
  if (rng.bernoulli(0.5)) {  // attacker flood
    config.attacker.think_time_mean = std::max<event::Time>(
        1, config.attacker.think_time_mean / 20);
    config.attacker.window = 4 + rng.uniform(5);
  }
}

// Samples the batched-validation layer (docs/ARCHITECTURE.md, "Batched
// stages").  ~85% of seeds enable it, spanning degenerate (n = 1-ish)
// through deep batches and zero through multi-millisecond hold times.
void sample_batch(util::Rng& rng, sim::ScenarioConfig& config) {
  if (!rng.bernoulli(0.85)) return;  // layer-off control group
  core::BatchConfig& batch = config.tactic.batch;
  batch.enabled = true;
  batch.max_batch = 1 + rng.uniform(16);
  // Half the seeds coalesce only within a scheduler instant (hold 0);
  // the rest hold up to ~5 ms for company.
  batch.max_hold = rng.bernoulli(0.5)
                       ? 0
                       : static_cast<event::Time>(
                             rng.uniform(5 * event::kMillisecond + 1));
  config.compute.set_batch_marginals(0.05 + 0.3 * rng.uniform_double(),
                                     0.1 + 0.5 * rng.uniform_double());
}

// Samples the adaptive overload-control layer (docs/OVERLOAD.md,
// "Adaptive control & face quarantine").  Every knob is drawn
// unconditionally so the draw count per seed is fixed; the layer only
// arms (~85% of seeds) when the overload layer it rides on is enabled.
void sample_adaptive(util::Rng& rng, sim::ScenarioConfig& config) {
  core::AdaptiveConfig& ad = config.tactic.adaptive;
  const bool arm =
      rng.bernoulli(0.85) && config.tactic.overload.enabled;
  ad.sample_window =
      (50 + rng.uniform(451)) * event::kMillisecond;  // 50-500 ms
  ad.min_window_samples = 2 + rng.uniform(15);
  ad.probe_interval_windows = 4 + rng.uniform(17);
  ad.probe_jitter_windows = rng.uniform(6);
  ad.headroom = 0.05 + 0.25 * rng.uniform_double();
  ad.min_limit = 2 + rng.uniform(7);
  ad.max_limit =
      std::max(config.tactic.overload.queue_capacity, ad.min_limit + 1) +
      rng.uniform(256);
  ad.watermark_fraction = 0.25 + 0.5 * rng.uniform_double();
  ad.quarantine_consecutive = rng.bernoulli(0.8) ? 3 + rng.uniform(8) : 0;
  ad.quarantine_base = (1 + rng.uniform(4)) * event::kSecond;
  ad.quarantine_factor = 1.5 + rng.uniform_double();
  ad.quarantine_max = (10 + rng.uniform(51)) * event::kSecond;
  ad.quarantine_jitter = 0.5 * rng.uniform_double();
  ad.enabled = arm;
}

// Samples the tag-lifecycle layer (docs/FAULTS.md, "Clock skew & tag
// lifecycle"): skewed node clocks, the edge skew-tolerance window,
// outage grace mode, and proactive client renewal.  Every knob is drawn
// unconditionally so the draw count per seed is fixed; each feature arms
// independently so every control group (skewed clocks without tolerance,
// tolerance without skew, grace alone, ...) occurs.  The bounds keep the
// security envelope: tolerance (<= validity/4) + grace window
// (<= validity/2) + worst per-node offset (<= validity/8) stays below
// one tag validity, so the attacker tags expired by >= a full validity
// can never be accepted through any widened window.
void sample_lifecycle(util::Rng& rng, sim::ScenarioConfig& config) {
  const double validity = static_cast<double>(config.provider.tag_validity);
  const bool skewed_clocks = rng.bernoulli(0.7);
  const event::Time max_offset =
      static_cast<event::Time>(rng.uniform_double() * validity / 8.0);
  const double max_drift = 0.01 * rng.uniform_double();
  const bool tolerant = rng.bernoulli(0.7);
  const event::Time tolerance = static_cast<event::Time>(
      (0.5 + 0.5 * rng.uniform_double()) * validity / 4.0);
  const bool graceful = rng.bernoulli(0.5);
  const event::Time grace_window = static_cast<event::Time>(
      (0.25 + 0.75 * rng.uniform_double()) * validity / 2.0);
  const event::Time silence =
      static_cast<event::Time>(500 + rng.uniform(1500)) *
      event::kMillisecond;
  const bool renewing = rng.bernoulli(0.6);
  const event::Time lead = static_cast<event::Time>(
      (0.5 + 0.5 * rng.uniform_double()) * validity / 4.0);
  const event::Time jitter = static_cast<event::Time>(
      rng.uniform_double() * static_cast<double>(lead) / 2.0);
  if (skewed_clocks) {
    config.faults.clock_skew.max_offset = max_offset;
    config.faults.clock_skew.max_drift = max_drift;
  }
  if (tolerant) {
    config.tactic.skew.enabled = true;
    config.tactic.skew.tolerance = tolerance;
  }
  if (graceful) {
    config.tactic.grace.enabled = true;
    config.tactic.grace.window = grace_window;
    config.tactic.grace.provider_silence = silence;
    // Clients keep using a just-expired tag for the same window, so the
    // edge's grace path actually sees traffic during provider silence.
    config.client.expired_tag_grace = grace_window;
  }
  if (renewing) {
    config.client.proactive_renewal = true;
    config.client.renewal_lead = lead;
    config.client.renewal_jitter = jitter;
  }
}

}  // namespace

sim::ScenarioConfig random_config(std::uint64_t seed,
                                  const GeneratorOptions& options) {
  util::Rng rng(seed);
  sim::ScenarioConfig config;

  config.topology.core_routers = 6 + rng.uniform(10);
  config.topology.edge_routers = 2 + rng.uniform(3);
  config.topology.providers = 1 + rng.uniform(3);
  config.topology.clients = 2 + rng.uniform(5);
  config.topology.attackers = 1 + rng.uniform(3);
  config.topology.aps_per_edge = 1 + rng.uniform(2);
  config.topology.core_cs_capacity = 200 + rng.uniform(800);
  config.topology.edge_cs_capacity = 0;

  config.policy =
      options.forced_policy ? *options.forced_policy : sample_policy(rng);

  config.tactic.bloom.capacity = 50 + rng.uniform(450);
  config.tactic.bloom.hashes = 5;
  config.tactic.bloom.design_fpp = 1e-4;
  config.tactic.bloom.max_fpp = rng.bernoulli(0.5) ? 1e-4 : 1e-3;
  config.tactic.flag_cooperation = rng.bernoulli(0.75);
  // Protocol 1 stays on: its ablation legitimately leaks structurally
  // invalid tags, which would void the delivery invariant.
  config.tactic.precheck = true;
  config.tactic.enforce_access_path = rng.bernoulli(0.3);
  config.tactic.fault_skip_expiry_precheck = options.inject_expiry_bug;

  config.provider.tag_validity = (3 + rng.uniform(27)) * event::kSecond;
  config.provider.key_bits = 512;  // fast; strength is irrelevant here
  config.provider.catalog.objects = 5 + rng.uniform(15);
  config.provider.catalog.chunks_per_object = 3 + rng.uniform(6);
  config.provider.catalog.chunk_size = 1024;
  config.provider.catalog.high_al_fraction =
      rng.bernoulli(0.5) ? 0.25 : 0.0;
  // No public objects: the end-of-run attacker accounting assumes every
  // delivery to an attacker crossed an access-control decision.
  config.provider.catalog.public_fraction = 0.0;

  config.client.window = 3 + rng.uniform(4);
  config.client.think_time_mean =
      (10 + rng.uniform(90)) * event::kMillisecond;

  // Attackers probe far faster than the paper's 90 s tempo so short fuzz
  // runs actually exercise the rejection paths.
  config.attacker.window = 2 + rng.uniform(4);
  config.attacker.think_time_mean =
      (100 + rng.uniform(900)) * event::kMillisecond;

  // All five default threat modes, in a seed-dependent assignment order.
  // kSharedTag stays out: its fallback victim selection can legitimately
  // hand an attacker a same-AP tag, which no invariant can condemn.
  for (std::size_t i = config.attacker_mix.size(); i > 1; --i) {
    std::swap(config.attacker_mix[i - 1],
              config.attacker_mix[rng.uniform(i)]);
  }

  config.compute = rng.bernoulli(0.5) ? core::ComputeModel::paper_defaults()
                                      : core::ComputeModel::zero();

  config.duration =
      options.duration +
      static_cast<event::Time>(rng.uniform(
          static_cast<std::uint64_t>(options.duration / 2) + 1));
  config.seed = seed;
  config.enable_traitor_tracing = false;

  // Fault draws come strictly AFTER every base draw, so the base
  // configuration for a given seed is identical with or without faults.
  if (options.with_faults) {
    config.faults = sample_fault_plan(rng, config.duration);
  }
  // Overload draws come after the fault draws for the same reason.
  if (options.with_overload) {
    sample_overload(rng, config);
  }
  // And batch draws come after overload.
  if (options.with_batch) {
    sample_batch(rng, config);
  }
  // The bigtables draw comes last of all: 10^4–10^5 junk FIB prefixes
  // per router (the prefixes themselves come from a dedicated stream in
  // Scenario::prepopulate_fib, not from this rng).
  if (options.with_bigtables) {
    config.prepopulate_fib_prefixes =
        static_cast<std::size_t>(1 + rng.uniform(10)) * 10000;
  }
  // Adaptive draws come after everything above (satisfying "strictly
  // after batch" while also leaving the bigtables draw untouched), so
  // base, fault, overload, batch and bigtables configurations stay
  // identical with or without this option.
  if (options.with_adaptive) {
    sample_adaptive(rng, config);
  }
  // Lifecycle draws come last of all (strictly after adaptive), so every
  // prior layer's configuration stays identical with or without this
  // option.
  if (options.with_skew) {
    sample_lifecycle(rng, config);
  }
  return config;
}

std::string describe(const sim::ScenarioConfig& config) {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "seed=%llu policy=%s topo=c%zu/e%zu/p%zu users=%zu+%zu ap%zu "
      "bloom=%zu@%.0e flagF=%d appath=%d validity=%.0fs catalog=%zux%zu "
      "dur=%.1fs%s",
      static_cast<unsigned long long>(config.seed),
      sim::to_string(config.policy), config.topology.core_routers,
      config.topology.edge_routers, config.topology.providers,
      config.topology.clients, config.topology.attackers,
      config.topology.aps_per_edge, config.tactic.bloom.capacity,
      config.tactic.bloom.max_fpp,
      config.tactic.flag_cooperation ? 1 : 0,
      config.tactic.enforce_access_path ? 1 : 0,
      event::to_seconds(config.provider.tag_validity),
      config.provider.catalog.objects,
      config.provider.catalog.chunks_per_object,
      event::to_seconds(config.duration),
      config.tactic.fault_skip_expiry_precheck ? " FAULT=expiry-precheck"
                                               : "");
  std::string out = buffer;
  if (config.faults.any()) {
    std::snprintf(
        buffer, sizeof(buffer),
        " chaos[edge=%.3f/%.3f core=%.3f/%.3f crashes=%zu flaps=%zu%s]",
        config.faults.edge_links.loss, config.faults.edge_links.corruption,
        config.faults.core_links.loss, config.faults.core_links.corruption,
        config.faults.crashes.size(), config.faults.flaps.size(),
        config.faults.severe(config.duration) ? " SEVERE" : "");
    out += buffer;
  }
  if (config.tactic.overload.enabled) {
    const core::OverloadConfig& ov = config.tactic.overload;
    std::snprintf(
        buffer, sizeof(buffer),
        " overload[q=%zu/%zu neg=%zu@%.0fs police=%.0f/s staged=%d "
        "grace=%.0fs pit=%zu]",
        ov.shed_watermark, ov.queue_capacity, ov.neg_cache_capacity,
        event::to_seconds(ov.neg_cache_ttl), ov.policer_rate,
        ov.staged_bf_reset ? 1 : 0,
        event::to_seconds(ov.staged_reset_grace),
        config.router_pit_capacity);
    out += buffer;
  }
  if (config.tactic.batch.enabled) {
    std::snprintf(buffer, sizeof(buffer), " batch[n=%zu hold=%.1fms]",
                  config.tactic.batch.max_batch,
                  event::to_seconds(config.tactic.batch.max_hold) * 1e3);
    out += buffer;
  }
  if (config.prepopulate_fib_prefixes > 0) {
    std::snprintf(buffer, sizeof(buffer), " bigtables[fib=%zu]",
                  config.prepopulate_fib_prefixes);
    out += buffer;
  }
  if (config.tactic.adaptive.enabled) {
    const core::AdaptiveConfig& ad = config.tactic.adaptive;
    std::snprintf(
        buffer, sizeof(buffer),
        " adaptive[win=%.0fms lim=%zu..%zu probe=%u+%u hr=%.2f wm=%.2f "
        "quar=%zux%.0fs^%.1f]",
        event::to_seconds(ad.sample_window) * 1e3, ad.min_limit,
        ad.max_limit, ad.probe_interval_windows, ad.probe_jitter_windows,
        ad.headroom, ad.watermark_fraction, ad.quarantine_consecutive,
        event::to_seconds(ad.quarantine_base), ad.quarantine_factor);
    out += buffer;
  }
  if (config.faults.clock_skew.any() || config.tactic.skew.enabled ||
      config.tactic.grace.enabled || config.client.proactive_renewal) {
    std::snprintf(
        buffer, sizeof(buffer),
        " lifecycle[off=%.2fs drift=%.3f tol=%s%.2fs grace=%s%.2fs@%.1fs "
        "renew=%s%.2fs~%.2fs]",
        event::to_seconds(config.faults.clock_skew.max_offset),
        config.faults.clock_skew.max_drift,
        config.tactic.skew.enabled ? "" : "!",
        event::to_seconds(config.tactic.skew.tolerance),
        config.tactic.grace.enabled ? "" : "!",
        event::to_seconds(config.tactic.grace.window),
        event::to_seconds(config.tactic.grace.provider_silence),
        config.client.proactive_renewal ? "" : "!",
        event::to_seconds(config.client.renewal_lead),
        event::to_seconds(config.client.renewal_jitter));
    out += buffer;
  }
  return out;
}

}  // namespace tactic::testing
