#pragma once
// Canonical, lossless textual fingerprint of a Metrics harvest.
//
// Two runs of the same ScenarioConfig must produce byte-identical
// fingerprints — the metrics half of the fuzz harness's reproducibility
// check.  Doubles are rendered as C99 hexfloats so the comparison is
// exact, not rounded.

#include <string>

#include "sim/metrics.hpp"

namespace tactic::sim {
class Scenario;
}  // namespace tactic::sim

namespace tactic::testing {

/// Every counter, series bucket, and vector element, one per line.
std::string fingerprint(const sim::Metrics& metrics);

/// SHA-256 hex of fingerprint() — compact form for logs.
std::string fingerprint_digest(const sim::Metrics& metrics);

/// Order-insensitive per-user verdict multiset of a finished scenario:
/// one line per client/attacker (sorted by label) with its delivered
/// chunk count and per-NACK-reason verdict counts.  Timeouts and
/// kRouterOverloaded back-pressure NACKs are excluded — they are load
/// and timing signals, not access-control verdicts.  Batched and
/// unbatched runs of the same closed-loop scenario must produce
/// identical multisets (tests/batching_test.cpp; docs/ARCHITECTURE.md,
/// "Batched stages").
std::string verdict_multiset(sim::Scenario& scenario);

/// SHA-256 hex of verdict_multiset() — the form tests/golden/verdicts.txt
/// pins.
std::string verdict_digest(sim::Scenario& scenario);

}  // namespace tactic::testing
