#pragma once
// Canonical, lossless textual fingerprint of a Metrics harvest.
//
// Two runs of the same ScenarioConfig must produce byte-identical
// fingerprints — the metrics half of the fuzz harness's reproducibility
// check.  Doubles are rendered as C99 hexfloats so the comparison is
// exact, not rounded.

#include <string>

#include "sim/metrics.hpp"

namespace tactic::testing {

/// Every counter, series bucket, and vector element, one per line.
std::string fingerprint(const sim::Metrics& metrics);

/// SHA-256 hex of fingerprint() — compact form for logs.
std::string fingerprint_digest(const sim::Metrics& metrics);

}  // namespace tactic::testing
