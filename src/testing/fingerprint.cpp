#include "testing/fingerprint.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "crypto/sha256.hpp"
#include "sim/scenario.hpp"
#include "util/bytes.hpp"

namespace tactic::testing {

namespace {

void put(std::string& out, const char* key, std::uint64_t value) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s=%llu\n", key,
                static_cast<unsigned long long>(value));
  out += line;
}

void put(std::string& out, const char* key, double value) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s=%a\n", key, value);
  out += line;
}

void put_series(std::string& out, const char* key,
                const util::TimeSeries& series) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s.buckets=%zu\n", key,
                series.bucket_count());
  out += line;
  for (std::size_t b = 0; b < series.bucket_count(); ++b) {
    std::snprintf(line, sizeof(line), "%s[%zu]=%zu:%a\n", key, b,
                  series.count(b), series.sum(b));
    out += line;
  }
}

void put_totals(std::string& out, const char* key,
                const sim::TrafficTotals& totals) {
  std::string prefix(key);
  put(out, (prefix + ".requested").c_str(), totals.requested);
  put(out, (prefix + ".received").c_str(), totals.received);
  put(out, (prefix + ".nacks").c_str(), totals.nacks);
  put(out, (prefix + ".timeouts").c_str(), totals.timeouts);
  put(out, (prefix + ".tags_requested").c_str(), totals.tags_requested);
  put(out, (prefix + ".tags_received").c_str(), totals.tags_received);
  put(out, (prefix + ".retransmissions").c_str(), totals.retransmissions);
  put(out, (prefix + ".chunks_abandoned").c_str(),
      totals.chunks_abandoned);
  put(out, (prefix + ".registration_retransmissions").c_str(),
      totals.registration_retransmissions);
  put(out, (prefix + ".overload_nacks").c_str(), totals.overload_nacks);
}

void put_ops(std::string& out, const char* key, const sim::RouterOps& ops) {
  std::string prefix(key);
  put(out, (prefix + ".bf_lookups").c_str(), ops.bf_lookups);
  put(out, (prefix + ".bf_insertions").c_str(), ops.bf_insertions);
  put(out, (prefix + ".sig_verifications").c_str(), ops.sig_verifications);
  put(out, (prefix + ".bf_resets").c_str(), ops.bf_resets);
  put(out, (prefix + ".compute_charged_s").c_str(), ops.compute_charged_s);
  put(out, (prefix + ".neg_cache_hits").c_str(), ops.neg_cache_hits);
  put(out, (prefix + ".neg_cache_insertions").c_str(),
      ops.neg_cache_insertions);
  put(out, (prefix + ".sheds_queue_full").c_str(), ops.sheds_queue_full);
  put(out, (prefix + ".sheds_unvouched").c_str(), ops.sheds_unvouched);
  put(out, (prefix + ".policer_sheds").c_str(), ops.policer_sheds);
  put(out, (prefix + ".staged_resets").c_str(), ops.staged_resets);
  put(out, (prefix + ".draining_hits").c_str(), ops.draining_hits);
  put(out, (prefix + ".validation_wait_s").c_str(), ops.validation_wait_s);
  // The batch block prints only when the batching layer did something,
  // so batch-off fingerprints stay byte-identical to the pre-batching
  // goldens (same precedent as omitting the compute breakdown).
  const bool batched = ops.sig_batches_flushed != 0 ||
                       ops.sig_batched_items != 0 ||
                       ops.sig_batches_dropped != 0 ||
                       ops.bf_probes_coalesced != 0;
  if (batched) {
    put(out, (prefix + ".sig_batches_flushed").c_str(),
        ops.sig_batches_flushed);
    put(out, (prefix + ".sig_batched_items").c_str(), ops.sig_batched_items);
    put(out, (prefix + ".sig_batch_flush_size_cap").c_str(),
        ops.sig_batch_flush_size_cap);
    put(out, (prefix + ".sig_batch_flush_deadline").c_str(),
        ops.sig_batch_flush_deadline);
    put(out, (prefix + ".sig_batch_flush_queue_drain").c_str(),
        ops.sig_batch_flush_queue_drain);
    put(out, (prefix + ".sig_batches_dropped").c_str(),
        ops.sig_batches_dropped);
    put(out, (prefix + ".sig_batch_peak").c_str(), ops.sig_batch_peak);
    put(out, (prefix + ".sig_batch_unbatched_equiv_s").c_str(),
        ops.sig_batch_unbatched_equiv_s);
    put(out, (prefix + ".bf_probes_coalesced").c_str(),
        ops.bf_probes_coalesced);
  }
  // Same precedent for the adaptive layer: its counters print only when
  // the controller or quarantine actually acted, so adaptive-off
  // fingerprints stay byte-identical to the pinned goldens.
  const bool adaptive = ops.adaptive_windows != 0 ||
                        ops.adaptive_minrtt_probes != 0 ||
                        ops.quarantine_sheds != 0 ||
                        ops.quarantine_ejections != 0 ||
                        ops.quarantine_probes != 0 ||
                        ops.quarantine_readmissions != 0;
  if (adaptive) {
    put(out, (prefix + ".adaptive_windows").c_str(), ops.adaptive_windows);
    put(out, (prefix + ".adaptive_minrtt_probes").c_str(),
        ops.adaptive_minrtt_probes);
    put(out, (prefix + ".quarantine_sheds").c_str(), ops.quarantine_sheds);
    put(out, (prefix + ".quarantine_ejections").c_str(),
        ops.quarantine_ejections);
    put(out, (prefix + ".quarantine_probes").c_str(), ops.quarantine_probes);
    put(out, (prefix + ".quarantine_readmissions").c_str(),
        ops.quarantine_readmissions);
  }
  // And for the tag-lifecycle layer: skew/grace counters print only when
  // skewed clocks, the tolerance window, or grace mode actually did
  // something, keeping lifecycle-off fingerprints byte-identical.
  const bool lifecycle = ops.skew_soft_accepts != 0 ||
                         ops.skew_false_rejects != 0 ||
                         ops.skew_false_accepts != 0 ||
                         ops.grace_accepts != 0 ||
                         ops.grace_engagements != 0;
  if (lifecycle) {
    put(out, (prefix + ".skew_soft_accepts").c_str(), ops.skew_soft_accepts);
    put(out, (prefix + ".skew_false_rejects").c_str(),
        ops.skew_false_rejects);
    put(out, (prefix + ".skew_false_accepts").c_str(),
        ops.skew_false_accepts);
    put(out, (prefix + ".grace_accepts").c_str(), ops.grace_accepts);
    put(out, (prefix + ".grace_engagements").c_str(), ops.grace_engagements);
  }
}

void put_vector(std::string& out, const char* key,
                const std::vector<std::uint64_t>& values) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s.size=%zu\n", key, values.size());
  out += line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::snprintf(line, sizeof(line), "%s[%zu]=%llu\n", key, i,
                  static_cast<unsigned long long>(values[i]));
    out += line;
  }
}

}  // namespace

std::string fingerprint(const sim::Metrics& metrics) {
  std::string out;
  out.reserve(4096);
  put_series(out, "latency", metrics.latency);
  put_series(out, "tag_requests", metrics.tag_requests);
  put_series(out, "tag_receives", metrics.tag_receives);
  put_series(out, "recovery_latency", metrics.recovery_latency);
  put_totals(out, "clients", metrics.clients);
  put_totals(out, "attackers", metrics.attackers);
  put_ops(out, "edge_ops", metrics.edge_ops);
  put_ops(out, "core_ops", metrics.core_ops);
  put_vector(out, "edge_requests_per_reset",
             metrics.edge_requests_per_reset);
  put_vector(out, "core_requests_per_reset",
             metrics.core_requests_per_reset);
  put(out, "provider_sig_verifications",
      metrics.provider_sig_verifications);
  put(out, "provider_tags_issued", metrics.provider_tags_issued);
  put(out, "provider_content_served", metrics.provider_content_served);
  put(out, "link_bytes_sent", metrics.link_bytes_sent);
  put(out, "link_frames_dropped", metrics.link_frames_dropped);
  put(out, "link_dropped_queue_full", metrics.link_dropped_queue_full);
  put(out, "link_refused_link_down", metrics.link_refused_link_down);
  put(out, "link_frames_lost", metrics.link_frames_lost);
  put(out, "link_frames_corrupted", metrics.link_frames_corrupted);
  put(out, "cs_hits", metrics.cs_hits);
  put(out, "cs_misses", metrics.cs_misses);
  put(out, "pit_evictions", metrics.pit_evictions);
  put(out, "node_crashes", metrics.node_crashes);
  put(out, "node_restarts", metrics.node_restarts);
  put(out, "packets_dropped_while_down",
      metrics.packets_dropped_while_down);
  put(out, "corrupt_frames_rejected", metrics.corrupt_frames_rejected);
  return out;
}

std::string fingerprint_digest(const sim::Metrics& metrics) {
  return util::to_hex(crypto::Sha256::digest(fingerprint(metrics)));
}

std::string verdict_multiset(sim::Scenario& scenario) {
  std::vector<std::string> lines;
  const auto fold = [&lines](const std::string& label,
                             const workload::UserCounters& c) {
    std::string line = label;
    char buf[96];
    std::snprintf(buf, sizeof(buf), " received=%llu",
                  static_cast<unsigned long long>(c.chunks_received));
    line += buf;
    for (std::size_t r = 1; r < ndn::kNackReasonCount; ++r) {
      const auto reason = static_cast<ndn::NackReason>(r);
      // Back-pressure is a load signal, not a verdict: a batched run may
      // shed at different instants than an unbatched one.
      if (reason == ndn::NackReason::kRouterOverloaded) continue;
      if (c.nacks_by_reason[r] == 0) continue;
      std::snprintf(buf, sizeof(buf), " nack.%s=%llu",
                    ndn::to_string(reason),
                    static_cast<unsigned long long>(c.nacks_by_reason[r]));
      line += buf;
    }
    lines.push_back(std::move(line));
  };
  for (const auto& client : scenario.clients()) {
    fold(client->label(), client->counters());
  }
  for (const auto& attacker : scenario.attackers()) {
    fold(attacker->label(), attacker->counters());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  out.reserve(lines.size() * 48);
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string verdict_digest(sim::Scenario& scenario) {
  return util::to_hex(crypto::Sha256::digest(verdict_multiset(scenario)));
}

}  // namespace tactic::testing
