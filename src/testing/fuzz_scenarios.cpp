// fuzz_scenarios — deterministic scenario fuzzing for the TACTIC simulator.
//
// Each run samples a seeded ScenarioConfig (testing::random_config), runs
// it under the runtime invariant checker, then runs it AGAIN and
// byte-compares the metrics fingerprint and packet-trace digest — any
// divergence means hidden nondeterminism.  For TACTIC runs a differential
// pass repeats the same seed under kNoAccessControl and asserts that
// access control did not cost legitimate clients delivery (within a
// tolerance) while attackers were actually blocked.
//
// Exit status 0 = every run clean; 1 = any invariant violation,
// reproducibility mismatch, or differential parity failure.
//
// Reproduce a failure exactly:  fuzz_scenarios --seed N --repro

#include <cstdio>
#include <exception>
#include <optional>
#include <set>
#include <string>

#include "sim/scenario.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "testing/invariants.hpp"
#include "util/flags.hpp"

namespace {

using namespace tactic;

constexpr const char* kUsage =
    "usage: fuzz_scenarios [options]\n"
    "  --runs N             scenarios to fuzz (default 20)\n"
    "  --seed BASE          first seed; run i uses BASE+i (default 1)\n"
    "  --duration S         base simulated seconds per run (default 10)\n"
    "  --policy NAME        force one policy: tactic|none|client|auth|probbf\n"
    "  --faults             sample a random fault plan per seed (lossy and\n"
    "                       flapping links, router crash-restarts); the\n"
    "                       security invariants must still hold\n"
    "  --overload           sample an overload-resilience configuration per\n"
    "                       seed (validation queue, shedding, negative\n"
    "                       cache, staged reset, bounded PIT), often with\n"
    "                       an attacker flood\n"
    "  --batch              sample the batched-validation layer per seed\n"
    "                       (per-provider signature batches, same-instant\n"
    "                       BF multi-probe); batch draws come after\n"
    "                       base+fault+overload draws\n"
    "  --bigtables          pre-populate every router FIB with 10^4-10^5\n"
    "                       random prefixes, and re-run each scenario on\n"
    "                       the linear reference FIB asserting bit-equal\n"
    "                       fingerprints and traces (trie ≡ linear)\n"
    "  --adaptive           sample the adaptive overload-control layer\n"
    "                       (gradient admission controller + per-face\n"
    "                       quarantine) on most seeds where --overload\n"
    "                       armed; adaptive draws come after all others\n"
    "  --skew               sample the tag-lifecycle layer (skewed node\n"
    "                       clocks, skew-tolerant expiry, outage grace,\n"
    "                       proactive renewal); lifecycle draws come last\n"
    "                       of all\n"
    "  --threads N          run every scenario on N event-loop threads\n"
    "                       (default 1); all digests and invariants must\n"
    "                       hold unchanged at any N\n"
    "  --no-differential    skip the TACTIC vs no-AC parity pass\n"
    "  --parity-tolerance T allowed client delivery-ratio gap (default 0.1)\n"
    "  --inject-expiry-bug  edge routers skip the Protocol-1 expiry check\n"
    "                       (the invariants must catch it => exit 1)\n"
    "  --repro              single verbose run of --seed (sets --runs 1)\n"
    "  --verbose            per-run invariant reports\n";

struct PassResult {
  std::string metrics_fingerprint;
  std::string trace_digest;
  std::uint64_t violations = 0;
  std::string report;
  double client_ratio = 0.0;
  double attacker_ratio = 0.0;
  std::uint64_t attacker_requested = 0;
  std::uint64_t attacker_received = 0;
};

PassResult run_pass(const sim::ScenarioConfig& config) {
  sim::Scenario scenario(config);
  testing::InvariantChecker checker(scenario);
  checker.arm();
  scenario.run();
  checker.finalize();
  const sim::Metrics metrics = scenario.harvest();
  PassResult result;
  result.metrics_fingerprint = testing::fingerprint_digest(metrics);
  result.trace_digest = checker.trace_digest();
  result.violations = checker.violation_count();
  result.report = checker.report();
  result.client_ratio = metrics.clients.delivery_ratio();
  result.attacker_ratio = metrics.attackers.delivery_ratio();
  result.attacker_requested = metrics.attackers.requested;
  result.attacker_received = metrics.attackers.received;
  return result;
}

std::optional<sim::PolicyKind> parse_policy(const std::string& name) {
  if (name == "tactic") return sim::PolicyKind::kTactic;
  if (name == "none" || name == "noac") {
    return sim::PolicyKind::kNoAccessControl;
  }
  if (name == "client") return sim::PolicyKind::kClientSideAc;
  if (name == "auth") return sim::PolicyKind::kPerRequestAuth;
  if (name == "probbf") return sim::PolicyKind::kProbBf;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const std::set<std::string> known = {
        "runs",   "seed",        "duration",          "policy",
        "repro",  "verbose",     "differential",      "parity-tolerance",
        "help",   "inject-expiry-bug",                "faults",
        "overload", "batch",     "bigtables",         "adaptive",
        "skew",   "threads"};
    for (const auto& name : flags.names()) {
      if (known.count(name) == 0) {
        std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), kUsage);
        return 2;
      }
    }
    if (flags.get_bool("help", false)) {
      std::fputs(kUsage, stdout);
      return 0;
    }

    const bool repro = flags.get_bool("repro", false);
    const std::int64_t runs_raw = flags.get_int("runs", 20);
    if (runs_raw < 0) {
      std::fprintf(stderr, "--runs must be >= 0\n%s", kUsage);
      return 2;
    }
    const std::uint64_t runs =
        repro ? 1 : static_cast<std::uint64_t>(runs_raw);
    const std::uint64_t base_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const bool differential = flags.get_bool("differential", true);
    const double parity_tolerance =
        flags.get_double("parity-tolerance", 0.1);
    const bool verbose = repro || flags.get_bool("verbose", false);

    testing::GeneratorOptions generator;
    const double duration_s = flags.get_double("duration", 10.0);
    if (!(duration_s > 0.0)) {
      std::fprintf(stderr, "--duration must be positive\n%s", kUsage);
      return 2;
    }
    generator.duration = event::from_seconds(duration_s);
    generator.inject_expiry_bug = flags.get_bool("inject-expiry-bug", false);
    generator.with_faults = flags.get_bool("faults", false);
    generator.with_overload = flags.get_bool("overload", false);
    generator.with_batch = flags.get_bool("batch", false);
    generator.with_bigtables = flags.get_bool("bigtables", false);
    generator.with_adaptive = flags.get_bool("adaptive", false);
    generator.with_skew = flags.get_bool("skew", false);
    const std::int64_t threads = flags.get_int("threads", 1);
    if (flags.has("policy")) {
      const std::string name = flags.get_string("policy", "");
      const auto policy = parse_policy(name);
      if (!policy) {
        std::fprintf(stderr, "unknown policy '%s'\n%s", name.c_str(),
                     kUsage);
        return 2;
      }
      generator.forced_policy = policy;
    }

    std::uint64_t violation_runs = 0;
    std::uint64_t repro_mismatches = 0;
    std::uint64_t parity_failures = 0;
    std::uint64_t impl_mismatches = 0;
    std::uint64_t differential_runs = 0;

    for (std::uint64_t i = 0; i < runs; ++i) {
      const std::uint64_t seed = base_seed + i;
      sim::ScenarioConfig config = testing::random_config(seed, generator);
      if (threads > 1) config.threads = static_cast<std::size_t>(threads);
      std::printf("[%llu/%llu] %s\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs),
                  testing::describe(config).c_str());
      std::fflush(stdout);

      const PassResult first = run_pass(config);
      const PassResult second = run_pass(config);

      bool failed = false;
      if (first.violations != 0) {
        ++violation_runs;
        failed = true;
        std::printf("  INVARIANT VIOLATIONS:\n%s", first.report.c_str());
      } else if (verbose) {
        std::printf("  %s", first.report.c_str());
      }
      if (first.metrics_fingerprint != second.metrics_fingerprint ||
          first.trace_digest != second.trace_digest) {
        ++repro_mismatches;
        failed = true;
        std::printf(
            "  REPRODUCIBILITY MISMATCH:\n"
            "    pass 1: metrics=%s trace=%s\n"
            "    pass 2: metrics=%s trace=%s\n",
            first.metrics_fingerprint.c_str(), first.trace_digest.c_str(),
            second.metrics_fingerprint.c_str(),
            second.trace_digest.c_str());
      } else if (verbose) {
        std::printf("  metrics=%s\n  trace=%s\n",
                    first.metrics_fingerprint.c_str(),
                    first.trace_digest.c_str());
      }

      // Table-structure differential: the same scenario on the linear
      // reference FIB must be bit-identical — the trie is a pure lookup
      // structure, never a semantics change.
      if (generator.with_bigtables) {
        sim::ScenarioConfig linear = config;
        linear.fib_impl = ndn::Fib::Impl::kLinear;
        const PassResult ref = run_pass(linear);
        if (first.metrics_fingerprint != ref.metrics_fingerprint ||
            first.trace_digest != ref.trace_digest) {
          ++impl_mismatches;
          failed = true;
          std::printf(
              "  FIB IMPL MISMATCH (trie vs linear):\n"
              "    trie:   metrics=%s trace=%s\n"
              "    linear: metrics=%s trace=%s\n",
              first.metrics_fingerprint.c_str(), first.trace_digest.c_str(),
              ref.metrics_fingerprint.c_str(), ref.trace_digest.c_str());
        } else if (verbose) {
          std::printf("  fib impls agree (trie == linear)\n");
        }
      }

      // The parity pass keeps the fault plan: TACTIC and no-AC face the
      // same chaos.  A severe plan can starve either side arbitrarily,
      // so only non-severe plans are compared, with extra tolerance for
      // fault-draw noise between the two policies' traffic patterns.
      const bool severe_faults =
          config.faults.severe(config.duration);
      if (differential && config.policy == sim::PolicyKind::kTactic &&
          !severe_faults) {
        ++differential_runs;
        sim::ScenarioConfig baseline = config;
        baseline.policy = sim::PolicyKind::kNoAccessControl;
        const PassResult open = run_pass(baseline);
        // Shedding and floods cost some legitimate delivery relative to a
        // shed-nothing open network, so overload runs get extra headroom
        // (as fault plans do).
        // The gradient controller deliberately tightens the limit under
        // pressure, so adaptive runs can shed a bit more legitimate load
        // than static knobs before recovering.
        // Skewed clocks make TACTIC reject genuinely expired tags that a
        // checks-nothing open network would happily serve, so skewed runs
        // get their own headroom on top of the chaos term.
        const double tolerance =
            parity_tolerance + (config.faults.any() ? 0.15 : 0.0) +
            (config.tactic.overload.enabled ? 0.15 : 0.0) +
            (config.tactic.batch.enabled ? 0.05 : 0.0) +
            (config.tactic.adaptive.enabled ? 0.10 : 0.0) +
            (config.faults.clock_skew.any() ? 0.15 : 0.0);
        const bool parity_ok =
            first.client_ratio + tolerance >= open.client_ratio;
        const bool blocked = open.attacker_requested == 0 ||
                             open.attacker_received > first.attacker_received;
        if (!parity_ok || !blocked) {
          ++parity_failures;
          failed = true;
          std::printf(
              "  DIFFERENTIAL FAILURE: clients tactic=%.3f open=%.3f "
              "(tolerance %.3f); attackers tactic=%llu open=%llu\n",
              first.client_ratio, open.client_ratio, tolerance,
              static_cast<unsigned long long>(first.attacker_received),
              static_cast<unsigned long long>(open.attacker_received));
        } else if (verbose) {
          std::printf(
              "  differential: clients tactic=%.3f open=%.3f; "
              "attacker chunks tactic=%llu open=%llu\n",
              first.client_ratio, open.client_ratio,
              static_cast<unsigned long long>(first.attacker_received),
              static_cast<unsigned long long>(open.attacker_received));
        }
      }
      if (failed) {
        std::printf(
            "  reproduce: fuzz_scenarios --seed %llu --repro%s%s%s%s%s%s%s\n",
            static_cast<unsigned long long>(seed),
            generator.inject_expiry_bug ? " --inject-expiry-bug" : "",
            generator.with_faults ? " --faults" : "",
            generator.with_overload ? " --overload" : "",
            generator.with_batch ? " --batch" : "",
            generator.with_bigtables ? " --bigtables" : "",
            generator.with_adaptive ? " --adaptive" : "",
            generator.with_skew ? " --skew" : "");
      }
    }

    const std::uint64_t failures = violation_runs + repro_mismatches +
                                   parity_failures + impl_mismatches;
    std::printf(
        "fuzz_scenarios: %llu runs (%llu differential) — "
        "%llu with violations, %llu repro mismatches, %llu parity "
        "failures, %llu fib-impl mismatches\n",
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(differential_runs),
        static_cast<unsigned long long>(violation_runs),
        static_cast<unsigned long long>(repro_mismatches),
        static_cast<unsigned long long>(parity_failures),
        static_cast<unsigned long long>(impl_mismatches));
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fuzz_scenarios: %s\n%s", error.what(), kUsage);
    return 2;
  }
}
