#pragma once
// Runtime invariant hooks for scenario runs.
//
// An InvariantChecker attaches to every forwarder in a Scenario (via
// Forwarder::add_tracer) plus a periodic sampler, and asserts, while the
// simulation runs:
//
//  - delivery: under kTactic no router transmits protected (non-NACK)
//    Data for a structurally invalid tag — missing, expired (with
//    in-flight slack), access level below the content's, or naming the
//    wrong provider.  Deliveries whose tag fails only *signature*
//    verification are counted separately (`fp_leaks`): Bloom false
//    positives can produce them by design at ~max_fpp rate, so they are
//    budgeted at finalize() rather than condemned individually.
//  - Bloom saturation: no router's estimated FPP stays above its reset
//    threshold for more than one sampling interval (saturation must
//    trigger a reset).
//  - PIT: no entry outlives its expiry time; after a drain every PIT is
//    empty.
//  - CS: never exceeds its configured capacity.
//
// finalize() drains the scenario and adds the end-of-run checks: PIT
// emptiness, user accounting bounds, and the per-policy attacker
// containment guarantees (kTactic / kPerRequestAuth / kProbBf).
//
// Fault plans (sim::FaultPlan) never weaken the security checks.  Only
// the delivery-liveness check is budgeted: when the plan is severe()
// for the run duration, "no client received content" is excused.
//
// The checker consumes no randomness and sends no packets, so attaching
// it does not perturb the run — a property the harness itself verifies
// through its bit-reproducibility comparison.  Every packet event is
// hashed (SHA-256 over node/face/direction/time/wire bytes) and folded
// into `trace_digest()` as an order-insensitive multiset accumulator
// (lane-wise wrapping sum of the per-event digests).  Order-insensitivity
// is what lets the digest compare across engines: the parallel scheduler
// observes the same packet events in a different interleaving, and the
// digest must not care.  Digests are only ever compared run-to-run within
// one build — never pinned as goldens.
//
// Thread safety: on_packet may run concurrently from partition worker
// threads (parallel engine); the fold, the counters, and the signature
// cache are guarded by one mutex.  sample()/finalize() run exclusively
// (global events park every worker; finalize runs after the loop).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scenario.hpp"
#include "util/bytes.hpp"

namespace tactic::testing {

struct InvariantOptions {
  /// Cadence of the PIT/CS/Bloom sampler.
  event::Time sample_interval = event::kSecond;
  /// Extra simulated time finalize() runs after stopping workloads so
  /// in-flight packets land and PIT entries expire.
  event::Time drain_grace = 30 * event::kSecond;
  /// Tag-expiry slack on the delivery check: Protocol 1 checks expiry at
  /// request time, so a tag may expire while its Data is in flight.
  /// Anything older than ~2 Interest lifetimes is a real violation.
  /// When the scenario enables the tag-lifecycle layer the checker
  /// widens this by the configured skew tolerance, grace window, and
  /// worst-case clock error — deliveries beyond even that remain
  /// violations.
  event::Time expiry_slack = 2 * event::kSecond;
  /// Deliveries with a signature-invalid (but structurally valid) tag
  /// tolerated before finalize() flags a violation.  Legitimate Bloom
  /// false-positive chains need multiple independent ~max_fpp events per
  /// delivery; a real signature-path bug produces hundreds.
  std::uint64_t fp_leak_budget = 8;
  /// Cap on stored Violation records (the count keeps incrementing).
  std::size_t max_recorded = 64;
};

struct Violation {
  event::Time when = 0;
  std::string node;   // forwarder label, or "-" for run-level checks
  std::string what;
};

class InvariantChecker {
 public:
  /// The scenario must outlive the checker.  Call arm() before
  /// Scenario::run(), finalize() after.
  explicit InvariantChecker(sim::Scenario& scenario,
                            InvariantOptions options = {});

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Installs the per-node tracers and schedules the sampler.
  void arm();

  /// Stops workloads, drains `drain_grace` of simulated time, and runs
  /// the end-of-run checks.  Idempotent.
  void finalize();

  bool ok() const { return violation_count_ == 0; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Hex multiset accumulator (lane-wise sum of per-event SHA-256) over
  /// every packet event observed.  Interleaving-independent by
  /// construction; compared run-to-run, never golden-pinned.
  std::string trace_digest() const;

  std::uint64_t packets_observed() const { return packets_observed_; }
  std::uint64_t deliveries_checked() const { return deliveries_checked_; }
  std::uint64_t fp_leaks() const { return fp_leaks_; }

  /// Multi-line human-readable report (violations + counters).
  std::string report() const;

 private:
  void on_packet(const ndn::Forwarder& node,
                 const ndn::PacketVariant& packet, ndn::FaceId face,
                 bool is_rx);
  void check_delivery(const ndn::Forwarder& node, const ndn::Data& data,
                      event::Time now);
  void sample();
  void schedule_sample();
  void check_pits(const char* context);
  void add_violation(event::Time when, const std::string& node,
                     std::string what);
  bool signature_valid(const core::Tag& tag);

  sim::Scenario& scenario_;
  InvariantOptions options_;
  bool armed_ = false;
  bool finalized_ = false;

  /// Guards the digest fold, counters, caches, and violation list against
  /// concurrent on_packet calls from partition workers.
  mutable std::mutex mutex_;
  util::Bytes chain_;  // multiset accumulator over per-event digests
  std::unordered_map<std::string, bool> signature_cache_;
  std::unordered_map<net::NodeId, int> fpp_streak_;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t packets_observed_ = 0;
  std::uint64_t deliveries_checked_ = 0;
  std::uint64_t fp_leaks_ = 0;
};

}  // namespace tactic::testing
