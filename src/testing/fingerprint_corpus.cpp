// fingerprint_corpus — emits the metrics fingerprint digest of every
// scenario in the fixed-seed fuzz corpus, one `<mode> <seed> <digest>`
// line per run.
//
// The corpus is the refactoring safety net: ci/parity.sh diffs this
// output against tests/golden/fingerprints.txt, so any change to router
// policy code that alters behaviour — an extra RNG draw, a reordered
// charge, a dropped counter — shows up as a digest mismatch on a seed
// that reproduces with `fuzz_scenarios --seed N --repro [--faults ...]`.
//
// Modes mirror the fuzz harness's axes: `plain` (no chaos), `faults`
// (random fault plans), and `faults+overload` (fault plans plus the
// overload-resilience layer).  Defaults match the checked-in golden
// list; keep them in sync with ci/parity.sh and tests/pipeline_test.cpp.

#include <cstdio>
#include <exception>
#include <string>

#include "ndn/packet_pool.hpp"
#include "sim/scenario.hpp"
#include "testing/fingerprint.hpp"
#include "testing/generator.hpp"
#include "util/flags.hpp"

namespace {

using namespace tactic;

constexpr const char* kUsage =
    "usage: fingerprint_corpus [options]\n"
    "  --seeds N      seeds per mode (default 16)\n"
    "  --base S       first seed (default 9000)\n"
    "  --duration D   base simulated seconds per run (default 6)\n"
    "  --mode NAME    one of plain|faults|faults+overload|all (default all)\n"
    "  --verdicts     emit per-run verdict-multiset digests instead of\n"
    "                 metrics digests (order-insensitive per-user verdict\n"
    "                 counts; pinned by tests/golden/verdicts.txt)\n"
    "  --no-pool      disable packet-pool slab recycling (fresh heap\n"
    "                 allocation per packet); digests must not change\n"
    "  --threads N    run every scenario on N event-loop threads\n"
    "                 (default 1); digests must not change at any N\n"
    "  --lanes N      validation lanes per router (default: leave the\n"
    "                 generated config's value).  Lanes change behaviour,\n"
    "                 so goldens only pin lanes as generated; cross-thread\n"
    "                 comparisons hold at any fixed lane count\n";

struct Mode {
  const char* name;
  bool faults;
  bool overload;
};

constexpr Mode kModes[] = {
    {"plain", false, false},
    {"faults", true, false},
    {"faults+overload", true, true},
};

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    if (flags.get_bool("help", false)) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const std::int64_t seeds = flags.get_int("seeds", 16);
    const std::uint64_t base =
        static_cast<std::uint64_t>(flags.get_int("base", 9000));
    const double duration_s = flags.get_double("duration", 6.0);
    const std::string only = flags.get_string("mode", "all");
    const bool verdicts = flags.get_bool("verdicts", false);
    if (flags.get_bool("no-pool", false)) {
      ndn::PacketPool::set_pooling_enabled(false);
    }
    const std::int64_t threads = flags.get_int("threads", 1);
    const std::int64_t lanes = flags.get_int("lanes", 0);
    if (seeds < 0 || !(duration_s > 0.0)) {
      std::fputs(kUsage, stderr);
      return 2;
    }

    for (const Mode& mode : kModes) {
      if (only != "all" && only != mode.name) continue;
      testing::GeneratorOptions generator;
      generator.duration = event::from_seconds(duration_s);
      generator.with_faults = mode.faults;
      generator.with_overload = mode.overload;
      for (std::int64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
        sim::ScenarioConfig config = testing::random_config(seed, generator);
        if (threads > 1) config.threads = static_cast<std::size_t>(threads);
        if (lanes > 0) {
          config.tactic.validation_lanes = static_cast<std::size_t>(lanes);
        }
        sim::Scenario scenario(config);
        scenario.run();
        const std::string digest =
            verdicts ? testing::verdict_digest(scenario)
                     : testing::fingerprint_digest(scenario.harvest());
        std::printf("%s %llu %s\n", mode.name,
                    static_cast<unsigned long long>(seed), digest.c_str());
        std::fflush(stdout);
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fingerprint_corpus: %s\n%s", error.what(), kUsage);
    return 2;
  }
}
