// Counting global operator new/delete (see alloc_probe.hpp for the
// linking contract).  Plain relaxed atomics: the simulator is
// single-threaded, the atomics just keep the probe safe if a sanitizer
// runtime allocates from another thread.

#include "testing/alloc_probe.hpp"

#include <execinfo.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace tactic::testing {
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_trace_budget{0};

void maybe_trace() {
  if (g_trace_budget.load(std::memory_order_relaxed) == 0) return;
  static thread_local bool in_trace = false;  // backtrace() may malloc
  if (in_trace) return;
  if (g_trace_budget.fetch_sub(1, std::memory_order_relaxed) == 0) {
    g_trace_budget.store(0, std::memory_order_relaxed);
    return;
  }
  in_trace = true;
  void* frames[32];
  const int depth = backtrace(frames, 32);
  backtrace_symbols_fd(frames, depth, 2);
  static const char kSep[] = "---- alloc ----\n";
  (void)!::write(2, kSep, sizeof(kSep) - 1);
  in_trace = false;
}

void* checked_malloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  maybe_trace();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t free_count() {
  return g_frees.load(std::memory_order_relaxed);
}

void trace_next_allocs(std::uint64_t limit) {
  g_trace_budget.store(limit, std::memory_order_relaxed);
}

}  // namespace tactic::testing

void* operator new(std::size_t size) {
  return tactic::testing::checked_malloc(size);
}
void* operator new[](std::size_t size) {
  return tactic::testing::checked_malloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  tactic::testing::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  tactic::testing::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  tactic::testing::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p == nullptr) return;
  tactic::testing::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}
