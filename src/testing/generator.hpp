#pragma once
// Deterministic scenario generator for the fuzz / invariant harness.
//
// Every sampled configuration derives entirely from one 64-bit seed, so
// a failing seed printed by `fuzz_scenarios` is a complete reproduction
// recipe (`fuzz_scenarios --seed N --repro`).  The sampled space covers
// topology sizes, user mixes and tempos, tag validity windows, Bloom
// sizing, catalog shape, compute charging, and the policy kind.

#include <cstdint>
#include <optional>
#include <string>

#include "sim/scenario.hpp"

namespace tactic::testing {

struct GeneratorOptions {
  /// Base simulated duration; each sample adds up to 50% jitter.
  event::Time duration = 10 * event::kSecond;
  /// When set, every sample uses this policy; otherwise the kind is
  /// drawn uniformly over all five.
  std::optional<sim::PolicyKind> forced_policy;
  /// Inject the Protocol-1 expiry-check fault into TACTIC edge routers
  /// (core::TacticConfig::fault_skip_expiry_precheck) — the regression
  /// the runtime invariants must catch.
  bool inject_expiry_bug = false;
  /// Sample a random sim::FaultPlan (lossy/bursty/corrupting links,
  /// crash-restarts, link flaps) on ~3 in 4 seeds.  The fault draws are
  /// appended after every base draw, so for a given seed the base
  /// configuration is identical with and without this option.
  bool with_faults = false;
  /// Sample an overload-resilience configuration (validation queue,
  /// shedding, negative cache, policer, staged reset, bounded PIT) on
  /// most seeds, often with an attacker flood to pressure it.  The
  /// overload draws come strictly after the fault draws, so base and
  /// fault configurations stay identical with or without this option.
  bool with_overload = false;
  /// Sample the batched-validation layer (per-provider signature batches
  /// + same-instant BF multi-probe; docs/ARCHITECTURE.md, "Batched
  /// stages") on most seeds.  The batch draws come strictly after the
  /// overload draws, so base, fault and overload configurations stay
  /// identical with or without this option.
  bool with_batch = false;
  /// Pre-populate every edge/core router FIB with 10^4–10^5 random junk
  /// prefixes (sim::ScenarioConfig::prepopulate_fib_prefixes), pushing
  /// the tables toward the million-entry regime.  The single bigtables
  /// draw comes last of all (after batch), and prepopulation itself uses
  /// a dedicated RNG stream, so all prior layers stay identical with or
  /// without this option.
  bool with_bigtables = false;
  /// Sample the adaptive overload-control layer (gradient admission
  /// controller + per-face outlier quarantine; docs/OVERLOAD.md) on most
  /// seeds where the overload layer is on.  The adaptive draws come
  /// strictly after every other layer's draws (faults, overload, batch,
  /// bigtables), so all prior configurations stay identical with or
  /// without this option.
  bool with_adaptive = false;
  /// Sample the tag-lifecycle layer (docs/FAULTS.md, "Clock skew & tag
  /// lifecycle"): skewed node clocks (sim::ClockSkewSpec), the edge
  /// skew-tolerance window, outage grace mode, and proactive client
  /// renewal.  Every knob is drawn unconditionally and the draws come
  /// strictly after every other layer's, so all prior configurations
  /// stay identical with or without this option.  Sampled bounds keep
  /// tolerance + grace + worst-case skew well under the tag validity, so
  /// deliberately pre-expired attacker tags can never slip inside a
  /// widened window.
  bool with_skew = false;
};

/// Deterministically samples one scenario configuration from `seed`.
/// Same seed + same options => identical configuration, always.
sim::ScenarioConfig random_config(std::uint64_t seed,
                                  const GeneratorOptions& options = {});

/// One-line human-readable summary of a sampled configuration.
std::string describe(const sim::ScenarioConfig& config);

}  // namespace tactic::testing
