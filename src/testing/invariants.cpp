#include "testing/invariants.hpp"

#include <cstdio>

#include "crypto/sha256.hpp"
#include "tactic/tactic_policy.hpp"
#include "tactic/tag.hpp"
#include "tactic/wire.hpp"

namespace tactic::testing {

namespace {

void append_u64(util::Bytes& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::string format_seconds(event::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3fs", event::to_seconds(t));
  return buffer;
}

}  // namespace

InvariantChecker::InvariantChecker(sim::Scenario& scenario,
                                   InvariantOptions options)
    : scenario_(scenario),
      options_(options),
      chain_(crypto::Sha256::kDigestSize, 0) {}

void InvariantChecker::arm() {
  if (armed_) return;
  armed_ = true;
  auto& network = scenario_.network();
  for (std::size_t id = 0; id < network.node_count(); ++id) {
    network.node(static_cast<net::NodeId>(id))
        .add_tracer([this](const ndn::Forwarder& node,
                           const ndn::PacketVariant& packet,
                           ndn::FaceId face, bool is_rx) {
          on_packet(node, packet, face, is_rx);
        });
  }
  schedule_sample();
}

void InvariantChecker::schedule_sample() {
  // schedule_global: a plain event on the sequential engine; under the
  // parallel engine a driver-thread event with every worker parked, so
  // the sampler may touch any partition's tables.
  scenario_.schedule_global(options_.sample_interval, [this] {
    sample();
    const event::Time horizon =
        scenario_.config().duration + options_.drain_grace;
    if (scenario_.now() < horizon) schedule_sample();
  });
}

void InvariantChecker::on_packet(const ndn::Forwarder& node,
                                 const ndn::PacketVariant& packet,
                                 ndn::FaceId face, bool is_rx) {
  // The node's own scheduler is the time authority: under the parallel
  // engine each partition's clock advances independently within an epoch
  // and the scenario-level scheduler stands still.
  const event::Time now = node.scheduler().now();

  // Hash the event, then fold it into the multiset accumulator: a
  // lane-wise wrapping sum of per-event digests, so the fold commutes and
  // partition interleavings cannot change the result.
  util::Bytes record;
  record.reserve(25);
  append_u64(record, node.info().id);
  append_u64(record, static_cast<std::uint64_t>(face));
  record.push_back(is_rx ? 1 : 0);
  append_u64(record, static_cast<std::uint64_t>(now));
  // Reusable wire scratch: the checker encodes every packet event, so a
  // fresh buffer per event would dominate the run's allocations.
  static thread_local util::Bytes wire_scratch;
  wire::encode_into(wire_scratch, packet);
  crypto::Sha256 hash;
  hash.update(record);
  hash.update(wire_scratch);
  const util::Bytes digest = hash.finish();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++packets_observed_;
    for (std::size_t lane = 0; lane < chain_.size(); lane += 8) {
      std::uint64_t sum = 0;
      std::uint64_t add = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        sum |= static_cast<std::uint64_t>(chain_[lane + b]) << (8 * b);
        add |= static_cast<std::uint64_t>(digest[lane + b]) << (8 * b);
      }
      sum += add;  // wrapping; per-lane commutative fold
      for (std::size_t b = 0; b < 8; ++b) {
        chain_[lane + b] = static_cast<std::uint8_t>(sum >> (8 * b));
      }
    }
  }

  if (!is_rx) {
    if (const auto* data = std::get_if<ndn::DataPtr>(&packet)) {
      check_delivery(node, **data, now);
    }
  }
}

void InvariantChecker::check_delivery(const ndn::Forwarder& node,
                                      const ndn::Data& data,
                                      event::Time now) {
  if (scenario_.config().policy != sim::PolicyKind::kTactic) return;
  if (!net::is_router(node.info().kind)) return;
  if (data.is_registration_response || data.nack_attached) return;
  if (data.access_level == ndn::kPublicAccessLevel) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++deliveries_checked_;
  }

  const std::string& label = node.info().label;
  if (!data.tag) {
    add_violation(now, label, "protected Data sent without tag or NACK: " +
                                  data.name.to_uri());
    return;
  }
  const core::Tag& tag = *data.tag;
  bool structurally_invalid = false;
  // The tag-lifecycle layer deliberately honours tags past T_e: the
  // skew-tolerance window, outage grace, and a behind-running edge clock
  // (bounded by the fault plan's worst offset plus accumulated drift)
  // each widen how stale a delivered tag can legitimately be.  Widen the
  // slack by exactly those configured bounds — anything older is still a
  // violation.
  event::Time slack = options_.expiry_slack;
  const auto& run_config = scenario_.config();
  if (run_config.tactic.skew.enabled) {
    slack += run_config.tactic.skew.tolerance;
  }
  if (run_config.tactic.grace.enabled) {
    slack += run_config.tactic.grace.window;
  }
  if (run_config.faults.clock_skew.any()) {
    slack += run_config.faults.clock_skew.max_offset +
             static_cast<event::Time>(run_config.faults.clock_skew.max_drift *
                                      static_cast<double>(now));
  }
  if (tag.expiry() + slack < now) {
    structurally_invalid = true;
    add_violation(now, label,
                  "expired tag honoured for " + data.name.to_uri() +
                      " (expiry " + format_seconds(tag.expiry()) + ", now " +
                      format_seconds(now) + ")");
  }
  if (data.access_level > tag.access_level()) {
    structurally_invalid = true;
    add_violation(now, label,
                  "insufficient access level honoured for " +
                      data.name.to_uri());
  }
  if (!data.provider_key_locator.empty() &&
      data.provider_key_locator != tag.provider_key_locator()) {
    structurally_invalid = true;
    add_violation(now, label, "wrong-provider tag honoured for " +
                                  data.name.to_uri());
  }
  if (!structurally_invalid && !signature_valid(tag)) {
    // Possibly a designed Bloom false positive — budgeted at finalize().
    std::lock_guard<std::mutex> lock(mutex_);
    ++fp_leaks_;
  }
}

bool InvariantChecker::signature_valid(const core::Tag& tag) {
  const std::string key = util::to_hex(tag.bloom_key());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = signature_cache_.find(key);
  if (it != signature_cache_.end()) return it->second;
  const bool valid = core::verify_tag_signature(tag, scenario_.anchors().pki);
  signature_cache_.emplace(key, valid);
  return valid;
}

void InvariantChecker::sample() {
  const event::Time now = scenario_.now();
  auto& network = scenario_.network();
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    const net::NodeId id = static_cast<net::NodeId>(i);
    auto& node = network.node(id);
    // O(1) amortized per sample: the PIT's lazy expiry heap yields the
    // earliest live deadline; the full table is walked only to name the
    // offenders once a violation is already certain.
    if (const auto min = node.pit().min_expiry(); min && *min < now) {
      node.pit().for_each([&](const ndn::PitEntry& entry) {
        if (entry.expiry_time < now) {
          add_violation(
              now, node.info().label,
              "PIT entry outlived its expiry: " + entry.name.to_uri() +
                  " (expiry " + format_seconds(entry.expiry_time) +
                  ", now " + format_seconds(now) + ")");
        }
      });
    }
    if (node.cs().capacity() > 0 &&
        node.cs().size() > node.cs().capacity()) {
      add_violation(now, node.info().label, "CS exceeded its capacity");
    }
    if (node.pit_capacity() > 0 &&
        node.pit().size() > node.pit_capacity()) {
      add_violation(now, node.info().label,
                    "PIT exceeded its configured capacity");
    }
    if (const auto* tactic =
            dynamic_cast<const core::TacticRouterPolicy*>(&node.policy())) {
      const bool over = tactic->bloom().current_fpp() >
                        tactic->config().bloom.max_fpp;
      int& streak = fpp_streak_[id];
      if (over && ++streak > 1) {
        add_violation(now, node.info().label,
                      "BF estimated FPP above the reset threshold for more "
                      "than one sampling interval");
      }
      if (!over) streak = 0;
    }
  }
}

void InvariantChecker::check_pits(const char* context) {
  const event::Time now = scenario_.now();
  auto& network = scenario_.network();
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    auto& node = network.node(static_cast<net::NodeId>(i));
    if (node.pit().size() != 0) {
      char what[96];
      std::snprintf(what, sizeof(what), "PIT holds %zu entries %s",
                    node.pit().size(), context);
      add_violation(now, node.info().label, what);
    }
  }
}

void InvariantChecker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  scenario_.drain(options_.drain_grace);
  check_pits("after drain");

  const sim::Metrics metrics = scenario_.harvest();
  const auto& config = scenario_.config();

  const std::uint64_t resolved = metrics.clients.received +
                                 metrics.clients.nacks +
                                 metrics.clients.timeouts;
  if (resolved > metrics.clients.requested) {
    add_violation(scenario_.now(), "-", "client accounting: received+nacks+timeouts "
                       "exceeds requests");
  }
  if (config.topology.clients > 0 &&
      config.duration >= 5 * event::kSecond) {
    if (metrics.clients.requested == 0) {
      add_violation(scenario_.now(), "-", "liveness: clients issued no requests");
    } else if (metrics.clients.received == 0 &&
               !config.faults.severe(config.duration)) {
      // A severe fault plan (sustained heavy loss or outages covering a
      // large share of the run) may legitimately starve delivery, so
      // only this liveness check is budgeted — never the security ones.
      add_violation(scenario_.now(), "-", "liveness: no client received any content");
    }
  }
  if (!config.faults.any()) {
    // Faultless runs must not report fault-model activity.
    if (metrics.link_frames_lost != 0 || metrics.link_frames_corrupted != 0 ||
        metrics.node_crashes != 0 || metrics.node_restarts != 0 ||
        metrics.corrupt_frames_rejected != 0) {
      add_violation(scenario_.now(), "-", "fault accounting: fault-model counters nonzero "
                         "without a fault plan");
    }
  }
  if (!config.tactic.overload.enabled) {
    // A disabled overload layer must be perfectly inert.
    const sim::RouterOps* classes[] = {&metrics.edge_ops, &metrics.core_ops};
    for (const sim::RouterOps* ops : classes) {
      if (ops->neg_cache_hits != 0 || ops->neg_cache_insertions != 0 ||
          ops->sheds_queue_full != 0 || ops->sheds_unvouched != 0 ||
          ops->policer_sheds != 0 || ops->staged_resets != 0 ||
          ops->draining_hits != 0 || ops->validation_wait_s != 0.0 ||
          !ops->validation_wait_hist.empty()) {
        add_violation(scenario_.now(), "-", "overload accounting: overload-layer counters "
                           "nonzero while the layer is disabled");
      }
    }
    if (metrics.clients.overload_nacks != 0) {
      add_violation(scenario_.now(), "-", "overload accounting: clients saw "
                         "kRouterOverloaded NACKs while the layer is "
                         "disabled");
    }
  }
  if (!config.tactic.adaptive.enabled || !config.tactic.overload.enabled) {
    // The adaptive layer only arms when both its own flag and the
    // overload layer are on; otherwise it must be perfectly inert.
    const sim::RouterOps* classes[] = {&metrics.edge_ops, &metrics.core_ops};
    for (const sim::RouterOps* ops : classes) {
      if (ops->adaptive_windows != 0 || ops->adaptive_minrtt_probes != 0 ||
          ops->quarantine_sheds != 0 || ops->quarantine_ejections != 0 ||
          ops->quarantine_probes != 0 || ops->quarantine_readmissions != 0 ||
          ops->adaptive_gradient != 0.0 || ops->adaptive_limit != 0) {
        add_violation(scenario_.now(), "-", "adaptive accounting: adaptive-layer counters "
                           "nonzero while the layer is disabled");
      }
    }
  }
  if (!config.faults.clock_skew.any() && !config.tactic.skew.enabled &&
      !config.tactic.grace.enabled) {
    // With identity clocks and both lifecycle features off, the
    // lifecycle counters must be perfectly inert.
    const sim::RouterOps* classes[] = {&metrics.edge_ops, &metrics.core_ops};
    for (const sim::RouterOps* ops : classes) {
      if (ops->skew_soft_accepts != 0 || ops->skew_false_rejects != 0 ||
          ops->skew_false_accepts != 0 || ops->grace_accepts != 0 ||
          ops->grace_engagements != 0) {
        add_violation(scenario_.now(), "-", "lifecycle accounting: skew/grace counters "
                           "nonzero while skewed clocks, the tolerance "
                           "window, and grace mode are all disabled");
      }
    }
  }
  if (!config.client.proactive_renewal &&
      metrics.clients.proactive_renewals != 0) {
    add_violation(scenario_.now(), "-", "lifecycle accounting: proactive renewals counted "
                       "while proactive renewal is disabled");
  }
  if (config.faults.clock_skew.any() && config.tactic.skew.enabled) {
    // Skew tolerance correctness: when the window covers the worst clock
    // error any node can accumulate over the whole run (offset plus
    // drift), no genuinely live tag may be rejected as expired.
    const event::Time horizon = config.duration + options_.drain_grace;
    const event::Time worst_skew =
        config.faults.clock_skew.max_offset +
        static_cast<event::Time>(config.faults.clock_skew.max_drift *
                                 static_cast<double>(horizon));
    if (worst_skew <= config.tactic.skew.tolerance &&
        (metrics.edge_ops.skew_false_rejects != 0 ||
         metrics.core_ops.skew_false_rejects != 0)) {
      add_violation(scenario_.now(), "-", "skew tolerance: live tags rejected although the "
                         "worst-case clock skew fits inside the tolerance "
                         "window");
    }
  }
  if (config.router_pit_capacity == 0 && metrics.pit_evictions != 0) {
    add_violation(scenario_.now(), "-", "PIT accounting: evictions counted with an "
                       "unbounded PIT");
  }

  switch (config.policy) {
    case sim::PolicyKind::kTactic: {
      if (fp_leaks_ > options_.fp_leak_budget) {
        char what[128];
        std::snprintf(what, sizeof(what),
                      "signature-invalid tags honoured %llu times "
                      "(Bloom false-positive budget %llu)",
                      static_cast<unsigned long long>(fp_leaks_),
                      static_cast<unsigned long long>(
                          options_.fp_leak_budget));
        add_violation(scenario_.now(), "-", what);
      }
      if (metrics.attackers.received > fp_leaks_) {
        char what[128];
        std::snprintf(what, sizeof(what),
                      "attackers received %llu chunks under kTactic "
                      "(only %llu Bloom false-positive leaks observed)",
                      static_cast<unsigned long long>(
                          metrics.attackers.received),
                      static_cast<unsigned long long>(fp_leaks_));
        add_violation(scenario_.now(), "-", what);
      }
      break;
    }
    case sim::PolicyKind::kPerRequestAuth:
    case sim::PolicyKind::kProbBf:
      if (metrics.attackers.received != 0) {
        add_violation(scenario_.now(), "-", std::string("attackers received content under ") +
                               sim::to_string(config.policy));
      }
      break;
    case sim::PolicyKind::kNoAccessControl:
    case sim::PolicyKind::kClientSideAc:
      break;  // attackers are expected to receive content
  }
}

void InvariantChecker::add_violation(event::Time when,
                                     const std::string& node,
                                     std::string what) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++violation_count_;
  if (violations_.size() < options_.max_recorded) {
    violations_.push_back(Violation{when, node, std::move(what)});
  }
}

std::string InvariantChecker::trace_digest() const {
  return util::to_hex(chain_);
}

std::string InvariantChecker::report() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "packets=%llu deliveries_checked=%llu fp_leaks=%llu "
                "violations=%llu\n",
                static_cast<unsigned long long>(packets_observed_),
                static_cast<unsigned long long>(deliveries_checked_),
                static_cast<unsigned long long>(fp_leaks_),
                static_cast<unsigned long long>(violation_count_));
  std::string out = line;
  for (const auto& violation : violations_) {
    out += "  [" + format_seconds(violation.when) + "] " + violation.node +
           ": " + violation.what + "\n";
  }
  if (violation_count_ > violations_.size()) {
    std::snprintf(line, sizeof(line), "  ... and %llu more\n",
                  static_cast<unsigned long long>(violation_count_ -
                                                  violations_.size()));
    out += line;
  }
  return out;
}

}  // namespace tactic::testing
