#pragma once
// Probabilistic primality testing and random prime generation for RSA
// key generation.

#include <cstddef>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace tactic::crypto {

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
/// Deterministically correct for n < 2^32 regardless of `rounds` (small
/// inputs are checked by trial division).
bool is_probable_prime(const BigUInt& n, util::Rng& rng,
                       std::size_t rounds = 24);

/// Uniformly random probable prime with exactly `bits` bits and the top
/// two bits set (so a product of two such primes has exactly 2*bits bits).
/// `bits` must be >= 16.
BigUInt random_prime(util::Rng& rng, std::size_t bits,
                     std::size_t mr_rounds = 24);

}  // namespace tactic::crypto
