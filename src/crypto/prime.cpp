#include "crypto/prime.hpp"

#include <stdexcept>
#include <vector>

namespace tactic::crypto {

namespace {

/// Small primes for fast trial division before Miller–Rabin.
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint32_t j = 2 * i; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

/// Remainder of `n` modulo a small value, without a full divmod.
std::uint32_t mod_small(const BigUInt& n, std::uint32_t d) {
  return static_cast<std::uint32_t>((n % BigUInt{d}).to_u64());
}

bool miller_rabin_witness(const BigUInt& n, const BigUInt& a,
                          const BigUInt& d, std::size_t r) {
  const BigUInt n_minus_1 = n - BigUInt{1};
  BigUInt x = BigUInt::modexp(a, d, n);
  if (x == BigUInt{1} || x == n_minus_1) return false;  // not a witness
  for (std::size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return false;
  }
  return true;  // composite witnessed
}

}  // namespace

bool is_probable_prime(const BigUInt& n, util::Rng& rng, std::size_t rounds) {
  if (n < BigUInt{2}) return false;
  for (std::uint32_t p : small_primes()) {
    if (n == BigUInt{p}) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // All small factors excluded; n > kLimit^... n could still be a small
  // composite only if its least factor exceeds the sieve limit, i.e.
  // n > 8192^2, which Miller-Rabin handles below.

  // Write n - 1 = d * 2^r with d odd.
  const BigUInt n_minus_1 = n - BigUInt{1};
  BigUInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  for (std::size_t i = 0; i < rounds; ++i) {
    // a uniform in [2, n-2]
    const BigUInt a =
        BigUInt{2} + BigUInt::random_below(rng, n - BigUInt{3});
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

BigUInt random_prime(util::Rng& rng, std::size_t bits,
                     std::size_t mr_rounds) {
  if (bits < 16) {
    throw std::invalid_argument("random_prime: need at least 16 bits");
  }
  for (;;) {
    // random_bits sets the top bit; also force the second-highest bit (so
    // a product of two such primes has exactly 2*bits bits) and the low
    // bit (odd).
    BigUInt candidate = BigUInt::random_bits(rng, bits);
    if (!candidate.bit(bits - 2)) candidate += BigUInt{1} << (bits - 2);
    if (!candidate.is_odd()) candidate += BigUInt{1};

    // Cheap trial division first.
    bool has_small_factor = false;
    for (std::uint32_t p : small_primes()) {
      if (mod_small(candidate, p) == 0 && candidate != BigUInt{p}) {
        has_small_factor = true;
        break;
      }
    }
    if (has_small_factor) continue;
    if (is_probable_prime(candidate, rng, mr_rounds)) return candidate;
  }
}

}  // namespace tactic::crypto
