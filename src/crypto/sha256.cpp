#include "crypto/sha256.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace tactic::crypto {

namespace {

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

bool is_prime_small(int n) {
  if (n < 2) return false;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

/// First 32 bits of the fractional part of n^(1/root).
std::uint32_t frac_root_bits(int n, int root) {
  const long double x =
      root == 2 ? std::sqrt(static_cast<long double>(n))
                : std::cbrt(static_cast<long double>(n));
  const long double frac = x - std::floor(x);
  return static_cast<std::uint32_t>(frac * 4294967296.0L);
}

struct Constants {
  std::array<std::uint32_t, 8> h0;
  std::array<std::uint32_t, 64> k;
  Constants() {
    int prime = 2;
    for (std::size_t i = 0; i < 64; ++i) {
      while (!is_prime_small(prime)) ++prime;
      if (i < 8) h0[i] = frac_root_bits(prime, 2);
      k[i] = frac_root_bits(prime, 3);
      ++prime;
    }
  }
};

const Constants& constants() {
  static const Constants c;
  return c;
}

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = constants().h0;
  buffered_ = 0;
  total_bytes_ = 0;
  finished_ = false;
}

void Sha256::update(util::BytesView data) {
  if (finished_) {
    throw std::logic_error("Sha256: update after finish; call reset()");
  }
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take =
        std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha256::update(std::string_view s) {
  update(util::BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()));
}

util::Bytes Sha256::finish() {
  if (finished_) {
    throw std::logic_error("Sha256: finish called twice; call reset()");
  }
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
  update(util::BytesView(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(util::BytesView(len_bytes, 8));
  finished_ = true;

  util::Bytes out(kDigestSize);
  for (std::size_t i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

void Sha256::process_block(const std::uint8_t* block) {
  const auto& k = constants().k;
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t big_s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + big_s1 + ch + k[t] + w[t];
    const std::uint32_t big_s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = big_s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

util::Bytes Sha256::digest(util::BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

util::Bytes Sha256::digest(std::string_view s) {
  Sha256 ctx;
  ctx.update(s);
  return ctx.finish();
}

std::uint64_t sha256_prefix64(util::BytesView data) {
  const util::Bytes d = Sha256::digest(data);
  return util::read_u64(d, 0);
}

std::uint64_t sha256_prefix64(std::string_view s) {
  const util::Bytes d = Sha256::digest(s);
  return util::read_u64(d, 0);
}

}  // namespace tactic::crypto
