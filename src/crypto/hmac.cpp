#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace tactic::crypto {

util::Bytes hmac_sha256(util::BytesView key, util::BytesView data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  util::Bytes k0(kBlock, 0);
  if (key.size() > kBlock) {
    const util::Bytes hashed = Sha256::digest(key);
    std::copy(hashed.begin(), hashed.end(), k0.begin());
  } else {
    std::copy(key.begin(), key.end(), k0.begin());
  }

  util::Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k0[i] ^ 0x36;
    opad[i] = k0[i] ^ 0x5C;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const util::Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

util::Bytes hmac_sha256(util::BytesView key, std::string_view data) {
  return hmac_sha256(
      key, util::BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                           data.size()));
}

bool hmac_sha256_verify(util::BytesView key, util::BytesView data,
                        util::BytesView mac) {
  return util::constant_time_equal(hmac_sha256(key, data), mac);
}

}  // namespace tactic::crypto
