#pragma once
// RSA with PKCS#1 v1.5 signatures (RSASSA) and encryption (RSAES),
// implemented from scratch on top of crypto::BigUInt.
//
// TACTIC uses RSA in two places (paper Sections 3.B and 6):
//  - providers sign tags; routers verify them ("a few signature
//    verifications" is the only asymmetric crypto routers perform);
//  - providers encrypt the content-decryption key under the client's
//    public key at registration time.

#include <cstdint>
#include <memory>
#include <string>

#include "crypto/bignum.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tactic::crypto {

/// RSA public key (n, e).
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigUInt n, BigUInt e);

  const BigUInt& n() const { return n_; }
  const BigUInt& e() const { return e_; }
  /// Modulus size in bytes (the size of signatures and ciphertexts).
  std::size_t modulus_size() const { return modulus_size_; }
  bool valid() const { return !n_.is_zero(); }

  /// RSASSA-PKCS1-v1_5 verification with SHA-256.  Never throws on bad
  /// signatures; returns false.
  bool verify_pkcs1_sha256(util::BytesView message,
                           util::BytesView signature) const;

  /// RSAES-PKCS1-v1_5 encryption; message must be <= modulus_size() - 11
  /// bytes (throws std::invalid_argument otherwise).
  util::Bytes encrypt_pkcs1(util::Rng& rng, util::BytesView message) const;

  /// Canonical encoding (for hashing/fingerprints): len-prefixed n and e.
  util::Bytes encode() const;
  /// SHA-256 fingerprint of encode().
  util::Bytes fingerprint() const;

 private:
  BigUInt n_;
  BigUInt e_;
  std::size_t modulus_size_ = 0;
};

/// RSA private key with CRT acceleration.
class RsaPrivateKey {
 public:
  RsaPrivateKey() = default;
  RsaPrivateKey(BigUInt n, BigUInt e, BigUInt d, BigUInt p, BigUInt q);

  const RsaPublicKey& public_key() const { return public_; }
  bool valid() const { return public_.valid(); }

  /// RSASSA-PKCS1-v1_5 signature with SHA-256.
  util::Bytes sign_pkcs1_sha256(util::BytesView message) const;

  /// RSAES-PKCS1-v1_5 decryption; returns empty on malformed padding.
  util::Bytes decrypt_pkcs1(util::BytesView ciphertext) const;

 private:
  BigUInt rsa_private_op(const BigUInt& input) const;

  RsaPublicKey public_;
  BigUInt d_;
  BigUInt p_, q_;
  BigUInt dp_, dq_, qinv_;
  std::shared_ptr<Montgomery> mont_p_, mont_q_;  // shared: key objects are copied around
};

/// Key pair generation.  `bits` is the modulus size (>= 512); e = 65537.
/// Deterministic for a given RNG state — the simulator derives all keys
/// from the scenario seed.
struct RsaKeyPair {
  RsaPrivateKey private_key;
  RsaPublicKey public_key;
};
RsaKeyPair generate_rsa_keypair(util::Rng& rng, std::size_t bits = 1024);

}  // namespace tactic::crypto
