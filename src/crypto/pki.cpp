#include "crypto/pki.hpp"

namespace tactic::crypto {

void Pki::add_key(const KeyLocator& locator, RsaPublicKey key) {
  keys_[locator] = std::move(key);
}

const RsaPublicKey* Pki::find(const KeyLocator& locator) const {
  const auto it = keys_.find(locator);
  return it == keys_.end() ? nullptr : &it->second;
}

bool Pki::contains(const KeyLocator& locator) const {
  return keys_.count(locator) > 0;
}

}  // namespace tactic::crypto
