#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The round constants and initial hash values are derived at first use from
// the fractional parts of the cube/square roots of the first primes, exactly
// as the standard specifies; known-answer tests in tests/crypto_test.cpp
// pin the implementation to the published vectors.

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace tactic::crypto {

/// Streaming SHA-256 context.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.  May be called any number of times.
  void update(util::BytesView data);
  void update(std::string_view s);

  /// Finalizes and returns the 32-byte digest.  The context must not be
  /// reused after `finish()` without `reset()`.
  util::Bytes finish();

  /// Restores the initial state.
  void reset();

  /// One-shot convenience.
  static util::Bytes digest(util::BytesView data);
  static util::Bytes digest(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// First 8 bytes of SHA-256, as a big-endian uint64 — used for compact
/// entity identifiers (access-path hashing) and Bloom-filter keys.
std::uint64_t sha256_prefix64(util::BytesView data);
std::uint64_t sha256_prefix64(std::string_view s);

}  // namespace tactic::crypto
