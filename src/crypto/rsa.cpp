#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/prime.hpp"
#include "crypto/sha256.hpp"

namespace tactic::crypto {

namespace {

/// DER DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 note 1).
const util::Bytes& sha256_digest_info_prefix() {
  static const util::Bytes prefix = util::from_hex(
      "3031300d060960864801650304020105000420");
  return prefix;
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
util::Bytes emsa_pkcs1_encode(util::BytesView message, std::size_t em_len) {
  const util::Bytes digest = Sha256::digest(message);
  const util::Bytes& prefix = sha256_digest_info_prefix();
  const std::size_t t_len = prefix.size() + digest.size();
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA: modulus too small for SHA-256 PKCS#1");
  }
  util::Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xFF);
  em.push_back(0x00);
  em.insert(em.end(), prefix.begin(), prefix.end());
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

RsaPublicKey::RsaPublicKey(BigUInt n, BigUInt e)
    : n_(std::move(n)), e_(std::move(e)) {
  modulus_size_ = (n_.bit_length() + 7) / 8;
}

bool RsaPublicKey::verify_pkcs1_sha256(util::BytesView message,
                                       util::BytesView signature) const {
  if (!valid() || signature.size() != modulus_size_) return false;
  const BigUInt s = BigUInt::from_bytes_be(signature);
  if (s >= n_) return false;
  const BigUInt m = BigUInt::modexp(s, e_, n_);
  const util::Bytes em = m.to_bytes_be(modulus_size_);
  const util::Bytes expected = emsa_pkcs1_encode(message, modulus_size_);
  return util::constant_time_equal(em, expected);
}

util::Bytes RsaPublicKey::encrypt_pkcs1(util::Rng& rng,
                                        util::BytesView message) const {
  if (!valid()) throw std::logic_error("RSA: encrypt with empty key");
  if (message.size() + 11 > modulus_size_) {
    throw std::invalid_argument("RSA: message too long for PKCS#1 v1.5");
  }
  util::Bytes em;
  em.reserve(modulus_size_);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t pad_len = modulus_size_ - message.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    // Nonzero random padding bytes.
    em.push_back(static_cast<std::uint8_t>(1 + rng.uniform(255)));
  }
  em.push_back(0x00);
  em.insert(em.end(), message.begin(), message.end());
  const BigUInt m = BigUInt::from_bytes_be(em);
  const BigUInt c = BigUInt::modexp(m, e_, n_);
  return c.to_bytes_be(modulus_size_);
}

util::Bytes RsaPublicKey::encode() const {
  util::Bytes out;
  util::append_lv(out, n_.to_bytes_be());
  util::append_lv(out, e_.to_bytes_be());
  return out;
}

util::Bytes RsaPublicKey::fingerprint() const {
  return Sha256::digest(encode());
}

RsaPrivateKey::RsaPrivateKey(BigUInt n, BigUInt e, BigUInt d, BigUInt p,
                             BigUInt q)
    : public_(std::move(n), std::move(e)),
      d_(std::move(d)),
      p_(std::move(p)),
      q_(std::move(q)) {
  dp_ = d_ % (p_ - BigUInt{1});
  dq_ = d_ % (q_ - BigUInt{1});
  const auto qinv = BigUInt::mod_inverse(q_, p_);
  if (!qinv) throw std::invalid_argument("RSA: p, q not coprime");
  qinv_ = *qinv;
  mont_p_ = std::make_shared<Montgomery>(p_);
  mont_q_ = std::make_shared<Montgomery>(q_);
}

BigUInt RsaPrivateKey::rsa_private_op(const BigUInt& input) const {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q,
  //      h = qinv * (m1 - m2) mod p, m = m2 + h*q.
  const BigUInt m1 = mont_p_->exp(input % p_, dp_);
  const BigUInt m2 = mont_q_->exp(input % q_, dq_);
  BigUInt diff = m1;
  if (diff < m2 % p_) diff += p_;
  diff -= m2 % p_;
  const BigUInt h = (qinv_ * diff) % p_;
  return m2 + h * q_;
}

util::Bytes RsaPrivateKey::sign_pkcs1_sha256(util::BytesView message) const {
  if (!valid()) throw std::logic_error("RSA: sign with empty key");
  const std::size_t k = public_.modulus_size();
  const util::Bytes em = emsa_pkcs1_encode(message, k);
  const BigUInt m = BigUInt::from_bytes_be(em);
  const BigUInt s = rsa_private_op(m);
  return s.to_bytes_be(k);
}

util::Bytes RsaPrivateKey::decrypt_pkcs1(util::BytesView ciphertext) const {
  if (!valid()) throw std::logic_error("RSA: decrypt with empty key");
  const std::size_t k = public_.modulus_size();
  if (ciphertext.size() != k) return {};
  const BigUInt c = BigUInt::from_bytes_be(ciphertext);
  if (c >= public_.n()) return {};
  const BigUInt m = rsa_private_op(c);
  const util::Bytes em = m.to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return {};
  // Find the 0x00 separator after at least 8 padding bytes.
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep < 10 || sep == em.size()) return {};
  return util::Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep) + 1,
                     em.end());
}

RsaKeyPair generate_rsa_keypair(util::Rng& rng, std::size_t bits) {
  if (bits < 512) {
    throw std::invalid_argument("RSA: modulus must be >= 512 bits");
  }
  const BigUInt e{65537};
  for (;;) {
    const BigUInt p = random_prime(rng, bits / 2);
    const BigUInt q = random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigUInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigUInt phi = (p - BigUInt{1}) * (q - BigUInt{1});
    const auto d = BigUInt::mod_inverse(e, phi);
    if (!d) continue;  // e shares a factor with phi; retry
    RsaKeyPair pair;
    pair.private_key = RsaPrivateKey(n, e, *d, p, q);
    pair.public_key = pair.private_key.public_key();
    return pair;
  }
}

}  // namespace tactic::crypto
