#pragma once
// Arbitrary-precision unsigned integers, from scratch.
//
// This is the arithmetic substrate for the RSA signatures that protect
// TACTIC tags.  Limbs are 32-bit, little-endian, always normalized (no
// leading zero limbs; zero is the empty limb vector).  Division is Knuth's
// Algorithm D; modular exponentiation uses Montgomery multiplication for
// odd moduli (every RSA modulus) and falls back to divide-and-reduce
// otherwise.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tactic::crypto {

class BigUInt {
 public:
  BigUInt() = default;
  BigUInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Big-endian byte-string conversions (the natural wire format for RSA).
  static BigUInt from_bytes_be(util::BytesView bytes);
  /// Serializes big-endian, left-padded with zeros to at least `min_size`.
  util::Bytes to_bytes_be(std::size_t min_size = 0) const;

  /// Hex conversions (test vectors, debugging).
  static BigUInt from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit `i` (LSB = bit 0); false beyond bit_length().
  bool bit(std::size_t i) const;
  /// Value as uint64; throws std::overflow_error if it does not fit.
  std::uint64_t to_u64() const;

  /// Three-way comparison: -1, 0, +1.
  int compare(const BigUInt& other) const;
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) >= 0;
  }

  BigUInt& operator+=(const BigUInt& rhs);
  /// Subtraction requires *this >= rhs; throws std::underflow_error.
  BigUInt& operator-=(const BigUInt& rhs);
  friend BigUInt operator+(BigUInt a, const BigUInt& b) { return a += b; }
  friend BigUInt operator-(BigUInt a, const BigUInt& b) { return a -= b; }
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);

  /// Quotient and remainder; throws std::domain_error on division by zero.
  static std::pair<BigUInt, BigUInt> divmod(const BigUInt& num,
                                            const BigUInt& den);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).first;
  }
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b) {
    return divmod(a, b).second;
  }

  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;

  /// base^exp mod mod; throws std::domain_error if mod is zero.
  static BigUInt modexp(const BigUInt& base, const BigUInt& exp,
                        const BigUInt& mod);

  static BigUInt gcd(BigUInt a, BigUInt b);

  /// Modular inverse of `a` mod `m` (m >= 2), or nullopt when
  /// gcd(a, m) != 1.
  static std::optional<BigUInt> mod_inverse(const BigUInt& a,
                                            const BigUInt& m);

  /// Uniformly random integer with exactly `bits` bits (top bit set).
  static BigUInt random_bits(util::Rng& rng, std::size_t bits);
  /// Uniformly random integer in [0, bound); bound must be nonzero.
  static BigUInt random_below(util::Rng& rng, const BigUInt& bound);

 private:
  void normalize();

  std::vector<std::uint32_t> limbs_;
};

/// Montgomery-form modular arithmetic for a fixed odd modulus.  Exposed so
/// RSA-CRT can reuse one context per prime.
class Montgomery {
 public:
  /// Modulus must be odd and > 1; throws std::invalid_argument otherwise.
  explicit Montgomery(BigUInt modulus);

  const BigUInt& modulus() const { return modulus_; }

  /// base^exp mod modulus using left-to-right binary exponentiation over
  /// Montgomery products.
  BigUInt exp(const BigUInt& base, const BigUInt& exp) const;

 private:
  std::vector<std::uint32_t> mont_mul(const std::vector<std::uint32_t>& a,
                                      const std::vector<std::uint32_t>& b)
      const;
  std::vector<std::uint32_t> to_mont(const BigUInt& x) const;

  BigUInt modulus_;
  std::vector<std::uint32_t> n_;   // modulus limbs, padded length
  std::uint32_t n0_inv_;           // -n^{-1} mod 2^32
  BigUInt r2_;                     // R^2 mod n, R = 2^(32*len)
};

}  // namespace tactic::crypto
