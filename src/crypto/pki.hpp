#pragma once
// Public-key infrastructure registry.
//
// The paper assumes "the existence of a public key infrastructure (PKI) by
// which routers store the providers' public keys and certificates"
// (Section 3.B), and argues that the universe of access-controlled
// providers is small (a few thousand), so storing their public keys scales
// (Section 5).  `Pki` is that store: a mapping from public-key-locator
// names to keys, shared read-only by all routers in a scenario.

#include <cstddef>
#include <string>
#include <unordered_map>

#include "crypto/rsa.hpp"

namespace tactic::crypto {

/// A public key locator is "a name that points to a packet that contains
/// the public key or/and its digest" (paper Section 3.B).  We represent it
/// as its flat URI string, e.g. "/provider3/KEY/1".
using KeyLocator = std::string;

class Pki {
 public:
  /// Registers (or replaces) the key reachable at `locator`.
  void add_key(const KeyLocator& locator, RsaPublicKey key);

  /// Looks up a key; nullptr when unknown.  The pointer remains valid
  /// until the next add_key/clear.
  const RsaPublicKey* find(const KeyLocator& locator) const;

  bool contains(const KeyLocator& locator) const;
  std::size_t size() const { return keys_.size(); }
  void clear() { keys_.clear(); }

 private:
  std::unordered_map<KeyLocator, RsaPublicKey> keys_;
};

}  // namespace tactic::crypto
