#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace tactic::crypto {

namespace {

/// Multiplication in GF(2^8) with the AES reduction polynomial x^8 + x^4 +
/// x^3 + x + 1 (0x11B).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool high = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (high) a ^= 0x1B;
    b >>= 1;
  }
  return result;
}

struct SBoxes {
  std::array<std::uint8_t, 256> fwd;
  std::array<std::uint8_t, 256> inv;
  SBoxes() {
    for (int x = 0; x < 256; ++x) {
      // Multiplicative inverse (0 maps to 0).  Brute force is fine: this
      // runs once per process.
      std::uint8_t inv_x = 0;
      if (x != 0) {
        for (int y = 1; y < 256; ++y) {
          if (gf_mul(static_cast<std::uint8_t>(x),
                     static_cast<std::uint8_t>(y)) == 1) {
            inv_x = static_cast<std::uint8_t>(y);
            break;
          }
        }
      }
      // Affine transform: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7}
      // ^ c_i with c = 0x63.
      std::uint8_t s = 0;
      for (int i = 0; i < 8; ++i) {
        const int bit = ((inv_x >> i) & 1) ^ ((inv_x >> ((i + 4) % 8)) & 1) ^
                        ((inv_x >> ((i + 5) % 8)) & 1) ^
                        ((inv_x >> ((i + 6) % 8)) & 1) ^
                        ((inv_x >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1);
        s |= static_cast<std::uint8_t>(bit << i);
      }
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const SBoxes& sboxes() {
  static const SBoxes s;
  return s;
}

}  // namespace

Aes128::Aes128(util::BytesView key) {
  if (key.size() != kKeySize) {
    throw std::invalid_argument("Aes128: key must be 16 bytes");
  }
  const auto& sbox = sboxes().fwd;
  std::memcpy(round_keys_[0].data(), key.data(), kKeySize);
  std::uint8_t rcon = 0x01;
  for (std::size_t round = 1; round <= 10; ++round) {
    const auto& prev = round_keys_[round - 1];
    auto& rk = round_keys_[round];
    // First word: RotWord + SubWord + Rcon.
    std::uint8_t t[4] = {sbox[prev[13]], sbox[prev[14]], sbox[prev[15]],
                         sbox[prev[12]]};
    t[0] ^= rcon;
    rcon = gf_mul(rcon, 2);
    for (int i = 0; i < 4; ++i) rk[i] = prev[i] ^ t[i];
    for (int w = 1; w < 4; ++w) {
      for (int i = 0; i < 4; ++i) {
        rk[4 * w + i] = prev[4 * w + i] ^ rk[4 * (w - 1) + i];
      }
    }
  }
}

void Aes128::encrypt_block(std::uint8_t block[kBlockSize]) const {
  const auto& sbox = sboxes().fwd;
  auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      block[i] ^= round_keys_[round][i];
    }
  };
  auto sub_bytes = [&] {
    for (std::size_t i = 0; i < kBlockSize; ++i) block[i] = sbox[block[i]];
  };
  // State is column-major: byte i sits at row i%4, column i/4.  ShiftRows
  // rotates row r left by r positions.
  auto shift_rows = [&] {
    std::uint8_t tmp[kBlockSize];
    std::memcpy(tmp, block, kBlockSize);
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        block[4 * c + r] = tmp[4 * ((c + r) % 4) + r];
      }
    }
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = block + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
      col[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
      col[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
      col[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    }
  };

  add_round_key(0);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void Aes128::decrypt_block(std::uint8_t block[kBlockSize]) const {
  const auto& inv_sbox = sboxes().inv;
  auto add_round_key = [&](std::size_t round) {
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      block[i] ^= round_keys_[round][i];
    }
  };
  auto inv_sub_bytes = [&] {
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      block[i] = inv_sbox[block[i]];
    }
  };
  auto inv_shift_rows = [&] {
    std::uint8_t tmp[kBlockSize];
    std::memcpy(tmp, block, kBlockSize);
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        block[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
      }
    }
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = block + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
      col[1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
      col[2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
      col[3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
    }
  };

  add_round_key(10);
  for (std::size_t round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

util::Bytes aes128_ctr(util::BytesView key, std::uint64_t nonce,
                       util::BytesView data) {
  const Aes128 cipher(key);
  util::Bytes out(data.begin(), data.end());
  std::uint8_t counter_block[Aes128::kBlockSize];
  for (std::size_t offset = 0, block_index = 0; offset < out.size();
       offset += Aes128::kBlockSize, ++block_index) {
    for (int i = 0; i < 8; ++i) {
      counter_block[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
      counter_block[8 + i] =
          static_cast<std::uint8_t>(static_cast<std::uint64_t>(block_index) >>
                                    (56 - 8 * i));
    }
    cipher.encrypt_block(counter_block);
    const std::size_t n =
        std::min<std::size_t>(Aes128::kBlockSize, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      out[offset + i] ^= counter_block[i];
    }
  }
  return out;
}

}  // namespace tactic::crypto
