#include "crypto/bignum.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tactic::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_bytes_be(util::BytesView bytes) {
  BigUInt out;
  for (std::uint8_t b : bytes) {
    // out = out * 256 + b, done limb-wise for efficiency.
    std::uint64_t carry = b;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.normalize();
  return out;
}

util::Bytes BigUInt::to_bytes_be(std::size_t min_size) const {
  util::Bytes out;
  const std::size_t significant = (bit_length() + 7) / 8;
  const std::size_t size = std::max(significant, min_size);
  out.assign(size, 0);
  for (std::size_t i = 0; i < significant; ++i) {
    const std::size_t limb = i / 4;
    const std::size_t shift = 8 * (i % 4);
    out[size - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return from_bytes_be(util::from_hex("0" + std::string(hex)));
  }
  return from_bytes_be(util::from_hex(hex));
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes_be());
  const std::size_t nonzero = s.find_first_not_of('0');
  return s.substr(nonzero);
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = 32 * (limbs_.size() - 1);
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUInt::to_u64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigUInt: > 64 bits");
  std::uint64_t v = 0;
  if (limbs_.size() >= 2) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t sum = static_cast<std::uint64_t>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (compare(rhs) < 0) {
    throw std::underflow_error("BigUInt: subtraction would go negative");
  }
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) diff -= rhs.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  assert(borrow == 0);
  normalize();
  return *this;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  if (a.is_zero() || b.is_zero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t t = ai * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(t);
      carry = t >> 32;
    }
    out.limbs_[i + b.limbs_.size()] = static_cast<std::uint32_t>(carry);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUInt{};
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >>
                      bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& num,
                                            const BigUInt& den) {
  if (den.is_zero()) throw std::domain_error("BigUInt: division by zero");
  if (num.compare(den) < 0) return {BigUInt{}, num};

  // Single-limb divisor: simple schoolbook short division.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    BigUInt q;
    q.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, BigUInt{rem}};
  }

  // Knuth, TAOCP Vol. 2, Algorithm D.
  const std::size_t n = den.limbs_.size();
  const std::size_t m = num.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (std::uint32_t top = den.limbs_.back(); !(top & 0x80000000u);
       top <<= 1) {
    ++shift;
  }
  const BigUInt u_norm = num << static_cast<std::size_t>(shift);
  const BigUInt v_norm = den << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.resize(num.limbs_.size() + 1, 0);  // extra high limb for D4 borrow space
  const std::vector<std::uint32_t>& v = v_norm.limbs_;
  assert(v.size() == n);

  BigUInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v[n - 1];
    std::uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }

    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // D6: q_hat was one too large; add the divisor back.
      top_diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xFFFFFFFFll;
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
  }

  q.normalize();
  BigUInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigUInt BigUInt::modexp(const BigUInt& base, const BigUInt& exp,
                        const BigUInt& mod) {
  if (mod.is_zero()) throw std::domain_error("BigUInt: zero modulus");
  if (mod == BigUInt{1}) return BigUInt{};
  if (mod.is_odd()) return Montgomery(mod).exp(base, exp);

  // Even modulus: plain square-and-multiply with divide-based reduction.
  BigUInt result{1};
  BigUInt b = base % mod;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % mod;
    if (exp.bit(i)) result = (result * b) % mod;
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::optional<BigUInt> BigUInt::mod_inverse(const BigUInt& a,
                                            const BigUInt& m) {
  if (m < BigUInt{2}) {
    throw std::invalid_argument("mod_inverse: modulus must be >= 2");
  }
  // Extended Euclid, tracking only the coefficient of `a`.  Values of t may
  // go "negative"; they are kept reduced mod m by adding m before
  // subtracting.
  BigUInt r0 = m, r1 = a % m;
  BigUInt t0{}, t1{1};
  while (!r1.is_zero()) {
    const auto [q, r2] = divmod(r0, r1);
    r0 = r1;
    r1 = r2;
    // t2 = t0 - q*t1 (mod m)
    BigUInt qt = (q * t1) % m;
    BigUInt t2 = t0;
    if (t2 < qt) t2 += m;
    t2 -= qt;
    t0 = t1;
    t1 = std::move(t2);
  }
  if (r0 != BigUInt{1}) return std::nullopt;
  return t0 % m;
}

BigUInt BigUInt::random_bits(util::Rng& rng, std::size_t bits) {
  if (bits == 0) return BigUInt{};
  BigUInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<std::uint32_t>(rng());
  }
  const std::size_t top_bits = bits - 32 * (limbs - 1);
  if (top_bits < 32) {
    out.limbs_.back() &= (1u << top_bits) - 1;
  }
  out.limbs_.back() |= 1u << (top_bits - 1);  // force exact bit length
  out.normalize();
  return out;
}

BigUInt BigUInt::random_below(util::Rng& rng, const BigUInt& bound) {
  if (bound.is_zero()) {
    throw std::invalid_argument("random_below: zero bound");
  }
  const std::size_t bits = bound.bit_length();
  // Rejection sampling from [0, 2^bits).
  for (;;) {
    BigUInt candidate;
    const std::size_t limbs = (bits + 31) / 32;
    candidate.limbs_.resize(limbs);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<std::uint32_t>(rng());
    }
    const std::size_t top_bits = bits - 32 * (limbs - 1);
    if (top_bits < 32) candidate.limbs_.back() &= (1u << top_bits) - 1;
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

Montgomery::Montgomery(BigUInt modulus) : modulus_(std::move(modulus)) {
  if (!modulus_.is_odd() || modulus_ <= BigUInt{1}) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  // Build the little-endian limb vector of the modulus.
  {
    const util::Bytes be = modulus_.to_bytes_be();
    const std::size_t limbs = (be.size() + 3) / 4;
    n_.assign(limbs, 0);
    for (std::size_t i = 0; i < be.size(); ++i) {
      const std::size_t byte_index = be.size() - 1 - i;  // little-endian i
      n_[i / 4] |= static_cast<std::uint32_t>(be[byte_index]) << (8 * (i % 4));
    }
  }

  // n0_inv = -n^{-1} mod 2^32 via Newton iteration on the low limb.
  const std::uint32_t n0 = n_[0];
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - n0 * inv;  // doubles correct bits each step (mod 2^32)
  }
  n0_inv_ = static_cast<std::uint32_t>(0u - inv);

  // R^2 mod n, with R = 2^(32 * len).
  const std::size_t r_bits = 32 * n_.size();
  r2_ = (BigUInt{1} << (2 * r_bits)) % modulus_;
}

std::vector<std::uint32_t> Montgomery::mont_mul(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  const std::size_t len = n_.size();
  std::vector<std::uint32_t> t(len + 2, 0);
  for (std::size_t i = 0; i < len; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < len; ++j) {
      const std::uint64_t sum = ai * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint32_t>(sum);
      carry = sum >> 32;
    }
    std::uint64_t sum = static_cast<std::uint64_t>(t[len]) + carry;
    t[len] = static_cast<std::uint32_t>(sum);
    t[len + 1] = static_cast<std::uint32_t>(sum >> 32);

    // m = t[0] * n0_inv mod 2^32;  t += m * n;  t >>= 32.
    const std::uint64_t m =
        static_cast<std::uint32_t>(t[0] * n0_inv_);
    carry = 0;
    {
      const std::uint64_t s0 = m * n_[0] + t[0];
      carry = s0 >> 32;  // low 32 bits are zero by construction
    }
    for (std::size_t j = 1; j < len; ++j) {
      const std::uint64_t s = m * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(s);
      carry = s >> 32;
    }
    sum = static_cast<std::uint64_t>(t[len]) + carry;
    t[len - 1] = static_cast<std::uint32_t>(sum);
    t[len] = t[len + 1] + static_cast<std::uint32_t>(sum >> 32);
    t[len + 1] = 0;
  }
  // Conditional final subtraction: t in [0, 2n).
  t.resize(len + 1);
  bool ge = t[len] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = len; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < len; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(t[i]) -
                          static_cast<std::int64_t>(n_[i]) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      t[i] = static_cast<std::uint32_t>(diff);
    }
  }
  t.resize(len);
  return t;
}

std::vector<std::uint32_t> Montgomery::to_mont(const BigUInt& x) const {
  const BigUInt reduced = x % modulus_;
  const util::Bytes be = reduced.to_bytes_be();
  std::vector<std::uint32_t> limbs(n_.size(), 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::size_t byte_index = be.size() - 1 - i;
    limbs[i / 4] |= static_cast<std::uint32_t>(be[byte_index]) << (8 * (i % 4));
  }
  const util::Bytes r2_be = r2_.to_bytes_be();
  std::vector<std::uint32_t> r2_limbs(n_.size(), 0);
  for (std::size_t i = 0; i < r2_be.size(); ++i) {
    const std::size_t byte_index = r2_be.size() - 1 - i;
    r2_limbs[i / 4] |= static_cast<std::uint32_t>(r2_be[byte_index])
                       << (8 * (i % 4));
  }
  return mont_mul(limbs, r2_limbs);
}

BigUInt Montgomery::exp(const BigUInt& base, const BigUInt& exponent) const {
  const std::size_t len = n_.size();
  // one_mont = R mod n (Montgomery form of 1).
  std::vector<std::uint32_t> one(len, 0);
  one[0] = 1;
  std::vector<std::uint32_t> result = to_mont(BigUInt{1});
  const std::vector<std::uint32_t> base_mont = to_mont(base);

  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    result = mont_mul(result, result);
    if (exponent.bit(i)) result = mont_mul(result, base_mont);
  }
  // Convert out of Montgomery form: REDC(result * 1).
  result = mont_mul(result, one);

  util::Bytes be(4 * len);
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t b = 0; b < 4; ++b) {
      be[4 * len - 1 - (4 * i + b)] =
          static_cast<std::uint8_t>(result[i] >> (8 * b));
    }
  }
  return BigUInt::from_bytes_be(be);
}

}  // namespace tactic::crypto
