#pragma once
// AES-128 (FIPS 197) block cipher and CTR mode, implemented from scratch.
//
// The S-box is computed at first use from the multiplicative inverse in
// GF(2^8) followed by the standard affine transform, rather than embedded
// as a table; known-answer tests pin it to the FIPS 197 / SP 800-38A
// vectors.  Used by the provider apps for content encryption (the paper
// assumes provider-encrypted content whose key is delivered alongside the
// tag).

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace tactic::crypto {

/// AES-128 with a fixed 16-byte key.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Expands the key schedule; throws std::invalid_argument on wrong size.
  explicit Aes128(util::BytesView key);

  /// Encrypts exactly one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Decrypts exactly one 16-byte block in place.
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

 private:
  std::array<std::array<std::uint8_t, kBlockSize>, 11> round_keys_;
};

/// AES-128-CTR keystream cipher.  Encryption and decryption are the same
/// operation.  The 16-byte initial counter block is `nonce (8 bytes) ||
/// big-endian 64-bit block counter starting at 0`.
util::Bytes aes128_ctr(util::BytesView key, std::uint64_t nonce,
                       util::BytesView data);

}  // namespace tactic::crypto
