#pragma once
// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

#include "util/bytes.hpp"

namespace tactic::crypto {

/// Computes HMAC-SHA-256 of `data` under `key`.  Keys longer than the
/// SHA-256 block size are hashed first, per the RFC.
util::Bytes hmac_sha256(util::BytesView key, util::BytesView data);
util::Bytes hmac_sha256(util::BytesView key, std::string_view data);

/// Verifies a MAC in constant time.
bool hmac_sha256_verify(util::BytesView key, util::BytesView data,
                        util::BytesView mac);

}  // namespace tactic::crypto
