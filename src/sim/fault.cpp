// FaultPlan resolution: turns the declarative plan into installed link
// fault models, a corruption probe on every forwarder, and scheduled
// crash/restart and flap events.  Lives in its own TU so the fault layer
// can reach the wire codec (the corruption probe feeds flipped bytes to
// the real decoders) without scenario.cpp depending on it.

#include <algorithm>

#include "sim/fault.hpp"
#include "sim/scenario.hpp"
#include "tactic/wire.hpp"

namespace tactic::sim {

namespace {

/// Effective long-run loss fraction of one link class: i.i.d. loss plus
/// corruption plus the Gilbert–Elliott stationary bad-state fraction
/// times its loss rate.
double effective_loss(const net::LinkFaultParams& f) {
  double burst_frac = 0.0;
  if (f.p_enter_burst > 0.0) {
    const double exit = f.p_exit_burst > 0.0 ? f.p_exit_burst : 1e-9;
    burst_frac = f.p_enter_burst / (f.p_enter_burst + exit);
  }
  return f.loss + f.corruption + burst_frac * f.burst_loss;
}

/// The corruption probe: re-encode the packet that would have been
/// delivered, flip 1-8 deterministically chosen bits, and push the
/// mangled bytes through the real decoders — the PR-1 wire-fuzz contract
/// (reject cleanly, or re-encode without crashing), now exercised on
/// live traffic whenever corruption faults are on.  The frame itself is
/// always dropped by the caller, modeling L2 CRC detection.
void corruption_probe(const ndn::PacketVariant& packet, std::uint64_t seed) {
  // Reusable scratch: the probe runs per corrupted frame, and the packet
  // itself is shared/immutable — the flips happen on this copy of the
  // real wire bytes, never on the packet other nodes still hold.
  static thread_local util::Bytes bytes;
  wire::encode_into(bytes, packet);
  if (bytes.empty()) return;
  std::uint64_t state = seed;
  const std::size_t flips =
      1 + static_cast<std::size_t>(util::splitmix64(state) % 8);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::uint64_t r = util::splitmix64(state);
    bytes[(r >> 3) % bytes.size()] ^=
        static_cast<std::uint8_t>(1u << (r & 7));
  }
  if (const auto decoded = wire::decode(bytes)) {
    (void)wire::encode(*decoded);
  }
}

}  // namespace

bool FaultPlan::severe(event::Time duration) const {
  if (duration <= 0) return false;
  if (effective_loss(edge_links) > 0.25) return true;
  if (effective_loss(core_links) > 0.25) return true;
  // Scripted outage time (summed naively; overlapping outages count
  // twice, erring toward "severe" — this budgets liveness, never
  // security).
  event::Time outage = 0;
  for (const CrashEvent& crash : crashes) {
    if (crash.at >= duration) continue;
    const event::Time end =
        crash.down_for == 0
            ? duration
            : std::min(duration, crash.at + crash.down_for);
    outage += end - crash.at;
  }
  for (const LinkFlap& flap : flaps) {
    if (flap.down_at >= duration) continue;
    const event::Time end =
        flap.up_at == 0 ? duration : std::min(duration, flap.up_at);
    if (end > flap.down_at) outage += end - flap.down_at;
  }
  return outage * 4 > duration;
}

void Scenario::install_faults() {
  const FaultPlan& plan = config_.faults;
  if (!plan.any()) return;  // empty plan: bit-identical to no fault layer

  // Dedicated RNG root, derived from (scenario seed, fault seed) but
  // independent of rng_ — installing faults must not perturb topology,
  // workload, or crypto draws.
  std::uint64_t mix = config_.seed;
  util::splitmix64(mix);
  mix ^= plan.fault_seed;
  util::Rng fault_root(util::splitmix64(mix));

  network_->install_link_faults(plan.edge_links, /*wireless=*/true,
                                fault_root);
  network_->install_link_faults(plan.core_links, /*wireless=*/false,
                                fault_root);

  if (plan.clock_skew.any()) {
    // Clock skew draws from its own root (distinct constant mixed into
    // the derivation), so a plan that adds skew to an existing fault mix
    // replays the link/crash draws unchanged.
    std::uint64_t skew_mix = config_.seed;
    util::splitmix64(skew_mix);
    skew_mix ^= plan.fault_seed ^ 0xC10C5E3DULL;
    util::Rng skew_root(util::splitmix64(skew_mix));
    const auto symmetric = [&skew_root](double magnitude) {
      return magnitude * (2.0 * skew_root.uniform_double() - 1.0);
    };
    for (net::NodeId id = 0; id < network_->node_count(); ++id) {
      ndn::LocalClock clock;
      clock.offset = static_cast<event::Time>(symmetric(
          static_cast<double>(plan.clock_skew.max_offset)));
      clock.drift = symmetric(plan.clock_skew.max_drift);
      network_->node(id).set_clock(clock);
    }
  }

  if (plan.edge_links.corruption > 0.0 || plan.core_links.corruption > 0.0) {
    for (net::NodeId id = 0; id < network_->node_count(); ++id) {
      network_->node(id).set_corruption_probe(corruption_probe);
    }
  }

  for (const CrashEvent& crash : plan.crashes) {
    const auto& pool = crash.target == CrashEvent::Target::kEdgeRouter
                           ? network_->edge_routers()
                           : network_->core_routers();
    if (pool.empty()) continue;
    const net::NodeId id = pool[crash.index % pool.size()];
    // A crash touches only the node itself, so it stays an ordinary event
    // on the node's own (partition) scheduler.  Scheduled at construction,
    // it keeps the lowest FIFO sequence at its instant on either engine.
    scheduler_for(id).schedule_at(crash.at,
                                  [this, id] { network_->node(id).crash(); });
    if (crash.down_for > 0) {
      scheduler_for(id).schedule_at(crash.at + crash.down_for, [this, id] {
        network_->node(id).restart();
      });
    }
  }

  for (const LinkFlap& flap : plan.flaps) {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    if (flap.where == LinkFlap::Where::kClientAccess) {
      const auto& pool = network_->clients();
      if (pool.empty()) continue;
      a = pool[flap.index % pool.size()];
      b = network_->edge_router_of(a);
    } else {
      const auto& pool = network_->edge_routers();
      if (pool.empty()) continue;
      a = pool[flap.index % pool.size()];
      // First backbone adjacency: skip attached wireless users.
      for (const net::NodeId nbr : network_->neighbors_of(a)) {
        if (net::is_router(network_->node(nbr).info().kind)) {
          b = nbr;
          break;
        }
      }
      if (b == net::kInvalidNode) continue;  // isolated edge router
    }
    const bool reconverge = flap.reconverge;
    // A flap touches both directions' links and (with reconvergence)
    // every node's FIB — a global event: a plain event sequentially, a
    // parked-workers handler on the parallel engine.  Both engines run it
    // before any same-instant traffic event (lowest FIFO sequence there,
    // boundary-before-phase here).
    schedule_global_at(flap.down_at, [this, a, b, reconverge] {
      set_adjacency_up(a, b, false, reconverge);
    });
    if (flap.up_at > flap.down_at) {
      schedule_global_at(flap.up_at, [this, a, b, reconverge] {
        set_adjacency_up(a, b, true, reconverge);
      });
    }
  }
}

}  // namespace tactic::sim
