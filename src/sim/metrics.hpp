#pragma once
// Experiment metrics, matching the paper's evaluation criteria
// (Section 8.A): user-based — content retrieval latency, request
// satisfaction ratio, tag statistics — and network-based — BF/signature
// operation counts and BF reset behaviour, split by router role.

#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "util/timeseries.hpp"

namespace tactic::sim {

/// Aggregated TACTIC operation counts for one router class (Fig. 7).
struct RouterOps {
  std::uint64_t bf_lookups = 0;
  std::uint64_t bf_insertions = 0;
  std::uint64_t sig_verifications = 0;
  std::uint64_t bf_resets = 0;
  /// Total simulated compute time charged for the above (seconds), and
  /// its per-stage breakdown (compute_bf_s + compute_sig_s +
  /// compute_neg_s == compute_charged_s; queue wait is
  /// `validation_wait_s` below).
  double compute_charged_s = 0.0;
  double compute_bf_s = 0.0;   // BF lookups and insertions
  double compute_sig_s = 0.0;  // signature verifications
  double compute_neg_s = 0.0;  // negative-tag cache probes
  // Overload-resilience layer (docs/OVERLOAD.md; zero while disabled).
  std::uint64_t neg_cache_hits = 0;
  std::uint64_t neg_cache_insertions = 0;
  std::uint64_t sheds_queue_full = 0;
  std::uint64_t sheds_unvouched = 0;
  std::uint64_t policer_sheds = 0;
  std::uint64_t staged_resets = 0;
  std::uint64_t draining_hits = 0;
  /// Time validation jobs spent queued behind earlier work (seconds).
  double validation_wait_s = 0.0;
  // Batched-validation layer (docs/ARCHITECTURE.md, "Batched stages";
  // zero while disabled).
  std::uint64_t sig_batches_flushed = 0;
  std::uint64_t sig_batched_items = 0;
  std::uint64_t sig_batch_flush_size_cap = 0;
  std::uint64_t sig_batch_flush_deadline = 0;
  std::uint64_t sig_batch_flush_queue_drain = 0;
  std::uint64_t sig_batches_dropped = 0;
  /// Largest pending-batch occupancy observed (max across routers).
  std::uint64_t sig_batch_peak = 0;
  /// What the flushed batches would have charged verified one by one
  /// (seconds); amortization ratio = this / the batched share of
  /// compute_sig_s.
  double sig_batch_unbatched_equiv_s = 0.0;
  std::uint64_t bf_probes_coalesced = 0;
  /// Validation jobs stolen from a busy home lane by an idle one (zero
  /// with a single lane; docs/ARCHITECTURE.md "Concurrency model").
  /// Never fingerprinted.
  std::uint64_t lane_steals = 0;
  // Adaptive overload control (docs/OVERLOAD.md, "Adaptive control &
  // face quarantine"; zero while disabled).
  std::uint64_t adaptive_windows = 0;
  std::uint64_t adaptive_minrtt_probes = 0;
  std::uint64_t quarantine_sheds = 0;
  std::uint64_t quarantine_ejections = 0;
  std::uint64_t quarantine_probes = 0;
  std::uint64_t quarantine_readmissions = 0;
  /// End-of-run gradient and concurrency limit (max across routers).
  double adaptive_gradient = 0.0;
  std::uint64_t adaptive_limit = 0;
  // Tag-lifecycle layer (docs/FAULTS.md, "Clock skew & tag lifecycle";
  // zero while skew tolerance, grace mode, and the clock-skew fault
  // model are all disabled).
  std::uint64_t skew_soft_accepts = 0;
  std::uint64_t skew_false_rejects = 0;
  std::uint64_t skew_false_accepts = 0;
  std::uint64_t grace_accepts = 0;
  std::uint64_t grace_engagements = 0;
  /// Streaming quantile sketch of per-op validation queue wait
  /// (seconds; empty while the overload layer is off).  Merged
  /// bucket-wise across routers, so class-level quantiles are exact
  /// over the union of samples.  Never fingerprinted.
  util::QuantileHistogram validation_wait_hist;
  // Name-table work (FIB trie / PIT slab / CS index; see
  // docs/ARCHITECTURE.md "Name interning and table structures").  Used by
  // cost-regression tests and bench/scalability; never fingerprinted.
  std::uint64_t fib_lookups = 0;
  std::uint64_t fib_nodes_visited = 0;  // trie nodes touched by lookups
  std::uint64_t pit_lookups = 0;
  std::uint64_t pit_inserts = 0;
  std::uint64_t pit_expiry_polls = 0;  // lazy-heap records examined
  std::uint64_t cs_evictions = 0;

  // Packet-pool traffic (ndn::PacketPool; docs/ARCHITECTURE.md "Packet
  // memory model").  Never fingerprinted.
  std::uint64_t pool_acquires = 0;       // packets handed out
  std::uint64_t pool_reuses = 0;         // ... recycling a slot
  std::uint64_t pool_refills = 0;        // ... growing the slab
  std::uint64_t packet_cow_clones = 0;   // clone_for_edit on shared packets
  std::uint64_t packet_inplace_edits = 0;  // edit() on uniquely-held ones

  /// Validation-wait quantiles (seconds) from the merged sketch.
  double validation_wait_p50_s() const {
    return validation_wait_hist.quantile(0.50);
  }
  double validation_wait_p95_s() const {
    return validation_wait_hist.quantile(0.95);
  }
  double validation_wait_p99_s() const {
    return validation_wait_hist.quantile(0.99);
  }

  /// Mean signature-batch occupancy at flush (1.0 = no amortization).
  double mean_batch_occupancy() const {
    return sig_batches_flushed == 0
               ? 0.0
               : static_cast<double>(sig_batched_items) /
                     static_cast<double>(sig_batches_flushed);
  }

  RouterOps& operator+=(const RouterOps& other);
};

/// Traffic totals for one user class (Table IV).
struct TrafficTotals {
  std::uint64_t requested = 0;
  std::uint64_t received = 0;
  std::uint64_t nacks = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t tags_requested = 0;
  std::uint64_t tags_received = 0;
  /// Retransmission bookkeeping (chaos layer; zero without faults).
  std::uint64_t retransmissions = 0;
  std::uint64_t chunks_abandoned = 0;
  std::uint64_t registration_retransmissions = 0;
  /// kRouterOverloaded NACKs seen (overload layer; zero while disabled).
  std::uint64_t overload_nacks = 0;
  /// Proactive renewal timers that fired (tag-lifecycle layer; zero
  /// while disabled).  Never fingerprinted.
  std::uint64_t proactive_renewals = 0;

  double delivery_ratio() const {
    return requested == 0
               ? 0.0
               : static_cast<double>(received) /
                     static_cast<double>(requested);
  }
  TrafficTotals& operator+=(const TrafficTotals& other);
};

/// Everything one scenario run produces.
struct Metrics {
  // Per-second series (Figs. 5 and 6).
  util::TimeSeries latency{1.0};       // client retrieval latency (seconds)
  util::TimeSeries tag_requests{1.0};  // Q events
  util::TimeSeries tag_receives{1.0};  // R events
  /// Recovery latency: first-attempt-to-delivery time of chunks that
  /// needed at least one retransmission (empty without faults).
  util::TimeSeries recovery_latency{1.0};

  TrafficTotals clients;
  TrafficTotals attackers;

  RouterOps edge_ops;
  RouterOps core_ops;

  /// Completed inter-reset request counts (Fig. 8), by router class.
  std::vector<std::uint64_t> edge_requests_per_reset;
  std::vector<std::uint64_t> core_requests_per_reset;

  /// Provider-side burden (Table II).
  std::uint64_t provider_sig_verifications = 0;
  std::uint64_t provider_tags_issued = 0;
  std::uint64_t provider_content_served = 0;

  /// Network totals.  `link_frames_dropped` stays the combined refusal
  /// count (queue overflow + link down) for pre-split consumers; the
  /// split and the fault-model fates follow.
  std::uint64_t link_bytes_sent = 0;
  std::uint64_t link_frames_dropped = 0;
  std::uint64_t link_dropped_queue_full = 0;
  std::uint64_t link_refused_link_down = 0;
  std::uint64_t link_frames_lost = 0;
  std::uint64_t link_frames_corrupted = 0;
  std::uint64_t cs_hits = 0;
  std::uint64_t cs_misses = 0;
  /// PIT entries LRU-evicted under a bounded PIT (zero when unbounded).
  std::uint64_t pit_evictions = 0;

  /// Fault-injection totals over every node (zero without faults).
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t packets_dropped_while_down = 0;
  std::uint64_t corrupt_frames_rejected = 0;

  double mean_latency() const { return latency.overall_mean(); }
  double cache_hit_ratio() const {
    const std::uint64_t total = cs_hits + cs_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cs_hits) /
                            static_cast<double>(total);
  }

  /// Mean over the per-reset request counts; 0 when no resets completed.
  static double mean_requests_per_reset(
      const std::vector<std::uint64_t>& samples);
};

/// Element-wise accumulation across seeds (divide by run count for means).
struct MetricsAccumulator {
  void add(const Metrics& metrics);

  std::size_t runs = 0;
  util::RunningStats mean_latency;
  util::RunningStats client_delivery;
  util::RunningStats attacker_delivery;
  util::RunningStats client_requested, client_received;
  util::RunningStats attacker_requested, attacker_received;
  util::RunningStats tag_request_rate, tag_receive_rate;  // per second
  util::RunningStats edge_lookups, edge_inserts, edge_verifies, edge_resets;
  util::RunningStats core_lookups, core_inserts, core_verifies, core_resets;
  /// Per-stage compute breakdown (seconds per run; see RouterOps).
  util::RunningStats edge_compute_bf, edge_compute_sig, edge_compute_neg;
  util::RunningStats core_compute_bf, core_compute_sig, core_compute_neg;
  /// Batched validation (zero while disabled; see RouterOps).
  util::RunningStats edge_batches, edge_batched_items, edge_batch_equiv_s;
  util::RunningStats core_batches, core_batched_items, core_batch_equiv_s;
  /// Validation-wait quantiles and adaptive overload control (zero while
  /// the overload / adaptive layers are disabled; see RouterOps).
  util::RunningStats edge_wait_p50, edge_wait_p95, edge_wait_p99;
  util::RunningStats core_wait_p50, core_wait_p95, core_wait_p99;
  util::RunningStats adaptive_gradient, adaptive_limit,
      quarantine_ejections;
  /// Tag-lifecycle layer (zero while disabled; see RouterOps).
  util::RunningStats edge_skew_false_rejects, edge_skew_false_accepts,
      edge_skew_soft_accepts, edge_grace_accepts;
  util::RunningStats core_skew_false_rejects, core_skew_false_accepts;
  /// Packet-pool traffic, edge + core combined (see RouterOps; the
  /// copy-elimination figure in EXPERIMENTS.md "Fig. 7").
  util::RunningStats pool_acquires, pool_reuses;
  util::RunningStats packet_cow_clones, packet_inplace_edits;
  util::RunningStats edge_reqs_per_reset, core_reqs_per_reset;
  util::RunningStats provider_verifies;
  util::RunningStats cache_hit_ratio;
  util::RunningStats attacker_nacks, attacker_timeouts;
};

}  // namespace tactic::sim
