#include "sim/trace.hpp"

namespace tactic::sim {

PacketTrace::PacketTrace(const std::string& path) : csv_(path) {
  csv_.row({"time_s", "node", "kind", "dir", "face", "packet", "name",
            "wire_bytes", "has_tag", "flag_f", "nack"});
}

void PacketTrace::attach(ndn::Forwarder& node) {
  node.set_tracer([this](const ndn::Forwarder& fwd,
                         const ndn::PacketVariant& packet, ndn::FaceId face,
                         bool is_rx) { record(fwd, packet, face, is_rx); });
}

void PacketTrace::attach(topology::Network& network) {
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    attach(network.node(id));
  }
}

void PacketTrace::record(const ndn::Forwarder& node,
                         const ndn::PacketVariant& packet, ndn::FaceId face,
                         bool is_rx) {
  const char* type = "?";
  const ndn::Name* name = nullptr;
  bool has_tag = false;
  double flag_f = 0.0;
  const char* nack = "";
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        name = &p->name;
        if constexpr (std::is_same_v<T, ndn::InterestPtr>) {
          type = "interest";
          has_tag = p->tag != nullptr;
          flag_f = p->flag_f;
        } else if constexpr (std::is_same_v<T, ndn::DataPtr>) {
          type = p->is_registration_response ? "reg-response" : "data";
          has_tag = p->tag != nullptr;
          flag_f = p->flag_f;
          if (p->nack_attached) nack = ndn::to_string(p->nack_reason);
        } else {
          type = "nack";
          nack = ndn::to_string(p->reason);
        }
      },
      packet);

  if (filter_ && !filter_->is_prefix_of(*name)) return;

  csv_.row({util::CsvWriter::num(
                event::to_seconds(node.scheduler().now())),
            node.info().label, net::to_string(node.info().kind),
            is_rx ? "rx" : "tx", std::to_string(face), type,
            name->to_uri(),
            util::CsvWriter::num(
                static_cast<std::uint64_t>(ndn::wire_size(packet))),
            has_tag ? "1" : "0", util::CsvWriter::num(flag_f),
            std::string(nack)});
  ++rows_;
}

}  // namespace tactic::sim
