#pragma once
// Packet tracing: a CSV sink for the Forwarder's trace hook — the
// observability companion to ndnSIM's packet traces.  One row per packet
// event: time, node, direction, packet type, name, wire size, and the
// TACTIC flags (tag presence, F, NACK marks).
//
//   sim::PacketTrace trace("run.csv");
//   trace.attach(scenario.network());          // every node
//   // or trace.attach(scenario.network().node(id));  // one node
//   scenario.run();
//
// The filter (optional) limits rows to packets whose name matches a
// prefix — tracing a full Topo-4 run unfiltered produces millions of
// rows.

#include <optional>
#include <string>

#include "ndn/forwarder.hpp"
#include "topology/network.hpp"
#include "util/csv.hpp"

namespace tactic::sim {

class PacketTrace {
 public:
  /// Opens `path` and writes the header row.
  explicit PacketTrace(const std::string& path);

  /// Restricts tracing to names under `prefix`.
  void set_name_filter(ndn::Name prefix) { filter_ = std::move(prefix); }

  /// Attaches the trace to one node / every node of a network.  The trace
  /// object must outlive the simulation run.
  void attach(ndn::Forwarder& node);
  void attach(topology::Network& network);

  std::uint64_t rows_written() const { return rows_; }

 private:
  void record(const ndn::Forwarder& node, const ndn::PacketVariant& packet,
              ndn::FaceId face, bool is_rx);

  util::CsvWriter csv_;
  std::optional<ndn::Name> filter_;
  std::uint64_t rows_ = 0;
};

}  // namespace tactic::sim
