#pragma once
// Scenario: one fully-wired simulation run.
//
// Builds the topology, installs the chosen access-control policy on every
// router, creates providers / clients / attackers, wires metric hooks,
// runs the event loop for the configured duration, and harvests Metrics.
// All randomness derives from one seed, so runs are bit-reproducible.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/baselines.hpp"
#include "event/parallel.hpp"
#include "event/scheduler.hpp"
#include "ndn/fib.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "tactic/compute_model.hpp"
#include "tactic/tactic_policy.hpp"
#include "topology/network.hpp"
#include "workload/attacker_app.hpp"
#include "workload/client_app.hpp"
#include "workload/provider_app.hpp"

namespace tactic::sim {

/// Which access-control mechanism runs on the routers (and how the
/// provider behaves).  See baselines/baselines.hpp for the mapping to the
/// literature.
enum class PolicyKind {
  kTactic,          // the paper's mechanism
  kNoAccessControl, // plain NDN; everyone gets everything
  kClientSideAc,    // client-end enforcement (encrypted content for all)
  kPerRequestAuth,  // always-online provider authentication, no cache reuse
  kProbBf,          // per-hop client-signature verification + router BF
};

const char* to_string(PolicyKind kind);

struct ScenarioConfig {
  topology::TopologyParams topology;  // e.g. topology::paper_topology(1)
  PolicyKind policy = PolicyKind::kTactic;
  core::TacticConfig tactic;          // Bloom sizing, AP/flag/precheck toggles
  workload::ProviderConfig provider;  // catalog, tag validity, key bits
  workload::ClientConfig client;
  workload::AttackerConfig attacker;
  /// Threat mix, assigned to attackers round-robin.  Default: the threats
  /// the paper's simulations exercise (access-path-dependent sharing is
  /// exercised by the AP ablation instead).
  std::vector<workload::AttackerMode> attacker_mix = {
      workload::AttackerMode::kNoTag,
      workload::AttackerMode::kForgedTag,
      workload::AttackerMode::kExpiredTag,
      workload::AttackerMode::kInsufficientAccessLevel,
      workload::AttackerMode::kWrongProvider,
  };
  core::ComputeModel compute = core::ComputeModel::paper_defaults();
  event::Time duration = 200 * event::kSecond;
  std::uint64_t seed = 1;

  /// Bounded router PIT: at capacity, the least-recently-used entry is
  /// evicted to admit a new Interest (counted in `pit_evictions`).  0
  /// keeps the PIT unbounded (the pre-overload-layer behaviour).
  std::size_t router_pit_capacity = 0;

  /// Lookup structure backing every node's FIB.  kLinear selects the
  /// retained reference implementation — metrics, verdicts, and traces
  /// must not change (the differential gate `fuzz_scenarios --bigtables`
  /// runs both and compares fingerprints).
  ndn::Fib::Impl fib_impl = ndn::Fib::Impl::kLcTrie;

  /// Installs this many random junk prefixes (first component "xfib…",
  /// never matching workload names) into every edge/core router FIB
  /// before the run — the bigtables mode exercising table behaviour at
  /// 10^4–10^6 entries.  Draws from a dedicated RNG stream, so enabling
  /// it does not perturb the workload's randomness.
  std::size_t prepopulate_fib_prefixes = 0;

  /// Fault injection (chaos layer).  The default (empty) plan leaves the
  /// run bit-identical to a faultless build; see docs/FAULTS.md.
  FaultPlan faults;

  /// Worker threads for the event loop.  1 (the default) runs the plain
  /// sequential engine — bit-identical to every prior build.  >1 splits
  /// the network into that many partitions driven by an
  /// event::ParallelScheduler; the determinism contract (identical
  /// fingerprints and verdicts at any thread count) is gated by
  /// ci/parity.sh and tests/parallel_test.cpp.  Incompatible with
  /// traitor tracing and mid-run mobility (both throw).
  std::size_t threads = 1;

  /// Traitor tracing (our implementation of the paper's future work):
  /// edge routers report access-path mismatches to a tracer that revokes
  /// flagged clients at every provider.  Requires enforce_access_path.
  bool enable_traitor_tracing = false;
  core::TraitorTracer::Config traitor_tracing;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the event loop until `duration` and harvests metrics.
  const Metrics& run();

  /// Harvested after run() (or mid-run from examples).
  Metrics harvest();

  /// Stops every client and attacker from issuing new requests
  /// (outstanding ones expire naturally).
  void stop_workloads();

  /// Stops the workloads and keeps running the event loop for `grace`
  /// more simulated time so in-flight packets land and PIT entries
  /// expire.  After a drain, every router PIT should be empty — the
  /// invariant the testing harness asserts.  Returns the new now().
  event::Time drain(event::Time grace = 30 * event::kSecond);

  /// Wireless mobility: moves a user (client or attacker) behind another
  /// access point.  Per the paper, "a mobile client needs to request a
  /// new tag every time she moves to a new location": with access-path
  /// enforcement on, the first request from the new location is NACKed
  /// and the client re-registers automatically.  Schedule mid-run via
  /// scheduler().schedule(...).  Throws under threads > 1 (a new wireless
  /// association would wire a link across partitions mid-run).
  void move_user(net::NodeId user, std::size_t new_ap_index);

  /// The traitor tracer (null unless enable_traitor_tracing).
  core::TraitorTracer* traitor_tracer() { return tracer_.get(); }

  /// Fails (or restores) the a<->b adjacency.  With `reconverge`, routes
  /// to every provider are recomputed immediately (routing-protocol
  /// reconvergence); without it, forwarders rely purely on equal-cost
  /// failover.  Schedule mid-run via scheduler().schedule(...).
  void set_adjacency_up(net::NodeId a, net::NodeId b, bool up,
                        bool reconverge = true);

  /// Recomputes routes to every provider over the live adjacencies (one
  /// routing-protocol reconvergence pass).
  void reconverge();

  /// Eager revocation (extension): refuses future tags for the client at
  /// every provider AND blacklists its outstanding tags network-wide —
  /// the per-revocation push model of the alternatives in Table II.
  /// Access dies immediately, at the cost of one message per router per
  /// revocation (accounted in anchors().revocations.push_messages).
  void revoke_client_eagerly(const std::string& client_key_locator);

  /// Simulated time, whichever engine runs the clock: the sequential
  /// scheduler's now(), or the parallel engine's epoch base time.
  event::Time now() const {
    return parallel_ ? parallel_->now() : scheduler_.now();
  }

  /// Schedules `fn` at now() + delay as a *global* event: a plain event
  /// on the sequential engine; on the parallel engine a driver-thread
  /// handler with every worker parked, free to touch any partition
  /// (reconvergence, the invariant sampler).  Call from the driving
  /// thread only (setup, or inside another global handler).
  void schedule_global(event::Time delay, std::function<void()> fn) {
    schedule_global_at(now() + delay, std::move(fn));
  }
  void schedule_global_at(event::Time when, std::function<void()> fn);

  /// The event scheduler a node's events run on: scheduler() when
  /// sequential, the node's partition when parallel.
  event::Scheduler& scheduler_for(net::NodeId id);

  /// Partition index of a node (always 0 when sequential).
  std::size_t partition_of(net::NodeId id) const {
    return parallel_ ? partition_of_[id] : 0;
  }

  /// The parallel engine, or nullptr when threads == 1 (bench/test
  /// introspection: epochs, barrier wait, posted events).
  event::ParallelScheduler* parallel() { return parallel_.get(); }

  // Introspection for tests and examples.
  event::Scheduler& scheduler() { return scheduler_; }
  topology::Network& network() { return *network_; }
  core::TrustAnchors& anchors() { return anchors_; }
  std::vector<std::unique_ptr<workload::ProviderApp>>& providers() {
    return providers_;
  }
  std::vector<std::unique_ptr<workload::ClientApp>>& clients() {
    return clients_;
  }
  std::vector<std::unique_ptr<workload::AttackerApp>>& attackers() {
    return attackers_;
  }
  const ScenarioConfig& config() const { return config_; }

 private:
  /// Splits the network into config_.threads partitions and rebinds every
  /// forwarder and link onto its partition's scheduler (no-op at 1).
  /// Runs before any app exists, because apps schedule at construction.
  void setup_partitions();
  void install_policies();
  void build_providers();
  void build_clients();
  void build_attackers();
  /// Resolves config_.faults against the built network: installs link
  /// fault models and the corruption probe, schedules crashes and flaps.
  /// No-op for an empty plan.  Implemented in fault.cpp.
  void install_faults();
  /// Applies config_.prepopulate_fib_prefixes (no-op at 0).
  void prepopulate_fib();
  workload::AttackerApp::TagStrategy make_strategy(
      workload::AttackerMode mode, std::size_t attacker_index,
      net::NodeId node_id);

  /// Per-client metric samples.  Hooks always buffer here (under
  /// threads > 1 each client's hooks fire on its own partition's thread,
  /// so the shared TimeSeries cannot be written directly) and harvest()
  /// folds the buffers canonically — sorted by (when, client index,
  /// per-client order).  Both engines share the fold, making that order
  /// the *defined* accumulation order: every floating-point bucket sum
  /// is bit-identical at any thread count, including same-nanosecond
  /// cross-client ties.
  struct ClientSamples {
    std::vector<std::pair<event::Time, double>> latency;
    std::vector<std::pair<event::Time, double>> recovery;
    std::vector<event::Time> tag_requests;
    std::vector<event::Time> tag_receives;
  };

  ScenarioConfig config_;
  event::Scheduler scheduler_;
  std::unique_ptr<event::ParallelScheduler> parallel_;
  std::vector<std::size_t> partition_of_;  // by NodeId; empty when sequential
  std::vector<ClientSamples> client_samples_;
  util::Rng rng_;
  core::TrustAnchors anchors_;
  std::unique_ptr<topology::Network> network_;
  std::vector<std::unique_ptr<workload::ProviderApp>> providers_;
  std::vector<workload::ProviderApp*> provider_ptrs_;
  std::vector<std::unique_ptr<workload::ClientApp>> clients_;
  std::vector<std::unique_ptr<workload::AttackerApp>> attackers_;
  std::shared_ptr<const crypto::RsaPrivateKey> forger_key_;
  std::shared_ptr<baselines::ProbBfPolicy::Shared> prob_bf_shared_;
  std::unique_ptr<core::TraitorTracer> tracer_;
  Metrics metrics_;
  bool ran_ = false;
};

}  // namespace tactic::sim
