#include "sim/metrics.hpp"

namespace tactic::sim {

RouterOps& RouterOps::operator+=(const RouterOps& other) {
  bf_lookups += other.bf_lookups;
  bf_insertions += other.bf_insertions;
  sig_verifications += other.sig_verifications;
  bf_resets += other.bf_resets;
  compute_charged_s += other.compute_charged_s;
  compute_bf_s += other.compute_bf_s;
  compute_sig_s += other.compute_sig_s;
  compute_neg_s += other.compute_neg_s;
  neg_cache_hits += other.neg_cache_hits;
  neg_cache_insertions += other.neg_cache_insertions;
  sheds_queue_full += other.sheds_queue_full;
  sheds_unvouched += other.sheds_unvouched;
  policer_sheds += other.policer_sheds;
  staged_resets += other.staged_resets;
  draining_hits += other.draining_hits;
  validation_wait_s += other.validation_wait_s;
  sig_batches_flushed += other.sig_batches_flushed;
  sig_batched_items += other.sig_batched_items;
  sig_batch_flush_size_cap += other.sig_batch_flush_size_cap;
  sig_batch_flush_deadline += other.sig_batch_flush_deadline;
  sig_batch_flush_queue_drain += other.sig_batch_flush_queue_drain;
  sig_batches_dropped += other.sig_batches_dropped;
  if (other.sig_batch_peak > sig_batch_peak) {
    sig_batch_peak = other.sig_batch_peak;
  }
  sig_batch_unbatched_equiv_s += other.sig_batch_unbatched_equiv_s;
  bf_probes_coalesced += other.bf_probes_coalesced;
  lane_steals += other.lane_steals;
  adaptive_windows += other.adaptive_windows;
  adaptive_minrtt_probes += other.adaptive_minrtt_probes;
  quarantine_sheds += other.quarantine_sheds;
  quarantine_ejections += other.quarantine_ejections;
  quarantine_probes += other.quarantine_probes;
  quarantine_readmissions += other.quarantine_readmissions;
  if (other.adaptive_gradient > adaptive_gradient) {
    adaptive_gradient = other.adaptive_gradient;
  }
  if (other.adaptive_limit > adaptive_limit) {
    adaptive_limit = other.adaptive_limit;
  }
  skew_soft_accepts += other.skew_soft_accepts;
  skew_false_rejects += other.skew_false_rejects;
  skew_false_accepts += other.skew_false_accepts;
  grace_accepts += other.grace_accepts;
  grace_engagements += other.grace_engagements;
  validation_wait_hist.merge(other.validation_wait_hist);
  fib_lookups += other.fib_lookups;
  fib_nodes_visited += other.fib_nodes_visited;
  pit_lookups += other.pit_lookups;
  pit_inserts += other.pit_inserts;
  pit_expiry_polls += other.pit_expiry_polls;
  cs_evictions += other.cs_evictions;
  pool_acquires += other.pool_acquires;
  pool_reuses += other.pool_reuses;
  pool_refills += other.pool_refills;
  packet_cow_clones += other.packet_cow_clones;
  packet_inplace_edits += other.packet_inplace_edits;
  return *this;
}

TrafficTotals& TrafficTotals::operator+=(const TrafficTotals& other) {
  requested += other.requested;
  received += other.received;
  nacks += other.nacks;
  timeouts += other.timeouts;
  tags_requested += other.tags_requested;
  tags_received += other.tags_received;
  retransmissions += other.retransmissions;
  chunks_abandoned += other.chunks_abandoned;
  registration_retransmissions += other.registration_retransmissions;
  overload_nacks += other.overload_nacks;
  proactive_renewals += other.proactive_renewals;
  return *this;
}

double Metrics::mean_requests_per_reset(
    const std::vector<std::uint64_t>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint64_t s : samples) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples.size());
}

void MetricsAccumulator::add(const Metrics& metrics) {
  ++runs;
  mean_latency.add(metrics.mean_latency());
  client_delivery.add(metrics.clients.delivery_ratio());
  attacker_delivery.add(metrics.attackers.delivery_ratio());
  client_requested.add(static_cast<double>(metrics.clients.requested));
  client_received.add(static_cast<double>(metrics.clients.received));
  attacker_requested.add(static_cast<double>(metrics.attackers.requested));
  attacker_received.add(static_cast<double>(metrics.attackers.received));

  const double seconds =
      metrics.tag_requests.bucket_count() > 0
          ? static_cast<double>(metrics.tag_requests.bucket_count())
          : 1.0;
  tag_request_rate.add(
      static_cast<double>(metrics.clients.tags_requested) / seconds);
  tag_receive_rate.add(
      static_cast<double>(metrics.clients.tags_received) / seconds);

  edge_lookups.add(static_cast<double>(metrics.edge_ops.bf_lookups));
  edge_inserts.add(static_cast<double>(metrics.edge_ops.bf_insertions));
  edge_verifies.add(static_cast<double>(metrics.edge_ops.sig_verifications));
  edge_resets.add(static_cast<double>(metrics.edge_ops.bf_resets));
  core_lookups.add(static_cast<double>(metrics.core_ops.bf_lookups));
  core_inserts.add(static_cast<double>(metrics.core_ops.bf_insertions));
  core_verifies.add(static_cast<double>(metrics.core_ops.sig_verifications));
  core_resets.add(static_cast<double>(metrics.core_ops.bf_resets));
  edge_compute_bf.add(metrics.edge_ops.compute_bf_s);
  edge_compute_sig.add(metrics.edge_ops.compute_sig_s);
  edge_compute_neg.add(metrics.edge_ops.compute_neg_s);
  core_compute_bf.add(metrics.core_ops.compute_bf_s);
  core_compute_sig.add(metrics.core_ops.compute_sig_s);
  core_compute_neg.add(metrics.core_ops.compute_neg_s);
  edge_batches.add(static_cast<double>(metrics.edge_ops.sig_batches_flushed));
  edge_batched_items.add(
      static_cast<double>(metrics.edge_ops.sig_batched_items));
  edge_batch_equiv_s.add(metrics.edge_ops.sig_batch_unbatched_equiv_s);
  core_batches.add(static_cast<double>(metrics.core_ops.sig_batches_flushed));
  core_batched_items.add(
      static_cast<double>(metrics.core_ops.sig_batched_items));
  core_batch_equiv_s.add(metrics.core_ops.sig_batch_unbatched_equiv_s);
  edge_wait_p50.add(metrics.edge_ops.validation_wait_p50_s());
  edge_wait_p95.add(metrics.edge_ops.validation_wait_p95_s());
  edge_wait_p99.add(metrics.edge_ops.validation_wait_p99_s());
  core_wait_p50.add(metrics.core_ops.validation_wait_p50_s());
  core_wait_p95.add(metrics.core_ops.validation_wait_p95_s());
  core_wait_p99.add(metrics.core_ops.validation_wait_p99_s());
  adaptive_gradient.add(
      metrics.edge_ops.adaptive_gradient > metrics.core_ops.adaptive_gradient
          ? metrics.edge_ops.adaptive_gradient
          : metrics.core_ops.adaptive_gradient);
  adaptive_limit.add(static_cast<double>(
      metrics.edge_ops.adaptive_limit > metrics.core_ops.adaptive_limit
          ? metrics.edge_ops.adaptive_limit
          : metrics.core_ops.adaptive_limit));
  quarantine_ejections.add(
      static_cast<double>(metrics.edge_ops.quarantine_ejections +
                          metrics.core_ops.quarantine_ejections));
  edge_skew_false_rejects.add(
      static_cast<double>(metrics.edge_ops.skew_false_rejects));
  edge_skew_false_accepts.add(
      static_cast<double>(metrics.edge_ops.skew_false_accepts));
  edge_skew_soft_accepts.add(
      static_cast<double>(metrics.edge_ops.skew_soft_accepts));
  edge_grace_accepts.add(
      static_cast<double>(metrics.edge_ops.grace_accepts));
  core_skew_false_rejects.add(
      static_cast<double>(metrics.core_ops.skew_false_rejects));
  core_skew_false_accepts.add(
      static_cast<double>(metrics.core_ops.skew_false_accepts));
  pool_acquires.add(static_cast<double>(metrics.edge_ops.pool_acquires +
                                        metrics.core_ops.pool_acquires));
  pool_reuses.add(static_cast<double>(metrics.edge_ops.pool_reuses +
                                      metrics.core_ops.pool_reuses));
  packet_cow_clones.add(
      static_cast<double>(metrics.edge_ops.packet_cow_clones +
                          metrics.core_ops.packet_cow_clones));
  packet_inplace_edits.add(
      static_cast<double>(metrics.edge_ops.packet_inplace_edits +
                          metrics.core_ops.packet_inplace_edits));
  edge_reqs_per_reset.add(
      Metrics::mean_requests_per_reset(metrics.edge_requests_per_reset));
  core_reqs_per_reset.add(
      Metrics::mean_requests_per_reset(metrics.core_requests_per_reset));
  provider_verifies.add(
      static_cast<double>(metrics.provider_sig_verifications));
  cache_hit_ratio.add(metrics.cache_hit_ratio());
  attacker_nacks.add(static_cast<double>(metrics.attackers.nacks));
  attacker_timeouts.add(static_cast<double>(metrics.attackers.timeouts));
}

}  // namespace tactic::sim
