#pragma once
// Declarative fault injection for scenarios.
//
// A FaultPlan describes, independently of any concrete topology, the
// chaos a scenario runs under: stochastic link faults by role (wireless
// access links vs. backbone), scripted router crash-restart events, and
// scripted link flaps.  sim::Scenario resolves the plan against the
// built network at construction time and schedules everything up front,
// so a run with a plan is exactly as deterministic as one without — the
// fault draws come from a dedicated RNG stream derived from the scenario
// seed and the plan's fault_seed, and a default-constructed (empty) plan
// leaves the simulation bit-identical to a build without faults.
//
// See docs/FAULTS.md for the full model and determinism guarantees.

#include <cstdint>
#include <vector>

#include "event/time.hpp"
#include "net/link.hpp"

namespace tactic::sim {

/// One scheduled crash-restart of a router.  The node loses PIT, CS, and
/// policy state (a TACTIC router's Bloom filter) — see Forwarder::crash.
struct CrashEvent {
  enum class Target { kEdgeRouter, kCoreRouter };
  Target target = Target::kEdgeRouter;
  /// Index into the role list (taken modulo the list size, so plans stay
  /// valid across topologies of any shape).
  std::size_t index = 0;
  event::Time at = 0;
  /// The node restarts at `at + down_for`; 0 keeps it down forever.
  event::Time down_for = event::kSecond;
};

/// One scripted down/up flap of an adjacency (both directions).
struct LinkFlap {
  enum class Where {
    kClientAccess,  // the index-th client's wireless access link
    kEdgeUplink,    // the index-th edge router's first backbone adjacency
  };
  Where where = Where::kClientAccess;
  std::size_t index = 0;  // modulo the role list size
  event::Time down_at = 0;
  event::Time up_at = 0;  // must be > down_at; 0 keeps it down forever
  /// Whether routing recomputes at each transition (reconvergence) or
  /// forwarders must survive on equal-cost failover alone.
  bool reconverge = false;
};

/// Clock-skew fault model: every node gets a deterministic local-clock
/// view of time — a fixed boot offset drawn uniformly from
/// [-max_offset, +max_offset] plus a linear drift rate drawn uniformly
/// from [-max_drift, +max_drift] (seconds gained per second of true
/// time).  Draws come from a dedicated RNG stream (independent of the
/// link/crash fault stream, so adding skew never re-rolls existing
/// fault draws) and are made in node-id order.  Skew changes only how a
/// node *interprets* timestamps (tag expiries, issuance stamps) — the
/// event scheduler always runs on true time.  See docs/FAULTS.md,
/// "Clock skew & tag lifecycle".
struct ClockSkewSpec {
  event::Time max_offset = 0;
  double max_drift = 0.0;

  bool any() const { return max_offset != 0 || max_drift != 0.0; }
};

/// The whole plan.  Empty (default) plan == no faults, bit-identically.
struct FaultPlan {
  /// Stochastic fault parameters for the wireless access links (every
  /// user<->edge-router link direction).
  net::LinkFaultParams edge_links;
  /// Same for backbone links (router<->router and provider<->core).
  net::LinkFaultParams core_links;
  std::vector<CrashEvent> crashes;
  std::vector<LinkFlap> flaps;
  /// Per-node local-clock skew (offset + drift); zero == perfect clocks.
  ClockSkewSpec clock_skew;
  /// Extra seed mixed with the scenario seed for the fault RNG stream;
  /// lets one scenario be replayed under many fault draws.
  std::uint64_t fault_seed = 1;

  bool any() const {
    return edge_links.any() || core_links.any() || !crashes.empty() ||
           !flaps.empty() || clock_skew.any();
  }

  /// Heuristic "this plan may starve delivery" classifier, used by the
  /// invariant checker to budget its liveness checks: sustained effective
  /// loss above ~25% on a link class, or scripted outages (crashes,
  /// flaps) covering more than a quarter of the run.  Security
  /// invariants are NEVER budgeted — only liveness is.
  bool severe(event::Time duration) const;
};

}  // namespace tactic::sim
