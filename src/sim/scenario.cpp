#include "sim/scenario.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "ndn/packet_pool.hpp"
#include "tactic/access_path.hpp"

namespace tactic::sim {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kTactic: return "TACTIC";
    case PolicyKind::kNoAccessControl: return "no-access-control";
    case PolicyKind::kClientSideAc: return "client-side-AC";
    case PolicyKind::kPerRequestAuth: return "per-request-auth";
    case PolicyKind::kProbBf: return "prob-bf";
  }
  return "?";
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  network_ = std::make_unique<topology::Network>(scheduler_,
                                                 config_.topology, rng_);
  // Select the FIB structure while every table is still empty (set_impl
  // refuses otherwise); routes are installed below.
  if (config_.fib_impl != ndn::Fib::Impl::kLcTrie) {
    for (std::size_t i = 0; i < network_->node_count(); ++i) {
      network_->node(static_cast<net::NodeId>(i))
          .fib()
          .set_impl(config_.fib_impl);
    }
  }
  // Partitioning must precede the apps: they schedule their first events
  // at construction, and those events belong on the partition schedulers.
  setup_partitions();
  client_samples_.resize(network_->clients().size());
  build_providers();
  install_policies();
  build_clients();
  build_attackers();
  install_faults();
  prepopulate_fib();
}

namespace {

// Forces every lazily-cached field of a cross-partition frame's payload
// while still on the sending thread, so the receiving partition only ever
// reads.  The kind mapping is ndn::Forwarder's (PacketVariant index).
void warm_frame_caches(const net::Frame& frame) {
  if (!frame.payload) return;
  switch (frame.kind) {
    case 0: {
      const auto* interest =
          static_cast<const ndn::Interest*>(frame.payload.get());
      interest->name.hash();
      interest->wire_size();
      break;
    }
    case 1: {
      const auto* data = static_cast<const ndn::Data*>(frame.payload.get());
      data->name.hash();
      data->wire_size();
      data->signed_portion();
      break;
    }
    default: {
      const auto* nack = static_cast<const ndn::Nack*>(frame.payload.get());
      nack->name.hash();
      nack->wire_size();
      break;
    }
  }
}

}  // namespace

void Scenario::setup_partitions() {
  if (config_.threads <= 1) return;
  if (config_.enable_traitor_tracing) {
    throw std::invalid_argument(
        "Scenario: traitor tracing needs a network-wide tracer and is "
        "not supported with threads > 1");
  }
  const std::size_t parts = config_.threads;
  parallel_ = std::make_unique<event::ParallelScheduler>(parts);
  partition_of_.assign(network_->node_count(), 0);

  // Routers spread round-robin; users live with their edge router and
  // providers with their gateway core router, so the only cross-partition
  // hops are backbone links — the widest lookahead the topology allows.
  std::size_t next = 0;
  for (const net::NodeId id : network_->core_routers()) {
    partition_of_[id] = next++ % parts;
  }
  for (const net::NodeId id : network_->edge_routers()) {
    partition_of_[id] = next++ % parts;
  }
  for (const net::NodeId id : network_->clients()) {
    partition_of_[id] = partition_of_[network_->edge_router_of(id)];
  }
  for (const net::NodeId id : network_->attackers()) {
    partition_of_[id] = partition_of_[network_->edge_router_of(id)];
  }
  for (const net::NodeId id : network_->providers()) {
    partition_of_[id] = partition_of_[network_->gateway_of(id)];
  }

  // Conservative lookahead: a frame sent during an epoch serializes for
  // >= 1 tick before propagating, so with L = min cross-partition
  // propagation delay + 1 it can only arrive at or past the next epoch
  // boundary.
  event::Time min_propagation = std::numeric_limits<event::Time>::max();
  for (std::size_t i = 0; i < network_->node_count(); ++i) {
    const net::NodeId from = static_cast<net::NodeId>(i);
    for (const net::NodeId to : network_->neighbors_of(from)) {
      if (partition_of_[from] == partition_of_[to]) continue;
      min_propagation = std::min(
          min_propagation,
          network_->directed_link(from, to).params().propagation_delay);
    }
  }
  if (min_propagation == std::numeric_limits<event::Time>::max()) {
    // Everything landed in one partition; any epoch length works.
    min_propagation = config_.duration;
  }
  parallel_->set_lookahead(min_propagation + 1);

  // Rebind every node and every link direction onto its partition (links
  // follow their *sending* node); cross-partition directions deliver
  // through the engine's inbox exchange, warming payload caches first.
  for (std::size_t i = 0; i < network_->node_count(); ++i) {
    const net::NodeId from = static_cast<net::NodeId>(i);
    network_->node(from).rebind_scheduler(
        &parallel_->partition(partition_of_[from]));
    for (const net::NodeId to : network_->neighbors_of(from)) {
      net::Link& link = network_->directed_link(from, to);
      link.rebind_scheduler(&parallel_->partition(partition_of_[from]));
      if (partition_of_[from] != partition_of_[to]) {
        const std::size_t from_part = partition_of_[from];
        const std::size_t to_part = partition_of_[to];
        link.set_remote_post([this, from_part, to_part](
                                 event::Time when,
                                 event::Scheduler::Handler receiver_call,
                                 const net::Frame* frame) {
          if (frame != nullptr) warm_frame_caches(*frame);
          parallel_->post(from_part, to_part, when,
                          std::move(receiver_call));
        });
      }
    }
  }

  // Packets acquired from one node's pool are released on the thread
  // that drops the last reference — possibly another partition's.
  ndn::PacketPool::set_concurrent(true);
}

void Scenario::schedule_global_at(event::Time when,
                                  std::function<void()> fn) {
  if (parallel_) {
    parallel_->schedule_global(when, std::move(fn));
  } else {
    scheduler_.schedule_at(when, std::move(fn));
  }
}

event::Scheduler& Scenario::scheduler_for(net::NodeId id) {
  if (!parallel_) return scheduler_;
  return parallel_->partition(partition_of_[id]);
}

void Scenario::prepopulate_fib() {
  if (config_.prepopulate_fib_prefixes == 0) return;
  // Dedicated stream: the workload's rng_ fork sequence must be identical
  // with and without prepopulation (parity).
  util::Rng rng(config_.seed ^ 0xB16FAB1E5ULL);
  std::vector<ndn::Name> prefixes;
  prefixes.reserve(config_.prepopulate_fib_prefixes);
  for (std::size_t i = 0; i < config_.prepopulate_fib_prefixes; ++i) {
    // First component "xfib<hex>": never a prefix of the workload's
    // /providerN/... names, so these entries are forwarding-invisible.
    char head[32];
    std::snprintf(head, sizeof(head), "xfib%016llx",
                  static_cast<unsigned long long>(rng()));
    ndn::Name name = ndn::Name().append(head);
    const std::uint64_t extra = rng.uniform(3);  // depth 1–3
    for (std::uint64_t d = 0; d < extra; ++d) {
      name = name.append_number(rng.uniform(1 << 20));
    }
    prefixes.push_back(std::move(name));
  }
  auto install = [&](net::NodeId id) {
    ndn::Fib& fib = network_->node(id).fib();
    for (const ndn::Name& prefix : prefixes) {
      // Face 0 always exists on a router (its first adjacency); the
      // enormous cost keeps the hop ordered behind any real route.
      fib.add_route(prefix, 0, 0xFFFFFF);
    }
  };
  for (const net::NodeId id : network_->edge_routers()) install(id);
  for (const net::NodeId id : network_->core_routers()) install(id);
}

void Scenario::build_providers() {
  workload::ProviderConfig provider_config = config_.provider;
  // Client-side enforcement and plain NDN serve everyone; the others
  // authenticate at the provider.
  if (config_.policy == PolicyKind::kClientSideAc ||
      config_.policy == PolicyKind::kNoAccessControl) {
    provider_config.enforce_access_control = false;
  }
  std::size_t index = 0;
  for (const net::NodeId id : network_->providers()) {
    providers_.push_back(std::make_unique<workload::ProviderApp>(
        network_->node(id), "/provider" + std::to_string(index),
        provider_config, anchors_, rng_.fork()));
    network_->install_routes(providers_.back()->prefix(), id);
    provider_ptrs_.push_back(providers_.back().get());
    ++index;
  }
}

void Scenario::install_policies() {
  if (config_.enable_traitor_tracing) {
    tracer_ = std::make_unique<core::TraitorTracer>(
        config_.traitor_tracing, [this](const std::string& locator) {
          for (auto& provider : providers_) {
            provider->issuer().revoke(locator);
          }
        });
  }

  if (config_.policy == PolicyKind::kProbBf) {
    prob_bf_shared_ = std::make_shared<baselines::ProbBfPolicy::Shared>();
    // Populated in build_clients(); the shared set is read lazily on the
    // first packet each router sees.
  }

  auto make_router_policy =
      [&](bool is_edge) -> std::unique_ptr<ndn::AccessControlPolicy> {
    switch (config_.policy) {
      case PolicyKind::kTactic:
        if (is_edge) {
          auto policy = std::make_unique<core::EdgeTacticPolicy>(
              config_.tactic, anchors_, config_.compute, rng_.fork());
          policy->set_traitor_tracer(tracer_.get());
          return policy;
        }
        return std::make_unique<core::CoreTacticPolicy>(
            config_.tactic, anchors_, config_.compute, rng_.fork());
      case PolicyKind::kNoAccessControl:
      case PolicyKind::kClientSideAc:
        return std::make_unique<ndn::NullPolicy>();
      case PolicyKind::kPerRequestAuth:
        return std::make_unique<baselines::PerRequestAuthPolicy>(anchors_);
      case PolicyKind::kProbBf:
        return std::make_unique<baselines::ProbBfPolicy>(
            prob_bf_shared_, config_.tactic.bloom, config_.compute,
            rng_.fork());
    }
    return std::make_unique<ndn::NullPolicy>();
  };

  for (const net::NodeId id : network_->edge_routers()) {
    network_->node(id).set_policy(make_router_policy(/*is_edge=*/true));
    network_->node(id).set_pit_capacity(config_.router_pit_capacity);
  }
  for (const net::NodeId id : network_->core_routers()) {
    network_->node(id).set_policy(make_router_policy(/*is_edge=*/false));
    network_->node(id).set_pit_capacity(config_.router_pit_capacity);
  }
}

void Scenario::build_clients() {
  // Clients are enrolled at every provider with an access level that
  // covers the whole catalog (base + 1 also covers high-AL objects).
  workload::ClientConfig client_config = config_.client;
  if (client_config.verify_content && client_config.verify_pki == nullptr) {
    client_config.verify_pki = &anchors_.pki;
  }
  for (const net::NodeId id : network_->clients()) {
    ndn::Forwarder& node = network_->node(id);
    // Default route: everything up the wireless link toward the edge
    // router; the node's egress policy stamps the AP's identity into the
    // rolling access path.
    node.fib().add_route(
        ndn::Name("/"),
        network_->face_between(id, network_->edge_router_of(id)));
    node.set_policy(
        std::make_unique<core::ApPolicy>(network_->ap_of(id).label));
    auto client = std::make_unique<workload::ClientApp>(
        node, provider_ptrs_, client_config, rng_.fork());
    const std::string locator =
        workload::ProviderApp::client_key_locator(client->label());
    for (auto& provider : providers_) {
      provider->issuer().enroll(
          locator, config_.provider.catalog.base_access_level + 1);
    }
    if (prob_bf_shared_) prob_bf_shared_->authorized.insert(locator);

    // Hooks fire on the client's partition thread (the sole thread at
    // threads=1); buffer per client — single writer each — and fold
    // canonically at harvest.  Both engines go through the same buffers
    // and the same (when, client, position) replay, so per-bucket
    // floating-point sums are bit-identical by construction at any
    // thread count: the canonical order IS the defined accumulation
    // order, not an incidental property of event seq numbers.
    ClientSamples& samples = client_samples_[clients_.size()];
    client->on_latency_sample = [&samples](event::Time when, double latency) {
      samples.latency.emplace_back(when, latency);
    };
    client->on_tag_request = [&samples](event::Time when) {
      samples.tag_requests.push_back(when);
    };
    client->on_tag_receive = [&samples](event::Time when) {
      samples.tag_receives.push_back(when);
    };
    client->on_recovery_sample = [&samples](event::Time when,
                                            double latency) {
      samples.recovery.emplace_back(when, latency);
    };
    client->start();
    clients_.push_back(std::move(client));
  }
}

workload::AttackerApp::TagStrategy Scenario::make_strategy(
    workload::AttackerMode mode, std::size_t attacker_index,
    net::NodeId node_id) {
  using workload::AttackerMode;
  const std::string label = network_->node(node_id).info().label;
  const std::string locator =
      workload::ProviderApp::client_key_locator(label);
  // Access path the attacker's own location would accumulate (so tags we
  // mint for it stay AP-consistent and only the intended check trips).
  const std::uint64_t own_ap =
      core::entity_id_hash(network_->ap_of(node_id).label);

  switch (mode) {
    case AttackerMode::kNoTag:
      return workload::attacker_strategies::no_tag();

    case AttackerMode::kForgedTag: {
      if (!forger_key_) {
        // One forger key shared by all forging attackers (keygen once).
        auto pair = crypto::generate_rsa_keypair(
            rng_, config_.provider.key_bits);
        forger_key_ = std::make_shared<const crypto::RsaPrivateKey>(
            pair.private_key);
      }
      return workload::attacker_strategies::forged(
          forger_key_, label, config_.provider.tag_validity);
    }

    case AttackerMode::kForgedTagChurn: {
      if (!forger_key_) {
        auto pair = crypto::generate_rsa_keypair(
            rng_, config_.provider.key_bits);
        forger_key_ = std::make_shared<const crypto::RsaPrivateKey>(
            pair.private_key);
      }
      return workload::attacker_strategies::forged_churn(
          forger_key_, label, config_.provider.tag_validity);
    }

    case AttackerMode::kExpiredTag: {
      // Genuinely provider-signed tags that expired before the run: a
      // stale credential kept after revocation.  One per provider.
      auto stale = std::make_shared<
          std::unordered_map<std::string, core::TagPtr>>();
      for (auto& provider : providers_) {
        provider->issuer().enroll(locator, 0xFFFFFFFF);
        core::TagPtr tag = provider->issuer().issue(
            locator, own_ap, -2 * config_.provider.tag_validity);
        provider->issuer().revoke(locator);
        if (tag) (*stale)[provider->prefix().to_uri()] = tag;
      }
      return [stale](const ndn::Name& content,
                     event::Time) -> core::TagPtr {
        const auto it = stale->find(content.prefix(1).to_uri());
        return it == stale->end() ? core::TagPtr{} : it->second;
      };
    }

    case AttackerMode::kInsufficientAccessLevel: {
      // Legitimately enrolled — at access level 0, below every protected
      // object's level.  Tags are re-minted on expiry.
      auto mints = std::make_shared<
          std::unordered_map<std::string, core::TagPtr>>();
      std::vector<workload::ProviderApp*> providers = provider_ptrs_;
      for (auto* provider : providers) provider->issuer().enroll(locator, 0);
      return [mints, providers, locator,
              own_ap](const ndn::Name& content,
                      event::Time now) -> core::TagPtr {
        const std::string prefix = content.prefix(1).to_uri();
        auto& slot = (*mints)[prefix];
        if (!slot || slot->expiry() <= now) {
          for (auto* provider : providers) {
            if (provider->prefix().to_uri() == prefix) {
              slot = provider->issuer().issue(locator, own_ap, now);
              break;
            }
          }
        }
        return slot;
      };
    }

    case AttackerMode::kWrongProvider: {
      // A valid tag from one provider, presented for all the others'
      // content (threat: prefix misuse).  For the enrolled provider
      // itself the strategy sends no tag, so the attacker never succeeds
      // legitimately.
      workload::ProviderApp* home =
          provider_ptrs_[attacker_index % provider_ptrs_.size()];
      home->issuer().enroll(locator, 0xFFFFFFFF);
      auto cached = std::make_shared<core::TagPtr>();
      const std::string home_prefix = home->prefix().to_uri();
      return [home, cached, locator, own_ap, home_prefix](
                 const ndn::Name& content, event::Time now) -> core::TagPtr {
        if (content.prefix(1).to_uri() == home_prefix) return {};
        if (!*cached || (*cached)->expiry() <= now) {
          *cached = home->issuer().issue(locator, own_ap, now);
        }
        return *cached;
      };
    }

    case AttackerMode::kSharedTag: {
      // Borrow a client's live tag — a client attached to a *different*
      // AP, so access-path enforcement (when on) catches the sharing.
      std::vector<workload::ClientApp*> victims;
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        const net::NodeId victim_node = network_->clients()[i];
        if (network_->ap_index_of(victim_node) !=
            network_->ap_index_of(node_id)) {
          victims.push_back(clients_[i].get());
        }
      }
      if (victims.empty() && !clients_.empty()) {
        victims.push_back(clients_[0].get());
      }
      std::vector<workload::ProviderApp*> providers = provider_ptrs_;
      workload::ClientApp* victim =
          victims.empty() ? nullptr
                          : victims[attacker_index % victims.size()];
      return [victim, providers](const ndn::Name& content,
                                 event::Time) -> core::TagPtr {
        if (victim == nullptr) return {};
        for (std::size_t p = 0; p < providers.size(); ++p) {
          if (providers[p]->prefix().is_prefix_of(content)) {
            return victim->current_tag(p);
          }
        }
        return {};
      };
    }
  }
  return workload::attacker_strategies::no_tag();
}

void Scenario::build_attackers() {
  std::size_t index = 0;
  for (const net::NodeId id : network_->attackers()) {
    ndn::Forwarder& node = network_->node(id);
    node.fib().add_route(
        ndn::Name("/"),
        network_->face_between(id, network_->edge_router_of(id)));
    node.set_policy(
        std::make_unique<core::ApPolicy>(network_->ap_of(id).label));
    const workload::AttackerMode mode =
        config_.attacker_mix.empty()
            ? workload::AttackerMode::kNoTag
            : config_.attacker_mix[index % config_.attacker_mix.size()];
    auto attacker = std::make_unique<workload::AttackerApp>(
        node, provider_ptrs_, config_.attacker, mode,
        make_strategy(mode, index, id), rng_.fork());
    attacker->start();
    attackers_.push_back(std::move(attacker));
    ++index;
  }
}

void Scenario::set_adjacency_up(net::NodeId a, net::NodeId b, bool up,
                                bool reconverge_now) {
  network_->set_adjacency_up(a, b, up);
  if (reconverge_now) reconverge();
}

void Scenario::reconverge() {
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    network_->install_routes(providers_[i]->prefix(),
                             network_->providers()[i]);
  }
}

void Scenario::revoke_client_eagerly(const std::string& client_key_locator) {
  const std::size_t router_count = network_->edge_routers().size() +
                                   network_->core_routers().size();
  for (auto& provider : providers_) {
    provider->issuer().revoke(client_key_locator);
    if (const core::TagPtr tag =
            provider->issuer().last_issued(client_key_locator)) {
      anchors_.revocations.blacklist(*tag, router_count);
    }
  }
}

void Scenario::move_user(net::NodeId user, std::size_t new_ap_index) {
  if (parallel_) {
    throw std::logic_error(
        "Scenario: move_user needs mid-run link wiring and is not "
        "supported with threads > 1");
  }
  network_->reattach_user(user, new_ap_index);
  ndn::Forwarder& node = network_->node(user);
  // New wireless segment: new egress identity and new default route.
  node.set_policy(
      std::make_unique<core::ApPolicy>(network_->ap_of(user).label));
  node.fib().add_route(
      ndn::Name("/"),
      network_->face_between(user, network_->edge_router_of(user)));
}

void Scenario::stop_workloads() {
  for (auto& client : clients_) client->stop();
  for (auto& attacker : attackers_) attacker->stop();
}

event::Time Scenario::drain(event::Time grace) {
  stop_workloads();
  if (parallel_) return parallel_->run_until(parallel_->now() + grace);
  return scheduler_.run_until(scheduler_.now() + grace);
}

const Metrics& Scenario::run() {
  if (ran_) throw std::logic_error("Scenario: run() called twice");
  ran_ = true;
  if (parallel_) {
    parallel_->run_until(config_.duration);
  } else {
    scheduler_.run_until(config_.duration);
  }
  metrics_ = harvest();
  return metrics_;
}

Metrics Scenario::harvest() {
  {
    // Replay the per-client buffers in canonical order — (when, client
    // index, per-client position).  BOTH engines fold through this merge
    // (the hooks always buffer), which makes it the defined accumulation
    // order for the client sample series: per-bucket floating-point sums
    // are bit-identical at any thread count by construction, including
    // when two clients sample at the exact same nanosecond (where
    // sequential event-seq order would be engine-dependent).
    struct ValueSample {
      event::Time when;
      std::uint32_t client;
      std::uint32_t pos;
      double value;
    };
    const auto by_key = [](const ValueSample& a, const ValueSample& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.client != b.client) return a.client < b.client;
      return a.pos < b.pos;
    };
    auto merge_values =
        [&](std::vector<std::pair<event::Time, double>> ClientSamples::*
                member,
            util::TimeSeries& series) {
          std::vector<ValueSample> merged;
          for (std::size_t c = 0; c < client_samples_.size(); ++c) {
            const auto& buffer = client_samples_[c].*member;
            for (std::size_t i = 0; i < buffer.size(); ++i) {
              merged.push_back(ValueSample{buffer[i].first,
                                           static_cast<std::uint32_t>(c),
                                           static_cast<std::uint32_t>(i),
                                           buffer[i].second});
            }
          }
          std::sort(merged.begin(), merged.end(), by_key);
          for (const ValueSample& sample : merged) {
            series.add(event::to_seconds(sample.when), sample.value);
          }
        };
    auto merge_events = [&](std::vector<event::Time> ClientSamples::* member,
                            util::TimeSeries& series) {
      std::vector<ValueSample> merged;
      for (std::size_t c = 0; c < client_samples_.size(); ++c) {
        const auto& buffer = client_samples_[c].*member;
        for (std::size_t i = 0; i < buffer.size(); ++i) {
          merged.push_back(ValueSample{buffer[i],
                                       static_cast<std::uint32_t>(c),
                                       static_cast<std::uint32_t>(i), 0.0});
        }
      }
      std::sort(merged.begin(), merged.end(), by_key);
      for (const ValueSample& sample : merged) {
        series.add_event(event::to_seconds(sample.when));
      }
    };
    merge_values(&ClientSamples::latency, metrics_.latency);
    merge_values(&ClientSamples::recovery, metrics_.recovery_latency);
    merge_events(&ClientSamples::tag_requests, metrics_.tag_requests);
    merge_events(&ClientSamples::tag_receives, metrics_.tag_receives);
    // The fold goes into metrics_ and consumes the buffers, so harvest()
    // stays idempotent and incremental: samples buffered after an earlier
    // harvest (e.g. late arrivals during the drain grace) fold exactly
    // once, appended behind the earlier fold in chronological order.
    for (ClientSamples& samples : client_samples_) {
      samples.latency.clear();
      samples.recovery.clear();
      samples.tag_requests.clear();
      samples.tag_receives.clear();
    }
  }
  Metrics out;
  out.latency = metrics_.latency;
  out.tag_requests = metrics_.tag_requests;
  out.tag_receives = metrics_.tag_receives;
  out.recovery_latency = metrics_.recovery_latency;

  for (const auto& client : clients_) {
    const auto& c = client->counters();
    out.clients.requested += c.chunks_requested;
    out.clients.received += c.chunks_received;
    out.clients.nacks += c.nacks_received;
    out.clients.timeouts += c.timeouts;
    out.clients.tags_requested += c.tags_requested;
    out.clients.tags_received += c.tags_received;
    out.clients.retransmissions += c.retransmissions;
    out.clients.chunks_abandoned += c.chunks_abandoned;
    out.clients.registration_retransmissions +=
        c.registration_retransmissions;
    out.clients.overload_nacks += c.overload_nacks;
    out.clients.proactive_renewals += c.proactive_renewals;
  }
  for (const auto& attacker : attackers_) {
    const auto& c = attacker->counters();
    out.attackers.requested += c.chunks_requested;
    out.attackers.received += c.chunks_received;
    out.attackers.nacks += c.nacks_received;
    out.attackers.timeouts += c.timeouts;
  }

  auto harvest_router = [&](net::NodeId id, RouterOps& ops,
                            std::vector<std::uint64_t>& resets_samples) {
    ndn::Forwarder& node = network_->node(id);
    out.cs_hits += node.cs().hits();
    out.cs_misses += node.cs().misses();
    out.pit_evictions += node.counters().pit_evictions;
    ops.fib_lookups += node.fib().counters().lookups;
    ops.fib_nodes_visited += node.fib().counters().nodes_visited;
    ops.pit_lookups += node.pit().counters().lookups;
    ops.pit_inserts += node.pit().counters().inserts;
    ops.pit_expiry_polls += node.pit().counters().expiry_polls;
    ops.cs_evictions += node.cs().evictions();
    ops.pool_acquires += node.pool().counters().acquires;
    ops.pool_reuses += node.pool().counters().reuses;
    ops.pool_refills += node.pool().counters().refills;
    ops.packet_cow_clones += node.pool().counters().cow_clones;
    ops.packet_inplace_edits += node.pool().counters().inplace_edits;
    const auto* tactic =
        dynamic_cast<const core::TacticRouterPolicy*>(&node.policy());
    if (tactic != nullptr) {
      const auto& c = tactic->counters();
      ops.bf_lookups += c.bf_lookups;
      ops.bf_insertions += c.bf_insertions;
      ops.sig_verifications += c.sig_verifications;
      ops.bf_resets += tactic->bf_resets();
      ops.compute_charged_s += event::to_seconds(c.compute_charged);
      ops.compute_bf_s += event::to_seconds(c.compute_bf);
      ops.compute_sig_s += event::to_seconds(c.compute_sig);
      ops.compute_neg_s += event::to_seconds(c.compute_neg);
      ops.neg_cache_hits += c.neg_cache_hits;
      ops.neg_cache_insertions += c.neg_cache_insertions;
      ops.sheds_queue_full += c.sheds_queue_full;
      ops.sheds_unvouched += c.sheds_unvouched;
      ops.policer_sheds += c.policer_sheds;
      ops.staged_resets += c.staged_resets;
      ops.draining_hits += c.draining_hits;
      ops.validation_wait_s += event::to_seconds(c.validation_wait);
      ops.sig_batches_flushed += c.sig_batches_flushed;
      ops.sig_batched_items += c.sig_batched_items;
      ops.sig_batch_flush_size_cap += c.sig_batch_flush_size_cap;
      ops.sig_batch_flush_deadline += c.sig_batch_flush_deadline;
      ops.sig_batch_flush_queue_drain += c.sig_batch_flush_queue_drain;
      ops.sig_batches_dropped += c.sig_batches_dropped;
      if (c.sig_batch_peak > ops.sig_batch_peak) {
        ops.sig_batch_peak = c.sig_batch_peak;
      }
      ops.sig_batch_unbatched_equiv_s +=
          event::to_seconds(c.sig_batch_unbatched_equiv);
      ops.bf_probes_coalesced += c.bf_probes_coalesced;
      ops.lane_steals += c.lane_steals;
      ops.adaptive_windows += c.adaptive_windows;
      ops.adaptive_minrtt_probes += c.adaptive_minrtt_probes;
      ops.quarantine_sheds += c.quarantine_sheds;
      ops.quarantine_ejections += c.quarantine_ejections;
      ops.quarantine_probes += c.quarantine_probes;
      ops.quarantine_readmissions += c.quarantine_readmissions;
      ops.skew_soft_accepts += c.skew_soft_accepts;
      ops.skew_false_rejects += c.skew_false_rejects;
      ops.skew_false_accepts += c.skew_false_accepts;
      ops.grace_accepts += c.grace_accepts;
      ops.grace_engagements += c.grace_engagements;
      if (tactic->adaptive_gradient() > ops.adaptive_gradient) {
        ops.adaptive_gradient = tactic->adaptive_gradient();
      }
      if (tactic->adaptive_limit() > ops.adaptive_limit) {
        ops.adaptive_limit = tactic->adaptive_limit();
      }
      ops.validation_wait_hist.merge(c.validation_wait_hist);
      resets_samples.insert(resets_samples.end(),
                            c.requests_per_reset.begin(),
                            c.requests_per_reset.end());
      return;
    }
    const auto* prob_bf =
        dynamic_cast<const baselines::ProbBfPolicy*>(&node.policy());
    if (prob_bf != nullptr) {
      const auto& c = prob_bf->counters();
      ops.bf_lookups += c.bf_lookups;
      ops.bf_insertions += c.bf_insertions;
      ops.sig_verifications += c.sig_verifications;
    }
  };
  for (const net::NodeId id : network_->edge_routers()) {
    harvest_router(id, out.edge_ops, out.edge_requests_per_reset);
  }
  for (const net::NodeId id : network_->core_routers()) {
    harvest_router(id, out.core_ops, out.core_requests_per_reset);
  }

  for (const auto& provider : providers_) {
    out.provider_sig_verifications += provider->counters().sig_verifications;
    out.provider_tags_issued += provider->counters().tags_issued;
    out.provider_content_served += provider->counters().content_served;
  }

  const net::LinkCounters links = network_->total_link_counters();
  out.link_bytes_sent = links.bytes_sent;
  out.link_frames_dropped = links.frames_dropped();
  out.link_dropped_queue_full = links.dropped_queue_full;
  out.link_refused_link_down = links.refused_link_down;
  out.link_frames_lost = links.frames_lost;
  out.link_frames_corrupted = links.frames_corrupted;

  for (net::NodeId id = 0; id < network_->node_count(); ++id) {
    const ndn::ForwarderCounters& c = network_->node(id).counters();
    out.node_crashes += c.crashes;
    out.node_restarts += c.restarts;
    out.packets_dropped_while_down += c.dropped_while_down;
    out.corrupt_frames_rejected += c.corrupt_frames_rejected;
  }
  return out;
}

}  // namespace tactic::sim
