#pragma once
// ISP topology parameters and the paper's four presets (Table III).

#include <cstddef>
#include <cstdint>

#include "net/link.hpp"

namespace tactic::topology {

/// Everything needed to build one hierarchical ISP network: a scale-free
/// router backbone (core + edge routers), providers attached to the core,
/// and wireless users behind APs behind edge routers.
struct TopologyParams {
  std::size_t core_routers = 80;
  std::size_t edge_routers = 20;
  std::size_t providers = 10;
  std::size_t clients = 35;
  std::size_t attackers = 15;
  /// Wireless access points hanging off each edge router.  Users are
  /// assigned to APs uniformly at random.
  std::size_t aps_per_edge = 1;
  /// Barabási–Albert attachment parameter for the router backbone.
  std::size_t ba_attach = 2;

  net::LinkParams core_link = net::core_link_params();  // 500 Mbps, 1 ms
  net::LinkParams edge_link = net::edge_link_params();  // 10 Mbps, 2 ms

  /// Content Store capacities (packets).  The paper leaves cache sizes
  /// unspecified; defaults give core routers a working cache and keep the
  /// edge cache-less, matching the protocol descriptions (content routers
  /// are core routers).
  std::size_t core_cs_capacity = 1000;
  std::size_t edge_cs_capacity = 0;
};

/// The paper's Table III presets; `index` in {1, 2, 3, 4}.
/// Throws std::out_of_range otherwise.
TopologyParams paper_topology(int index);

}  // namespace tactic::topology
