#pragma once
// Undirected graphs, the Barabási–Albert scale-free generator used for the
// paper's four evaluation topologies, and shortest-path computation for
// FIB population.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tactic::topology {

/// Simple undirected graph over nodes 0..n-1.
class Graph {
 public:
  explicit Graph(std::size_t node_count = 0);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds an undirected edge; parallel edges and self-loops are ignored.
  void add_edge(std::size_t a, std::size_t b);
  bool has_edge(std::size_t a, std::size_t b) const;

  const std::vector<std::size_t>& neighbors(std::size_t node) const {
    return adjacency_[node];
  }
  std::size_t degree(std::size_t node) const {
    return adjacency_[node].size();
  }

  /// True when every node is reachable from node 0 (or the graph is empty).
  bool connected() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `attach` existing nodes with probability
/// proportional to their degree.  Produces the connected scale-free
/// topologies the paper evaluates on.  Requires n >= attach + 1, attach >= 1.
Graph barabasi_albert(util::Rng& rng, std::size_t n, std::size_t attach);

/// Breadth-first hop distances from `source`; unreachable nodes get
/// SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& graph,
                                       std::size_t source);

/// For every node, the neighbor to take toward `destination` along a
/// shortest path (ties broken toward the lowest-id neighbor, so routing is
/// deterministic).  destination itself and unreachable nodes map to
/// SIZE_MAX.
std::vector<std::size_t> next_hop_toward(const Graph& graph,
                                         std::size_t destination);

}  // namespace tactic::topology
