#pragma once
// Instantiated network: forwarders, links, roles, and routing.
//
// `Network` turns TopologyParams into live simulation objects:
//  1. a Barabási–Albert backbone over core + edge routers (edge routers
//     are the lowest-degree backbone nodes, i.e. the periphery);
//  2. wireless access points per edge router.  An AP is a link-layer
//     entity, not an NDN forwarder: users behind it attach to the edge
//     router over 10 Mbps wireless-edge links (one face per user, as an
//     edge router sees each wireless station), while the AP itself exists
//     as the identified wireless segment whose identity hash the access
//     path accumulates (paper Section 4.A).  Running NDN aggregation on
//     APs would let a co-located attacker piggyback on a client's PIT
//     entry below the enforcement point — exactly what TACTIC's router
//     protocols preclude;
//  3. providers attached to random core routers;
//  4. shortest-path FIB routes installed per provider prefix.
//
// The Network owns all forwarders and links.  Policies and applications
// are installed on top by the sim layer (or by hand in the examples).

#include <memory>
#include <unordered_map>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/forwarder.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "topology/graph.hpp"
#include "topology/isp.hpp"
#include "util/rng.hpp"

namespace tactic::topology {

class Network {
 public:
  /// Builds the full network.  All randomness (graph shape, attachment
  /// choices) is drawn from `rng`.
  Network(event::Scheduler& scheduler, const TopologyParams& params,
          util::Rng& rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const TopologyParams& params() const { return params_; }
  std::size_t node_count() const { return forwarders_.size(); }

  ndn::Forwarder& node(net::NodeId id) { return *forwarders_.at(id); }
  const ndn::Forwarder& node(net::NodeId id) const {
    return *forwarders_.at(id);
  }

  // Role lists (node ids).
  const std::vector<net::NodeId>& core_routers() const { return core_; }
  const std::vector<net::NodeId>& edge_routers() const { return edge_; }
  const std::vector<net::NodeId>& clients() const { return clients_; }
  const std::vector<net::NodeId>& attackers() const { return attackers_; }
  const std::vector<net::NodeId>& providers() const { return providers_; }

  /// A wireless access point: an L2 segment identity under one edge
  /// router.  Its label feeds the access-path hash.
  struct AccessPoint {
    std::string label;
    net::NodeId edge_router = net::kInvalidNode;
  };
  const std::vector<AccessPoint>& access_points() const { return aps_; }

  /// Index (into access_points()) of the AP a user is attached to.
  std::size_t ap_index_of(net::NodeId user) const {
    return user_ap_.at(user);
  }
  /// The AP a user (client/attacker) is attached to.
  const AccessPoint& ap_of(net::NodeId user) const {
    return aps_.at(user_ap_.at(user));
  }
  /// The edge router above a user.
  net::NodeId edge_router_of(net::NodeId user) const {
    return parent_.at(user);
  }
  /// The core router a provider hangs off.
  net::NodeId gateway_of(net::NodeId provider) const {
    return parent_.at(provider);
  }

  /// Face on `from` that transmits toward adjacent node `to`; throws when
  /// not adjacent.
  ndn::FaceId face_between(net::NodeId from, net::NodeId to) const;

  /// Adjacent nodes of `id`, in attachment order (deterministic).
  const std::vector<net::NodeId>& neighbors_of(net::NodeId id) const {
    return neighbors_.at(id);
  }

  /// The link transmitting from `from` to adjacent `to`; throws when not
  /// adjacent.  Exposed for fault installation and tests.
  net::Link& directed_link(net::NodeId from, net::NodeId to);

  /// Installs the fault model on every link direction of one role class:
  /// `wireless` selects the user<->edge access links, otherwise the
  /// backbone (router<->router and provider<->core).  Each direction
  /// gets its own RNG stream forked from `rng` in deterministic order.
  void install_link_faults(const net::LinkFaultParams& faults, bool wireless,
                           util::Rng& rng);

  /// Installs shortest-path FIB entries for `prefix` on every node,
  /// pointing toward `producer_node` — with every equal-cost next hop, so
  /// forwarders can fail over when a link goes down.  Adjacencies marked
  /// down are excluded.  (The producer's own route to its app face is
  /// installed by the app when it attaches.)
  void install_routes(const ndn::Name& prefix, net::NodeId producer_node);

  /// Administrative/failure state of the a<->b adjacency (both
  /// directions).  Frames already in flight still arrive.  Routing does
  /// NOT react until routes are recomputed (install_routes again /
  /// sim::Scenario::set_adjacency_up) — until then forwarders rely on
  /// equal-cost failover.
  void set_adjacency_up(net::NodeId a, net::NodeId b, bool up);
  bool adjacency_up(net::NodeId a, net::NodeId b) const;

  /// Connects two nodes with a duplex link (two unidirectional links).
  /// Exposed for hand-built example topologies.
  void connect(net::NodeId a, net::NodeId b, const net::LinkParams& params);

  /// Wireless mobility: re-attaches a user behind the AP at `ap_index`,
  /// connecting it to that AP's edge router (if not already adjacent)
  /// and updating the attachment maps.  The old link stays (an abandoned
  /// association); the caller re-points the user's default route and AP
  /// egress policy — sim::Scenario::move_user does all of it.
  void reattach_user(net::NodeId user, std::size_t ap_index);

  /// Creates an extra node of the given kind (for hand-built scenarios).
  net::NodeId add_node(net::NodeKind kind, const std::string& label,
                       std::size_t cs_capacity);

  /// Aggregate link counters over all link directions.
  net::LinkCounters total_link_counters() const;

 private:
  explicit Network(event::Scheduler& scheduler);  // empty shell

  event::Scheduler& scheduler_;
  TopologyParams params_;
  std::vector<std::unique_ptr<ndn::Forwarder>> forwarders_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unordered_map<net::NodeId, ndn::FaceId>> neighbor_face_;
  std::vector<std::vector<net::NodeId>> neighbors_;
  /// Per-direction links, keyed (from << 32 | to), for up/down control.
  std::unordered_map<std::uint64_t, net::Link*> directed_link_;
  std::vector<net::NodeId> parent_;  // user->edge, provider->core

  std::vector<net::NodeId> core_, edge_, clients_, attackers_, providers_;
  std::vector<AccessPoint> aps_;
  std::unordered_map<net::NodeId, std::size_t> user_ap_;

 public:
  /// Builds an empty network to assemble by hand with add_node/connect
  /// (used by unit tests and the quickstart example).
  static Network empty(event::Scheduler& scheduler);
};

}  // namespace tactic::topology
