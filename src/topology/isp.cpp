#include "topology/isp.hpp"

#include <stdexcept>

namespace tactic::topology {

TopologyParams paper_topology(int index) {
  TopologyParams params;
  switch (index) {
    case 1:
      params.core_routers = 80;
      params.edge_routers = 20;
      params.clients = 35;
      params.attackers = 15;
      break;
    case 2:
      params.core_routers = 180;
      params.edge_routers = 20;
      params.clients = 71;
      params.attackers = 29;
      break;
    case 3:
      params.core_routers = 370;
      params.edge_routers = 30;
      params.clients = 143;
      params.attackers = 57;
      break;
    case 4:
      params.core_routers = 560;
      params.edge_routers = 40;
      params.clients = 213;
      params.attackers = 87;
      break;
    default:
      throw std::out_of_range("paper_topology: index must be 1..4");
  }
  params.providers = 10;
  return params;
}

}  // namespace tactic::topology
