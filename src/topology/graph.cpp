#include "topology/graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace tactic::topology {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

void Graph::add_edge(std::size_t a, std::size_t b) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Graph: edge endpoint out of range");
  }
  if (a == b || has_edge(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  const auto& nbrs = adjacency_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

bool Graph::connected() const {
  if (node_count() == 0) return true;
  const auto dist = bfs_distances(*this, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == std::numeric_limits<std::size_t>::max();
  });
}

Graph barabasi_albert(util::Rng& rng, std::size_t n, std::size_t attach) {
  if (attach < 1 || n < attach + 1) {
    throw std::invalid_argument("barabasi_albert: need n >= attach+1 >= 2");
  }
  Graph graph(n);
  // Seed: a clique over the first attach+1 nodes.
  for (std::size_t a = 0; a <= attach; ++a) {
    for (std::size_t b = a + 1; b <= attach; ++b) graph.add_edge(a, b);
  }
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<std::size_t> endpoints;
  for (std::size_t a = 0; a <= attach; ++a) {
    for (std::size_t d = 0; d < graph.degree(a); ++d) endpoints.push_back(a);
  }

  for (std::size_t node = attach + 1; node < n; ++node) {
    std::vector<std::size_t> targets;
    while (targets.size() < attach) {
      const std::size_t pick = endpoints[rng.uniform(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), pick) == targets.end()) {
        targets.push_back(pick);
      }
    }
    for (std::size_t target : targets) {
      graph.add_edge(node, target);
      endpoints.push_back(node);
      endpoints.push_back(target);
    }
  }
  return graph;
}

std::vector<std::size_t> bfs_distances(const Graph& graph,
                                       std::size_t source) {
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(graph.node_count(), kUnreached);
  std::deque<std::size_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::size_t node = queue.front();
    queue.pop_front();
    for (std::size_t next : graph.neighbors(node)) {
      if (dist[next] == kUnreached) {
        dist[next] = dist[node] + 1;
        queue.push_back(next);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> next_hop_toward(const Graph& graph,
                                         std::size_t destination) {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  const auto dist = bfs_distances(graph, destination);
  std::vector<std::size_t> next(graph.node_count(), kNone);
  for (std::size_t node = 0; node < graph.node_count(); ++node) {
    if (node == destination || dist[node] == kNone) continue;
    std::size_t best = kNone;
    for (std::size_t nbr : graph.neighbors(node)) {
      if (dist[nbr] == kNone || dist[nbr] + 1 != dist[node]) continue;
      if (best == kNone || nbr < best) best = nbr;
    }
    next[node] = best;
  }
  return next;
}

}  // namespace tactic::topology
