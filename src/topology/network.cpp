#include "topology/network.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tactic::topology {

Network::Network(event::Scheduler& scheduler) : scheduler_(scheduler) {}

Network Network::empty(event::Scheduler& scheduler) {
  return Network(scheduler);
}

net::NodeId Network::add_node(net::NodeKind kind, const std::string& label,
                              std::size_t cs_capacity) {
  const net::NodeId id = static_cast<net::NodeId>(forwarders_.size());
  forwarders_.push_back(std::make_unique<ndn::Forwarder>(
      scheduler_, net::NodeInfo{id, kind, label}, cs_capacity));
  neighbor_face_.emplace_back();
  neighbors_.emplace_back();
  parent_.push_back(net::kInvalidNode);
  switch (kind) {
    case net::NodeKind::kCoreRouter: core_.push_back(id); break;
    case net::NodeKind::kEdgeRouter: edge_.push_back(id); break;
    case net::NodeKind::kClient: clients_.push_back(id); break;
    case net::NodeKind::kAttacker: attackers_.push_back(id); break;
    case net::NodeKind::kProvider: providers_.push_back(id); break;
    case net::NodeKind::kAccessPoint:
      // APs are link-layer segments, not forwarders; hand-built scenarios
      // may still create forwarder nodes of this kind, tracked nowhere.
      break;
  }
  return id;
}

void Network::connect(net::NodeId a, net::NodeId b,
                      const net::LinkParams& params) {
  if (a >= forwarders_.size() || b >= forwarders_.size() || a == b) {
    throw std::invalid_argument("Network::connect: bad endpoints");
  }
  if (neighbor_face_[a].count(b) > 0) return;  // already connected

  links_.push_back(std::make_unique<net::Link>(scheduler_, params));
  net::Link* link_ab = links_.back().get();
  links_.push_back(std::make_unique<net::Link>(scheduler_, params));
  net::Link* link_ba = links_.back().get();

  // Delivery closures resolve the receiving face at delivery time via
  // neighbor_face_, which is fully populated below before any packet can
  // flow.
  const ndn::FaceId face_a = forwarders_[a]->add_link_face(
      link_ab, [this, a, b](ndn::PacketVariant&& p) {
        forwarders_[b]->receive(neighbor_face_[b].at(a), std::move(p));
      });
  const ndn::FaceId face_b = forwarders_[b]->add_link_face(
      link_ba, [this, a, b](ndn::PacketVariant&& p) {
        forwarders_[a]->receive(neighbor_face_[a].at(b), std::move(p));
      });
  neighbor_face_[a][b] = face_a;
  neighbor_face_[b][a] = face_b;
  neighbors_[a].push_back(b);
  neighbors_[b].push_back(a);
  directed_link_[(static_cast<std::uint64_t>(a) << 32) | b] = link_ab;
  directed_link_[(static_cast<std::uint64_t>(b) << 32) | a] = link_ba;
}

void Network::set_adjacency_up(net::NodeId a, net::NodeId b, bool up) {
  const auto ab = directed_link_.find((static_cast<std::uint64_t>(a) << 32) | b);
  const auto ba = directed_link_.find((static_cast<std::uint64_t>(b) << 32) | a);
  if (ab == directed_link_.end() || ba == directed_link_.end()) {
    throw std::invalid_argument("set_adjacency_up: not adjacent");
  }
  ab->second->set_up(up);
  ba->second->set_up(up);
}

bool Network::adjacency_up(net::NodeId a, net::NodeId b) const {
  const auto it =
      directed_link_.find((static_cast<std::uint64_t>(a) << 32) | b);
  if (it == directed_link_.end()) {
    throw std::invalid_argument("adjacency_up: not adjacent");
  }
  return it->second->up();
}

ndn::FaceId Network::face_between(net::NodeId from, net::NodeId to) const {
  const auto& faces = neighbor_face_.at(from);
  const auto it = faces.find(to);
  if (it == faces.end()) {
    throw std::invalid_argument("Network::face_between: not adjacent");
  }
  return it->second;
}

void Network::install_routes(const ndn::Name& prefix,
                             net::NodeId producer_node) {
  // Shortest paths over the live node graph (users are leaves, so routes
  // never cut through them); down adjacencies are excluded, so calling
  // this again after set_adjacency_up models routing reconvergence.
  Graph graph(node_count());
  for (net::NodeId a = 0; a < node_count(); ++a) {
    for (net::NodeId b : neighbors_[a]) {
      if (a < b && adjacency_up(a, b)) graph.add_edge(a, b);
    }
  }
  const auto dist = bfs_distances(graph, producer_node);
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  for (net::NodeId id = 0; id < node_count(); ++id) {
    if (id == producer_node) continue;
    if (dist[id] == kUnreached) {
      forwarders_[id]->fib().remove_route(prefix);
      continue;
    }
    // Every neighbor strictly closer to the producer is a loop-free
    // equal-cost next hop.
    std::vector<ndn::Fib::NextHop> hops;
    for (const net::NodeId nbr : neighbors_[id]) {
      if (dist[nbr] != kUnreached && dist[nbr] + 1 == dist[id] &&
          adjacency_up(id, nbr)) {
        hops.push_back(ndn::Fib::NextHop{
            face_between(id, nbr), static_cast<std::uint32_t>(dist[id])});
      }
    }
    forwarders_[id]->fib().set_routes(prefix, std::move(hops));
  }
}

void Network::reattach_user(net::NodeId user, std::size_t ap_index) {
  const AccessPoint& ap = aps_.at(ap_index);
  const net::NodeKind kind = forwarders_.at(user)->info().kind;
  if (kind != net::NodeKind::kClient && kind != net::NodeKind::kAttacker) {
    throw std::invalid_argument("reattach_user: node is not a user");
  }
  connect(user, ap.edge_router, params_.edge_link);  // no-op if adjacent
  parent_.at(user) = ap.edge_router;
  user_ap_[user] = ap_index;
}

net::LinkCounters Network::total_link_counters() const {
  net::LinkCounters total;
  for (const auto& link : links_) {
    const net::LinkCounters& c = link->counters();
    total.frames_sent += c.frames_sent;
    total.bytes_sent += c.bytes_sent;
    total.dropped_queue_full += c.dropped_queue_full;
    total.refused_link_down += c.refused_link_down;
    total.frames_lost += c.frames_lost;
    total.frames_corrupted += c.frames_corrupted;
  }
  return total;
}

net::Link& Network::directed_link(net::NodeId from, net::NodeId to) {
  const auto it =
      directed_link_.find((static_cast<std::uint64_t>(from) << 32) | to);
  if (it == directed_link_.end()) {
    throw std::invalid_argument("directed_link: not adjacent");
  }
  return *it->second;
}

void Network::install_link_faults(const net::LinkFaultParams& faults,
                                  bool wireless, util::Rng& rng) {
  if (!faults.any()) return;
  const auto is_user = [&](net::NodeId id) {
    const net::NodeKind kind = forwarders_[id]->info().kind;
    return kind == net::NodeKind::kClient ||
           kind == net::NodeKind::kAttacker;
  };
  // Walk nodes then neighbors (attachment order) — NOT the unordered
  // directed-link map — so the fork order is deterministic.
  for (net::NodeId from = 0; from < node_count(); ++from) {
    for (const net::NodeId to : neighbors_[from]) {
      if ((is_user(from) || is_user(to)) != wireless) continue;
      directed_link(from, to).set_fault_model(faults, rng.fork());
    }
  }
}

Network::Network(event::Scheduler& scheduler, const TopologyParams& params,
                 util::Rng& rng)
    : scheduler_(scheduler), params_(params) {
  const std::size_t backbone_count =
      params.core_routers + params.edge_routers;
  if (params.edge_routers == 0 || params.core_routers == 0) {
    throw std::invalid_argument("Network: need core and edge routers");
  }

  // 1. Scale-free backbone; the lowest-degree routers become the edge.
  const Graph backbone = barabasi_albert(rng, backbone_count,
                                         params.ba_attach);
  std::vector<std::size_t> order(backbone_count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (backbone.degree(a) != backbone.degree(b)) {
      return backbone.degree(a) < backbone.degree(b);
    }
    return a < b;
  });
  std::vector<bool> is_edge(backbone_count, false);
  for (std::size_t i = 0; i < params.edge_routers; ++i) is_edge[order[i]] = true;

  for (std::size_t i = 0; i < backbone_count; ++i) {
    if (is_edge[i]) {
      add_node(net::NodeKind::kEdgeRouter, "edge" + std::to_string(i),
               params.edge_cs_capacity);
    } else {
      add_node(net::NodeKind::kCoreRouter, "core" + std::to_string(i),
               params.core_cs_capacity);
    }
  }
  for (std::size_t a = 0; a < backbone_count; ++a) {
    for (std::size_t b : backbone.neighbors(a)) {
      if (a < b) {
        connect(static_cast<net::NodeId>(a), static_cast<net::NodeId>(b),
                params.core_link);
      }
    }
  }

  // 2. Providers hang off random core routers.
  for (std::size_t i = 0; i < params.providers; ++i) {
    const net::NodeId id =
        add_node(net::NodeKind::kProvider, "provider" + std::to_string(i),
                 /*cs_capacity=*/0);
    const net::NodeId gateway = core_[rng.uniform(core_.size())];
    connect(id, gateway, params.core_link);
    parent_[id] = gateway;
  }

  // 3. Wireless access points: L2 segment identities per edge router.
  for (const net::NodeId edge_router : edge_) {
    for (std::size_t i = 0; i < params.aps_per_edge; ++i) {
      aps_.push_back(
          AccessPoint{"ap" + std::to_string(aps_.size()), edge_router});
    }
  }

  // 4. Clients and attackers behind random APs: the NDN attachment is a
  // dedicated wireless-edge link to the AP's edge router (one face per
  // station), the AP itself being the segment the access path identifies.
  auto attach_user = [&](net::NodeKind kind, const std::string& label) {
    const net::NodeId id = add_node(kind, label, /*cs_capacity=*/0);
    const std::size_t ap = rng.uniform(aps_.size());
    connect(id, aps_[ap].edge_router, params.edge_link);
    parent_[id] = aps_[ap].edge_router;
    user_ap_[id] = ap;
  };
  for (std::size_t i = 0; i < params.clients; ++i) {
    attach_user(net::NodeKind::kClient, "client" + std::to_string(i));
  }
  for (std::size_t i = 0; i < params.attackers; ++i) {
    attach_user(net::NodeKind::kAttacker, "attacker" + std::to_string(i));
  }
}

}  // namespace tactic::topology
