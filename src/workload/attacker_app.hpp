#pragma once
// Attacker applications — the threat model of Section 3.C.
//
// Attackers request protected content with (a) no tag, (b) a forged tag
// signed by a non-provider key, (c) an expired (stale/revoked) tag,
// (d) a tag whose access level is below the content's, (e) a tag shared
// by a client located behind a different access point, or (f) a valid tag
// of provider A presented for provider B's content.  Each attacker runs
// the same windowed request loop as a client; its tag strategy is a
// pluggable functor so experiment harnesses can compose arbitrary mixes.

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndn/forwarder.hpp"
#include "tactic/tag.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/client_app.hpp"
#include "workload/provider_app.hpp"

namespace tactic::workload {

enum class AttackerMode {
  kNoTag,
  kForgedTag,
  kForgedTagChurn,
  kExpiredTag,
  kInsufficientAccessLevel,
  kSharedTag,
  kWrongProvider,
};

const char* to_string(AttackerMode mode);

struct AttackerConfig {
  std::size_t window = 5;
  event::Time interest_lifetime = event::kSecond;
  /// Attackers probe far less often than clients stream (calibrated in
  /// EXPERIMENTS.md against Table IV's attacker request magnitudes).
  event::Time think_time_mean = 90 * event::kSecond;
  double zipf_alpha = 0.7;
  event::Time start_jitter = event::kSecond;
  /// Closed-loop cap on probe Interests (attackers never retransmit, so
  /// this caps `chunks_requested` directly).  0 = unlimited.  See
  /// ClientConfig::max_chunks.
  std::size_t max_chunks = 0;
};

class AttackerApp {
 public:
  /// `make_tag(content_name, now)` supplies the (invalid) tag for each
  /// request; returning nullptr sends an untagged Interest.
  using TagStrategy =
      std::function<core::TagPtr(const ndn::Name&, event::Time)>;

  AttackerApp(ndn::Forwarder& node, std::vector<ProviderApp*> providers,
              AttackerConfig config, AttackerMode mode,
              TagStrategy make_tag, util::Rng rng);

  void start();
  void stop() { running_ = false; }

  /// Mid-run tempo change for ramp experiments (flood intensity sweeps).
  /// Growing the window schedules fills for the new slots immediately;
  /// shrinking lets the excess in-flight slots retire as they resolve —
  /// each resolution re-fills its slot only while under the new window.
  void set_tempo(std::size_t window, event::Time think_time_mean);

  AttackerMode mode() const { return mode_; }
  const UserCounters& counters() const { return counters_; }
  const std::string& label() const { return node_.info().label; }

 private:
  struct Outstanding {
    event::Time sent_at = 0;
    event::EventId timeout;
  };

  void fill_one_slot();
  void schedule_slot_fill();
  void on_data(const ndn::Data& data);
  void on_nack(const ndn::Nack& nack);
  void on_timeout(const ndn::Name& name);
  event::Time think_sample();

  ndn::Forwarder& node_;
  std::vector<ProviderApp*> providers_;
  AttackerConfig config_;
  AttackerMode mode_;
  TagStrategy make_tag_;
  util::Rng rng_;
  util::ZipfDist popularity_;
  ndn::FaceId face_ = ndn::kInvalidFace;
  bool running_ = false;
  std::unordered_map<ndn::Name, Outstanding> outstanding_;
  UserCounters counters_;
};

/// Ready-made tag strategies for the standard threat mix.  All returned
/// strategies mint sparingly (tags are cached until expiry) so attacker
/// crypto cost stays negligible.
namespace attacker_strategies {

/// (a) No tag at all.
AttackerApp::TagStrategy no_tag();

/// (b) Tags forged with `forger_key` but naming the real provider's key
/// locator; structurally fresh (expiry = now + validity) so only signature
/// verification can catch them.
AttackerApp::TagStrategy forged(
    std::shared_ptr<const crypto::RsaPrivateKey> forger_key,
    std::string client_label, event::Time validity);

/// (b') A *churning* forger: every request presents a never-seen-before
/// forgery, so neither the Bloom filter nor the negative-tag cache ever
/// absorbs the signature verification — the brute-force router-DoS
/// pressure of Ghali et al. that the overload layer exists to survive.
/// One real RSA signing per validity window per provider; per-request
/// variants perturb a signed field (changing the cache identity,
/// bloom_key) while reusing the stale signature, which stays just as
/// invalid.
AttackerApp::TagStrategy forged_churn(
    std::shared_ptr<const crypto::RsaPrivateKey> forger_key,
    std::string client_label, event::Time validity);

/// (c) A genuinely provider-signed tag that expired before the run
/// started (a stale tag kept after revocation).
AttackerApp::TagStrategy expired(core::TagPtr stale_tag);

/// (d) A genuinely provider-signed, fresh tag whose AL is below the
/// targeted content's (issued via `issuer`, refreshed on expiry).
AttackerApp::TagStrategy insufficient_al(
    std::function<core::TagPtr(event::Time)> mint);

/// (e) A tag legitimately issued to a client behind a *different* AP —
/// the access path signed into it cannot match this attacker's location.
AttackerApp::TagStrategy shared(std::function<core::TagPtr()> victim_tag);

}  // namespace attacker_strategies

}  // namespace tactic::workload
