#include "workload/catalog.hpp"

#include <cstdio>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace tactic::workload {

Catalog::Catalog(ndn::Name prefix, CatalogParams params, util::Rng& rng)
    : prefix_(std::move(prefix)), params_(params) {
  if (params_.objects == 0 || params_.chunks_per_object == 0) {
    throw std::invalid_argument("Catalog: empty catalog");
  }
  const auto n_public =
      static_cast<std::size_t>(params_.public_fraction *
                               static_cast<double>(params_.objects));
  const auto n_high =
      static_cast<std::size_t>(params_.high_al_fraction *
                               static_cast<double>(params_.objects));
  access_levels_.resize(params_.objects, params_.base_access_level);
  for (std::size_t i = 0; i < n_public && i < params_.objects; ++i) {
    access_levels_[i] = 0;
  }
  for (std::size_t i = 0; i < n_high; ++i) {
    const std::size_t idx = params_.objects - 1 - i;
    if (access_levels_[idx] != 0) {
      access_levels_[idx] = params_.base_access_level + 1;
    }
  }
  content_key_.resize(crypto::Aes128::kKeySize);
  for (auto& b : content_key_) b = static_cast<std::uint8_t>(rng());
}

ndn::Name Catalog::chunk_name(std::size_t object, std::size_t chunk) const {
  return prefix_.append("obj" + std::to_string(object))
      .append("c" + std::to_string(chunk));
}

std::optional<std::pair<std::size_t, std::size_t>> Catalog::parse(
    const ndn::Name& name) const {
  if (!prefix_.is_prefix_of(name) || name.size() != prefix_.size() + 2) {
    return std::nullopt;
  }
  const std::string& obj = name.at(prefix_.size());
  const std::string& chk = name.at(prefix_.size() + 1);
  if (obj.rfind("obj", 0) != 0 || chk.rfind("c", 0) != 0) return std::nullopt;
  char* end = nullptr;
  const unsigned long o = std::strtoul(obj.c_str() + 3, &end, 10);
  if (end == obj.c_str() + 3 || *end != '\0') return std::nullopt;
  const unsigned long c = std::strtoul(chk.c_str() + 1, &end, 10);
  if (end == chk.c_str() + 1 || *end != '\0') return std::nullopt;
  if (o >= params_.objects || c >= params_.chunks_per_object) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<std::size_t>(o),
                        static_cast<std::size_t>(c));
}

std::uint32_t Catalog::access_level(std::size_t object) const {
  return access_levels_.at(object);
}

util::Bytes Catalog::chunk_plaintext(std::size_t object,
                                     std::size_t chunk) const {
  // Deterministic keystream derived from the chunk name: SHA-256 counter
  // expansion.  Deterministic content keeps runs reproducible and lets
  // tests check round-trips without storing 25k chunks.
  const std::string seed = chunk_name(object, chunk).to_uri();
  util::Bytes out;
  out.reserve(params_.chunk_size);
  std::uint32_t counter = 0;
  while (out.size() < params_.chunk_size) {
    crypto::Sha256 h;
    h.update(seed);
    util::Bytes ctr;
    util::append_u32(ctr, counter++);
    h.update(ctr);
    const util::Bytes block = h.finish();
    const std::size_t take =
        std::min(block.size(), params_.chunk_size - out.size());
    out.insert(out.end(), block.begin(),
               block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

util::Bytes Catalog::chunk_ciphertext(std::size_t object,
                                      std::size_t chunk) const {
  // Per-chunk nonce derived from the name keeps CTR keystreams disjoint.
  const std::uint64_t nonce =
      crypto::sha256_prefix64(chunk_name(object, chunk).to_uri());
  return crypto::aes128_ctr(content_key_, nonce,
                            chunk_plaintext(object, chunk));
}

}  // namespace tactic::workload
