#pragma once
// The paper's "Zipf-window client" (Section 8.A).
//
// Each client keeps a fixed-size window of outstanding Interests (5),
// selects content objects by Zipf(alpha = 0.7) popularity across the
// global catalog, registers with a provider whenever it lacks a valid tag
// for it, and then streams the object's chunks through its window.
// Requests expire after the Interest lifetime (1 s), freeing the window
// slot.  A think-time gap paces each slot (calibrated in EXPERIMENTS.md to
// the paper's observed per-client request rates).

#include <array>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ndn/forwarder.hpp"
#include "tactic/tag.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/provider_app.hpp"

namespace tactic::workload {

struct ClientConfig {
  std::size_t window = 5;
  event::Time interest_lifetime = event::kSecond;
  /// Mean of the exponential per-slot think time between a slot freeing
  /// and its next request.
  event::Time think_time_mean = 200 * event::kMillisecond;
  double zipf_alpha = 0.7;
  /// Uniform random start delay (desynchronizes clients).
  event::Time start_jitter = event::kSecond;
  /// Retransmission policy, shared by chunk Interests and registrations
  /// (including *refused* registrations, which back off through the same
  /// jittered exponential keyed on the refusal streak — a fixed refusal
  /// delay would resynchronize every client a recovering provider
  /// starved):
  /// a timeout triggers a resend after an exponential backoff with
  /// multiplicative jitter, up to `max_retries` resends; then the chunk
  /// is abandoned (the window slot frees).  `max_retries = 0` restores
  /// the pre-retransmission behaviour (one shot, timeout = loss).
  std::size_t max_retries = 3;
  event::Time retry_backoff_base = 500 * event::kMillisecond;
  double retry_backoff_factor = 2.0;
  /// Ceiling on the exponential backoff (applied after jitter).  Keeps a
  /// large `max_retries` from overflowing the delay arithmetic or
  /// parking a chunk for hours.
  event::Time retry_backoff_max = 30 * event::kSecond;
  /// Backoff is scaled by a uniform factor in [1-j, 1+j] (desynchronizes
  /// clients hammering a recovering router).
  double retry_jitter = 0.25;
  /// Verify content signatures against `verify_pki` before counting a
  /// chunk as received (paper Section 6.B: "the client can validate the
  /// content by verifying its signature").  Requires the provider to
  /// sign content.
  bool verify_content = false;
  const crypto::Pki* verify_pki = nullptr;
  /// Closed-loop cap on *distinct* chunk requests (first attempts;
  /// retransmissions are free).  0 = unlimited (the default open loop).
  /// The differential batching harness uses this so batched and
  /// unbatched runs issue the exact same request population regardless
  /// of timing shifts near the scenario end.
  std::size_t max_chunks = 0;
  /// Proactive tag renewal (docs/FAULTS.md, "Clock skew & tag
  /// lifecycle"): re-register at `T_e - renewal_lead` plus a uniform
  /// draw from [-renewal_jitter, +renewal_jitter], instead of
  /// discovering expiry through rejected Interests.  The jitter
  /// de-synchronizes the renewal storm of a cohort whose tags were all
  /// issued in the same instant.  Off by default; a disabled feature
  /// consumes zero RNG draws (bit-identical streams).
  bool proactive_renewal = false;
  event::Time renewal_lead = 2 * event::kSecond;
  event::Time renewal_jitter = event::kSecond;
  /// Outage grace, client half: keep attaching a tag for this long past
  /// its T_e (re-registering in the background the whole time), so
  /// grace-mode edges (core::GraceConfig) can still vouch it while the
  /// provider is down.  0 (default) = strict: expired tags are never
  /// sent.
  event::Time expired_tag_grace = 0;
};

/// Per-user traffic counters (Table IV's rows; Fig. 6's tag rates).
struct UserCounters {
  std::uint64_t chunks_requested = 0;
  std::uint64_t chunks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t tags_requested = 0;
  std::uint64_t tags_received = 0;
  std::uint64_t registrations_refused = 0;
  /// Content that failed client-side signature verification (fake or
  /// unsigned content under a protected prefix with verification on).
  std::uint64_t content_verification_failures = 0;
  /// Chunk Interests re-sent after a timeout (each also counts in
  /// `chunks_requested`, so accounting stays attempt-based).
  std::uint64_t retransmissions = 0;
  /// Chunks given up after exhausting the retry budget.
  std::uint64_t chunks_abandoned = 0;
  /// Registration Interests re-sent after a timeout.
  std::uint64_t registration_retransmissions = 0;
  /// kRouterOverloaded NACKs received (standalone or attached to Data);
  /// each also counts in `nacks_received`.  These retry with backoff
  /// immediately instead of waiting out the chunk timeout.
  std::uint64_t overload_nacks = 0;
  /// Renewal timers that fired and triggered a registration before the
  /// tag expired (proactive_renewal; each also counts in
  /// `tags_requested`).
  std::uint64_t proactive_renewals = 0;
  /// Per-reason breakdown of `nacks_received` (chunk verdicts only;
  /// registration NACKs are excluded just as they are from
  /// `nacks_received`).  Indexed by ndn::NackReason.  The batching
  /// equivalence harness compares these as a verdict multiset.
  std::array<std::uint64_t, ndn::kNackReasonCount> nacks_by_reason{};
};

class ClientApp {
 public:
  /// `providers` must outlive the app.  The client's node FIB must
  /// already default-route toward its access point.
  ClientApp(ndn::Forwarder& node, std::vector<ProviderApp*> providers,
            ClientConfig config, util::Rng rng);

  /// Schedules the first requests (after the start jitter).
  void start();
  /// Stops issuing new requests (outstanding ones simply expire).
  void stop() { running_ = false; }

  const UserCounters& counters() const { return counters_; }
  const std::string& label() const { return node_.info().label; }

  /// The client's current tag for provider `index` (may be null or
  /// expired).  Exposed for the tag-sharing threat scenarios and tests.
  core::TagPtr current_tag(std::size_t index) const {
    return index < tags_.size() ? tags_[index] : core::TagPtr{};
  }

  /// Metric hooks (wired by the experiment harness).
  std::function<void(event::Time, double)> on_latency_sample;
  std::function<void(event::Time)> on_tag_request;
  std::function<void(event::Time)> on_tag_receive;
  /// Recovery latency: for chunks that needed at least one
  /// retransmission, the time from the *first* attempt to delivery.
  std::function<void(event::Time, double)> on_recovery_sample;

 private:
  struct Outstanding {
    event::Time sent_at = 0;        // most recent attempt
    event::Time first_sent_at = 0;  // first attempt (recovery latency)
    std::size_t retries = 0;        // resends already spent
    std::size_t provider = 0;       // tag to attach on a resend
    /// Protected chunk: a resend is pointless without a live tag (the
    /// edge silently drops expired ones), so expiry ends the retries.
    bool needs_tag = false;
    /// Pending timer: the Interest timeout, or — between a timeout and
    /// the resend — the scheduled retransmission.  Either way the slot
    /// token stays held by this entry.
    event::EventId timeout;
  };

  void schedule_slot_fill();
  void release_parked_slots(std::size_t count, event::Time delay);
  void fill_one_slot();
  std::size_t provider_of_rank(std::size_t rank) const;
  void advance_stream();
  void send_chunk_interest();
  void resend_chunk(const ndn::Name& name);
  void send_registration(std::size_t provider_index);
  void send_registration_attempt();
  void on_registration_timeout();
  /// Schedules the proactive renewal of `tag` (just received for
  /// `provider_index`) at T_e - lead +/- jitter on this node's clock.
  void schedule_renewal(std::size_t provider_index, core::TagPtr tag);
  /// Whether `tag` may still be attached to an Interest at local time
  /// `local_now` — live, or inside the client-side grace window.
  bool tag_usable(const core::TagPtr& tag, event::Time local_now) const;
  bool verify_content_signature(const ndn::Data& data) const;
  void on_data(const ndn::Data& data);
  void on_nack(const ndn::Nack& nack);
  void on_timeout(const ndn::Name& name);
  /// A router shed our outstanding Interest for `name` (explicit
  /// kRouterOverloaded): back off now instead of waiting out the chunk
  /// timeout.  The caller must have cancelled the pending timer.
  void on_overload_nack(const ndn::Name& name);
  event::Time think_sample();
  /// Backoff before resend number `attempt` (1-based): base *
  /// factor^(attempt-1), jittered by [1-j, 1+j], clamped at
  /// `retry_backoff_max`.
  event::Time retry_backoff(std::size_t attempt);

  ndn::Forwarder& node_;
  std::vector<ProviderApp*> providers_;
  ClientConfig config_;
  util::Rng rng_;
  util::ZipfDist popularity_;  // over provider x object ranks
  ndn::FaceId face_ = ndn::kInvalidFace;
  bool running_ = false;

  // Stream position.
  std::size_t current_provider_ = 0;
  std::size_t current_object_ = 0;
  std::size_t next_chunk_ = 0;

  // Tag state, per provider.
  std::vector<core::TagPtr> tags_;
  std::optional<std::size_t> registration_pending_;  // provider index
  ndn::Name pending_registration_name_;
  event::EventId registration_timeout_;  // cancelled on response/NACK
  std::size_t registration_retries_ = 0;
  /// Consecutive refused/abandoned registrations (reset when a tag
  /// arrives); drives the jittered exponential re-registration backoff.
  std::size_t registration_refusal_streak_ = 0;
  /// Window slots waiting for a tag.  Slot tokens are conserved: each
  /// token is either an outstanding Interest, a scheduled fill event, or
  /// parked here — so the request rate stays window-limited.
  std::size_t parked_slots_ = 0;

  std::unordered_map<ndn::Name, Outstanding> outstanding_;
  UserCounters counters_;
  /// Distinct chunks started (first attempts), against `max_chunks`.
  std::size_t chunks_started_ = 0;
};

}  // namespace tactic::workload
