#pragma once
// The paper's "Zipf-window client" (Section 8.A).
//
// Each client keeps a fixed-size window of outstanding Interests (5),
// selects content objects by Zipf(alpha = 0.7) popularity across the
// global catalog, registers with a provider whenever it lacks a valid tag
// for it, and then streams the object's chunks through its window.
// Requests expire after the Interest lifetime (1 s), freeing the window
// slot.  A think-time gap paces each slot (calibrated in EXPERIMENTS.md to
// the paper's observed per-client request rates).

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ndn/forwarder.hpp"
#include "tactic/tag.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/provider_app.hpp"

namespace tactic::workload {

struct ClientConfig {
  std::size_t window = 5;
  event::Time interest_lifetime = event::kSecond;
  /// Mean of the exponential per-slot think time between a slot freeing
  /// and its next request.
  event::Time think_time_mean = 200 * event::kMillisecond;
  double zipf_alpha = 0.7;
  /// Uniform random start delay (desynchronizes clients).
  event::Time start_jitter = event::kSecond;
  /// Backoff before retrying a refused/timed-out registration.
  event::Time registration_backoff = 2 * event::kSecond;
  /// Verify content signatures against `verify_pki` before counting a
  /// chunk as received (paper Section 6.B: "the client can validate the
  /// content by verifying its signature").  Requires the provider to
  /// sign content.
  bool verify_content = false;
  const crypto::Pki* verify_pki = nullptr;
};

/// Per-user traffic counters (Table IV's rows; Fig. 6's tag rates).
struct UserCounters {
  std::uint64_t chunks_requested = 0;
  std::uint64_t chunks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t tags_requested = 0;
  std::uint64_t tags_received = 0;
  std::uint64_t registrations_refused = 0;
  /// Content that failed client-side signature verification (fake or
  /// unsigned content under a protected prefix with verification on).
  std::uint64_t content_verification_failures = 0;
};

class ClientApp {
 public:
  /// `providers` must outlive the app.  The client's node FIB must
  /// already default-route toward its access point.
  ClientApp(ndn::Forwarder& node, std::vector<ProviderApp*> providers,
            ClientConfig config, util::Rng rng);

  /// Schedules the first requests (after the start jitter).
  void start();
  /// Stops issuing new requests (outstanding ones simply expire).
  void stop() { running_ = false; }

  const UserCounters& counters() const { return counters_; }
  const std::string& label() const { return node_.info().label; }

  /// The client's current tag for provider `index` (may be null or
  /// expired).  Exposed for the tag-sharing threat scenarios and tests.
  core::TagPtr current_tag(std::size_t index) const {
    return index < tags_.size() ? tags_[index] : core::TagPtr{};
  }

  /// Metric hooks (wired by the experiment harness).
  std::function<void(event::Time, double)> on_latency_sample;
  std::function<void(event::Time)> on_tag_request;
  std::function<void(event::Time)> on_tag_receive;

 private:
  struct Outstanding {
    event::Time sent_at = 0;
    event::EventId timeout;
  };

  void schedule_slot_fill();
  void release_parked_slots(std::size_t count, event::Time delay);
  void fill_one_slot();
  std::size_t provider_of_rank(std::size_t rank) const;
  void advance_stream();
  void send_chunk_interest();
  void send_registration(std::size_t provider_index);
  bool verify_content_signature(const ndn::Data& data) const;
  void on_data(const ndn::Data& data);
  void on_nack(const ndn::Nack& nack);
  void on_timeout(const ndn::Name& name);
  event::Time think_sample();

  ndn::Forwarder& node_;
  std::vector<ProviderApp*> providers_;
  ClientConfig config_;
  util::Rng rng_;
  util::ZipfDist popularity_;  // over provider x object ranks
  ndn::FaceId face_ = ndn::kInvalidFace;
  bool running_ = false;

  // Stream position.
  std::size_t current_provider_ = 0;
  std::size_t current_object_ = 0;
  std::size_t next_chunk_ = 0;

  // Tag state, per provider.
  std::vector<core::TagPtr> tags_;
  std::optional<std::size_t> registration_pending_;  // provider index
  ndn::Name pending_registration_name_;
  /// Window slots waiting for a tag.  Slot tokens are conserved: each
  /// token is either an outstanding Interest, a scheduled fill event, or
  /// parked here — so the request rate stays window-limited.
  std::size_t parked_slots_ = 0;

  std::unordered_map<ndn::Name, Outstanding> outstanding_;
  UserCounters counters_;
};

}  // namespace tactic::workload
