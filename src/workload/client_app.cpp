#include "workload/client_app.hpp"

#include <algorithm>
#include <cmath>

namespace tactic::workload {

namespace {
std::size_t total_ranks(const std::vector<ProviderApp*>& providers) {
  std::size_t n = 0;
  for (const ProviderApp* p : providers) n += p->catalog().object_count();
  return n == 0 ? 1 : n;
}
}  // namespace

ClientApp::ClientApp(ndn::Forwarder& node,
                     std::vector<ProviderApp*> providers,
                     ClientConfig config, util::Rng rng)
    : node_(node),
      providers_(std::move(providers)),
      config_(config),
      rng_(rng),
      popularity_(total_ranks(providers_), config.zipf_alpha),
      tags_(providers_.size()) {
  face_ = node_.add_app_face(ndn::AppSink{
      nullptr,
      [this](const ndn::Data& data) { on_data(data); },
      [this](const ndn::Nack& nack) { on_nack(nack); }});
}

void ClientApp::start() {
  running_ = true;
  advance_stream();  // choose the first (provider, object)
  next_chunk_ = 0;
  const event::Time jitter =
      config_.start_jitter > 0
          ? static_cast<event::Time>(rng_.uniform(
                static_cast<std::uint64_t>(config_.start_jitter)))
          : 0;
  for (std::size_t slot = 0; slot < config_.window; ++slot) {
    node_.scheduler().schedule(jitter + think_sample(),
                               [this] { fill_one_slot(); });
  }
}

event::Time ClientApp::think_sample() {
  if (config_.think_time_mean <= 0) return 0;
  // Exponential via inverse transform.
  const double u = rng_.uniform_double();
  const double mean = static_cast<double>(config_.think_time_mean);
  return static_cast<event::Time>(-mean * std::log1p(-u));
}

void ClientApp::schedule_slot_fill() {
  if (!running_) return;
  node_.scheduler().schedule(think_sample(), [this] { fill_one_slot(); });
}

void ClientApp::release_parked_slots(std::size_t count, event::Time delay) {
  count = std::min(count, parked_slots_);
  parked_slots_ -= count;
  for (std::size_t i = 0; i < count; ++i) {
    node_.scheduler().schedule(delay + think_sample(),
                               [this] { fill_one_slot(); });
  }
}

std::size_t ClientApp::provider_of_rank(std::size_t rank) const {
  // Ranks interleave across providers so every provider owns content at
  // all popularity strata: rank r -> provider r % P, object r / P.
  return rank % providers_.size();
}

void ClientApp::advance_stream() {
  const std::size_t rank = popularity_.sample(rng_);
  current_provider_ = provider_of_rank(rank);
  current_object_ = rank / providers_.size();
  next_chunk_ = 0;
}

void ClientApp::fill_one_slot() {
  if (!running_) return;
  if (outstanding_.size() >= config_.window) return;  // window full

  if (next_chunk_ >=
      providers_[current_provider_]->catalog().params().chunks_per_object) {
    advance_stream();
  }

  // Registration gate: protected objects need a valid (unexpired) tag for
  // the current provider; public objects (AL 0) are fetched tag-free.
  const bool is_protected =
      providers_[current_provider_]->catalog().access_level(
          current_object_) != ndn::kPublicAccessLevel;
  const core::TagPtr& tag = tags_[current_provider_];
  const bool tag_valid =
      tag && tag->expiry() > node_.scheduler().now();
  if (is_protected && !tag_valid) {
    if (!registration_pending_) send_registration(current_provider_);
    // Park the slot; it resumes when the tag arrives or the registration
    // fails (see on_data / the registration-timeout handler).
    ++parked_slots_;
    return;
  }
  send_chunk_interest();
}

void ClientApp::send_chunk_interest() {
  ProviderApp& provider = *providers_[current_provider_];
  const ndn::Name name =
      provider.catalog().chunk_name(current_object_, next_chunk_);
  ++next_chunk_;

  if (outstanding_.count(name) > 0) {
    // Already in flight (stream wrapped onto the same object); just move
    // on next time.
    schedule_slot_fill();
    return;
  }

  ndn::Interest interest;
  interest.name = name;
  interest.nonce = rng_();
  interest.lifetime = config_.interest_lifetime;
  interest.tag = tags_[current_provider_];
  interest.tag_wire_size = interest.tag ? interest.tag->wire_size() : 0;

  Outstanding out;
  out.sent_at = node_.scheduler().now();
  out.timeout = node_.scheduler().schedule(
      config_.interest_lifetime, [this, name] { on_timeout(name); });
  outstanding_[name] = out;
  ++counters_.chunks_requested;
  node_.inject_from_app(face_, interest);
}

void ClientApp::send_registration(std::size_t provider_index) {
  ProviderApp& provider = *providers_[provider_index];
  const ndn::Name name = provider.registration_name(label(), rng_());
  registration_pending_ = provider_index;
  pending_registration_name_ = name;

  ndn::Interest interest;
  interest.name = name;
  interest.nonce = rng_();
  interest.lifetime = config_.interest_lifetime;
  interest.payload_size = 64;  // modeled credential blob

  ++counters_.tags_requested;
  if (on_tag_request) on_tag_request(node_.scheduler().now());
  node_.scheduler().schedule(config_.interest_lifetime, [this, name] {
    // Registration timeout: clear the pending marker and release one
    // parked slot after the backoff; that slot will retry registration.
    if (registration_pending_ && pending_registration_name_ == name) {
      registration_pending_.reset();
      release_parked_slots(1, config_.registration_backoff);
    }
  });
  node_.inject_from_app(face_, interest);
}

void ClientApp::on_data(const ndn::Data& data) {
  if (data.is_registration_response) {
    if (registration_pending_ && pending_registration_name_ == data.name) {
      const std::size_t provider_index = *registration_pending_;
      registration_pending_.reset();
      if (data.nack_attached || !data.tag) {
        ++counters_.registrations_refused;
        // Release one parked slot to retry later.
        release_parked_slots(1, config_.registration_backoff);
        return;
      }
      tags_[provider_index] = data.tag;
      ++counters_.tags_received;
      if (on_tag_receive) on_tag_receive(node_.scheduler().now());
      // Wake every parked slot (with think-time jitter).
      release_parked_slots(parked_slots_, 0);
    }
    return;
  }

  const auto it = outstanding_.find(data.name);
  if (it == outstanding_.end()) return;  // late duplicate
  node_.scheduler().cancel(it->second.timeout);
  const event::Time now = node_.scheduler().now();

  if (data.nack_attached) {
    ++counters_.nacks_received;
  } else if (config_.verify_content && config_.verify_pki != nullptr &&
             !verify_content_signature(data)) {
    // Fake content (paper Section 6.B): "the client can validate the
    // content by verifying its signature" and drop it.
    ++counters_.content_verification_failures;
  } else {
    ++counters_.chunks_received;
    if (on_latency_sample) {
      on_latency_sample(now, event::to_seconds(now - it->second.sent_at));
    }
  }
  outstanding_.erase(it);
  schedule_slot_fill();
}

bool ClientApp::verify_content_signature(const ndn::Data& data) const {
  if (!data.signature) return false;
  const crypto::RsaPublicKey* key =
      config_.verify_pki->find(data.provider_key_locator);
  if (key == nullptr) return false;
  return key->verify_pkcs1_sha256(data.signed_portion(), *data.signature);
}

void ClientApp::on_nack(const ndn::Nack& nack) {
  if (registration_pending_ && pending_registration_name_ == nack.name) {
    registration_pending_.reset();
    ++counters_.registrations_refused;
    release_parked_slots(1, config_.registration_backoff);
    return;
  }
  const auto it = outstanding_.find(nack.name);
  if (it == outstanding_.end()) return;
  node_.scheduler().cancel(it->second.timeout);
  outstanding_.erase(it);
  ++counters_.nacks_received;
  if (nack.reason == ndn::NackReason::kAccessPathMismatch) {
    // Mobility: the edge router no longer recognizes our location, so
    // every held tag is bound to the old one.  Drop them all; the next
    // window slot re-registers ("a mobile client needs to request a new
    // tag every time she moves to a new location", paper Section 4.A).
    for (auto& tag : tags_) tag.reset();
  }
  schedule_slot_fill();
}

void ClientApp::on_timeout(const ndn::Name& name) {
  const auto it = outstanding_.find(name);
  if (it == outstanding_.end()) return;
  outstanding_.erase(it);
  ++counters_.timeouts;
  schedule_slot_fill();
}

}  // namespace tactic::workload
