#include "workload/client_app.hpp"

#include <algorithm>
#include <cmath>

namespace tactic::workload {

namespace {
std::size_t total_ranks(const std::vector<ProviderApp*>& providers) {
  std::size_t n = 0;
  for (const ProviderApp* p : providers) n += p->catalog().object_count();
  return n == 0 ? 1 : n;
}
}  // namespace

ClientApp::ClientApp(ndn::Forwarder& node,
                     std::vector<ProviderApp*> providers,
                     ClientConfig config, util::Rng rng)
    : node_(node),
      providers_(std::move(providers)),
      config_(config),
      rng_(rng),
      popularity_(total_ranks(providers_), config.zipf_alpha),
      tags_(providers_.size()) {
  face_ = node_.add_app_face(ndn::AppSink{
      nullptr,
      [this](const ndn::Data& data) { on_data(data); },
      [this](const ndn::Nack& nack) { on_nack(nack); }});
}

void ClientApp::start() {
  running_ = true;
  advance_stream();  // choose the first (provider, object)
  next_chunk_ = 0;
  const event::Time jitter =
      config_.start_jitter > 0
          ? static_cast<event::Time>(rng_.uniform(
                static_cast<std::uint64_t>(config_.start_jitter)))
          : 0;
  for (std::size_t slot = 0; slot < config_.window; ++slot) {
    node_.scheduler().schedule(jitter + think_sample(),
                               [this] { fill_one_slot(); });
  }
}

event::Time ClientApp::think_sample() {
  if (config_.think_time_mean <= 0) return 0;
  // Exponential via inverse transform.
  const double u = rng_.uniform_double();
  const double mean = static_cast<double>(config_.think_time_mean);
  return static_cast<event::Time>(-mean * std::log1p(-u));
}

event::Time ClientApp::retry_backoff(std::size_t attempt) {
  const double cap = static_cast<double>(
      std::max<event::Time>(config_.retry_backoff_max, 1));
  double backoff = static_cast<double>(config_.retry_backoff_base);
  // Stop multiplying once past the ceiling: with a large `max_retries`
  // the unchecked exponential overflows double -> Time conversion.
  for (std::size_t i = 1; i < attempt && backoff < cap; ++i) {
    backoff *= config_.retry_backoff_factor;
  }
  const double jitter =
      1.0 + config_.retry_jitter * (2.0 * rng_.uniform_double() - 1.0);
  const double delay = std::min(backoff * jitter, cap);
  return std::max<event::Time>(1, static_cast<event::Time>(delay));
}

void ClientApp::schedule_slot_fill() {
  if (!running_) return;
  node_.scheduler().schedule(think_sample(), [this] { fill_one_slot(); });
}

void ClientApp::release_parked_slots(std::size_t count, event::Time delay) {
  count = std::min(count, parked_slots_);
  parked_slots_ -= count;
  for (std::size_t i = 0; i < count; ++i) {
    node_.scheduler().schedule(delay + think_sample(),
                               [this] { fill_one_slot(); });
  }
}

std::size_t ClientApp::provider_of_rank(std::size_t rank) const {
  // Ranks interleave across providers so every provider owns content at
  // all popularity strata: rank r -> provider r % P, object r / P.
  return rank % providers_.size();
}

void ClientApp::advance_stream() {
  const std::size_t rank = popularity_.sample(rng_);
  current_provider_ = provider_of_rank(rank);
  current_object_ = rank / providers_.size();
  next_chunk_ = 0;
}

void ClientApp::fill_one_slot() {
  if (!running_) return;
  if (config_.max_chunks > 0 && chunks_started_ >= config_.max_chunks) {
    return;  // closed-loop cap reached: the slot retires
  }
  if (outstanding_.size() >= config_.window) return;  // window full

  if (next_chunk_ >=
      providers_[current_provider_]->catalog().params().chunks_per_object) {
    advance_stream();
  }

  // Registration gate: protected objects need a valid (unexpired) tag for
  // the current provider; public objects (AL 0) are fetched tag-free.
  // Expiry is judged on this node's *local* clock — under the clock-skew
  // fault model a client can honestly believe an expired tag live (and
  // vice versa); the edge's tolerance window is what absorbs that.
  const bool is_protected =
      providers_[current_provider_]->catalog().access_level(
          current_object_) != ndn::kPublicAccessLevel;
  const core::TagPtr& tag = tags_[current_provider_];
  const event::Time local_now = node_.local_now();
  const bool tag_live = tag && tag->expiry() > local_now;
  if (is_protected && !tag_live && tag_usable(tag, local_now)) {
    // Client half of outage grace: the tag just expired but stays
    // attached for the grace window — a grace-mode edge can still vouch
    // it — while re-registration keeps trying in the background.
    if (!registration_pending_) send_registration(current_provider_);
    send_chunk_interest();
    return;
  }
  if (is_protected && !tag_live) {
    if (!registration_pending_) send_registration(current_provider_);
    // Park the slot; it resumes when the tag arrives or the registration
    // fails (see on_data / the registration-timeout handler).
    ++parked_slots_;
    return;
  }
  send_chunk_interest();
}

void ClientApp::send_chunk_interest() {
  ProviderApp& provider = *providers_[current_provider_];
  const ndn::Name name =
      provider.catalog().chunk_name(current_object_, next_chunk_);
  ++next_chunk_;

  if (outstanding_.count(name) > 0) {
    // Already in flight (stream wrapped onto the same object); just move
    // on next time.
    schedule_slot_fill();
    return;
  }

  auto interest = node_.pool().make_interest();
  interest->name = name;
  interest->nonce = rng_();
  interest->lifetime = config_.interest_lifetime;
  interest->tag = tags_[current_provider_];
  interest->tag_wire_size = interest->tag ? interest->tag->wire_size() : 0;

  Outstanding out;
  out.sent_at = node_.scheduler().now();
  out.first_sent_at = out.sent_at;
  out.provider = current_provider_;
  out.needs_tag = provider.catalog().access_level(current_object_) !=
                  ndn::kPublicAccessLevel;
  out.timeout = node_.scheduler().schedule(
      config_.interest_lifetime, [this, name] { on_timeout(name); });
  outstanding_[name] = out;
  ++counters_.chunks_requested;
  ++chunks_started_;
  node_.inject_from_app(face_, std::move(interest));
}

void ClientApp::resend_chunk(const ndn::Name& name) {
  const auto it = outstanding_.find(name);
  if (it == outstanding_.end()) return;  // answered during the backoff
  Outstanding& out = it->second;

  // Re-resolve the tag: a re-registration during the backoff may have
  // replaced it.  If it expired instead (on this node's local clock,
  // minus any client-side grace), a resend would only be silently
  // dropped by Protocol 1, so surrender the slot to the registration gate
  // rather than burn the retry budget (this is not a loss abandonment).
  const core::TagPtr& tag = tags_[out.provider];
  if (out.needs_tag && !tag_usable(tag, node_.local_now())) {
    outstanding_.erase(it);
    schedule_slot_fill();
    return;
  }

  auto interest = node_.pool().make_interest();
  interest->name = name;
  interest->nonce = rng_();  // fresh nonce so PITs don't flag a duplicate
  interest->lifetime = config_.interest_lifetime;
  interest->tag = tag;
  interest->tag_wire_size = interest->tag ? interest->tag->wire_size() : 0;

  out.sent_at = node_.scheduler().now();
  out.timeout = node_.scheduler().schedule(
      config_.interest_lifetime, [this, name] { on_timeout(name); });
  ++counters_.chunks_requested;
  ++counters_.retransmissions;
  node_.inject_from_app(face_, std::move(interest));
}

bool ClientApp::tag_usable(const core::TagPtr& tag,
                           event::Time local_now) const {
  if (!tag) return false;
  if (tag->expiry() > local_now) return true;
  return config_.expired_tag_grace > 0 &&
         tag->expiry() + config_.expired_tag_grace > local_now;
}

void ClientApp::schedule_renewal(std::size_t provider_index,
                                 core::TagPtr tag) {
  // Renewal target on this node's clock: T_e - lead, jittered uniformly
  // in [-jitter, +jitter] so a cohort whose tags were issued in the same
  // instant spreads its re-registrations instead of stampeding the
  // issuer.  The local-time delta is used as the scheduling delay
  // directly — under drift that is off by at most drift * lead, far
  // inside the jitter window.
  const double u = 2.0 * rng_.uniform_double() - 1.0;
  const event::Time target =
      tag->expiry() - config_.renewal_lead +
      static_cast<event::Time>(static_cast<double>(config_.renewal_jitter) *
                               u);
  const event::Time delay =
      std::max<event::Time>(1, target - node_.local_now());
  node_.scheduler().schedule(delay, [this, provider_index, tag] {
    if (!running_) return;
    if (tags_[provider_index] != tag) return;  // already replaced
    if (registration_pending_) return;         // renewal already underway
    ++counters_.proactive_renewals;
    send_registration(provider_index);
  });
}

void ClientApp::send_registration(std::size_t provider_index) {
  registration_pending_ = provider_index;
  registration_retries_ = 0;
  send_registration_attempt();
}

void ClientApp::send_registration_attempt() {
  ProviderApp& provider = *providers_[*registration_pending_];
  const ndn::Name name = provider.registration_name(label(), rng_());
  pending_registration_name_ = name;

  auto interest = node_.pool().make_interest();
  interest->name = name;
  interest->nonce = rng_();
  interest->lifetime = config_.interest_lifetime;
  interest->payload_size = 64;  // modeled credential blob

  ++counters_.tags_requested;
  if (on_tag_request) on_tag_request(node_.scheduler().now());
  registration_timeout_ = node_.scheduler().schedule(
      config_.interest_lifetime, [this] { on_registration_timeout(); });
  node_.inject_from_app(face_, std::move(interest));
}

void ClientApp::on_registration_timeout() {
  if (!registration_pending_) return;
  if (running_ && registration_retries_ < config_.max_retries) {
    // Same retransmission mechanism as chunks: backoff, then a fresh
    // registration Interest (new name nonce — a late response to the old
    // one no longer matches and is ignored).
    ++registration_retries_;
    ++counters_.registration_retransmissions;
    node_.scheduler().schedule(retry_backoff(registration_retries_), [this] {
      if (registration_pending_) send_registration_attempt();
    });
    return;
  }
  // Retry budget exhausted: clear the pending marker and release one
  // parked slot after a jittered backoff (continuing the attempt
  // exponential); that slot will re-register.  A fixed delay here would
  // resynchronize every client a recovering provider starved.
  registration_pending_.reset();
  release_parked_slots(1, retry_backoff(++registration_refusal_streak_));
}

void ClientApp::on_data(const ndn::Data& data) {
  if (data.is_registration_response) {
    if (registration_pending_ && pending_registration_name_ == data.name) {
      const std::size_t provider_index = *registration_pending_;
      registration_pending_.reset();
      node_.scheduler().cancel(registration_timeout_);
      if (data.nack_attached || !data.tag) {
        ++counters_.registrations_refused;
        // Release one parked slot to retry later, after a jittered
        // exponential backoff — refusal waves from a recovering
        // provider must not resynchronize.
        release_parked_slots(1,
                             retry_backoff(++registration_refusal_streak_));
        return;
      }
      tags_[provider_index] = data.tag;
      ++counters_.tags_received;
      registration_refusal_streak_ = 0;
      if (on_tag_receive) on_tag_receive(node_.scheduler().now());
      if (config_.proactive_renewal) {
        schedule_renewal(provider_index, data.tag);
      }
      // Wake every parked slot (with think-time jitter).
      release_parked_slots(parked_slots_, 0);
    }
    return;
  }

  const auto it = outstanding_.find(data.name);
  if (it == outstanding_.end()) return;  // late duplicate
  // Cancels the pending timeout — or, if the chunk is between a timeout
  // and its retransmission, the scheduled resend (late data during the
  // backoff still counts; the resend would have been wasted).
  node_.scheduler().cancel(it->second.timeout);
  const event::Time now = node_.scheduler().now();

  if (data.nack_attached) {
    ++counters_.nacks_received;
    ++counters_.nacks_by_reason[static_cast<std::size_t>(data.nack_reason)];
    if (data.nack_reason == ndn::NackReason::kRouterOverloaded) {
      // A router shed this request under load; the timer is already
      // cancelled, so back off and retry without burning the slot.
      on_overload_nack(data.name);
      return;
    }
  } else if (config_.verify_content && config_.verify_pki != nullptr &&
             !verify_content_signature(data)) {
    // Fake content (paper Section 6.B): "the client can validate the
    // content by verifying its signature" and drop it.
    ++counters_.content_verification_failures;
  } else {
    ++counters_.chunks_received;
    if (on_latency_sample) {
      on_latency_sample(now, event::to_seconds(now - it->second.sent_at));
    }
    if (it->second.retries > 0 && on_recovery_sample) {
      on_recovery_sample(
          now, event::to_seconds(now - it->second.first_sent_at));
    }
  }
  outstanding_.erase(it);
  schedule_slot_fill();
}

bool ClientApp::verify_content_signature(const ndn::Data& data) const {
  if (!data.signature) return false;
  const crypto::RsaPublicKey* key =
      config_.verify_pki->find(data.provider_key_locator);
  if (key == nullptr) return false;
  return key->verify_pkcs1_sha256(data.signed_portion(), *data.signature);
}

void ClientApp::on_nack(const ndn::Nack& nack) {
  if (registration_pending_ && pending_registration_name_ == nack.name) {
    registration_pending_.reset();
    node_.scheduler().cancel(registration_timeout_);
    ++counters_.registrations_refused;
    // Jittered exponential, as in on_data's refusal branch.
    release_parked_slots(1, retry_backoff(++registration_refusal_streak_));
    return;
  }
  const auto it = outstanding_.find(nack.name);
  if (it == outstanding_.end()) return;
  node_.scheduler().cancel(it->second.timeout);
  ++counters_.nacks_received;
  ++counters_.nacks_by_reason[static_cast<std::size_t>(nack.reason)];
  if (nack.reason == ndn::NackReason::kRouterOverloaded) {
    on_overload_nack(nack.name);
    return;
  }
  outstanding_.erase(it);
  if (nack.reason == ndn::NackReason::kAccessPathMismatch) {
    // Mobility: the edge router no longer recognizes our location, so
    // every held tag is bound to the old one.  Drop them all; the next
    // window slot re-registers ("a mobile client needs to request a new
    // tag every time she moves to a new location", paper Section 4.A).
    for (auto& tag : tags_) tag.reset();
  }
  schedule_slot_fill();
}

void ClientApp::on_overload_nack(const ndn::Name& name) {
  const auto it = outstanding_.find(name);
  if (it == outstanding_.end()) return;
  ++counters_.overload_nacks;
  Outstanding& out = it->second;
  if (running_ && out.retries < config_.max_retries) {
    // Immediate backoff: the router told us to come back later, so the
    // retry starts now rather than after the Interest lifetime runs out.
    // The slot token stays on this entry through the backoff.
    ++out.retries;
    const ndn::Name retry_name = name;
    out.timeout = node_.scheduler().schedule(
        retry_backoff(out.retries),
        [this, retry_name] { resend_chunk(retry_name); });
    return;
  }
  if (running_ && config_.max_retries > 0) ++counters_.chunks_abandoned;
  outstanding_.erase(it);
  schedule_slot_fill();
}

void ClientApp::on_timeout(const ndn::Name& name) {
  const auto it = outstanding_.find(name);
  if (it == outstanding_.end()) return;
  ++counters_.timeouts;
  Outstanding& out = it->second;
  if (running_ && out.retries < config_.max_retries) {
    // Keep the slot token on this entry through the backoff and resend.
    ++out.retries;
    out.timeout = node_.scheduler().schedule(
        retry_backoff(out.retries), [this, name] { resend_chunk(name); });
    return;
  }
  if (running_ && config_.max_retries > 0) ++counters_.chunks_abandoned;
  outstanding_.erase(it);
  schedule_slot_fill();
}

}  // namespace tactic::workload
