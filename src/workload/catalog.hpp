#pragma once
// Per-provider content catalog.
//
// The paper's setup: "each producer generates 50 content objects of 50
// chunks each" with Zipf (alpha = 0.7) popularity.  Objects carry an
// access level; a configurable fraction is published at a higher level so
// the insufficient-access-level threat (d) is exercisable.  Chunk payloads
// and content signatures are materialized lazily — the simulator accounts
// sizes only, while the examples can ask for real AES-128-CTR-encrypted
// bytes to demonstrate end-to-end confidentiality.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "crypto/aes.hpp"
#include "ndn/name.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace tactic::workload {

struct CatalogParams {
  std::size_t objects = 50;
  std::size_t chunks_per_object = 50;
  std::size_t chunk_size = 1024;  // bytes
  /// Base access level of protected objects.
  std::uint32_t base_access_level = 1;
  /// Fraction of objects published at base_access_level + 1 (for the
  /// insufficient-AL threat); assigned to the least popular ranks.
  double high_al_fraction = 0.0;
  /// Fraction of objects published publicly (AL = 0, no tag needed).
  double public_fraction = 0.0;
};

class Catalog {
 public:
  /// `prefix` is the provider's name prefix, e.g. "/provider3".
  /// `rng` seeds the content-encryption key.
  Catalog(ndn::Name prefix, CatalogParams params, util::Rng& rng);

  const ndn::Name& prefix() const { return prefix_; }
  const CatalogParams& params() const { return params_; }
  std::size_t object_count() const { return params_.objects; }
  std::size_t chunk_count() const {
    return params_.objects * params_.chunks_per_object;
  }

  /// "/­<prefix>/obj<o>/c<c>".
  ndn::Name chunk_name(std::size_t object, std::size_t chunk) const;

  /// Inverse of chunk_name; nullopt for names not in this catalog.
  std::optional<std::pair<std::size_t, std::size_t>> parse(
      const ndn::Name& name) const;

  /// Object access level (0 = public).  Objects are ordered by popularity
  /// rank: public objects first, then base-AL, then high-AL.
  std::uint32_t access_level(std::size_t object) const;

  /// The provider's symmetric content-encryption key (delivered to
  /// clients RSA-encrypted alongside their tag, per Section 6).
  const util::Bytes& content_key() const { return content_key_; }

  /// Deterministic plaintext of a chunk (derived from its name).
  util::Bytes chunk_plaintext(std::size_t object, std::size_t chunk) const;

  /// AES-128-CTR encryption of the chunk under content_key().
  util::Bytes chunk_ciphertext(std::size_t object, std::size_t chunk) const;

 private:
  ndn::Name prefix_;
  CatalogParams params_;
  std::vector<std::uint32_t> access_levels_;  // per object
  util::Bytes content_key_;
};

}  // namespace tactic::workload
