#include "workload/attacker_app.hpp"

#include <cmath>

namespace tactic::workload {

const char* to_string(AttackerMode mode) {
  switch (mode) {
    case AttackerMode::kNoTag: return "no-tag";
    case AttackerMode::kForgedTag: return "forged-tag";
    case AttackerMode::kForgedTagChurn: return "forged-tag-churn";
    case AttackerMode::kExpiredTag: return "expired-tag";
    case AttackerMode::kInsufficientAccessLevel: return "low-access-level";
    case AttackerMode::kSharedTag: return "shared-tag";
    case AttackerMode::kWrongProvider: return "wrong-provider";
  }
  return "?";
}

namespace {
std::size_t total_ranks(const std::vector<ProviderApp*>& providers) {
  std::size_t n = 0;
  for (const ProviderApp* p : providers) n += p->catalog().object_count();
  return n == 0 ? 1 : n;
}
}  // namespace

AttackerApp::AttackerApp(ndn::Forwarder& node,
                         std::vector<ProviderApp*> providers,
                         AttackerConfig config, AttackerMode mode,
                         TagStrategy make_tag, util::Rng rng)
    : node_(node),
      providers_(std::move(providers)),
      config_(config),
      mode_(mode),
      make_tag_(std::move(make_tag)),
      rng_(rng),
      popularity_(total_ranks(providers_), config.zipf_alpha) {
  face_ = node_.add_app_face(ndn::AppSink{
      nullptr,
      [this](const ndn::Data& data) { on_data(data); },
      [this](const ndn::Nack& nack) { on_nack(nack); }});
}

void AttackerApp::start() {
  running_ = true;
  const event::Time jitter =
      config_.start_jitter > 0
          ? static_cast<event::Time>(rng_.uniform(
                static_cast<std::uint64_t>(config_.start_jitter)))
          : 0;
  for (std::size_t slot = 0; slot < config_.window; ++slot) {
    node_.scheduler().schedule(jitter + think_sample(),
                               [this] { fill_one_slot(); });
  }
}

void AttackerApp::set_tempo(std::size_t window,
                            event::Time think_time_mean) {
  const std::size_t old_window = config_.window;
  config_.window = window;
  config_.think_time_mean = think_time_mean;
  if (!running_) return;
  for (std::size_t slot = old_window; slot < window; ++slot) {
    schedule_slot_fill();
  }
}

event::Time AttackerApp::think_sample() {
  if (config_.think_time_mean <= 0) return 0;
  const double u = rng_.uniform_double();
  const double mean = static_cast<double>(config_.think_time_mean);
  return static_cast<event::Time>(-mean * std::log1p(-u));
}

void AttackerApp::schedule_slot_fill() {
  if (!running_) return;
  node_.scheduler().schedule(think_sample(), [this] { fill_one_slot(); });
}

void AttackerApp::fill_one_slot() {
  if (!running_ || outstanding_.size() >= config_.window) return;
  if (config_.max_chunks > 0 &&
      counters_.chunks_requested >= config_.max_chunks) {
    return;  // closed-loop cap reached: the slot retires
  }

  // Pick a target chunk by the same popularity law clients use (attackers
  // want content that is likely cached).
  const std::size_t rank = popularity_.sample(rng_);
  const std::size_t provider_index = rank % providers_.size();
  ProviderApp& provider = *providers_[provider_index];
  const std::size_t object = rank / providers_.size();
  const std::size_t chunk =
      rng_.uniform(provider.catalog().params().chunks_per_object);

  // Low-AL attackers aim specifically at high-AL objects; wrong-provider
  // attackers aim at providers their tag does not cover — both handled by
  // the strategy/scenario, which sees the final name.
  ndn::Name name = provider.catalog().chunk_name(object, chunk);
  if (outstanding_.count(name) > 0) {
    schedule_slot_fill();
    return;
  }

  auto interest = node_.pool().make_interest();
  interest->name = name;
  interest->nonce = rng_();
  interest->lifetime = config_.interest_lifetime;
  interest->tag = make_tag_ ? make_tag_(name, node_.scheduler().now())
                            : core::TagPtr{};
  interest->tag_wire_size = interest->tag ? interest->tag->wire_size() : 0;

  Outstanding out;
  out.sent_at = node_.scheduler().now();
  out.timeout = node_.scheduler().schedule(
      config_.interest_lifetime, [this, name] { on_timeout(name); });
  outstanding_[name] = out;
  ++counters_.chunks_requested;
  node_.inject_from_app(face_, std::move(interest));
}

void AttackerApp::on_data(const ndn::Data& data) {
  const auto it = outstanding_.find(data.name);
  if (it == outstanding_.end()) return;
  node_.scheduler().cancel(it->second.timeout);
  if (data.nack_attached) {
    ++counters_.nacks_received;
    ++counters_.nacks_by_reason[static_cast<std::size_t>(data.nack_reason)];
  } else {
    // Unauthorized delivery — the event TACTIC exists to prevent.
    ++counters_.chunks_received;
  }
  outstanding_.erase(it);
  schedule_slot_fill();
}

void AttackerApp::on_nack(const ndn::Nack& nack) {
  const auto it = outstanding_.find(nack.name);
  if (it == outstanding_.end()) return;
  node_.scheduler().cancel(it->second.timeout);
  outstanding_.erase(it);
  ++counters_.nacks_received;
  ++counters_.nacks_by_reason[static_cast<std::size_t>(nack.reason)];
  schedule_slot_fill();
}

void AttackerApp::on_timeout(const ndn::Name& name) {
  const auto it = outstanding_.find(name);
  if (it == outstanding_.end()) return;
  outstanding_.erase(it);
  ++counters_.timeouts;
  schedule_slot_fill();
}

namespace attacker_strategies {

AttackerApp::TagStrategy no_tag() {
  return [](const ndn::Name&, event::Time) { return core::TagPtr{}; };
}

AttackerApp::TagStrategy forged(
    std::shared_ptr<const crypto::RsaPrivateKey> forger_key,
    std::string client_label, event::Time validity) {
  // Cache the forgery per provider prefix until it "expires" so forging
  // cost stays off the hot path.
  auto cache = std::make_shared<
      std::unordered_map<std::string, core::TagPtr>>();
  return [forger_key = std::move(forger_key),
          client_label = std::move(client_label), validity,
          cache](const ndn::Name& content, event::Time now) -> core::TagPtr {
    const std::string prefix = content.prefix(1).to_uri();
    auto& slot = (*cache)[prefix];
    if (!slot || slot->expiry() <= now) {
      core::Tag::Fields fields;
      fields.provider_key_locator = prefix + "/KEY/1";
      fields.client_key_locator = "/" + client_label + "/KEY/1";
      fields.access_level = 0xFFFFFFFF;  // claim the maximum privilege
      fields.expiry = now + validity;
      slot = core::forge_tag(fields, *forger_key);
    }
    return slot;
  };
}

AttackerApp::TagStrategy forged_churn(
    std::shared_ptr<const crypto::RsaPrivateKey> forger_key,
    std::string client_label, event::Time validity) {
  struct State {
    std::unordered_map<std::string, core::TagPtr> templates;
    std::uint64_t counter = 0;
  };
  auto state = std::make_shared<State>();
  return [forger_key = std::move(forger_key),
          client_label = std::move(client_label), validity,
          state](const ndn::Name& content, event::Time now) -> core::TagPtr {
    const std::string prefix = content.prefix(1).to_uri();
    auto& tmpl = state->templates[prefix];
    if (!tmpl || tmpl->expiry() <= now + validity) {
      core::Tag::Fields fields;
      fields.provider_key_locator = prefix + "/KEY/1";
      fields.client_key_locator = "/" + client_label + "/KEY/1";
      fields.access_level = 0xFFFFFFFF;
      fields.expiry = now + 2 * validity;
      tmpl = core::forge_tag(fields, *forger_key);
    }
    // Unique expiry per request: still comfortably fresh (the precheck
    // passes), but a different bloom_key — a cache-proof forgery without
    // paying an RSA signing per Interest.
    core::Tag::Fields fields = tmpl->fields();
    fields.expiry -= static_cast<event::Time>(++state->counter);
    return std::make_shared<const core::Tag>(fields, tmpl->signature());
  };
}

AttackerApp::TagStrategy expired(core::TagPtr stale_tag) {
  return [stale_tag = std::move(stale_tag)](const ndn::Name&, event::Time) {
    return stale_tag;
  };
}

AttackerApp::TagStrategy insufficient_al(
    std::function<core::TagPtr(event::Time)> mint) {
  auto cached = std::make_shared<core::TagPtr>();
  return [mint = std::move(mint), cached](const ndn::Name&,
                                          event::Time now) -> core::TagPtr {
    if (!*cached || (*cached)->expiry() <= now) *cached = mint(now);
    return *cached;
  };
}

AttackerApp::TagStrategy shared(std::function<core::TagPtr()> victim_tag) {
  return [victim_tag = std::move(victim_tag)](const ndn::Name&,
                                              event::Time) {
    return victim_tag();
  };
}

}  // namespace attacker_strategies

}  // namespace tactic::workload
