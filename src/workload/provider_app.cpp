#include "workload/provider_app.hpp"

#include "tactic/precheck.hpp"

namespace tactic::workload {

ProviderApp::ProviderApp(ndn::Forwarder& node, const std::string& prefix_uri,
                         ProviderConfig config, core::TrustAnchors& anchors,
                         util::Rng rng)
    : node_(node),
      config_(config),
      rng_(rng),
      keypair_(crypto::generate_rsa_keypair(rng_, config.key_bits)),
      catalog_(ndn::Name(prefix_uri), config.catalog, rng_),
      issuer_(prefix_uri + "/KEY/1", keypair_.private_key,
              config.tag_validity),
      anchors_(anchors) {
  anchors.pki.add_key(issuer_.key_locator(), keypair_.public_key);
  if (config_.catalog.public_fraction < 1.0) {
    anchors.protected_prefixes.insert(catalog_.prefix().to_uri());
  }
  face_ = node_.add_app_face(ndn::AppSink{
      [this](ndn::FaceId face, const ndn::Interest& interest) {
        on_interest(face, interest);
      },
      nullptr, nullptr});
  node_.fib().add_route(catalog_.prefix(), face_);
}

ndn::Name ProviderApp::registration_name(const std::string& client_label,
                                         std::uint64_t nonce) const {
  return catalog_.prefix()
      .append("register")
      .append(client_label)
      .append_number(nonce);
}

std::string ProviderApp::client_key_locator(const std::string& client_label) {
  return "/" + client_label + "/KEY/1";
}

void ProviderApp::on_interest(ndn::FaceId face,
                              const ndn::Interest& interest) {
  if (interest.name.size() >= 2 && interest.name.at(1) == "register") {
    handle_registration(face, interest);
  } else {
    handle_content(face, interest);
  }
}

void ProviderApp::handle_registration(ndn::FaceId face,
                                      const ndn::Interest& interest) {
  ++counters_.registrations_received;
  if (interest.name.size() < 3) return;  // malformed
  const std::string& label = interest.name.at(2);
  const std::string locator = client_key_locator(label);

  // Issuance stamps T_e off the provider's *local* clock: a skewed
  // provider mints skewed expiries, which is the whole point of the
  // clock-skew fault model.
  core::TagPtr tag =
      issuer_.issue(locator, interest.access_path, node_.local_now());
  if (!tag) {
    ++counters_.registrations_refused;
    if (config_.refuse_with_nack) {
      auto refusal = node_.pool().make_data();
      refusal->name = interest.name;
      refusal->content_size = 16;
      refusal->is_registration_response = true;
      refusal->provider_key_locator = issuer_.key_locator();
      refusal->nack_attached = true;
      refusal->nack_reason = ndn::NackReason::kRegistrationRefused;
      node_.inject_from_app(face, std::move(refusal));
    }
    // Paper behaviour: "drops the request otherwise" — the client times
    // out and may retry.
    return;
  }
  ++counters_.tags_issued;

  auto response = node_.pool().make_data();
  response->name = interest.name;
  response->is_registration_response = true;
  response->provider_key_locator = issuer_.key_locator();
  response->tag = tag;
  response->tag_wire_size = tag->wire_size();
  // The content-decryption key travels alongside the tag, encrypted under
  // the client's public key (Section 6).  Real RSA when the client key is
  // resolvable; size-modeled otherwise.
  if (client_key_lookup_) {
    if (const crypto::RsaPublicKey* client_key = client_key_lookup_(label)) {
      const util::Bytes blob =
          client_key->encrypt_pkcs1(rng_, catalog_.content_key());
      ++counters_.key_encryptions;
      response->content_size = blob.size();
    } else {
      response->content_size = keypair_.public_key.modulus_size();
    }
  } else {
    response->content_size = keypair_.public_key.modulus_size();
  }
  node_.inject_from_app(face, std::move(response));
}

void ProviderApp::handle_content(ndn::FaceId face,
                                 const ndn::Interest& interest) {
  const auto parsed = catalog_.parse(interest.name);
  if (!parsed) return;  // unknown name under our prefix: drop
  const auto [object, chunk] = *parsed;

  auto response = node_.pool().make_data();
  response->name = interest.name;
  response->content_size = catalog_.params().chunk_size;
  response->access_level = catalog_.access_level(object);
  response->provider_key_locator = issuer_.key_locator();
  response->signature_size = keypair_.public_key.modulus_size();
  if (config_.sign_content) {
    auto& cached = signature_cache_[response->name];
    if (!cached) {
      cached = std::make_shared<const util::Bytes>(
          keypair_.private_key.sign_pkcs1_sha256(response->signed_portion()));
    }
    response->signature = cached;
  }
  response->tag = interest.tag;
  response->tag_wire_size = interest.tag_wire_size;
  response->flag_f = interest.flag_f;

  // The provider is the ultimate content router: validate exactly as
  // Protocol 3 prescribes, so downstream edge insertion semantics hold.
  if (config_.enforce_access_control &&
      response->access_level != ndn::kPublicAccessLevel) {
    bool valid = true;
    ndn::NackReason reason = ndn::NackReason::kNone;
    if (!interest.tag) {
      valid = false;
      reason = ndn::NackReason::kNoTag;
    } else if (interest.tag->expiry() + config_.expiry_tolerance <
               node_.local_now()) {
      // The provider is the revocation authority: an expired tag is a
      // revoked credential regardless of which mechanism the routers run.
      // The comparison runs on the provider's local clock (plus its
      // configured tolerance) — under drift even the clock that stamped
      // T_e can disagree with itself by the time the tag comes back.
      valid = false;
      reason = ndn::NackReason::kExpiredTag;
    } else {
      const core::PrecheckResult pre =
          core::content_precheck(*interest.tag, *response);
      if (pre != core::PrecheckResult::kOk) {
        valid = false;
        reason = core::to_nack_reason(pre);
      } else if (interest.flag_f == 0.0 ||
                 rng_.bernoulli(interest.flag_f)) {
        ++counters_.sig_verifications;
        if (!core::verify_tag_signature(*interest.tag, anchors_.pki)) {
          valid = false;
          reason = ndn::NackReason::kInvalidSignature;
        } else {
          response->flag_f = 0.0;  // vouch: let the edge insert
        }
      }
    }
    if (!valid) {
      ++counters_.content_nacked;
      response->nack_attached = true;
      response->nack_reason = reason;
      node_.inject_from_app(face, std::move(response));
      return;
    }
  }
  ++counters_.content_served;
  node_.inject_from_app(face, std::move(response));
}

}  // namespace tactic::workload
