#pragma once
// Content-provider application.
//
// Serves its catalog, runs the registration service (tag issuance,
// revocation), and — being the authoritative origin — validates tags on
// requests that miss every in-network cache, with the same flag-F
// semantics as a content router so edge routers learn from provider
// answers too.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "crypto/rsa.hpp"
#include "ndn/forwarder.hpp"
#include "tactic/registration.hpp"
#include "tactic/tactic_policy.hpp"
#include "workload/catalog.hpp"

namespace tactic::workload {

struct ProviderConfig {
  CatalogParams catalog;
  /// Tag validity T_e - T_now (paper default: 10 s).
  event::Time tag_validity = 10 * event::kSecond;
  /// Answer refused registrations with a NACK-marked Data instead of the
  /// paper's silent drop (useful in examples; off for paper parity).
  bool refuse_with_nack = false;
  /// RSA modulus bits for the provider key.
  std::size_t key_bits = 1024;
  /// Validate tags on requests that reach the provider.  Off for the
  /// client-side-enforcement baselines, where the network and provider
  /// serve everyone and only decryption ability protects the content.
  bool enforce_access_control = true;
  /// Attach a real RSA signature to every content Data (over
  /// Data::signed_portion()).  Lets clients detect fake content from a
  /// prefix-hijacking provider (paper Section 6.B).  Signatures are
  /// computed lazily, once per chunk.
  bool sign_content = false;
  /// Soft window past T_e inside which the provider still honours a tag
  /// on direct content requests — the provider-side mirror of the
  /// routers' SkewToleranceConfig (it validates against its own local
  /// clock, which under the clock-skew fault model can run ahead of the
  /// clock that stamped the tag... including its own past self under
  /// drift).  0 (default) keeps the strict check.
  event::Time expiry_tolerance = 0;
};

/// Per-provider operation counters (Table II's provider burden column).
struct ProviderCounters {
  std::uint64_t registrations_received = 0;
  std::uint64_t tags_issued = 0;
  std::uint64_t registrations_refused = 0;
  std::uint64_t content_served = 0;
  std::uint64_t content_nacked = 0;
  std::uint64_t sig_verifications = 0;
  std::uint64_t key_encryptions = 0;
};

class ProviderApp {
 public:
  /// Creates the provider on `node`: generates its RSA key, registers it
  /// (and its protected prefix, unless the catalog is fully public) in
  /// `anchors`, builds the catalog, and attaches an app face with a FIB
  /// route for the prefix.
  ProviderApp(ndn::Forwarder& node, const std::string& prefix_uri,
              ProviderConfig config, core::TrustAnchors& anchors,
              util::Rng rng);

  const ndn::Name& prefix() const { return catalog_.prefix(); }
  const Catalog& catalog() const { return catalog_; }
  const std::string& key_locator() const { return issuer_.key_locator(); }
  const crypto::RsaPublicKey& public_key() const {
    return keypair_.public_key;
  }
  core::TagIssuer& issuer() { return issuer_; }
  const ProviderCounters& counters() const { return counters_; }
  ndn::Forwarder& node() { return node_; }

  /// Optional: resolve a client label to its real public key so the
  /// content-decryption key is RSA-encrypted for real (examples).  When
  /// unset the encrypted-key blob is size-modeled only.
  void set_client_key_lookup(
      std::function<const crypto::RsaPublicKey*(const std::string&)> fn) {
    client_key_lookup_ = std::move(fn);
  }

  /// Name a client uses to register: "/<prefix>/register/<label>/<nonce>".
  ndn::Name registration_name(const std::string& client_label,
                              std::uint64_t nonce) const;

  /// The client key locator convention used in issued tags.
  static std::string client_key_locator(const std::string& client_label);

 private:
  void on_interest(ndn::FaceId face, const ndn::Interest& interest);
  void handle_registration(ndn::FaceId face, const ndn::Interest& interest);
  void handle_content(ndn::FaceId face, const ndn::Interest& interest);

  ndn::Forwarder& node_;
  ProviderConfig config_;
  util::Rng rng_;
  crypto::RsaKeyPair keypair_;
  Catalog catalog_;
  core::TagIssuer issuer_;
  const core::TrustAnchors& anchors_;
  ndn::FaceId face_ = ndn::kInvalidFace;
  ProviderCounters counters_;
  /// Lazily-computed per-chunk content signatures (sign_content).
  std::unordered_map<ndn::Name, std::shared_ptr<const util::Bytes>>
      signature_cache_;
  std::function<const crypto::RsaPublicKey*(const std::string&)>
      client_key_lookup_;
};

}  // namespace tactic::workload
