#pragma once
// Hierarchical NDN names.
//
// A name is an ordered list of components, written as a URI like
// "/provider3/obj12/chunk7".  Names identify content, name prefixes
// identify providers (FIB entries), and public-key locators are themselves
// names (paper Section 3.B).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace tactic::ndn {

class Name {
 public:
  Name() = default;
  /// Parses a URI: leading '/' optional, empty components collapsed.
  /// "/" or "" parse to the empty (root) name.
  explicit Name(std::string_view uri);
  Name(std::initializer_list<std::string> components);

  static Name from_components(std::vector<std::string> components);

  bool empty() const { return components_.empty(); }
  std::size_t size() const { return components_.size(); }
  const std::string& at(std::size_t i) const { return components_.at(i); }
  const std::vector<std::string>& components() const { return components_; }

  /// Canonical URI form, "/a/b/c"; the root name renders as "/".
  std::string to_uri() const;

  /// First `n` components (n clamped to size()).
  Name prefix(std::size_t n) const;

  /// True when *this is a (non-strict) prefix of `other`.
  bool is_prefix_of(const Name& other) const;

  /// Returns a copy with `component` appended.
  Name append(std::string_view component) const;
  Name append_number(std::uint64_t number) const;

  /// Lexicographic comparison by components (shorter-is-smaller ties).
  int compare(const Name& other) const;
  friend bool operator==(const Name& a, const Name& b) {
    return a.components_ == b.components_;
  }
  friend bool operator!=(const Name& a, const Name& b) { return !(a == b); }
  friend bool operator<(const Name& a, const Name& b) {
    return a.compare(b) < 0;
  }

  /// Stable 64-bit hash of the canonical URI (FNV-1a), for hash maps.
  std::uint64_t hash() const;

 private:
  std::vector<std::string> components_;
};

}  // namespace tactic::ndn

template <>
struct std::hash<tactic::ndn::Name> {
  std::size_t operator()(const tactic::ndn::Name& name) const noexcept {
    return static_cast<std::size_t>(name.hash());
  }
};
