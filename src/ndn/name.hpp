#pragma once
// Hierarchical NDN names over interned components.
//
// A name is an ordered list of components, written as a URI like
// "/provider3/obj12/chunk7".  Names identify content, name prefixes
// identify providers (FIB entries), and public-key locators are themselves
// names (paper Section 3.B).
//
// Representation: every component string is interned once in the global
// NameTable and a Name holds a small vector of dense 32-bit ComponentIds.
// Component equality is an integer compare, prefix slicing copies a few
// words, and the container hash is a handful of integer multiplies — the
// foundation for million-entry FIB/PIT/CS tables.  All *semantics* stay
// string-defined: equality, ordering (compare/<), and hash() are functions
// of the component strings alone, so interning order is unobservable and
// fingerprints are unaffected by the representation.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "ndn/name_table.hpp"

namespace tactic::ndn {

class Name {
 public:
  Name() = default;
  /// Parses a URI: leading '/' optional, empty components collapsed.
  /// "/" or "" parse to the empty (root) name.
  explicit Name(std::string_view uri);
  Name(std::initializer_list<std::string> components);

  static Name from_components(std::vector<std::string> components);
  /// Builds a name directly from interned component IDs (table lookups
  /// already paid).  IDs must come from NameTable::instance().
  static Name from_ids(std::vector<ComponentId> ids);

  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }
  /// Resets to the empty name, keeping the component vector's capacity
  /// (arena slots call this on reuse so steady state allocates nothing).
  void clear() {
    ids_.clear();
    hash_ = 0;
    hash_cached_ = false;
  }
  /// Component text; the reference is stable for the process lifetime
  /// (it aliases the global interning table).
  const std::string& at(std::size_t i) const {
    return NameTable::instance().text(ids_.at(i));
  }
  /// The interned component IDs (the representation tables key on).
  const std::vector<ComponentId>& component_ids() const { return ids_; }
  /// Materialized component strings (compatibility helper; allocates).
  std::vector<std::string> components() const;

  /// Canonical URI form, "/a/b/c"; the root name renders as "/".
  std::string to_uri() const;
  /// Length of to_uri() in bytes, computed without allocating (wire-size
  /// accounting on the forwarding hot path).
  std::size_t uri_size() const;

  /// First `n` components (n clamped to size()).
  Name prefix(std::size_t n) const;

  /// True when *this is a (non-strict) prefix of `other`.
  bool is_prefix_of(const Name& other) const;

  /// Returns a copy with `component` appended.
  Name append(std::string_view component) const;
  Name append_number(std::uint64_t number) const;

  /// Lexicographic comparison by component strings (shorter-is-smaller
  /// ties).  Interning IDs are order-free, so this walks the table text.
  int compare(const Name& other) const;
  friend bool operator==(const Name& a, const Name& b) {
    return a.ids_ == b.ids_;  // interning makes string equality an ID compare
  }
  friend bool operator!=(const Name& a, const Name& b) { return !(a == b); }
  friend bool operator<(const Name& a, const Name& b) {
    return a.compare(b) < 0;
  }

  /// Stable 64-bit hash of the canonical URI (FNV-1a over the bytes), for
  /// hash maps and any fingerprint-visible use.  Cached after the first
  /// computation; identical to the pre-interning definition.
  std::uint64_t hash() const;

  /// Cheap container hash over the interned IDs (FNV-1a over the 32-bit
  /// words).  Values are interning-order-dependent — use only for
  /// in-process hash tables (PIT/CS keys), never for anything a
  /// fingerprint or wire format observes.
  std::uint64_t id_hash() const;

 private:
  std::vector<ComponentId> ids_;
  /// Lazily cached hash() value (byte FNV-1a; 0 == not yet computed is
  /// disambiguated by the flag, not the value).
  mutable std::uint64_t hash_ = 0;
  mutable bool hash_cached_ = false;
};

/// Hasher keying on Name::id_hash() — the interned-name key the PIT and
/// Content Store tables use.  Equality stays Name::operator== (ID vectors).
struct InternedNameHash {
  std::size_t operator()(const Name& name) const noexcept {
    return static_cast<std::size_t>(name.id_hash());
  }
};

}  // namespace tactic::ndn

template <>
struct std::hash<tactic::ndn::Name> {
  std::size_t operator()(const tactic::ndn::Name& name) const noexcept {
    return static_cast<std::size_t>(name.hash());
  }
};
