#pragma once
// The per-node NDN forwarding engine (the NFD substitute).
//
// Pipeline on Interest arrival: policy inspection -> Content Store ->
// PIT (aggregate or create) -> FIB longest-prefix match -> upstream face.
// Data consumes its PIT entry and flows down the reverse paths, with the
// node's AccessControlPolicy deciding per-downstream forwarding.  Every
// node in a scenario — clients, APs, routers, providers — runs one
// Forwarder; applications attach through app faces.
//
// Packet memory model (docs/ARCHITECTURE.md, "Packet memory model"): a
// packet is allocated once — in the origin node's PacketPool — and flows
// as a shared immutable handle (InterestPtr/DataPtr/NackPtr) through
// every hop: link frames, the Content Store, and the reverse-path
// fan-out all share the same object.  Mutation happens only through the
// COW seam (Cow::edit), in place when the packet is uniquely held.
//
// Compute charging: policies report the (sampled) CPU time their checks
// consumed; the forwarder defers all sends triggered by that packet by the
// accumulated amount, mirroring how the paper injects benchmarked
// BF/signature latencies into ndnSIM.

#include <functional>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "event/scheduler.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "ndn/cs.hpp"
#include "ndn/fib.hpp"
#include "ndn/packet.hpp"
#include "ndn/packet_pool.hpp"
#include "ndn/pit.hpp"
#include "ndn/policy.hpp"

namespace tactic::ndn {

/// Shared immutable packet handles — see packet.hpp for the aliases.
using PacketVariant = std::variant<InterestPtr, DataPtr, NackPtr>;

/// Wire size of any packet variant.
std::size_t wire_size(const PacketVariant& packet);

/// Wraps a by-value packet in a (non-pooled) shared handle.  Convenience
/// for tests and tools; the forwarding plane uses PacketPool.
PacketVariant make_packet(Interest&& interest);
PacketVariant make_packet(Data&& data);
PacketVariant make_packet(Nack&& nack);

/// Callbacks through which an application receives packets from its app
/// face.  Unset members mean "drop".
struct AppSink {
  std::function<void(FaceId, const Interest&)> on_interest;
  std::function<void(const Data&)> on_data;
  std::function<void(const Nack&)> on_nack;
};

/// Forwarding-plane event counters for one node.
struct ForwarderCounters {
  std::uint64_t interests_received = 0;
  std::uint64_t interests_forwarded = 0;
  std::uint64_t interests_aggregated = 0;
  std::uint64_t interests_dropped = 0;   // policy drops
  std::uint64_t interests_nacked = 0;    // policy drop-with-NACK
  std::uint64_t duplicate_interests = 0;
  std::uint64_t data_received = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t unsolicited_data = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t no_route = 0;
  std::uint64_t pit_expirations = 0;
  /// Entries evicted (LRU) to admit a new one under a PIT capacity.
  std::uint64_t pit_evictions = 0;
  std::uint64_t link_send_failures = 0;  // drop-tail overflow / link down
  /// Interests sent on a non-primary next hop because the primary's link
  /// refused the frame (down or full).
  std::uint64_t interest_failovers = 0;
  /// Interests dropped because every candidate next hop refused.
  std::uint64_t interests_unsent = 0;
  /// Crash/restart bookkeeping (fault injection).
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  /// Packets that arrived (or were injected) while the node was crashed.
  std::uint64_t dropped_while_down = 0;
  /// Corrupted frames rejected at this node's outgoing faces (the L2 CRC
  /// stand-in; the receiver never sees the payload).
  std::uint64_t corrupt_frames_rejected = 0;
};

/// A node's view of wall-clock time: the simulator's true time plus a
/// fixed boot offset and a linear drift rate (parts of a second gained
/// per second of true time).  The default is the identity — every node
/// reads the scheduler directly — so the clock-skew fault layer is
/// bit-free when uninstalled.  Skew affects only *interpretation* of
/// timestamps (tag expiries, issuance stamps); the event scheduler
/// itself always runs on true time.
struct LocalClock {
  event::Time offset = 0;
  double drift = 0.0;

  bool identity() const { return offset == 0 && drift == 0.0; }
  event::Time local(event::Time true_now) const {
    if (identity()) return true_now;
    return true_now + offset +
           static_cast<event::Time>(static_cast<double>(true_now) * drift);
  }
};

class Forwarder {
 public:
  Forwarder(event::Scheduler& scheduler, net::NodeInfo info,
            std::size_t cs_capacity);

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  const net::NodeInfo& info() const { return info_; }
  event::Scheduler& scheduler() { return *scheduler_; }
  const event::Scheduler& scheduler() const { return *scheduler_; }

  /// Re-points this node at another event scheduler — the parallel
  /// engine's partition assignment (docs/ARCHITECTURE.md, "Concurrency
  /// model").  Must run before any event is scheduled through this node
  /// (apps schedule at construction, so the scenario rebinds right after
  /// the topology is built).
  void rebind_scheduler(event::Scheduler* scheduler) {
    scheduler_ = scheduler;
  }
  Fib& fib() { return fib_; }
  Pit& pit() { return pit_; }
  const Pit& pit() const { return pit_; }
  ContentStore& cs() { return cs_; }
  const ContentStore& cs() const { return cs_; }
  const ForwarderCounters& counters() const { return counters_; }

  /// The node's packet pool — applications build their packets here so
  /// injection is allocation-free at steady state.
  PacketPool& pool() { return pool_; }
  const PacketPool& pool() const { return pool_; }

  /// The node's (possibly skewed) local clock.  Installed by the fault
  /// layer; identity by default.
  void set_clock(const LocalClock& clock) { clock_ = clock; }
  const LocalClock& clock() const { return clock_; }
  /// True scheduler time translated through this node's clock — the
  /// timestamp source for everything this node *interprets* (tag
  /// expiries) or *stamps* (tag issuance).
  event::Time local_now() const { return clock_.local(scheduler_->now()); }

  /// Caps the PIT at `capacity` entries (0 = unbounded, the default).
  /// When a new entry would exceed the cap, the least-recently-used
  /// entry is evicted — its expiry timer cancelled, `pit_evictions`
  /// incremented — so an Interest flood can no longer grow router state
  /// without bound.
  void set_pit_capacity(std::size_t capacity) { pit_capacity_ = capacity; }
  std::size_t pit_capacity() const { return pit_capacity_; }

  /// Installs the node's access-control policy (owned).  Defaults to
  /// NullPolicy (plain NDN).
  void set_policy(std::unique_ptr<AccessControlPolicy> policy);
  AccessControlPolicy& policy() { return *policy_; }

  /// Adds a face transmitting into `tx_link` (non-owning); frames
  /// arriving at the other end run `deliver` there.  The forwarder
  /// registers the link's receiver once here — per-frame state is just
  /// the shared packet handle.  Returns the new face id.
  FaceId add_link_face(net::Link* tx_link,
                       std::function<void(PacketVariant&&)> deliver);

  /// Adds a local application face.
  FaceId add_app_face(AppSink sink);

  /// Entry point for packets arriving from a link (bound into the peer's
  /// deliver closure by the wiring helper) or from local apps.
  void receive(FaceId in_face, PacketVariant&& packet);

  /// Optional packet tracer, invoked for every packet this node receives
  /// (direction=rx) and transmits (direction=tx).  Costs one branch per
  /// packet when unset.  See sim::PacketTrace for a CSV sink.
  using TraceFn =
      std::function<void(const Forwarder&, const PacketVariant&, FaceId,
                         bool /*is_rx*/)>;
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  /// Adds a tracer without displacing one already installed; all added
  /// tracers run, in installation order.  Lets an invariant checker
  /// observe the packet stream alongside a PacketTrace CSV sink.
  void add_tracer(TraceFn tracer);

  /// Application transmit: treat `packet` as if it arrived on `app_face`.
  /// Used by clients to issue Interests and by producers to answer them.
  void inject_from_app(FaceId app_face, PacketVariant&& packet);
  /// Shared-handle conveniences (the pool-built fast path).
  void inject_from_app(FaceId app_face, std::shared_ptr<Interest> packet) {
    inject_from_app(app_face, PacketVariant(InterestPtr(std::move(packet))));
  }
  void inject_from_app(FaceId app_face, std::shared_ptr<Data> packet) {
    inject_from_app(app_face, PacketVariant(DataPtr(std::move(packet))));
  }
  void inject_from_app(FaceId app_face, std::shared_ptr<Nack> packet) {
    inject_from_app(app_face, PacketVariant(NackPtr(std::move(packet))));
  }
  /// By-value conveniences (tests/tools): moved into a pool slot.
  void inject_from_app(FaceId app_face, Interest&& packet) {
    auto p = pool_.make_interest();
    *p = std::move(packet);
    inject_from_app(app_face, std::move(p));
  }
  void inject_from_app(FaceId app_face, Data&& packet) {
    auto p = pool_.make_data();
    *p = std::move(packet);
    inject_from_app(app_face, std::move(p));
  }
  void inject_from_app(FaceId app_face, Nack&& packet) {
    auto p = pool_.make_nack();
    *p = std::move(packet);
    inject_from_app(app_face, std::move(p));
  }

  /// Crash semantics: a crashed node drops all in-flight deferred work,
  /// refuses arriving packets, and loses its volatile state (PIT with all
  /// expiry timers, Content Store, pooled packet slots).  Policy state is
  /// wiped on restart via AccessControlPolicy::on_restart — for TACTIC
  /// that means the Bloom filter, forcing the F=0 "cannot vouch" fallback
  /// until it refills.
  bool alive() const { return alive_; }
  void crash();
  void restart();

  /// Hook for the corruption path: called with the would-be-delivered
  /// packet and the frame's deterministic corruption seed whenever a link
  /// delivers a corrupted frame from this node.  The sim layer installs a
  /// probe that encodes the packet, flips real wire bytes, and feeds the
  /// result to the wire decoders; the frame is then dropped regardless
  /// (L2 CRC detects the damage before the payload handler runs).
  using CorruptionProbe =
      std::function<void(const PacketVariant&, std::uint64_t /*seed*/)>;
  void set_corruption_probe(CorruptionProbe probe) {
    corruption_probe_ = std::move(probe);
  }

 private:
  struct Face {
    FaceId id = kInvalidFace;
    bool is_app = false;
    net::Link* tx = nullptr;  // link faces
    AppSink sink;             // app faces
  };

  void on_interest(FaceId in_face, InterestPtr&& interest);
  void on_data(FaceId in_face, DataPtr&& data);
  void on_nack(FaceId in_face, NackPtr&& nack);

  /// Sends `packet` out of `face` after `delay` (compute charging).
  void send(FaceId face, PacketVariant packet, event::Time delay);

  /// Sends an Interest upstream, trying `next_hops` in cost order and
  /// failing over when a link refuses the frame (down or queue-full).
  void send_interest(const std::vector<Fib::NextHop>& next_hops,
                     InterestPtr interest, event::Time delay);
  /// The delay-elapsed body of send_interest (no capture when delay==0).
  void do_send_interest(const std::vector<Fib::NextHop>& next_hops,
                        InterestPtr&& interest);

  void schedule_pit_expiry(PitEntry& entry, event::Time expiry);

  event::Scheduler* scheduler_;  // never null; rebindable (partitioning)
  net::NodeInfo info_;
  Fib fib_;
  Pit pit_;
  std::size_t pit_capacity_ = 0;  // 0 = unbounded
  ContentStore cs_;
  PacketPool pool_;
  std::unique_ptr<AccessControlPolicy> policy_;
  std::vector<Face> faces_;
  ForwarderCounters counters_;
  TraceFn tracer_;
  CorruptionProbe corruption_probe_;
  LocalClock clock_;
  bool alive_ = true;
  /// Bumped on every crash; deferred send closures capture the epoch at
  /// scheduling time and die silently if it moved (in-flight work is lost
  /// with the node).
  std::uint64_t epoch_ = 0;
};

}  // namespace tactic::ndn
