#include "ndn/packet.hpp"

namespace tactic::ndn {

const char* to_string(NackReason reason) {
  switch (reason) {
    case NackReason::kNone: return "none";
    case NackReason::kNoTag: return "no-tag";
    case NackReason::kInvalidSignature: return "invalid-signature";
    case NackReason::kExpiredTag: return "expired-tag";
    case NackReason::kPrefixMismatch: return "prefix-mismatch";
    case NackReason::kAccessLevelTooLow: return "access-level-too-low";
    case NackReason::kProviderKeyMismatch: return "provider-key-mismatch";
    case NackReason::kAccessPathMismatch: return "access-path-mismatch";
    case NackReason::kRegistrationRefused: return "registration-refused";
    case NackReason::kNoRoute: return "no-route";
    case NackReason::kRouterOverloaded: return "router-overloaded";
  }
  return "?";
}

namespace {
/// Fixed per-packet header overhead (type, TLV framing, hop limit, ...).
constexpr std::size_t kHeaderOverhead = 16;
}  // namespace

std::size_t Interest::wire_size() const {
  if (wire_size_cache_.value != 0) return wire_size_cache_.value;
  std::size_t size = kHeaderOverhead + name.uri_size() + 4 /*nonce*/ +
                     4 /*lifetime*/ + payload_size;
  if (tag) size += tag_wire_size + 8 /*F*/ + 8 /*access path*/;
  wire_size_cache_.value = size;
  return size;
}

void Interest::reset_for_reuse() {
  name.clear();
  nonce = 0;
  lifetime = event::kSecond;
  tag.reset();
  tag_wire_size = 0;
  flag_f = 0.0;
  access_path = 0;
  payload_size = 0;
  wire_size_cache_.value = 0;
}

const util::Bytes& Data::signed_portion() const {
  if (!signed_portion_cache_.cached) {
    util::Bytes& bytes = signed_portion_cache_.bytes;
    bytes.clear();  // keeps capacity across pool reuse
    util::append_lv(bytes, name.to_uri());
    util::append_u64(bytes, content_size);
    util::append_u32(bytes, access_level);
    util::append_lv(bytes, provider_key_locator);
    signed_portion_cache_.cached = true;
  }
  return signed_portion_cache_.bytes;
}

std::size_t Data::wire_size() const {
  if (wire_size_cache_.value != 0) return wire_size_cache_.value;
  std::size_t size = kHeaderOverhead + name.uri_size() + content_size +
                     4 /*access level*/ + provider_key_locator.size() +
                     signature_size;
  if (tag) size += tag_wire_size + 8 /*F*/;
  if (nack_attached) size += 2;
  wire_size_cache_.value = size;
  return size;
}

void Data::reset_for_reuse() {
  name.clear();
  content_size = 1024;
  access_level = 0;
  provider_key_locator.clear();
  signature_size = 0;
  signature.reset();
  is_registration_response = false;
  tag.reset();
  tag_wire_size = 0;
  nack_attached = false;
  nack_reason = NackReason::kNone;
  flag_f = 0.0;
  from_cache = false;
  wire_size_cache_.value = 0;
  signed_portion_cache_.cached = false;
}

std::size_t Nack::wire_size() const {
  return kHeaderOverhead + name.uri_size() + 1 /*reason*/;
}

void Nack::reset_for_reuse() {
  name.clear();
  reason = NackReason::kNone;
}

}  // namespace tactic::ndn
