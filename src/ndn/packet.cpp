#include "ndn/packet.hpp"

namespace tactic::ndn {

const char* to_string(NackReason reason) {
  switch (reason) {
    case NackReason::kNone: return "none";
    case NackReason::kNoTag: return "no-tag";
    case NackReason::kInvalidSignature: return "invalid-signature";
    case NackReason::kExpiredTag: return "expired-tag";
    case NackReason::kPrefixMismatch: return "prefix-mismatch";
    case NackReason::kAccessLevelTooLow: return "access-level-too-low";
    case NackReason::kProviderKeyMismatch: return "provider-key-mismatch";
    case NackReason::kAccessPathMismatch: return "access-path-mismatch";
    case NackReason::kRegistrationRefused: return "registration-refused";
    case NackReason::kNoRoute: return "no-route";
    case NackReason::kRouterOverloaded: return "router-overloaded";
  }
  return "?";
}

namespace {
/// Fixed per-packet header overhead (type, TLV framing, hop limit, ...).
constexpr std::size_t kHeaderOverhead = 16;
}  // namespace

std::size_t Interest::wire_size() const {
  std::size_t size = kHeaderOverhead + name.uri_size() + 4 /*nonce*/ +
                     4 /*lifetime*/ + payload_size;
  if (tag) size += tag_wire_size + 8 /*F*/ + 8 /*access path*/;
  return size;
}

util::Bytes Data::signed_portion() const {
  util::Bytes out;
  util::append_lv(out, name.to_uri());
  util::append_u64(out, content_size);
  util::append_u32(out, access_level);
  util::append_lv(out, provider_key_locator);
  return out;
}

std::size_t Data::wire_size() const {
  std::size_t size = kHeaderOverhead + name.uri_size() + content_size +
                     4 /*access level*/ + provider_key_locator.size() +
                     signature_size;
  if (tag) size += tag_wire_size + 8 /*F*/;
  if (nack_attached) size += 2;
  return size;
}

std::size_t Nack::wire_size() const {
  return kHeaderOverhead + name.uri_size() + 1 /*reason*/;
}

}  // namespace tactic::ndn
