#include "ndn/cs.hpp"

namespace tactic::ndn {

ContentStore::ContentStore(std::size_t capacity) : capacity_(capacity) {}

void ContentStore::lru_unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void ContentStore::lru_push_front(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.lru_next = lru_head_;
  slot.lru_prev = kNil;
  if (lru_head_ != kNil) {
    slots_[lru_head_].lru_prev = s;
  } else {
    lru_tail_ = s;
  }
  lru_head_ = s;
}

std::uint32_t ContentStore::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ContentStore::free_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.data.reset();  // releases the shared packet (pool slot recycles)
  slot.live = false;
  free_slots_.push_back(s);
}

const DataPtr* ContentStore::find(const Name& name) {
  const std::uint32_t s = index_.find(name.id_hash(), [&](std::uint32_t v) {
    return slots_[v].data->name == name;
  });
  if (s == util::HashIndex::kNpos) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_unlink(s);
  lru_push_front(s);
  return &slots_[s].data;
}

void ContentStore::insert(DataPtr data) {
  if (capacity_ == 0 || !data) return;
  const Name& name = data->name;
  const std::uint32_t existing =
      index_.find(name.id_hash(), [&](std::uint32_t v) {
        return slots_[v].data->name == name;
      });
  if (existing != util::HashIndex::kNpos) {
    lru_unlink(existing);
    lru_push_front(existing);
    return;
  }
  const std::uint32_t s = alloc_slot();
  Slot& slot = slots_[s];
  slot.data = std::move(data);
  slot.live = true;
  index_.insert(slot.data->name.id_hash(), s);
  lru_push_front(s);
  if (index_.size() > capacity_) {
    const std::uint32_t victim = lru_tail_;
    const Name& victim_name = slots_[victim].data->name;
    index_.erase(victim_name.id_hash(), [&](std::uint32_t v) {
      return slots_[v].data->name == victim_name;
    });
    lru_unlink(victim);
    free_slot(victim);
    ++evictions_;
  }
}

void ContentStore::clear() {
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].live) {
      lru_unlink(s);
      free_slot(s);
    }
  }
  index_.clear();
  lru_head_ = lru_tail_ = kNil;
}

}  // namespace tactic::ndn
