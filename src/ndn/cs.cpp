#include "ndn/cs.hpp"

namespace tactic::ndn {

ContentStore::ContentStore(std::size_t capacity) : capacity_(capacity) {}

const Data* ContentStore::find(const Name& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

void ContentStore::insert(const Data& data) {
  if (capacity_ == 0) return;
  const auto it = index_.find(data.name);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Data stored = data;
  // Strip the response envelope: the cache holds the content object.
  stored.tag.reset();
  stored.tag_wire_size = 0;
  stored.nack_attached = false;
  stored.nack_reason = NackReason::kNone;
  stored.flag_f = 0.0;
  stored.from_cache = false;

  lru_.push_front(std::move(stored));
  index_[data.name] = lru_.begin();
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().name);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace tactic::ndn
