#pragma once
// TLV (type-length-value) encoding, NDN style.
//
// Lengths use NDN's variable-size number encoding: values < 253 occupy
// one byte; 253 prefixes a 2-byte big-endian value; 254 prefixes a 4-byte
// value.  Types here are single-byte (all our assigned types are < 253,
// encoded with the same scheme).

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "util/bytes.hpp"

namespace tactic::ndn {

/// Thrown by readers on malformed input.
class TlvError : public std::runtime_error {
 public:
  explicit TlvError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends a variable-size TLV number (used for both types and lengths).
void append_tlv_number(util::Bytes& out, std::uint64_t value);

/// Appends a full TLV element: type, length, and `value` bytes.
void append_tlv(util::Bytes& out, std::uint64_t type, util::BytesView value);

/// Appends a TLV element holding a big-endian non-negative integer using
/// the shortest of 1/2/4/8 bytes.
void append_tlv_uint(util::Bytes& out, std::uint64_t type,
                     std::uint64_t value);

/// Sequential TLV reader over a byte span.
class TlvReader {
 public:
  explicit TlvReader(util::BytesView data) : data_(data) {}

  bool at_end() const { return offset_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - offset_; }

  /// Reads one variable-size number; throws TlvError on truncation.
  std::uint64_t read_number();

  /// Peeks the type of the next element without consuming it.
  std::uint64_t peek_type();

  /// Reads the next element; throws TlvError on truncation.
  struct Element {
    std::uint64_t type = 0;
    util::BytesView value;
  };
  Element read_element();

  /// Reads the next element, requiring `type`; throws TlvError otherwise.
  Element expect_element(std::uint64_t type);

  /// Reads the next element if it has `type`; otherwise leaves the
  /// reader untouched and returns nullopt.
  std::optional<Element> read_optional(std::uint64_t type);

  /// Decodes a big-endian integer from an element's value (1/2/4/8 bytes).
  static std::uint64_t to_uint(const Element& element);

 private:
  util::BytesView data_;
  std::size_t offset_ = 0;
};

}  // namespace tactic::ndn
