#pragma once
// Access-control policy hooks.
//
// The Forwarder implements plain NDN (CS -> PIT -> FIB pipeline, reverse-
// path data forwarding).  Everything access-control-specific — TACTIC's
// Protocols 1-4 as well as the baseline mechanisms of Table II — plugs in
// through this interface.  One policy object is instantiated *per node*,
// because TACTIC state (the router's Bloom filter, operation counters) is
// per-router.

#include <functional>
#include <memory>
#include <utility>

#include "event/time.hpp"
#include "ndn/packet.hpp"
#include "ndn/packet_pool.hpp"
#include "ndn/pit.hpp"

namespace tactic::ndn {

class Forwarder;

/// Asynchronous verdict delivery for batched validation (see
/// docs/ARCHITECTURE.md, "Batched stages").  A validation stage that
/// joined a batch hands one of these back through its decision; the
/// forwarder binds the deferred send closure, and the batch flush fires
/// it with the batch's completion delay.  The two calls may arrive in
/// either order: a size-cap flush can fire the handle inside the same
/// policy call that created it (before the forwarder had a chance to
/// bind), so fire() buffers until bind().  drop() kills the verdict
/// outright (router crash mid-batch); the node-epoch guard inside the
/// bound closure is the second line of defence.
class DeferredVerdict {
 public:
  /// `extra_delay` is the batch-completion delay, measured from the
  /// instant fire() ran.
  using SendFn = std::function<void(event::Time extra_delay)>;

  void bind(SendFn send) {
    if (dropped_) return;
    if (fired_) {
      send(extra_);
      return;
    }
    send_ = std::move(send);
  }

  void fire(event::Time extra_delay) {
    if (dropped_ || fired_) return;
    fired_ = true;
    extra_ = extra_delay;
    if (send_) {
      SendFn send = std::move(send_);
      send_ = nullptr;
      send(extra_);
    }
  }

  void drop() {
    dropped_ = true;
    send_ = nullptr;
  }

  /// Neither fired nor dropped yet (still waiting in a batch).
  bool pending() const { return !fired_ && !dropped_; }
  bool dropped() const { return dropped_; }

 private:
  SendFn send_;
  event::Time extra_ = 0;
  bool fired_ = false;
  bool dropped_ = false;
};

class AccessControlPolicy {
 public:
  virtual ~AccessControlPolicy() = default;

  /// Outcome of inspecting an arriving Interest.
  struct InterestDecision {
    enum class Action {
      kContinue,       // proceed with the normal CS/PIT/FIB pipeline
      kDrop,           // silently drop
      kDropWithNack,   // drop and send a standalone NACK on the in-face
    };
    Action action = Action::kContinue;
    NackReason nack_reason = NackReason::kNone;
    /// Compute time consumed by the inspection (pre-check, BF lookup,
    /// signature verification); delays everything this packet triggers.
    event::Time compute = 0;
  };

  /// Called for every Interest arriving at the node, before CS lookup.
  /// The policy may mutate the Interest through the COW handle (stamp
  /// flag F, accumulate the access path) — edit() is in place for the
  /// uniquely-held arriving packet, a pool clone otherwise.  Default:
  /// continue untouched.
  virtual InterestDecision on_interest(Forwarder& node, FaceId in_face,
                                       CowInterest& interest);

  /// Outcome of serving an Interest from the local Content Store — i.e.
  /// this node is acting as a *content router* for this request.
  struct CacheHitDecision {
    /// False suppresses the response entirely (the baseline "no cache
    /// reuse for protected content" behaviour); the Interest then
    /// continues to PIT/FIB as a miss.
    bool respond = true;
    event::Time compute = 0;
    /// Set when a batched validation stage deferred the verdict: the
    /// forwarder must bind the response send to this handle instead of
    /// sending after `compute`.  Null on the synchronous path.
    std::shared_ptr<DeferredVerdict> deferred;
  };

  /// Called on a CS hit.  `response` is a pool clone of the cached data
  /// already carrying the request's tag echo; the policy may set
  /// flag_f / nack_attached on it (TACTIC Protocol 3).  Default: respond.
  virtual CacheHitDecision on_cache_hit(Forwarder& node, FaceId in_face,
                                        const Interest& interest,
                                        CowData& response);

  /// Called once per arriving Data packet, before PIT consumption.  Edge
  /// routers use this for Protocol 2's "On Content" Bloom-filter
  /// bookkeeping.  Default: no-op.
  virtual event::Time on_data(Forwarder& node, FaceId in_face,
                              const Data& data);

  /// Outcome of forwarding arriving Data to one aggregated downstream
  /// request (one PIT in-record).
  struct DownstreamDecision {
    bool forward = true;
    /// Forward with a NACK attached (content-tag-NACK tuple), so the
    /// downstream edge router suppresses delivery to that client while
    /// still being able to satisfy other aggregated requests.
    bool attach_nack = false;
    NackReason nack_reason = NackReason::kNone;
    event::Time compute = 0;
    /// See CacheHitDecision::deferred.
    std::shared_ptr<DeferredVerdict> deferred;
  };

  /// Called for each PIT in-record when Data is consumed (TACTIC
  /// Protocol 4 lines 11-26).  `outgoing` starts as a second handle on
  /// `incoming` (no copy); a policy that must mutate (re-stamp the tag
  /// echo, change F) calls edit(), which clones because the incoming
  /// packet is aliased.  Untouched records forward the incoming packet
  /// itself — the zero-copy reverse-path fan-out.  Default: forward
  /// as-is.
  virtual DownstreamDecision on_data_to_downstream(Forwarder& node,
                                                   const PitInRecord& record,
                                                   const Data& incoming,
                                                   CowData& outgoing);

  /// Whether this node may cache `data`.  Default: cache everything except
  /// registration responses.
  virtual bool may_cache(const Forwarder& node, const Data& data);

  /// Called when the node restarts after a crash.  Volatile policy state
  /// (a TACTIC router's Bloom filter, cached validations) must be wiped —
  /// crash-surviving tag caches would let a rebooted router vouch for
  /// tags it can no longer prove it validated.  Default: no-op.
  virtual void on_restart(Forwarder& node);
};

/// The no-op policy: plain NDN with no access control.
class NullPolicy : public AccessControlPolicy {};

}  // namespace tactic::ndn
