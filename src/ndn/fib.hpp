#pragma once
// Forwarding Information Base: longest-prefix-match routing of Interests
// toward providers, with equal-cost multipath next hops for failover.
//
// Two interchangeable lookup structures live here:
//
//  - `Fib` (the default, Impl::kLcTrie): a path-compressed radix trie over
//    interned name components with level compression at high-fanout nodes
//    (sorted-vector children promote to an open-addressing table).  Lookup
//    cost is O(#components) independent of table size — the structure that
//    carries million-prefix tables (docs/ARCHITECTURE.md, "Name interning
//    and table structures").
//  - `LinearFib`: the original hash-map implementation that probes every
//    prefix length, retained verbatim as the differential reference.  The
//    property suite in tests/table_diff_test.cpp asserts trie LPM ≡ linear
//    LPM over randomized and adversarial prefix sets, and `Fib` can be
//    switched wholesale to it (Impl::kLinear) for end-to-end equivalence
//    runs (`fuzz_scenarios --bigtables`).
//
// Both structures implement identical semantics; which one backs a router
// is unobservable in fingerprints, verdicts, and traces.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ndn/name.hpp"

namespace tactic::ndn {

/// Per-node face identifier (index into the node's face table).
using FaceId = std::uint32_t;
constexpr FaceId kInvalidFace = ~0u;

struct FibNextHop {
  FaceId face = kInvalidFace;
  std::uint32_t cost = 0;  // routing metric (hop count)
};

struct FibEntry {
  Name prefix;
  /// Candidate upstream faces, sorted by (cost, face).  The forwarder
  /// tries them in order and fails over when a link refuses the frame
  /// (down or queue-full).
  std::vector<FibNextHop> next_hops;

  /// Best (lowest-cost) next hop; kInvalidFace when empty.
  FaceId next_hop() const {
    return next_hops.empty() ? kInvalidFace : next_hops.front().face;
  }
};

/// The pre-trie FIB: unordered_map keyed by prefix Name, longest-prefix
/// match by probing every prefix length longest-first.  O(#components)
/// hash lookups per match, each hashing the full prefix bytes.  Kept as
/// the executable specification the trie is differentially tested against.
class LinearFib {
 public:
  using NextHop = FibNextHop;
  using Entry = FibEntry;

  void add_route(const Name& prefix, FaceId next_hop, std::uint32_t cost = 0);
  void remove_next_hop(const Name& prefix, FaceId next_hop);
  void remove_route(const Name& prefix);
  void set_routes(const Name& prefix, std::vector<NextHop> next_hops);
  const Entry* lookup(const Name& name) const;
  const Entry* find_exact(const Name& prefix) const;
  std::size_t size() const { return entries_.size(); }

 private:
  static void sort_hops(std::vector<NextHop>& hops);

  std::unordered_map<Name, Entry> entries_;
};

class Fib {
 public:
  using NextHop = FibNextHop;
  using Entry = FibEntry;

  /// Which lookup structure backs this FIB.  Semantics are identical; the
  /// linear reference exists for differential testing and benchmarking.
  enum class Impl { kLcTrie, kLinear };

  Fib();

  /// Selects the backing structure.  Only legal while the table is empty
  /// (the switch does not migrate entries); throws std::logic_error
  /// otherwise.
  void set_impl(Impl impl);
  Impl impl() const { return impl_; }

  /// Adds (or updates the cost of) one next hop for `prefix`, keeping the
  /// hop list sorted by (cost, face).
  void add_route(const Name& prefix, FaceId next_hop, std::uint32_t cost = 0);

  /// Removes one next hop; drops the entry when no hops remain.
  void remove_next_hop(const Name& prefix, FaceId next_hop);

  /// Removes the whole entry.
  void remove_route(const Name& prefix);

  /// Replaces the entry's hop set wholesale (route recomputation).
  void set_routes(const Name& prefix, std::vector<NextHop> next_hops);

  /// Longest-prefix match; nullptr when no entry covers `name`.
  /// Trie: one walk over the components.  Linear: O(#components) map probes.
  const Entry* lookup(const Name& name) const;

  /// Exact-prefix find (no LPM).
  const Entry* find_exact(const Name& prefix) const;

  std::size_t size() const;

  /// Hot-path work counters, for regression tests pinning lookup cost and
  /// for sim::RouterOps aggregation.  Never fingerprinted.
  struct Counters {
    std::uint64_t lookups = 0;        // lookup() calls
    std::uint64_t nodes_visited = 0;  // trie nodes touched during lookups
  };
  const Counters& counters() const { return counters_; }

 private:
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;
  static constexpr std::int32_t kNoEntry = -1;

  /// Child table of one trie node, keyed by the first component of each
  /// outgoing edge.  Starts as a vector sorted by ComponentId (binary
  /// search); promotes to an open-addressing hash table once fanout
  /// exceeds kPromote — the "level compression" that keeps huge root
  /// fanouts (10^6 distinct first components) O(1) per probe.
  class ChildMap {
   public:
    std::uint32_t find(ComponentId c) const;
    /// Insert-or-replace the node mapped from `c`.
    void upsert(ComponentId c, std::uint32_t node);
    void erase(ComponentId c);
    std::size_t size() const { return hashed_ ? count_ : slots_.size(); }
    /// The single element; requires size() == 1 (edge-merge on prune).
    std::pair<ComponentId, std::uint32_t> only() const;

   private:
    static constexpr std::size_t kPromote = 16;
    static std::size_t probe_start(ComponentId c, std::size_t mask);
    void rehash(std::size_t capacity);

    /// Sorted (id, node) pairs in vector mode; open-addressing slots with
    /// first == kInvalidComponent marking empties in hash mode.
    std::vector<std::pair<ComponentId, std::uint32_t>> slots_;
    std::size_t count_ = 0;  // live entries (hash mode only)
    bool hashed_ = false;
  };

  /// One trie node.  `label` is the path-compressed component run on the
  /// edge from the parent into this node (empty only for the root);
  /// invariant: every non-root node holds an entry or has ≥2 children.
  struct Node {
    std::vector<ComponentId> label;
    std::int32_t entry = kNoEntry;  // index into entries_, kNoEntry if none
    ChildMap children;
  };

  std::uint32_t alloc_node();
  void free_node(std::uint32_t n);
  std::int32_t alloc_entry();
  void free_entry(std::int32_t e);
  /// Finds-or-creates the node whose full path equals `ids`, splitting
  /// edges as needed; appends the root-to-node index path to `path`.
  std::uint32_t ensure_node(const std::vector<ComponentId>& ids,
                            std::vector<std::uint32_t>& path);
  /// Read-only exact walk; kNoNode when `ids` does not end on a node.
  std::uint32_t walk_exact(const std::vector<ComponentId>& ids,
                           std::vector<std::uint32_t>* path) const;
  /// Restores the trie invariant along `path` (root..target) after the
  /// target's entry was cleared: drops empty leaves, merges single-child
  /// pass-through nodes into their child.
  void prune(const std::vector<std::uint32_t>& path);
  Entry& entry_for(std::uint32_t node, const Name& prefix);
  void drop_entry(std::uint32_t node, const std::vector<std::uint32_t>& path);

  Impl impl_ = Impl::kLcTrie;
  LinearFib linear_;  // backing store in Impl::kLinear mode

  std::vector<Node> nodes_;  // [0] is the root
  std::vector<std::uint32_t> free_nodes_;
  /// Entry slab: deque for pointer stability (lookup() returns raw
  /// pointers), free list for slot reuse.
  std::deque<Entry> entries_;
  std::vector<std::int32_t> free_entries_;
  std::size_t entry_count_ = 0;

  mutable Counters counters_;
};

}  // namespace tactic::ndn
