#pragma once
// Forwarding Information Base: longest-prefix-match routing of Interests
// toward providers, with equal-cost multipath next hops for failover.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ndn/name.hpp"

namespace tactic::ndn {

/// Per-node face identifier (index into the node's face table).
using FaceId = std::uint32_t;
constexpr FaceId kInvalidFace = ~0u;

class Fib {
 public:
  struct NextHop {
    FaceId face = kInvalidFace;
    std::uint32_t cost = 0;  // routing metric (hop count)
  };

  struct Entry {
    Name prefix;
    /// Candidate upstream faces, sorted by (cost, face).  The forwarder
    /// tries them in order and fails over when a link refuses the frame
    /// (down or queue-full).
    std::vector<NextHop> next_hops;

    /// Best (lowest-cost) next hop; kInvalidFace when empty.
    FaceId next_hop() const {
      return next_hops.empty() ? kInvalidFace : next_hops.front().face;
    }
  };

  /// Adds (or updates the cost of) one next hop for `prefix`, keeping the
  /// hop list sorted by (cost, face).
  void add_route(const Name& prefix, FaceId next_hop, std::uint32_t cost = 0);

  /// Removes one next hop; drops the entry when no hops remain.
  void remove_next_hop(const Name& prefix, FaceId next_hop);

  /// Removes the whole entry.
  void remove_route(const Name& prefix);

  /// Replaces the entry's hop set wholesale (route recomputation).
  void set_routes(const Name& prefix, std::vector<NextHop> next_hops);

  /// Longest-prefix match; nullptr when no entry covers `name`.
  /// O(#components) hash lookups.
  const Entry* lookup(const Name& name) const;

  /// Exact-prefix find (no LPM).
  const Entry* find_exact(const Name& prefix) const;

  std::size_t size() const { return entries_.size(); }

 private:
  static void sort_hops(std::vector<NextHop>& hops);

  std::unordered_map<Name, Entry> entries_;
};

}  // namespace tactic::ndn
