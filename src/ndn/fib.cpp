#include "ndn/fib.hpp"

#include <algorithm>

namespace tactic::ndn {

void Fib::sort_hops(std::vector<NextHop>& hops) {
  std::sort(hops.begin(), hops.end(),
            [](const NextHop& a, const NextHop& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.face < b.face;
            });
}

void Fib::add_route(const Name& prefix, FaceId next_hop,
                    std::uint32_t cost) {
  auto [it, inserted] = entries_.try_emplace(prefix);
  Entry& entry = it->second;
  if (inserted) entry.prefix = prefix;
  const auto existing = std::find_if(
      entry.next_hops.begin(), entry.next_hops.end(),
      [next_hop](const NextHop& hop) { return hop.face == next_hop; });
  if (existing != entry.next_hops.end()) {
    existing->cost = cost;
  } else {
    entry.next_hops.push_back(NextHop{next_hop, cost});
  }
  sort_hops(entry.next_hops);
}

void Fib::remove_next_hop(const Name& prefix, FaceId next_hop) {
  const auto it = entries_.find(prefix);
  if (it == entries_.end()) return;
  auto& hops = it->second.next_hops;
  hops.erase(std::remove_if(hops.begin(), hops.end(),
                            [next_hop](const NextHop& hop) {
                              return hop.face == next_hop;
                            }),
             hops.end());
  if (hops.empty()) entries_.erase(it);
}

void Fib::remove_route(const Name& prefix) { entries_.erase(prefix); }

void Fib::set_routes(const Name& prefix, std::vector<NextHop> next_hops) {
  if (next_hops.empty()) {
    entries_.erase(prefix);
    return;
  }
  sort_hops(next_hops);
  Entry& entry = entries_[prefix];
  entry.prefix = prefix;
  entry.next_hops = std::move(next_hops);
}

const Fib::Entry* Fib::lookup(const Name& name) const {
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    const auto it = entries_.find(name.prefix(len));
    if (it != entries_.end()) return &it->second;
  }
  return nullptr;
}

const Fib::Entry* Fib::find_exact(const Name& prefix) const {
  const auto it = entries_.find(prefix);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace tactic::ndn
