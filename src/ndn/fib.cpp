#include "ndn/fib.hpp"

#include <algorithm>
#include <stdexcept>

namespace tactic::ndn {

// ---------------------------------------------------------------------------
// LinearFib — the retained reference implementation (unchanged semantics).
// ---------------------------------------------------------------------------

void LinearFib::sort_hops(std::vector<NextHop>& hops) {
  std::sort(hops.begin(), hops.end(),
            [](const NextHop& a, const NextHop& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.face < b.face;
            });
}

void LinearFib::add_route(const Name& prefix, FaceId next_hop,
                          std::uint32_t cost) {
  auto [it, inserted] = entries_.try_emplace(prefix);
  Entry& entry = it->second;
  if (inserted) entry.prefix = prefix;
  const auto existing = std::find_if(
      entry.next_hops.begin(), entry.next_hops.end(),
      [next_hop](const NextHop& hop) { return hop.face == next_hop; });
  if (existing != entry.next_hops.end()) {
    existing->cost = cost;
  } else {
    entry.next_hops.push_back(NextHop{next_hop, cost});
  }
  sort_hops(entry.next_hops);
}

void LinearFib::remove_next_hop(const Name& prefix, FaceId next_hop) {
  const auto it = entries_.find(prefix);
  if (it == entries_.end()) return;
  auto& hops = it->second.next_hops;
  hops.erase(std::remove_if(hops.begin(), hops.end(),
                            [next_hop](const NextHop& hop) {
                              return hop.face == next_hop;
                            }),
             hops.end());
  if (hops.empty()) entries_.erase(it);
}

void LinearFib::remove_route(const Name& prefix) { entries_.erase(prefix); }

void LinearFib::set_routes(const Name& prefix,
                           std::vector<NextHop> next_hops) {
  if (next_hops.empty()) {
    entries_.erase(prefix);
    return;
  }
  sort_hops(next_hops);
  Entry& entry = entries_[prefix];
  entry.prefix = prefix;
  entry.next_hops = std::move(next_hops);
}

const LinearFib::Entry* LinearFib::lookup(const Name& name) const {
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    const auto it = entries_.find(name.prefix(len));
    if (it != entries_.end()) return &it->second;
  }
  return nullptr;
}

const LinearFib::Entry* LinearFib::find_exact(const Name& prefix) const {
  const auto it = entries_.find(prefix);
  return it == entries_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Fib::ChildMap — sorted-vector / open-addressing hybrid child table.
// ---------------------------------------------------------------------------

std::size_t Fib::ChildMap::probe_start(ComponentId c, std::size_t mask) {
  // Fibonacci hashing spreads the dense, sequentially-assigned IDs.
  return static_cast<std::size_t>(
             (static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ULL) >> 32) &
         mask;
}

std::uint32_t Fib::ChildMap::find(ComponentId c) const {
  if (!hashed_) {
    const auto it = std::lower_bound(
        slots_.begin(), slots_.end(), c,
        [](const auto& slot, ComponentId key) { return slot.first < key; });
    if (it != slots_.end() && it->first == c) return it->second;
    return kNoNode;
  }
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(c, mask);; i = (i + 1) & mask) {
    if (slots_[i].first == c) return slots_[i].second;
    if (slots_[i].first == kInvalidComponent) return kNoNode;
  }
}

void Fib::ChildMap::rehash(std::size_t capacity) {
  std::vector<std::pair<ComponentId, std::uint32_t>> old = std::move(slots_);
  slots_.assign(capacity, {kInvalidComponent, kNoNode});
  const std::size_t mask = capacity - 1;
  const bool was_hashed = hashed_;
  hashed_ = true;
  for (const auto& [c, node] : old) {
    if (was_hashed && c == kInvalidComponent) continue;
    std::size_t i = probe_start(c, mask);
    while (slots_[i].first != kInvalidComponent) i = (i + 1) & mask;
    slots_[i] = {c, node};
  }
}

void Fib::ChildMap::upsert(ComponentId c, std::uint32_t node) {
  if (!hashed_) {
    const auto it = std::lower_bound(
        slots_.begin(), slots_.end(), c,
        [](const auto& slot, ComponentId key) { return slot.first < key; });
    if (it != slots_.end() && it->first == c) {
      it->second = node;
      return;
    }
    if (slots_.size() < kPromote) {
      slots_.insert(it, {c, node});
      return;
    }
    count_ = slots_.size();
    rehash(64);  // 16 -> 64 slots keeps the post-promotion load under 0.3
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = probe_start(c, mask);
  while (slots_[i].first != kInvalidComponent) {
    if (slots_[i].first == c) {
      slots_[i].second = node;
      return;
    }
    i = (i + 1) & mask;
  }
  slots_[i] = {c, node};
  ++count_;
  if (count_ * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
}

void Fib::ChildMap::erase(ComponentId c) {
  if (!hashed_) {
    const auto it = std::lower_bound(
        slots_.begin(), slots_.end(), c,
        [](const auto& slot, ComponentId key) { return slot.first < key; });
    if (it != slots_.end() && it->first == c) slots_.erase(it);
    return;
  }
  // Removal is rare (route churn, never the lookup path): rebuild without
  // the victim rather than manage tombstones, demoting to the sorted
  // vector when the survivors fit it again.
  std::vector<std::pair<ComponentId, std::uint32_t>> live;
  live.reserve(count_);
  for (const auto& slot : slots_) {
    if (slot.first != kInvalidComponent && slot.first != c) {
      live.push_back(slot);
    }
  }
  if (live.size() <= kPromote / 2) {
    std::sort(live.begin(), live.end());
    slots_ = std::move(live);
    count_ = 0;
    hashed_ = false;
    return;
  }
  std::size_t capacity = slots_.size();
  while (capacity > 64 && live.size() * 10 < capacity * 2) capacity /= 2;
  slots_ = std::move(live);
  count_ = slots_.size();
  rehash(capacity);
}

std::pair<ComponentId, std::uint32_t> Fib::ChildMap::only() const {
  if (!hashed_) return slots_.front();
  for (const auto& slot : slots_) {
    if (slot.first != kInvalidComponent) return slot;
  }
  return {kInvalidComponent, kNoNode};
}

// ---------------------------------------------------------------------------
// Fib — path-compressed trie with the linear fallback behind set_impl().
// ---------------------------------------------------------------------------

Fib::Fib() { nodes_.emplace_back(); }  // root: empty label, entry for "/"

void Fib::set_impl(Impl impl) {
  if (size() != 0) {
    throw std::logic_error("Fib::set_impl: table must be empty");
  }
  impl_ = impl;
}

std::size_t Fib::size() const {
  return impl_ == Impl::kLinear ? linear_.size() : entry_count_;
}

std::uint32_t Fib::alloc_node() {
  if (!free_nodes_.empty()) {
    const std::uint32_t n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Fib::free_node(std::uint32_t n) {
  nodes_[n] = Node{};
  free_nodes_.push_back(n);
}

std::int32_t Fib::alloc_entry() {
  if (!free_entries_.empty()) {
    const std::int32_t e = free_entries_.back();
    free_entries_.pop_back();
    return e;
  }
  entries_.emplace_back();
  return static_cast<std::int32_t>(entries_.size() - 1);
}

void Fib::free_entry(std::int32_t e) {
  // Keep the slot's vector capacity for reuse; clear the contents.
  entries_[static_cast<std::size_t>(e)].prefix = Name();
  entries_[static_cast<std::size_t>(e)].next_hops.clear();
  free_entries_.push_back(e);
}

std::uint32_t Fib::ensure_node(const std::vector<ComponentId>& ids,
                               std::vector<std::uint32_t>& path) {
  std::uint32_t node = 0;
  path.push_back(node);
  std::size_t pos = 0;
  while (pos < ids.size()) {
    const std::uint32_t child = nodes_[node].children.find(ids[pos]);
    if (child == kNoNode) {
      const std::uint32_t fresh = alloc_node();
      nodes_[fresh].label.assign(ids.begin() + static_cast<std::ptrdiff_t>(pos),
                                 ids.end());
      nodes_[node].children.upsert(ids[pos], fresh);
      path.push_back(fresh);
      return fresh;
    }
    const std::size_t remaining = ids.size() - pos;
    std::size_t common = 0;
    {
      const auto& label = nodes_[child].label;
      const std::size_t limit = std::min(label.size(), remaining);
      while (common < limit && label[common] == ids[pos + common]) ++common;
    }
    if (common == nodes_[child].label.size()) {
      // Edge fully matched: descend.
      pos += common;
      node = child;
      path.push_back(node);
      continue;
    }
    // Partial match (common >= 1: the first component keyed the edge).
    // Split the edge: parent -> mid -> child, with mid taking the shared
    // label run and child keeping the tail.
    const std::uint32_t mid = alloc_node();  // may move nodes_: re-index below
    auto& child_label = nodes_[child].label;
    nodes_[mid].label.assign(
        child_label.begin(),
        child_label.begin() + static_cast<std::ptrdiff_t>(common));
    child_label.erase(
        child_label.begin(),
        child_label.begin() + static_cast<std::ptrdiff_t>(common));
    nodes_[mid].children.upsert(child_label[0], child);
    nodes_[node].children.upsert(ids[pos], mid);
    pos += common;
    path.push_back(mid);
    if (pos == ids.size()) return mid;
    const std::uint32_t fresh = alloc_node();
    nodes_[fresh].label.assign(ids.begin() + static_cast<std::ptrdiff_t>(pos),
                               ids.end());
    nodes_[mid].children.upsert(ids[pos], fresh);
    path.push_back(fresh);
    return fresh;
  }
  return node;
}

std::uint32_t Fib::walk_exact(const std::vector<ComponentId>& ids,
                              std::vector<std::uint32_t>* path) const {
  std::uint32_t node = 0;
  if (path) path->push_back(node);
  std::size_t pos = 0;
  while (pos < ids.size()) {
    const std::uint32_t child = nodes_[node].children.find(ids[pos]);
    if (child == kNoNode) return kNoNode;
    const auto& label = nodes_[child].label;
    if (label.size() > ids.size() - pos) return kNoNode;
    if (!std::equal(label.begin(), label.end(),
                    ids.begin() + static_cast<std::ptrdiff_t>(pos))) {
      return kNoNode;
    }
    pos += label.size();
    node = child;
    if (path) path->push_back(node);
  }
  return node;
}

Fib::Entry& Fib::entry_for(std::uint32_t node, const Name& prefix) {
  if (nodes_[node].entry == kNoEntry) {
    const std::int32_t e = alloc_entry();
    nodes_[node].entry = e;
    entries_[static_cast<std::size_t>(e)].prefix = prefix;
    ++entry_count_;
  }
  return entries_[static_cast<std::size_t>(nodes_[node].entry)];
}

void Fib::drop_entry(std::uint32_t node,
                     const std::vector<std::uint32_t>& path) {
  if (nodes_[node].entry == kNoEntry) return;
  free_entry(nodes_[node].entry);
  nodes_[node].entry = kNoEntry;
  --entry_count_;
  prune(path);
}

void Fib::prune(const std::vector<std::uint32_t>& path) {
  // Walk from the cleared node toward the root, restoring the invariant
  // that every non-root node carries an entry or branches (≥2 children).
  for (std::size_t i = path.size(); i-- > 1;) {
    const std::uint32_t n = path[i];
    Node& nd = nodes_[n];
    if (nd.entry != kNoEntry) break;
    if (nd.children.size() == 0) {
      nodes_[path[i - 1]].children.erase(nd.label[0]);
      free_node(n);
      continue;  // the parent may itself be a pass-through now
    }
    if (nd.children.size() == 1) {
      // Pass-through: absorb the only child (labels concatenate).  The
      // parent's edge key (nd.label[0]) is unchanged.
      const auto [comp, c] = nd.children.only();
      (void)comp;
      Node& cn = nodes_[c];
      nd.label.insert(nd.label.end(), cn.label.begin(), cn.label.end());
      nd.entry = cn.entry;
      nd.children = std::move(cn.children);
      free_node(c);
    }
    break;  // branching or merged node is structural: stop
  }
}

void Fib::add_route(const Name& prefix, FaceId next_hop, std::uint32_t cost) {
  if (impl_ == Impl::kLinear) {
    linear_.add_route(prefix, next_hop, cost);
    return;
  }
  std::vector<std::uint32_t> path;
  const std::uint32_t node = ensure_node(prefix.component_ids(), path);
  Entry& entry = entry_for(node, prefix);
  const auto existing = std::find_if(
      entry.next_hops.begin(), entry.next_hops.end(),
      [next_hop](const NextHop& hop) { return hop.face == next_hop; });
  if (existing != entry.next_hops.end()) {
    existing->cost = cost;
  } else {
    entry.next_hops.push_back(NextHop{next_hop, cost});
  }
  std::sort(entry.next_hops.begin(), entry.next_hops.end(),
            [](const NextHop& a, const NextHop& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.face < b.face;
            });
}

void Fib::remove_next_hop(const Name& prefix, FaceId next_hop) {
  if (impl_ == Impl::kLinear) {
    linear_.remove_next_hop(prefix, next_hop);
    return;
  }
  std::vector<std::uint32_t> path;
  const std::uint32_t node = walk_exact(prefix.component_ids(), &path);
  if (node == kNoNode || nodes_[node].entry == kNoEntry) return;
  auto& hops = entries_[static_cast<std::size_t>(nodes_[node].entry)].next_hops;
  hops.erase(std::remove_if(hops.begin(), hops.end(),
                            [next_hop](const NextHop& hop) {
                              return hop.face == next_hop;
                            }),
             hops.end());
  if (hops.empty()) drop_entry(node, path);
}

void Fib::remove_route(const Name& prefix) {
  if (impl_ == Impl::kLinear) {
    linear_.remove_route(prefix);
    return;
  }
  std::vector<std::uint32_t> path;
  const std::uint32_t node = walk_exact(prefix.component_ids(), &path);
  if (node == kNoNode) return;
  drop_entry(node, path);
}

void Fib::set_routes(const Name& prefix, std::vector<NextHop> next_hops) {
  if (impl_ == Impl::kLinear) {
    linear_.set_routes(prefix, std::move(next_hops));
    return;
  }
  if (next_hops.empty()) {
    remove_route(prefix);
    return;
  }
  std::sort(next_hops.begin(), next_hops.end(),
            [](const NextHop& a, const NextHop& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.face < b.face;
            });
  std::vector<std::uint32_t> path;
  const std::uint32_t node = ensure_node(prefix.component_ids(), path);
  Entry& entry = entry_for(node, prefix);
  entry.next_hops = std::move(next_hops);
}

const Fib::Entry* Fib::lookup(const Name& name) const {
  ++counters_.lookups;
  if (impl_ == Impl::kLinear) return linear_.lookup(name);
  const std::vector<ComponentId>& ids = name.component_ids();
  ++counters_.nodes_visited;  // root
  const Entry* best =
      nodes_[0].entry == kNoEntry
          ? nullptr
          : &entries_[static_cast<std::size_t>(nodes_[0].entry)];
  std::uint32_t node = 0;
  std::size_t pos = 0;
  while (pos < ids.size()) {
    const std::uint32_t child = nodes_[node].children.find(ids[pos]);
    if (child == kNoNode) break;
    const Node& cn = nodes_[child];
    ++counters_.nodes_visited;
    // An edge longer than the remaining components cannot lie on any
    // prefix of `name`; neither can a mismatching one.
    if (cn.label.size() > ids.size() - pos) break;
    if (!std::equal(cn.label.begin(), cn.label.end(),
                    ids.begin() + static_cast<std::ptrdiff_t>(pos))) {
      break;
    }
    pos += cn.label.size();
    node = child;
    if (cn.entry != kNoEntry) {
      best = &entries_[static_cast<std::size_t>(cn.entry)];
    }
  }
  return best;
}

const Fib::Entry* Fib::find_exact(const Name& prefix) const {
  if (impl_ == Impl::kLinear) return linear_.find_exact(prefix);
  const std::uint32_t node = walk_exact(prefix.component_ids(), nullptr);
  if (node == kNoNode || nodes_[node].entry == kNoEntry) return nullptr;
  return &entries_[static_cast<std::size_t>(nodes_[node].entry)];
}

}  // namespace tactic::ndn
