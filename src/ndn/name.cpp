#include "ndn/name.hpp"

#include <algorithm>

namespace tactic::ndn {

Name::Name(std::string_view uri) {
  std::size_t start = 0;
  while (start < uri.size()) {
    if (uri[start] == '/') {
      ++start;
      continue;
    }
    std::size_t end = uri.find('/', start);
    if (end == std::string_view::npos) end = uri.size();
    components_.emplace_back(uri.substr(start, end - start));
    start = end + 1;
  }
}

Name::Name(std::initializer_list<std::string> components)
    : components_(components) {}

Name Name::from_components(std::vector<std::string> components) {
  Name n;
  n.components_ = std::move(components);
  return n;
}

std::string Name::to_uri() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out += '/';
    out += c;
  }
  return out;
}

Name Name::prefix(std::size_t n) const {
  Name out;
  const std::size_t take = std::min(n, components_.size());
  out.components_.assign(components_.begin(),
                         components_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

bool Name::is_prefix_of(const Name& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

Name Name::append(std::string_view component) const {
  Name out = *this;
  out.components_.emplace_back(component);
  return out;
}

Name Name::append_number(std::uint64_t number) const {
  return append(std::to_string(number));
}

int Name::compare(const Name& other) const {
  const std::size_t n = std::min(components_.size(), other.components_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int c = components_[i].compare(other.components_[i]);
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

std::uint64_t Name::hash() const {
  // FNV-1a over components with a separator byte, so /ab/c and /a/bc
  // hash differently.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const auto& c : components_) {
    mix('/');
    for (unsigned char byte : c) mix(byte);
  }
  return h;
}

}  // namespace tactic::ndn
