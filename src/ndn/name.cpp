#include "ndn/name.hpp"

#include <algorithm>

namespace tactic::ndn {

Name::Name(std::string_view uri) {
  NameTable& table = NameTable::instance();
  std::size_t start = 0;
  while (start < uri.size()) {
    if (uri[start] == '/') {
      ++start;
      continue;
    }
    std::size_t end = uri.find('/', start);
    if (end == std::string_view::npos) end = uri.size();
    ids_.push_back(table.intern(uri.substr(start, end - start)));
    start = end + 1;
  }
}

Name::Name(std::initializer_list<std::string> components) {
  NameTable& table = NameTable::instance();
  ids_.reserve(components.size());
  for (const std::string& component : components) {
    ids_.push_back(table.intern(component));
  }
}

Name Name::from_components(std::vector<std::string> components) {
  Name n;
  NameTable& table = NameTable::instance();
  n.ids_.reserve(components.size());
  for (const std::string& component : components) {
    n.ids_.push_back(table.intern(component));
  }
  return n;
}

Name Name::from_ids(std::vector<ComponentId> ids) {
  Name n;
  n.ids_ = std::move(ids);
  return n;
}

std::vector<std::string> Name::components() const {
  const NameTable& table = NameTable::instance();
  std::vector<std::string> out;
  out.reserve(ids_.size());
  for (const ComponentId id : ids_) out.push_back(table.text(id));
  return out;
}

std::string Name::to_uri() const {
  if (ids_.empty()) return "/";
  const NameTable& table = NameTable::instance();
  std::string out;
  out.reserve(uri_size());
  for (const ComponentId id : ids_) {
    out += '/';
    out += table.text(id);
  }
  return out;
}

std::size_t Name::uri_size() const {
  if (ids_.empty()) return 1;  // "/"
  const NameTable& table = NameTable::instance();
  std::size_t size = ids_.size();  // one '/' per component
  for (const ComponentId id : ids_) size += table.text(id).size();
  return size;
}

Name Name::prefix(std::size_t n) const {
  Name out;
  const std::size_t take = std::min(n, ids_.size());
  out.ids_.assign(ids_.begin(),
                  ids_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

bool Name::is_prefix_of(const Name& other) const {
  if (ids_.size() > other.ids_.size()) return false;
  return std::equal(ids_.begin(), ids_.end(), other.ids_.begin());
}

Name Name::append(std::string_view component) const {
  Name out;
  out.ids_.reserve(ids_.size() + 1);
  out.ids_ = ids_;
  out.ids_.push_back(NameTable::instance().intern(component));
  return out;
}

Name Name::append_number(std::uint64_t number) const {
  return append(std::to_string(number));
}

int Name::compare(const Name& other) const {
  if (ids_ == other.ids_) return 0;  // common case, no table walk
  const NameTable& table = NameTable::instance();
  const std::size_t n = std::min(ids_.size(), other.ids_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ids_[i] == other.ids_[i]) continue;  // same interned component
    const int c = table.text(ids_[i]).compare(table.text(other.ids_[i]));
    if (c != 0) return c < 0 ? -1 : 1;
  }
  if (ids_.size() == other.ids_.size()) return 0;
  return ids_.size() < other.ids_.size() ? -1 : 1;
}

std::uint64_t Name::hash() const {
  if (hash_cached_) return hash_;
  // FNV-1a over components with a separator byte, so /ab/c and /a/bc
  // hash differently.  Must stay byte-identical to the pre-interning
  // definition: this value is the std::hash<Name> seed everywhere.
  const NameTable& table = NameTable::instance();
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const ComponentId id : ids_) {
    mix('/');
    for (unsigned char byte : table.text(id)) mix(byte);
  }
  hash_ = h;
  hash_cached_ = true;
  return h;
}

std::uint64_t Name::id_hash() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const ComponentId id : ids_) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xFFu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace tactic::ndn
