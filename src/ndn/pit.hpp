#pragma once
// Pending Interest Table.
//
// Besides classic NDN aggregation (one entry per in-flight name, multiple
// downstream faces), TACTIC's Protocol 4 requires each aggregated request
// to record the 3-tuple <tag T, flag F, incoming face>, so intermediate
// routers can validate every aggregated tag when the content returns.

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/fib.hpp"
#include "ndn/name.hpp"
#include "ndn/packet.hpp"

namespace tactic::ndn {

/// One aggregated downstream request (TACTIC's <T_u, F, InFace_u>).
struct PitInRecord {
  FaceId face = kInvalidFace;
  std::uint64_t nonce = 0;
  std::shared_ptr<const core::Tag> tag;
  std::size_t tag_wire_size = 0;
  double flag_f = 0.0;
  std::uint64_t access_path = 0;
  event::Time expiry = 0;  // absolute time this record times out
};

struct PitEntry {
  Name name;
  std::vector<PitInRecord> in_records;
  /// True once the Interest has been sent upstream (subsequent arrivals
  /// are aggregated, matching the paper's Protocol 4 lines 1-5).
  bool forwarded = false;
  event::EventId expiry_event;
  /// Absolute time at which the whole entry expires (max over records).
  event::Time expiry_time = 0;
  /// Position in the PIT's recency list (maintained by Pit itself).
  std::list<Name>::iterator lru_it;
};

class Pit {
 public:
  /// Finds the entry for `name`; nullptr if absent.  A hit counts as a
  /// use for LRU purposes.
  PitEntry* find(const Name& name);

  /// Creates (or returns the existing) entry; either way the entry
  /// becomes most-recently used.
  PitEntry& get_or_create(const Name& name);

  void erase(const Name& name);

  /// Drops every entry.  Callers owning scheduler events (expiry timers)
  /// must cancel them first — the PIT does not know the scheduler.
  void clear() {
    entries_.clear();
    lru_.clear();
  }

  std::size_t size() const { return entries_.size(); }

  /// The least-recently-used entry (the eviction victim when the owner
  /// enforces a capacity); nullptr when empty.  Does not touch recency.
  PitEntry* lru_victim();

  /// Read-only view of all live entries — the invariant checker walks
  /// this to assert no entry outlives its expiry.
  const std::unordered_map<Name, PitEntry>& entries() const {
    return entries_;
  }

  /// Whether a downstream face already requested this name with this nonce
  /// (duplicate/looping Interest detection).
  static bool has_nonce(const PitEntry& entry, std::uint64_t nonce);

 private:
  std::unordered_map<Name, PitEntry> entries_;
  /// Recency order, front = least recently used.  Entries hold their own
  /// position (`PitEntry::lru_it`) so touch/erase stay O(1).
  std::list<Name> lru_;
};

}  // namespace tactic::ndn
