#pragma once
// Pending Interest Table.
//
// Besides classic NDN aggregation (one entry per in-flight name, multiple
// downstream faces), TACTIC's Protocol 4 requires each aggregated request
// to record the 3-tuple <tag T, flag F, incoming face>, so intermediate
// routers can validate every aggregated tag when the content returns.
//
// Storage is a slab arena: entries live in a deque of reusable slots
// (stable addresses — callers hold PitEntry references across inserts),
// indexed by an interned-name hash map, with recency kept as an intrusive
// doubly-linked list of slot indices.  Freed slots keep their in_records
// vector capacity, so steady-state operation allocates nothing per
// Interest.  Expiry bookkeeping is a lazy min-heap: the invariant sampler
// asks for the earliest live deadline in O(1) amortized instead of
// scanning the whole table (see Pit::min_expiry).

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "event/scheduler.hpp"
#include "ndn/fib.hpp"
#include "ndn/name.hpp"
#include "ndn/packet.hpp"
#include "util/hash_index.hpp"

namespace tactic::ndn {

/// One aggregated downstream request (TACTIC's <T_u, F, InFace_u>).
struct PitInRecord {
  FaceId face = kInvalidFace;
  std::uint64_t nonce = 0;
  std::shared_ptr<const core::Tag> tag;
  std::size_t tag_wire_size = 0;
  double flag_f = 0.0;
  std::uint64_t access_path = 0;
  event::Time expiry = 0;  // absolute time this record times out
};

struct PitEntry {
  Name name;
  std::vector<PitInRecord> in_records;
  /// True once the Interest has been sent upstream (subsequent arrivals
  /// are aggregated, matching the paper's Protocol 4 lines 1-5).
  bool forwarded = false;
  event::EventId expiry_event;
  /// Absolute time at which the whole entry expires (max over records).
  /// Keep in sync via Pit::set_expiry so the expiry heap sees updates.
  event::Time expiry_time = 0;
  /// Arena slot this entry occupies (maintained by Pit itself).
  std::uint32_t slot = 0;
};

/// Stable reference to a PIT entry across erases and slot reuse: the slot
/// index plus the slot's generation at issue time.  Lets the expiry timer
/// find its entry without capturing (and heap-copying) the Name.
struct PitToken {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

class Pit {
 public:
  /// Finds the entry for `name`; nullptr if absent.  A hit counts as a
  /// use for LRU purposes.
  PitEntry* find(const Name& name);

  /// Token for an entry returned by find()/get_or_create(); resolves back
  /// via find_token() until the entry is erased (then never again — slot
  /// reuse bumps the generation).
  PitToken token_of(const PitEntry& entry) const {
    return PitToken{entry.slot, slots_[entry.slot].gen};
  }

  /// Resolves a token; nullptr once the entry was erased.  Counts as a
  /// lookup but does not touch LRU recency (its only caller erases the
  /// entry immediately).
  PitEntry* find_token(PitToken token);

  /// Erases the entry a token resolves to (no-op on a stale token).
  void erase_token(PitToken token);

  /// Creates (or returns the existing) entry; either way the entry
  /// becomes most-recently used.  References remain valid across later
  /// inserts (slab storage).
  PitEntry& get_or_create(const Name& name);

  void erase(const Name& name);

  /// Drops every entry.  Callers owning scheduler events (expiry timers)
  /// must cancel them first — the PIT does not know the scheduler.
  void clear();

  std::size_t size() const { return index_.size(); }

  /// The least-recently-used entry (the eviction victim when the owner
  /// enforces a capacity); nullptr when empty.  Does not touch recency.
  PitEntry* lru_victim();

  /// Visits every live entry (slot order).  Used for crash-time timer
  /// cancellation and invariant-failure reporting — never on a per-packet
  /// path, and nothing fingerprint-visible may depend on the order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.live) fn(slot.entry);
    }
  }

  /// Records the entry's expiry deadline (sets entry.expiry_time and
  /// pushes a heap record).  Callers must route every expiry_time update
  /// through here or min_expiry() goes stale.
  void set_expiry(PitEntry& entry, event::Time expiry);

  /// Earliest expiry deadline over all live entries; nullopt when none
  /// has a deadline.  Lazily discards records for erased or re-scheduled
  /// entries, so the amortized cost is O(1) per set_expiry call — the
  /// invariant sampler polls this instead of scanning the table.
  std::optional<event::Time> min_expiry();

  /// Whether a downstream face already requested this name with this nonce
  /// (duplicate/looping Interest detection).
  static bool has_nonce(const PitEntry& entry, std::uint64_t nonce);

  /// Hot-path work counters for sim::RouterOps aggregation and the
  /// regression tests pinning table costs.  Never fingerprinted.
  struct Counters {
    std::uint64_t lookups = 0;       // find() + get_or_create() probes
    std::uint64_t inserts = 0;       // entries created
    std::uint64_t expiry_polls = 0;  // heap records examined by min_expiry
  };
  const Counters& counters() const { return counters_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    PitEntry entry;
    /// Bumped on free; stale expiry-heap records fail the gen check.
    std::uint32_t gen = 0;
    bool live = false;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  struct ExpiryRec {
    event::Time expiry = 0;
    std::uint32_t slot = kNil;
    std::uint32_t gen = 0;
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t s);
  void lru_unlink(std::uint32_t s);
  void lru_push_back(std::uint32_t s);
  /// True when the heap record still describes a live, current deadline.
  bool rec_current(const ExpiryRec& rec) const;

  /// True when slot `s` is live and holds `name` (HashIndex probe).
  bool slot_holds(std::uint32_t s, const Name& name) const {
    return slots_[s].entry.name == name;
  }

  std::deque<Slot> slots_;  // stable addresses; freed slots keep capacity
  std::vector<std::uint32_t> free_slots_;
  /// Keys (names) live in the slots; the index maps id_hash -> slot and
  /// resolves collisions through slot_holds().  No per-entry allocation.
  util::HashIndex index_;
  std::uint32_t lru_head_ = kNil;  // least recently used
  std::uint32_t lru_tail_ = kNil;  // most recently used
  /// Min-heap by expiry with lazy deletion (gen + expiry_time checks).
  std::vector<ExpiryRec> expiry_heap_;
  mutable Counters counters_;
};

}  // namespace tactic::ndn
