#pragma once
// Global name-component interning table.
//
// Every name component string is registered here exactly once and mapped
// to a dense 32-bit ComponentId; Names then hold small ID vectors instead
// of string vectors, making component comparison O(1) and name hashing a
// few integer multiplies.  This is the substrate the LC-trie FIB and the
// interned-hash PIT/CS keys are built on (docs/ARCHITECTURE.md, "Name
// interning and table structures").
//
// The table is process-global and append-only: IDs are never recycled and
// interned strings are never moved, so `text(id)` references stay valid
// for the life of the process.  In particular the table survives router
// crash/restart cycles that wipe all volatile forwarding state (FIB, PIT,
// CS, Bloom filters) — it models the *vocabulary* of names, not any
// router's state.  ID values depend on interning order and carry no
// meaning: Name equality, ordering, and the byte-level hash used for
// fingerprints are all defined over the component *strings*, so two runs
// that intern in different orders still behave identically.  (The parallel
// engine leans on exactly that guarantee: partitions race to intern, so
// ID values differ run to run, and nothing behavior-visible may key off
// them — see docs/ARCHITECTURE.md, "Concurrency model".)
//
// Thread safety: `text(id)` is lock-free — components live in fixed-size
// blocks whose pointers are published atomically and never move, and the
// table size is release-published after each slot is fully constructed.
// `intern` takes a shared lock for the (common) already-interned lookup
// and an exclusive lock to register a new component.

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tactic::ndn {

/// Dense identifier of one interned name component.
using ComponentId = std::uint32_t;

/// Reserved non-component value (open-addressing sentinels and the like).
inline constexpr ComponentId kInvalidComponent = 0xFFFFFFFFu;

class NameTable {
 public:
  /// The process-global table every Name interns through.
  static NameTable& instance();

  /// Returns the ID for `text`, registering it on first sight.  Re-interning
  /// the same string always yields the same ID (ID stability).
  ComponentId intern(std::string_view text);

  /// The component string for `id`.  The reference is stable forever
  /// (block storage never moves strings).  Throws std::out_of_range for
  /// unregistered IDs.  Lock-free.
  const std::string& text(ComponentId id) const {
    if (id >= size_.load(std::memory_order_acquire)) {
      throw std::out_of_range("NameTable: unregistered component id");
    }
    return blocks_[id >> kBlockBits].load(std::memory_order_relaxed)
        ->slots[id & (kBlockSize - 1)];
  }

  /// Number of distinct components registered so far.
  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  // 4096 components per block; enough blocks to cover the 32-bit ID space
  // the simulator actually uses (2^28 components) without moving a string.
  static constexpr std::uint32_t kBlockBits = 12;
  static constexpr std::uint32_t kBlockSize = 1u << kBlockBits;
  static constexpr std::uint32_t kNumBlocks = 1u << 16;

  struct Block {
    std::string slots[kBlockSize];
  };

  NameTable() = default;
  ~NameTable();

  std::atomic<Block*> blocks_[kNumBlocks] = {};
  std::atomic<std::uint32_t> size_{0};

  mutable std::shared_mutex mutex_;  // guards ids_ and registration
  /// text -> id; keys view the block-owned strings (stable storage).
  std::unordered_map<std::string_view, ComponentId> ids_;
};

}  // namespace tactic::ndn
