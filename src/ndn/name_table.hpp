#pragma once
// Global name-component interning table.
//
// Every name component string is registered here exactly once and mapped
// to a dense 32-bit ComponentId; Names then hold small ID vectors instead
// of string vectors, making component comparison O(1) and name hashing a
// few integer multiplies.  This is the substrate the LC-trie FIB and the
// interned-hash PIT/CS keys are built on (docs/ARCHITECTURE.md, "Name
// interning and table structures").
//
// The table is process-global and append-only: IDs are never recycled and
// interned strings are never moved, so `text(id)` references stay valid
// for the life of the process.  In particular the table survives router
// crash/restart cycles that wipe all volatile forwarding state (FIB, PIT,
// CS, Bloom filters) — it models the *vocabulary* of names, not any
// router's state.  ID values depend on interning order and carry no
// meaning: Name equality, ordering, and the byte-level hash used for
// fingerprints are all defined over the component *strings*, so two runs
// that intern in different orders still behave identically.
//
// The simulator is single-threaded; the table is not synchronized.  The
// planned multi-lane router work must either shard it or add a lock.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tactic::ndn {

/// Dense identifier of one interned name component.
using ComponentId = std::uint32_t;

/// Reserved non-component value (open-addressing sentinels and the like).
inline constexpr ComponentId kInvalidComponent = 0xFFFFFFFFu;

class NameTable {
 public:
  /// The process-global table every Name interns through.
  static NameTable& instance();

  /// Returns the ID for `text`, registering it on first sight.  Re-interning
  /// the same string always yields the same ID (ID stability).
  ComponentId intern(std::string_view text);

  /// The component string for `id`.  The reference is stable forever (the
  /// backing deque never moves strings).  Throws std::out_of_range for
  /// unregistered IDs.
  const std::string& text(ComponentId id) const {
    return components_.at(id);
  }

  /// Number of distinct components registered so far.
  std::size_t size() const { return components_.size(); }

 private:
  NameTable() = default;

  std::deque<std::string> components_;  // id -> text, addresses stable
  /// text -> id; keys view the deque-owned strings (stable storage).
  std::unordered_map<std::string_view, ComponentId> ids_;
};

}  // namespace tactic::ndn
