#include "ndn/policy.hpp"

namespace tactic::ndn {

AccessControlPolicy::InterestDecision AccessControlPolicy::on_interest(
    Forwarder& /*node*/, FaceId /*in_face*/, CowInterest& /*interest*/) {
  return {};
}

AccessControlPolicy::CacheHitDecision AccessControlPolicy::on_cache_hit(
    Forwarder& /*node*/, FaceId /*in_face*/, const Interest& /*interest*/,
    CowData& /*response*/) {
  return {};
}

event::Time AccessControlPolicy::on_data(Forwarder& /*node*/,
                                         FaceId /*in_face*/,
                                         const Data& /*data*/) {
  return 0;
}

AccessControlPolicy::DownstreamDecision
AccessControlPolicy::on_data_to_downstream(Forwarder& /*node*/,
                                           const PitInRecord& /*record*/,
                                           const Data& /*incoming*/,
                                           CowData& /*outgoing*/) {
  return {};
}

bool AccessControlPolicy::may_cache(const Forwarder& /*node*/,
                                    const Data& data) {
  return !data.is_registration_response;
}

void AccessControlPolicy::on_restart(Forwarder& /*node*/) {}

}  // namespace tactic::ndn
