#include "ndn/forwarder.hpp"

#include <utility>

#include "util/log.hpp"

namespace tactic::ndn {

std::size_t wire_size(const PacketVariant& packet) {
  return std::visit([](const auto& p) { return p.wire_size(); }, packet);
}

Forwarder::Forwarder(event::Scheduler& scheduler, net::NodeInfo info,
                     std::size_t cs_capacity)
    : scheduler_(scheduler),
      info_(std::move(info)),
      cs_(cs_capacity),
      policy_(std::make_unique<NullPolicy>()) {}

void Forwarder::set_policy(std::unique_ptr<AccessControlPolicy> policy) {
  policy_ = policy ? std::move(policy) : std::make_unique<NullPolicy>();
}

void Forwarder::add_tracer(TraceFn tracer) {
  if (!tracer) return;
  if (!tracer_) {
    tracer_ = std::move(tracer);
    return;
  }
  tracer_ = [first = std::move(tracer_), second = std::move(tracer)](
                const Forwarder& node, const PacketVariant& packet,
                FaceId face, bool is_rx) {
    first(node, packet, face, is_rx);
    second(node, packet, face, is_rx);
  };
}

FaceId Forwarder::add_link_face(
    net::Link* tx_link, std::function<void(PacketVariant&&)> deliver) {
  Face face;
  face.id = static_cast<FaceId>(faces_.size());
  face.tx = tx_link;
  face.deliver = std::move(deliver);
  faces_.push_back(std::move(face));
  return faces_.back().id;
}

FaceId Forwarder::add_app_face(AppSink sink) {
  Face face;
  face.id = static_cast<FaceId>(faces_.size());
  face.is_app = true;
  face.sink = std::move(sink);
  faces_.push_back(std::move(face));
  return faces_.back().id;
}

void Forwarder::receive(FaceId in_face, PacketVariant&& packet) {
  if (!alive_) {
    // A crashed node neither observes nor processes traffic.
    ++counters_.dropped_while_down;
    return;
  }
  if (tracer_) tracer_(*this, packet, in_face, /*is_rx=*/true);
  std::visit(
      [&](auto&& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Interest>) {
          on_interest(in_face, std::move(p));
        } else if constexpr (std::is_same_v<T, Data>) {
          on_data(in_face, std::move(p));
        } else {
          on_nack(in_face, std::move(p));
        }
      },
      std::move(packet));
}

void Forwarder::inject_from_app(FaceId app_face, PacketVariant&& packet) {
  receive(app_face, std::move(packet));
}

net::Link::DeliverFn Forwarder::make_link_deliver(
    std::function<void(PacketVariant&&)> deliver, PacketVariant packet) {
  return [this, deliver = std::move(deliver),
          pkt = std::move(packet)](const net::FrameFate& fate) mutable {
    if (fate.corrupted) {
      // The frame arrived mangled.  Give the probe a chance to push the
      // flipped wire bytes through the real decoders, then drop: the L2
      // checksum rejects the frame before any payload handler runs.
      if (corruption_probe_) corruption_probe_(pkt, fate.corruption_seed);
      ++counters_.corrupt_frames_rejected;
      return;
    }
    deliver(std::move(pkt));
  };
}

void Forwarder::send(FaceId face_id, PacketVariant packet,
                     event::Time delay) {
  if (tracer_) tracer_(*this, packet, face_id, /*is_rx=*/false);
  Face& face = faces_.at(face_id);
  if (face.is_app) {
    // Local delivery to the application, after the compute delay.
    scheduler_.schedule(delay, [this, face_id, epoch = epoch_,
                                p = std::move(packet)]() {
      if (epoch != epoch_) return;  // node crashed since scheduling
      const Face& face = faces_.at(face_id);
      std::visit(
          [&](const auto& pkt) {
            using T = std::decay_t<decltype(pkt)>;
            if constexpr (std::is_same_v<T, Interest>) {
              if (face.sink.on_interest) face.sink.on_interest(face.id, pkt);
            } else if constexpr (std::is_same_v<T, Data>) {
              if (face.sink.on_data) face.sink.on_data(pkt);
            } else {
              if (face.sink.on_nack) face.sink.on_nack(pkt);
            }
          },
          p);
    });
    return;
  }

  auto transmit = [this, face_id, epoch = epoch_, p = std::move(packet)]() mutable {
    if (epoch != epoch_) return;  // node crashed since scheduling
    Face& face = faces_.at(face_id);
    const std::size_t size = wire_size(p);
    const bool sent =
        face.tx->send(size, make_link_deliver(face.deliver, std::move(p)));
    if (!sent) ++counters_.link_send_failures;
  };
  if (delay == 0) {
    transmit();
  } else {
    scheduler_.schedule(delay, std::move(transmit));
  }
}

void Forwarder::send_interest(const std::vector<Fib::NextHop>& next_hops,
                              Interest interest, event::Time delay) {
  if (tracer_ && !next_hops.empty()) {
    tracer_(*this, PacketVariant(interest), next_hops.front().face,
            /*is_rx=*/false);
  }
  auto transmit = [this, next_hops, epoch = epoch_,
                   p = std::move(interest)]() mutable {
    if (epoch != epoch_) return;  // node crashed since scheduling
    for (std::size_t i = 0; i < next_hops.size(); ++i) {
      Face& face = faces_.at(next_hops[i].face);
      if (face.is_app) {
        // Local application face (a producer): always deliverable, via
        // the scheduler so handlers never reenter the pipeline.
        if (i > 0) ++counters_.interest_failovers;
        const FaceId face_id = face.id;
        scheduler_.schedule(0, [this, face_id, epoch, pkt = std::move(p)]() {
          if (epoch != epoch_) return;
          const Face& app_face = faces_.at(face_id);
          if (app_face.sink.on_interest) {
            app_face.sink.on_interest(face_id, pkt);
          }
        });
        return;
      }
      const std::size_t size = p.wire_size();
      PacketVariant copy{p};
      const bool sent = face.tx->send(
          size, make_link_deliver(face.deliver, std::move(copy)));
      if (sent) {
        if (i > 0) ++counters_.interest_failovers;
        return;
      }
      ++counters_.link_send_failures;
    }
    ++counters_.interests_unsent;  // every candidate refused
  };
  if (delay == 0) {
    transmit();
  } else {
    scheduler_.schedule(delay, std::move(transmit));
  }
}

void Forwarder::schedule_pit_expiry(PitEntry& entry, event::Time expiry) {
  if (entry.expiry_event.valid()) scheduler_.cancel(entry.expiry_event);
  pit_.set_expiry(entry, expiry);  // updates expiry_time + the expiry heap
  const Name name = entry.name;
  entry.expiry_event = scheduler_.schedule_at(expiry, [this, name] {
    if (pit_.find(name) != nullptr) {
      ++counters_.pit_expirations;
      pit_.erase(name);
    }
  });
}

void Forwarder::on_interest(FaceId in_face, Interest&& interest) {
  ++counters_.interests_received;

  auto decision = policy_->on_interest(*this, in_face, interest);
  event::Time compute = decision.compute;
  using Action = AccessControlPolicy::InterestDecision::Action;
  if (decision.action == Action::kDrop) {
    ++counters_.interests_dropped;
    return;
  }
  if (decision.action == Action::kDropWithNack) {
    ++counters_.interests_nacked;
    ++counters_.nacks_sent;
    send(in_face, Nack{interest.name, decision.nack_reason}, compute);
    return;
  }

  // Content Store: a hit makes this node a content router for the request.
  if (const Data* cached = cs_.find(interest.name)) {
    Data response = *cached;
    response.from_cache = true;
    response.tag = interest.tag;
    response.tag_wire_size = interest.tag_wire_size;
    response.flag_f = interest.flag_f;
    auto hit = policy_->on_cache_hit(*this, in_face, interest, response);
    compute += hit.compute;
    if (hit.respond) {
      if (hit.deferred) {
        // Batched validation: the verdict leaves when the batch flushes.
        // The epoch guard kills it if the router crashed in between.
        hit.deferred->bind([this, in_face, epoch = epoch_, base = compute,
                            packet = std::move(response)](
                               event::Time extra) mutable {
          if (epoch != epoch_) return;
          ++counters_.data_sent;
          send(in_face, std::move(packet), base + extra);
        });
        return;
      }
      ++counters_.data_sent;
      send(in_face, std::move(response), compute);
      return;
    }
    // Policy suppressed cache reuse; continue as a miss.
  }

  // PIT: aggregate onto an in-flight request when possible.
  const event::Time record_expiry = scheduler_.now() + interest.lifetime;
  if (PitEntry* entry = pit_.find(interest.name);
      entry != nullptr && entry->forwarded) {
    if (Pit::has_nonce(*entry, interest.nonce)) {
      ++counters_.duplicate_interests;
      return;
    }
    entry->in_records.push_back(PitInRecord{
        in_face, interest.nonce, interest.tag, interest.tag_wire_size,
        interest.flag_f, interest.access_path, record_expiry});
    ++counters_.interests_aggregated;
    if (record_expiry > entry->expiry_time) {
      schedule_pit_expiry(*entry, record_expiry);
    }
    return;
  }

  // New PIT entry; forward by longest-prefix match with failover across
  // the route's next hops.
  const Fib::Entry* route = fib_.lookup(interest.name);
  if (route == nullptr || route->next_hops.empty()) {
    ++counters_.no_route;
    ++counters_.nacks_sent;
    send(in_face, Nack{interest.name, NackReason::kNoRoute}, compute);
    return;
  }
  // Bounded PIT: evict the least-recently-used entry before a *new* one
  // would push the table past its capacity.  (At this point the entry
  // either does not exist or exists un-forwarded, so find() == nullptr
  // is exactly the "this creates a new entry" case.)
  if (pit_capacity_ > 0 && pit_.size() >= pit_capacity_ &&
      pit_.find(interest.name) == nullptr) {
    if (PitEntry* victim = pit_.lru_victim()) {
      if (victim->expiry_event.valid()) {
        scheduler_.cancel(victim->expiry_event);
      }
      pit_.erase(victim->name);
      ++counters_.pit_evictions;
    }
  }
  PitEntry& entry = pit_.get_or_create(interest.name);
  entry.in_records.push_back(PitInRecord{
      in_face, interest.nonce, interest.tag, interest.tag_wire_size,
      interest.flag_f, interest.access_path, record_expiry});
  entry.forwarded = true;
  schedule_pit_expiry(entry, record_expiry);
  ++counters_.interests_forwarded;
  send_interest(route->next_hops, std::move(interest), compute);
}

void Forwarder::on_data(FaceId in_face, Data&& data) {
  ++counters_.data_received;

  event::Time compute = policy_->on_data(*this, in_face, data);

  PitEntry* entry = pit_.find(data.name);
  if (entry == nullptr) {
    ++counters_.unsolicited_data;
    return;
  }

  if (policy_->may_cache(*this, data)) {
    cs_.insert(data);
  }

  const event::Time now = scheduler_.now();
  for (const PitInRecord& record : entry->in_records) {
    if (record.expiry < now) continue;  // stale aggregate
    Data outgoing = data;
    auto decision =
        policy_->on_data_to_downstream(*this, record, data, outgoing);
    if (!decision.forward) continue;
    if (decision.attach_nack) {
      outgoing.nack_attached = true;
      outgoing.nack_reason = decision.nack_reason;
    }
    if (decision.deferred) {
      decision.deferred->bind([this, face = record.face, epoch = epoch_,
                               base = compute + decision.compute,
                               packet = std::move(outgoing)](
                                  event::Time extra) mutable {
        if (epoch != epoch_) return;
        ++counters_.data_sent;
        send(face, std::move(packet), base + extra);
      });
      continue;
    }
    ++counters_.data_sent;
    send(record.face, std::move(outgoing), compute + decision.compute);
  }
  if (entry->expiry_event.valid()) scheduler_.cancel(entry->expiry_event);
  pit_.erase(data.name);
}

void Forwarder::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;  // deferred sends scheduled before this instant die silently
  ++counters_.crashes;
  // Volatile forwarding state is lost: every PIT entry (with its expiry
  // timer) and the whole Content Store.
  pit_.for_each([this](const PitEntry& entry) {
    if (entry.expiry_event.valid()) scheduler_.cancel(entry.expiry_event);
  });
  pit_.clear();
  cs_.clear();
}

void Forwarder::restart() {
  if (alive_) return;
  alive_ = true;
  ++counters_.restarts;
  policy_->on_restart(*this);
}

void Forwarder::on_nack(FaceId /*in_face*/, Nack&& nack) {
  ++counters_.nacks_received;
  // Standalone NACKs propagate to every downstream requester and clear
  // the pending state (hop-by-hop error semantics).
  PitEntry* entry = pit_.find(nack.name);
  if (entry == nullptr) return;
  for (const PitInRecord& record : entry->in_records) {
    ++counters_.nacks_sent;
    send(record.face, Nack{nack.name, nack.reason}, 0);
  }
  if (entry->expiry_event.valid()) scheduler_.cancel(entry->expiry_event);
  pit_.erase(nack.name);
}

}  // namespace tactic::ndn
