#include "ndn/forwarder.hpp"

#include <utility>

#include "util/log.hpp"

namespace tactic::ndn {

std::size_t wire_size(const PacketVariant& packet) {
  return std::visit([](const auto& p) { return p->wire_size(); }, packet);
}

PacketVariant make_packet(Interest&& interest) {
  return PacketVariant(
      InterestPtr(std::make_shared<Interest>(std::move(interest))));
}

PacketVariant make_packet(Data&& data) {
  return PacketVariant(DataPtr(std::make_shared<Data>(std::move(data))));
}

PacketVariant make_packet(Nack&& nack) {
  return PacketVariant(NackPtr(std::make_shared<Nack>(std::move(nack))));
}

namespace {

/// Frame kind tags mirror the PacketVariant alternative index.
net::Frame to_frame(PacketVariant&& packet) {
  net::Frame frame;
  frame.kind = static_cast<std::uint32_t>(packet.index());
  std::visit(
      [&](auto&& p) {
        frame.payload =
            std::static_pointer_cast<const void>(std::move(p));
      },
      std::move(packet));
  return frame;
}

PacketVariant from_frame(net::Frame&& frame) {
  switch (frame.kind) {
    case 0:
      return PacketVariant(InterestPtr(
          std::static_pointer_cast<const Interest>(std::move(frame.payload))));
    case 1:
      return PacketVariant(DataPtr(
          std::static_pointer_cast<const Data>(std::move(frame.payload))));
    default:
      return PacketVariant(NackPtr(
          std::static_pointer_cast<const Nack>(std::move(frame.payload))));
  }
}

}  // namespace

Forwarder::Forwarder(event::Scheduler& scheduler, net::NodeInfo info,
                     std::size_t cs_capacity)
    : scheduler_(&scheduler),
      info_(std::move(info)),
      cs_(cs_capacity),
      policy_(std::make_unique<NullPolicy>()) {}

void Forwarder::set_policy(std::unique_ptr<AccessControlPolicy> policy) {
  policy_ = policy ? std::move(policy) : std::make_unique<NullPolicy>();
}

void Forwarder::add_tracer(TraceFn tracer) {
  if (!tracer) return;
  if (!tracer_) {
    tracer_ = std::move(tracer);
    return;
  }
  tracer_ = [first = std::move(tracer_), second = std::move(tracer)](
                const Forwarder& node, const PacketVariant& packet,
                FaceId face, bool is_rx) {
    first(node, packet, face, is_rx);
    second(node, packet, face, is_rx);
  };
}

FaceId Forwarder::add_link_face(
    net::Link* tx_link, std::function<void(PacketVariant&&)> deliver) {
  Face face;
  face.id = static_cast<FaceId>(faces_.size());
  face.tx = tx_link;
  faces_.push_back(std::move(face));
  // Register the receiver once: per-frame state on the wire is just the
  // shared packet handle.  Corrupted frames stay a *sender*-side event
  // (`this` is the transmitting node): the probe sees the packet, the
  // counter ticks here, and the receiver never observes the frame.
  tx_link->set_receiver([this, deliver = std::move(deliver)](
                            const net::FrameFate& fate, net::Frame&& frame) {
    PacketVariant packet = from_frame(std::move(frame));
    if (fate.corrupted) {
      if (corruption_probe_) corruption_probe_(packet, fate.corruption_seed);
      ++counters_.corrupt_frames_rejected;
      return;
    }
    deliver(std::move(packet));
  });
  return faces_.back().id;
}

FaceId Forwarder::add_app_face(AppSink sink) {
  Face face;
  face.id = static_cast<FaceId>(faces_.size());
  face.is_app = true;
  face.sink = std::move(sink);
  faces_.push_back(std::move(face));
  return faces_.back().id;
}

void Forwarder::receive(FaceId in_face, PacketVariant&& packet) {
  if (!alive_) {
    // A crashed node neither observes nor processes traffic.
    ++counters_.dropped_while_down;
    return;
  }
  if (tracer_) tracer_(*this, packet, in_face, /*is_rx=*/true);
  std::visit(
      [&](auto&& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, InterestPtr>) {
          on_interest(in_face, std::move(p));
        } else if constexpr (std::is_same_v<T, DataPtr>) {
          on_data(in_face, std::move(p));
        } else {
          on_nack(in_face, std::move(p));
        }
      },
      std::move(packet));
}

void Forwarder::inject_from_app(FaceId app_face, PacketVariant&& packet) {
  receive(app_face, std::move(packet));
}

void Forwarder::send(FaceId face_id, PacketVariant packet,
                     event::Time delay) {
  if (tracer_) tracer_(*this, packet, face_id, /*is_rx=*/false);
  Face& face = faces_.at(face_id);
  if (face.is_app) {
    // Local delivery to the application, after the compute delay.
    scheduler_->schedule(delay, [this, face_id, epoch = epoch_,
                                p = std::move(packet)]() {
      if (epoch != epoch_) return;  // node crashed since scheduling
      const Face& face = faces_.at(face_id);
      std::visit(
          [&](const auto& pkt) {
            using T = std::decay_t<decltype(pkt)>;
            if constexpr (std::is_same_v<T, InterestPtr>) {
              if (face.sink.on_interest) face.sink.on_interest(face.id, *pkt);
            } else if constexpr (std::is_same_v<T, DataPtr>) {
              if (face.sink.on_data) face.sink.on_data(*pkt);
            } else {
              if (face.sink.on_nack) face.sink.on_nack(*pkt);
            }
          },
          p);
    });
    return;
  }

  auto transmit = [this, face_id, epoch = epoch_,
                   p = std::move(packet)]() mutable {
    if (epoch != epoch_) return;  // node crashed since scheduling
    Face& face = faces_.at(face_id);
    const std::size_t size = wire_size(p);
    const bool sent = face.tx->send(size, to_frame(std::move(p)));
    if (!sent) ++counters_.link_send_failures;
  };
  if (delay == 0) {
    transmit();
  } else {
    scheduler_->schedule(delay, std::move(transmit));
  }
}

void Forwarder::do_send_interest(const std::vector<Fib::NextHop>& next_hops,
                                 InterestPtr&& p) {
  for (std::size_t i = 0; i < next_hops.size(); ++i) {
    Face& face = faces_.at(next_hops[i].face);
    if (face.is_app) {
      // Local application face (a producer): always deliverable, via
      // the scheduler so handlers never reenter the pipeline.
      if (i > 0) ++counters_.interest_failovers;
      const FaceId face_id = face.id;
      scheduler_->schedule(0, [this, face_id, epoch = epoch_,
                              pkt = std::move(p)]() {
        if (epoch != epoch_) return;
        const Face& app_face = faces_.at(face_id);
        if (app_face.sink.on_interest) {
          app_face.sink.on_interest(face_id, *pkt);
        }
      });
      return;
    }
    const std::size_t size = p->wire_size();
    const bool sent =
        face.tx->send(size, to_frame(PacketVariant(InterestPtr(p))));
    if (sent) {
      if (i > 0) ++counters_.interest_failovers;
      return;
    }
    ++counters_.link_send_failures;
  }
  ++counters_.interests_unsent;  // every candidate refused
}

void Forwarder::send_interest(const std::vector<Fib::NextHop>& next_hops,
                              InterestPtr interest, event::Time delay) {
  if (tracer_ && !next_hops.empty()) {
    tracer_(*this, PacketVariant(InterestPtr(interest)),
            next_hops.front().face,
            /*is_rx=*/false);
  }
  if (delay == 0) {
    do_send_interest(next_hops, std::move(interest));
    return;
  }
  scheduler_->schedule(delay, [this, next_hops, epoch = epoch_,
                              p = std::move(interest)]() mutable {
    if (epoch != epoch_) return;  // node crashed since scheduling
    do_send_interest(next_hops, std::move(p));
  });
}

void Forwarder::schedule_pit_expiry(PitEntry& entry, event::Time expiry) {
  if (entry.expiry_event.valid()) scheduler_->cancel(entry.expiry_event);
  pit_.set_expiry(entry, expiry);  // updates expiry_time + the expiry heap
  const PitToken token = pit_.token_of(entry);
  entry.expiry_event = scheduler_->schedule_at(expiry, [this, token] {
    if (PitEntry* entry = pit_.find_token(token)) {
      ++counters_.pit_expirations;
      pit_.erase(entry->name);
    }
  });
}

void Forwarder::on_interest(FaceId in_face, InterestPtr&& packet) {
  ++counters_.interests_received;

  CowInterest interest(std::move(packet), pool_);
  auto decision = policy_->on_interest(*this, in_face, interest);
  event::Time compute = decision.compute;
  using Action = AccessControlPolicy::InterestDecision::Action;
  if (decision.action == Action::kDrop) {
    ++counters_.interests_dropped;
    return;
  }
  if (decision.action == Action::kDropWithNack) {
    ++counters_.interests_nacked;
    ++counters_.nacks_sent;
    auto nack = pool_.make_nack();
    nack->name = interest->name;
    nack->reason = decision.nack_reason;
    send(in_face, PacketVariant(NackPtr(std::move(nack))), compute);
    return;
  }

  // Content Store: a hit makes this node a content router for the request.
  if (const DataPtr* cached = cs_.find(interest->name)) {
    // Clone to stamp the response envelope (tag echo, from_cache); the
    // cached object itself stays pristine and shared.
    auto stamped = pool_.clone_for_edit(**cached);
    stamped->from_cache = true;
    stamped->tag = interest->tag;
    stamped->tag_wire_size = interest->tag_wire_size;
    stamped->flag_f = interest->flag_f;
    CowData response(DataPtr(std::move(stamped)), pool_);
    auto hit = policy_->on_cache_hit(*this, in_face, *interest, response);
    compute += hit.compute;
    if (hit.respond) {
      if (hit.deferred) {
        // Batched validation: the verdict leaves when the batch flushes.
        // The epoch guard kills it if the router crashed in between.
        hit.deferred->bind([this, in_face, epoch = epoch_, base = compute,
                            packet = response.take()](
                               event::Time extra) mutable {
          if (epoch != epoch_) return;
          ++counters_.data_sent;
          send(in_face, PacketVariant(std::move(packet)), base + extra);
        });
        return;
      }
      ++counters_.data_sent;
      send(in_face, PacketVariant(response.take()), compute);
      return;
    }
    // Policy suppressed cache reuse; continue as a miss.
  }

  // PIT: aggregate onto an in-flight request when possible.
  const event::Time record_expiry = scheduler_->now() + interest->lifetime;
  if (PitEntry* entry = pit_.find(interest->name);
      entry != nullptr && entry->forwarded) {
    if (Pit::has_nonce(*entry, interest->nonce)) {
      ++counters_.duplicate_interests;
      return;
    }
    entry->in_records.push_back(PitInRecord{
        in_face, interest->nonce, interest->tag, interest->tag_wire_size,
        interest->flag_f, interest->access_path, record_expiry});
    ++counters_.interests_aggregated;
    if (record_expiry > entry->expiry_time) {
      schedule_pit_expiry(*entry, record_expiry);
    }
    return;
  }

  // New PIT entry; forward by longest-prefix match with failover across
  // the route's next hops.
  const Fib::Entry* route = fib_.lookup(interest->name);
  if (route == nullptr || route->next_hops.empty()) {
    ++counters_.no_route;
    ++counters_.nacks_sent;
    auto nack = pool_.make_nack();
    nack->name = interest->name;
    nack->reason = NackReason::kNoRoute;
    send(in_face, PacketVariant(NackPtr(std::move(nack))), compute);
    return;
  }
  // Bounded PIT: evict the least-recently-used entry before a *new* one
  // would push the table past its capacity.  (At this point the entry
  // either does not exist or exists un-forwarded, so find() == nullptr
  // is exactly the "this creates a new entry" case.)
  if (pit_capacity_ > 0 && pit_.size() >= pit_capacity_ &&
      pit_.find(interest->name) == nullptr) {
    if (PitEntry* victim = pit_.lru_victim()) {
      if (victim->expiry_event.valid()) {
        scheduler_->cancel(victim->expiry_event);
      }
      pit_.erase(victim->name);
      ++counters_.pit_evictions;
    }
  }
  PitEntry& entry = pit_.get_or_create(interest->name);
  entry.in_records.push_back(PitInRecord{
      in_face, interest->nonce, interest->tag, interest->tag_wire_size,
      interest->flag_f, interest->access_path, record_expiry});
  entry.forwarded = true;
  schedule_pit_expiry(entry, record_expiry);
  ++counters_.interests_forwarded;
  send_interest(route->next_hops, interest.take(), compute);
}

void Forwarder::on_data(FaceId in_face, DataPtr&& packet) {
  ++counters_.data_received;

  const DataPtr data = std::move(packet);
  event::Time compute = policy_->on_data(*this, in_face, *data);

  PitEntry* entry = pit_.find(data->name);
  if (entry == nullptr) {
    ++counters_.unsolicited_data;
    return;
  }

  if (policy_->may_cache(*this, *data)) {
    // Share the arriving packet when its envelope is already clean;
    // otherwise cache one stripped clone (the cache stores content, not
    // the response envelope it arrived in).
    const bool clean = !data->tag && data->tag_wire_size == 0 &&
                       !data->nack_attached &&
                       data->nack_reason == NackReason::kNone &&
                       data->flag_f == 0.0 && !data->from_cache;
    if (clean) {
      cs_.insert(data);
    } else {
      auto stripped = pool_.clone_for_edit(*data);
      stripped->tag.reset();
      stripped->tag_wire_size = 0;
      stripped->nack_attached = false;
      stripped->nack_reason = NackReason::kNone;
      stripped->flag_f = 0.0;
      stripped->from_cache = false;
      cs_.insert(DataPtr(std::move(stripped)));
    }
  }

  const event::Time now = scheduler_->now();
  for (const PitInRecord& record : entry->in_records) {
    if (record.expiry < now) continue;  // stale aggregate
    // Second handle on the incoming packet: untouched records forward
    // the packet itself; policy edits clone via the COW seam.
    CowData outgoing(DataPtr(data), pool_);
    auto decision =
        policy_->on_data_to_downstream(*this, record, *data, outgoing);
    if (!decision.forward) continue;
    if (decision.attach_nack) {
      Data& mutated = outgoing.edit();
      mutated.nack_attached = true;
      mutated.nack_reason = decision.nack_reason;
    }
    if (decision.deferred) {
      decision.deferred->bind([this, face = record.face, epoch = epoch_,
                               base = compute + decision.compute,
                               packet = outgoing.take()](
                                  event::Time extra) mutable {
        if (epoch != epoch_) return;
        ++counters_.data_sent;
        send(face, PacketVariant(std::move(packet)), base + extra);
      });
      continue;
    }
    ++counters_.data_sent;
    send(record.face, PacketVariant(outgoing.take()),
         compute + decision.compute);
  }
  if (entry->expiry_event.valid()) scheduler_->cancel(entry->expiry_event);
  pit_.erase(data->name);
}

void Forwarder::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;  // deferred sends scheduled before this instant die silently
  ++counters_.crashes;
  // Volatile forwarding state is lost: every PIT entry (with its expiry
  // timer), the whole Content Store, and the pool's recycled packet
  // buffers (live packets belong to other nodes / in-flight frames).
  pit_.for_each([this](const PitEntry& entry) {
    if (entry.expiry_event.valid()) scheduler_->cancel(entry.expiry_event);
  });
  pit_.clear();
  cs_.clear();
  pool_.wipe_volatile();
}

void Forwarder::restart() {
  if (alive_) return;
  alive_ = true;
  ++counters_.restarts;
  policy_->on_restart(*this);
}

void Forwarder::on_nack(FaceId /*in_face*/, NackPtr&& packet) {
  ++counters_.nacks_received;
  // Standalone NACKs propagate to every downstream requester and clear
  // the pending state (hop-by-hop error semantics).  One shared packet
  // serves every downstream (the NACK carries only name + reason).
  const NackPtr nack = std::move(packet);
  PitEntry* entry = pit_.find(nack->name);
  if (entry == nullptr) return;
  for (const PitInRecord& record : entry->in_records) {
    ++counters_.nacks_sent;
    send(record.face, PacketVariant(NackPtr(nack)), 0);
  }
  if (entry->expiry_event.valid()) scheduler_->cancel(entry->expiry_event);
  pit_.erase(nack->name);
}

}  // namespace tactic::ndn
