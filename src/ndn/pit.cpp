#include "ndn/pit.hpp"

#include <algorithm>

namespace tactic::ndn {

PitEntry* Pit::find(const Name& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.end(), lru_, it->second.lru_it);  // touch
  return &it->second;
}

PitEntry& Pit::get_or_create(const Name& name) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    lru_.push_back(name);
    it->second.lru_it = std::prev(lru_.end());
  } else {
    lru_.splice(lru_.end(), lru_, it->second.lru_it);  // touch
  }
  return it->second;
}

void Pit::erase(const Name& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

PitEntry* Pit::lru_victim() {
  if (lru_.empty()) return nullptr;
  const auto it = entries_.find(lru_.front());
  return it == entries_.end() ? nullptr : &it->second;
}

bool Pit::has_nonce(const PitEntry& entry, std::uint64_t nonce) {
  return std::any_of(
      entry.in_records.begin(), entry.in_records.end(),
      [nonce](const PitInRecord& rec) { return rec.nonce == nonce; });
}

}  // namespace tactic::ndn
