#include "ndn/pit.hpp"

#include <algorithm>

namespace tactic::ndn {

PitEntry* Pit::find(const Name& name) {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

PitEntry& Pit::get_or_create(const Name& name) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.name = name;
  return it->second;
}

void Pit::erase(const Name& name) { entries_.erase(name); }

bool Pit::has_nonce(const PitEntry& entry, std::uint64_t nonce) {
  return std::any_of(
      entry.in_records.begin(), entry.in_records.end(),
      [nonce](const PitInRecord& rec) { return rec.nonce == nonce; });
}

}  // namespace tactic::ndn
