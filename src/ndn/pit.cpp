#include "ndn/pit.hpp"

#include <algorithm>

namespace tactic::ndn {

void Pit::lru_unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void Pit::lru_push_back(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.lru_prev = lru_tail_;
  slot.lru_next = kNil;
  if (lru_tail_ != kNil) {
    slots_[lru_tail_].lru_next = s;
  } else {
    lru_head_ = s;
  }
  lru_tail_ = s;
}

std::uint32_t Pit::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  const auto s = static_cast<std::uint32_t>(slots_.size() - 1);
  slots_[s].entry.slot = s;
  return s;
}

void Pit::free_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.entry.name.clear();        // keeps component capacity
  slot.entry.in_records.clear();  // keeps capacity — the arena win
  slot.entry.forwarded = false;
  slot.entry.expiry_event = event::EventId();
  slot.entry.expiry_time = 0;
  ++slot.gen;  // invalidates any expiry-heap records for this slot
  slot.live = false;
  free_slots_.push_back(s);
}

PitEntry* Pit::find(const Name& name) {
  ++counters_.lookups;
  const std::uint32_t s = index_.find(
      name.id_hash(), [&](std::uint32_t v) { return slot_holds(v, name); });
  if (s == util::HashIndex::kNpos) return nullptr;
  lru_unlink(s);
  lru_push_back(s);  // touch
  return &slots_[s].entry;
}

PitEntry* Pit::find_token(PitToken token) {
  ++counters_.lookups;
  if (token.slot >= slots_.size()) return nullptr;
  Slot& slot = slots_[token.slot];
  if (!slot.live || slot.gen != token.gen) return nullptr;
  return &slot.entry;
}

void Pit::erase_token(PitToken token) {
  if (PitEntry* entry = find_token(token)) erase(entry->name);
}

PitEntry& Pit::get_or_create(const Name& name) {
  ++counters_.lookups;
  const std::uint32_t existing = index_.find(
      name.id_hash(), [&](std::uint32_t v) { return slot_holds(v, name); });
  if (existing != util::HashIndex::kNpos) {
    lru_unlink(existing);
    lru_push_back(existing);  // touch
    return slots_[existing].entry;
  }
  ++counters_.inserts;
  const std::uint32_t s = alloc_slot();
  Slot& slot = slots_[s];
  slot.entry.name = name;
  slot.live = true;
  index_.insert(name.id_hash(), s);
  lru_push_back(s);
  return slot.entry;
}

void Pit::erase(const Name& name) {
  const std::uint32_t s = index_.find(
      name.id_hash(), [&](std::uint32_t v) { return slot_holds(v, name); });
  if (s == util::HashIndex::kNpos) return;
  index_.erase(name.id_hash(),
               [&](std::uint32_t v) { return slot_holds(v, name); });
  lru_unlink(s);
  free_slot(s);
}

void Pit::clear() {
  index_.clear();
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].live) {
      lru_unlink(s);
      free_slot(s);
    }
  }
  expiry_heap_.clear();
  lru_head_ = lru_tail_ = kNil;
}

PitEntry* Pit::lru_victim() {
  if (lru_head_ == kNil) return nullptr;
  return &slots_[lru_head_].entry;
}

void Pit::set_expiry(PitEntry& entry, event::Time expiry) {
  const auto greater = [](const ExpiryRec& a, const ExpiryRec& b) {
    return a.expiry > b.expiry;  // min-heap
  };
  entry.expiry_time = expiry;
  const std::uint32_t s = entry.slot;
  expiry_heap_.push_back(ExpiryRec{expiry, s, slots_[s].gen});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), greater);
  // Discard stale heads now rather than waiting for a min_expiry()
  // poll: owners that never sample the heap (no invariant checking)
  // would otherwise grow it without bound.  Each record is discarded at
  // most once, so the amortized cost stays O(1) per set_expiry call.
  while (!expiry_heap_.empty() && !rec_current(expiry_heap_.front())) {
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), greater);
    expiry_heap_.pop_back();
  }
}

bool Pit::rec_current(const ExpiryRec& rec) const {
  const Slot& slot = slots_[rec.slot];
  return slot.live && slot.gen == rec.gen &&
         slot.entry.expiry_time == rec.expiry;
}

std::optional<event::Time> Pit::min_expiry() {
  const auto greater = [](const ExpiryRec& a, const ExpiryRec& b) {
    return a.expiry > b.expiry;
  };
  while (!expiry_heap_.empty()) {
    ++counters_.expiry_polls;
    if (rec_current(expiry_heap_.front())) {
      return expiry_heap_.front().expiry;
    }
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), greater);
    expiry_heap_.pop_back();
  }
  return std::nullopt;
}

bool Pit::has_nonce(const PitEntry& entry, std::uint64_t nonce) {
  return std::any_of(
      entry.in_records.begin(), entry.in_records.end(),
      [nonce](const PitInRecord& rec) { return rec.nonce == nonce; });
}

}  // namespace tactic::ndn
