#pragma once
// Content Store: the per-router LRU cache that makes a core router a
// "content router" (R_C^c) for the objects it holds.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ndn/name.hpp"
#include "ndn/packet.hpp"

namespace tactic::ndn {

class ContentStore {
 public:
  /// `capacity` in packets; 0 disables caching entirely.
  explicit ContentStore(std::size_t capacity = 1000);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }

  /// Exact-name lookup.  A hit refreshes LRU order and returns a pointer
  /// valid until the next insert.  Counters are updated.
  const Data* find(const Name& name);

  /// Inserts (or refreshes) a cacheable data packet.  Per-requester fields
  /// (tag echo, NACK, F) are stripped: the cache stores content, not the
  /// response envelope it arrived in.
  void insert(const Data& data);

  bool contains(const Name& name) const { return index_.count(name) > 0; }

  /// Drops every cached object (crash semantics).  Hit/miss counters are
  /// cumulative and survive — they describe the run, not the store.
  void clear() {
    lru_.clear();
    index_.clear();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Capacity evictions performed (always O(1): the LRU tail pops — never
  /// a table scan).  For sim::RouterOps; never fingerprinted.
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<Data> lru_;  // front = most recent
  /// Keyed on the interned-ID hash: insert/find never re-hash name bytes.
  std::unordered_map<Name, std::list<Data>::iterator, InternedNameHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tactic::ndn
