#pragma once
// Content Store: the per-router LRU cache that makes a core router a
// "content router" (R_C^c) for the objects it holds.
//
// Entries are shared immutable Data handles (DataPtr) — caching a packet
// is a refcount bump, not a copy, and a cache hit clones only to stamp
// the response envelope.  Storage is a slab of reusable slots with an
// intrusive LRU list and an externalized-key hash index (PR-6 PIT
// style), so steady-state insert/evict allocates nothing.

#include <cstdint>
#include <deque>
#include <vector>

#include "ndn/name.hpp"
#include "ndn/packet.hpp"
#include "util/hash_index.hpp"

namespace tactic::ndn {

class ContentStore {
 public:
  /// `capacity` in packets; 0 disables caching entirely.
  explicit ContentStore(std::size_t capacity = 1000);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }

  /// Exact-name lookup.  A hit refreshes LRU order and returns a pointer
  /// to the shared handle, valid until the next insert.  Counters are
  /// updated.
  const DataPtr* find(const Name& name);

  /// Inserts (or LRU-refreshes) a cacheable data packet, sharing the
  /// handle.  The caller (Forwarder) strips the response envelope first
  /// when needed — the cache stores content, not the envelope it arrived
  /// in.
  void insert(DataPtr data);

  bool contains(const Name& name) const {
    return index_.find(name.id_hash(), [&](std::uint32_t s) {
      return slots_[s].data->name == name;
    }) != util::HashIndex::kNpos;
  }

  /// Drops every cached object (crash semantics).  Hit/miss counters are
  /// cumulative and survive — they describe the run, not the store.
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Capacity evictions performed (always O(1): the LRU tail pops — never
  /// a table scan).  For sim::RouterOps; never fingerprinted.
  std::uint64_t evictions() const { return evictions_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    DataPtr data;
    bool live = false;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t s);
  void lru_unlink(std::uint32_t s);
  void lru_push_front(std::uint32_t s);

  std::size_t capacity_;
  std::deque<Slot> slots_;  // stable addresses
  std::vector<std::uint32_t> free_slots_;
  /// id_hash -> slot; keys (names) live in the cached packets.
  util::HashIndex index_;
  std::uint32_t lru_head_ = kNil;  // most recently used
  std::uint32_t lru_tail_ = kNil;  // least recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tactic::ndn
