#pragma once
// Per-router packet pool: slab arenas behind shared_ptr handles.
//
// The zero-copy packet path allocates a packet once and shares it along
// its whole route (docs/ARCHITECTURE.md, "Packet memory model").  Two
// heap costs would survive naive make_shared<const Interest>: the
// control-block allocation per packet, and the capacity of the packet's
// own vectors/strings dying with it.  The pool removes both:
//
//  - packet objects live in a deque slab (stable addresses, PR-6 style);
//    a freed slot is reset field-wise (reset_for_reuse) but keeps its
//    heap capacity, so re-acquiring it allocates nothing;
//  - each acquire hands out an *aliasing* shared_ptr whose control block
//    (fused with a small Lease object that returns the slot on the last
//    release) comes from a free list of fixed-size blocks.
//
// Steady state: acquire + release touch only free-list vectors — zero
// heap traffic per packet (ci/alloc.sh pins this).  Pooling can be
// switched off globally (set_pooling_enabled(false)); packets then come
// from plain make_shared.  The two modes are behaviourally identical —
// ci/parity.sh runs the fingerprint corpus both ways.
//
// Cow<T> is the copy-on-write seam: policies receive Cow handles and may
// call edit().  A uniquely-held packet (the common case: an arriving
// packet whose only reference is the pipeline's own) is mutated in
// place; a shared one (aliased by the ContentStore or by other PIT
// fan-out sends) is first cloned into a fresh pool slot.  Readers of the
// original handle never observe an edit.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "ndn/packet.hpp"

namespace tactic::ndn {

namespace detail {

/// Process-wide concurrent-mode flag for pool slabs.  Off (default) the
/// free lists are untouched by locks — the sequential hot path.  The
/// parallel engine turns it on before spawning workers (and never mid
/// run): packets acquired on one partition's thread can take their last
/// release on another (cross-partition frames), so slab free lists and
/// the Lease block recycler become cross-thread.  Acquire stays an
/// owner-thread-only operation either way, so PoolCounters need no lock.
inline bool pool_concurrent_mode = false;

}  // namespace detail

/// Pool traffic counters, aggregated into sim::RouterOps per router
/// class.  Never fingerprinted.
struct PoolCounters {
  std::uint64_t acquires = 0;       // packets handed out
  std::uint64_t reuses = 0;         // ... of which recycled a slot
  std::uint64_t refills = 0;        // ... of which grew the slab
  std::uint64_t cow_clones = 0;     // clone_for_edit on a shared packet
  std::uint64_t inplace_edits = 0;  // edit() on a uniquely-held packet

  PoolCounters& operator+=(const PoolCounters& other) {
    acquires += other.acquires;
    reuses += other.reuses;
    refills += other.refills;
    cow_clones += other.cow_clones;
    inplace_edits += other.inplace_edits;
    return *this;
  }
};

namespace detail {

/// Fixed-size block recycler for the allocate_shared nodes (control block
/// fused with the Lease).  Shared via shared_ptr so blocks freed by
/// late-dying packets (after their pool is gone) still land safely.
struct BlockStore {
  std::vector<void*> free;
  std::size_t block_size = 0;
  std::mutex mutex;  // taken only in concurrent mode

  ~BlockStore() {
    for (void* p : free) ::operator delete(p);
  }
};

template <typename U>
struct BlockAllocator {
  using value_type = U;

  std::shared_ptr<BlockStore> store;

  explicit BlockAllocator(std::shared_ptr<BlockStore> s)
      : store(std::move(s)) {}
  template <typename V>
  BlockAllocator(const BlockAllocator<V>& other)  // NOLINT: rebind
      : store(other.store) {}

  U* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(U);
    if (n == 1) {
      std::unique_lock<std::mutex> lock(store->mutex, std::defer_lock);
      if (pool_concurrent_mode) lock.lock();
      if (store->block_size == 0) store->block_size = bytes;
      if (bytes == store->block_size && !store->free.empty()) {
        void* p = store->free.back();
        store->free.pop_back();
        return static_cast<U*>(p);
      }
    }
    return static_cast<U*>(::operator new(bytes));
  }

  void deallocate(U* p, std::size_t n) {
    const std::size_t bytes = n * sizeof(U);
    if (n == 1 && bytes == store->block_size) {
      std::unique_lock<std::mutex> lock(store->mutex, std::defer_lock);
      if (pool_concurrent_mode) lock.lock();
      store->free.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename V>
  bool operator==(const BlockAllocator<V>& other) const {
    return store == other.store;
  }
  template <typename V>
  bool operator!=(const BlockAllocator<V>& other) const {
    return store != other.store;
  }
};

/// One slab of reusable T objects.
template <typename T>
class PacketSlab {
 public:
  PacketSlab()
      : core_(std::make_shared<Core>()),
        blocks_(std::make_shared<BlockStore>()) {}

  /// A fresh (default-state) mutable packet.  The returned shared_ptr
  /// aliases the slot; the fused Lease returns the slot to the free list
  /// on the last release, after reset_for_reuse().
  std::shared_ptr<T> acquire(PoolCounters& counters) {
    ++counters.acquires;
    std::uint32_t idx;
    T* slot = nullptr;
    {
      std::unique_lock<std::mutex> lock(core_->mutex, std::defer_lock);
      if (pool_concurrent_mode) lock.lock();
      if (!core_->free_list.empty()) {
        idx = core_->free_list.back();
        core_->free_list.pop_back();
        ++counters.reuses;
      } else {
        idx = static_cast<std::uint32_t>(core_->slots.size());
        core_->slots.emplace_back();
        ++counters.refills;
      }
      slot = &core_->slots[idx];
    }
    auto lease = std::allocate_shared<Lease>(
        BlockAllocator<Lease>{blocks_}, core_, idx);
    return std::shared_ptr<T>(std::move(lease), slot);
  }

  /// Free slots currently available for reuse (tests/diagnostics).
  std::size_t free_count() const { return core_->free_list.size(); }
  /// Slots ever created (live + free).
  std::size_t slot_count() const { return core_->slots.size(); }

  /// Crash hygiene: drop the retained heap capacity of every *free* slot
  /// (live packets are unaffected — they belong to in-flight frames or
  /// other nodes).  The slab itself shrinks to nothing once the last
  /// in-flight lease dies.
  void wipe_free_slots() {
    std::unique_lock<std::mutex> lock(core_->mutex, std::defer_lock);
    if (pool_concurrent_mode) lock.lock();
    for (const std::uint32_t idx : core_->free_list) {
      core_->slots[idx] = T{};
    }
  }

 private:
  struct Core {
    std::deque<T> slots;  // stable addresses; freed slots keep capacity
    std::vector<std::uint32_t> free_list;
    std::mutex mutex;  // taken only in concurrent mode
  };

  struct Lease {
    std::shared_ptr<Core> core;
    std::uint32_t idx;

    Lease(std::shared_ptr<Core> c, std::uint32_t i)
        : core(std::move(c)), idx(i) {}
    ~Lease() {
      // The last release may run on another partition's thread
      // (cross-partition frames): the free-list push and even the deque
      // index walk (deque growth mutates its internal map) race with the
      // owner's acquire, so the whole release is one critical section.
      std::unique_lock<std::mutex> lock(core->mutex, std::defer_lock);
      if (pool_concurrent_mode) lock.lock();
      core->slots[idx].reset_for_reuse();
      core->free_list.push_back(idx);
    }
  };

  std::shared_ptr<Core> core_;
  std::shared_ptr<BlockStore> blocks_;
};

}  // namespace detail

class PacketPool {
 public:
  /// Fresh mutable packets in default state.  Freeze into an
  /// InterestPtr/DataPtr/NackPtr (implicit) before handing to the
  /// forwarding plane.
  std::shared_ptr<Interest> make_interest() {
    if (!pooling_enabled()) {
      ++counters_.acquires;
      return std::make_shared<Interest>();
    }
    return interests_.acquire(counters_);
  }
  std::shared_ptr<Data> make_data() {
    if (!pooling_enabled()) {
      ++counters_.acquires;
      return std::make_shared<Data>();
    }
    return datas_.acquire(counters_);
  }
  std::shared_ptr<Nack> make_nack() {
    if (!pooling_enabled()) {
      ++counters_.acquires;
      return std::make_shared<Nack>();
    }
    return nacks_.acquire(counters_);
  }

  /// COW backing: a mutable copy of `src` in a fresh slot, caches
  /// dropped (the caller is about to mutate).
  std::shared_ptr<Interest> clone_for_edit(const Interest& src) {
    ++counters_.cow_clones;
    auto copy = make_interest();
    --counters_.acquires;  // counted as a clone, not a fresh acquire
    *copy = src;           // field copy; slot capacity absorbs it
    copy->invalidate_caches();
    return copy;
  }
  std::shared_ptr<Data> clone_for_edit(const Data& src) {
    ++counters_.cow_clones;
    auto copy = make_data();
    --counters_.acquires;
    *copy = src;
    copy->invalidate_caches();
    return copy;
  }

  void note_inplace_edit() { ++counters_.inplace_edits; }

  const PoolCounters& counters() const { return counters_; }

  /// Crash semantics: wipe the volatile pool state (retained capacities
  /// of free slots).  Live packets held by other nodes or in-flight
  /// frames are untouched; their slots recycle normally when released.
  void wipe_volatile() {
    interests_.wipe_free_slots();
    datas_.wipe_free_slots();
    nacks_.wipe_free_slots();
  }

  /// Tests/diagnostics.
  std::size_t free_interest_slots() const { return interests_.free_count(); }
  std::size_t free_data_slots() const { return datas_.free_count(); }
  std::size_t interest_slot_count() const { return interests_.slot_count(); }
  std::size_t data_slot_count() const { return datas_.slot_count(); }

  /// Global pooling switch (process-wide; default on).  Off = plain
  /// make_shared per packet.  Strictly an allocation strategy: behaviour
  /// and fingerprints are identical in both modes.
  static void set_pooling_enabled(bool enabled) {
    pooling_enabled_ = enabled;
  }
  static bool pooling_enabled() { return pooling_enabled_; }

  /// Concurrent mode (process-wide; default off).  The parallel engine
  /// turns it on before spawning workers — slab free lists and the Lease
  /// block recycler then take a per-slab mutex, because a packet's last
  /// release can happen on another partition's thread.  Must never be
  /// toggled while worker threads are live.
  static void set_concurrent(bool enabled) {
    detail::pool_concurrent_mode = enabled;
  }
  static bool concurrent() { return detail::pool_concurrent_mode; }

 private:
  static inline bool pooling_enabled_ = true;

  detail::PacketSlab<Interest> interests_;
  detail::PacketSlab<Data> datas_;
  detail::PacketSlab<Nack> nacks_;
  PoolCounters counters_;
};

/// Copy-on-write handle around a shared immutable packet.
template <typename T>
class Cow {
 public:
  Cow(std::shared_ptr<const T> ptr, PacketPool& pool)
      : ptr_(std::move(ptr)), pool_(&pool) {}

  const T& operator*() const { return *ptr_; }
  const T* operator->() const { return ptr_.get(); }
  const std::shared_ptr<const T>& shared() const { return ptr_; }
  /// Releases the (possibly cloned) handle to the caller.
  std::shared_ptr<const T> take() { return std::move(ptr_); }

  /// Mutable access.  In place when this handle is the only owner;
  /// otherwise clones into a fresh pool slot first, so aliased readers
  /// (ContentStore entries, sibling fan-out sends) never observe the
  /// edit.  Either way the packet's memoized caches are dropped.
  T& edit() {
    if (ptr_.use_count() == 1) {
      // Sole owner: pool slots are created non-const, so shedding the
      // const view is defined behaviour.
      T* mutable_packet = const_cast<T*>(ptr_.get());
      mutable_packet->invalidate_caches();
      pool_->note_inplace_edit();
      return *mutable_packet;
    }
    std::shared_ptr<T> clone = pool_->clone_for_edit(*ptr_);
    T& ref = *clone;
    ptr_ = std::move(clone);
    return ref;
  }

 private:
  std::shared_ptr<const T> ptr_;
  PacketPool* pool_;
};

using CowInterest = Cow<Interest>;
using CowData = Cow<Data>;

}  // namespace tactic::ndn
