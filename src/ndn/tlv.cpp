#include "ndn/tlv.hpp"

namespace tactic::ndn {

void append_tlv_number(util::Bytes& out, std::uint64_t value) {
  if (value < 253) {
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFF) {
    out.push_back(253);
    util::append_u16(out, static_cast<std::uint16_t>(value));
  } else if (value <= 0xFFFFFFFF) {
    out.push_back(254);
    util::append_u32(out, static_cast<std::uint32_t>(value));
  } else {
    out.push_back(255);
    util::append_u64(out, value);
  }
}

void append_tlv(util::Bytes& out, std::uint64_t type,
                util::BytesView value) {
  append_tlv_number(out, type);
  append_tlv_number(out, value.size());
  util::append_bytes(out, value);
}

void append_tlv_uint(util::Bytes& out, std::uint64_t type,
                     std::uint64_t value) {
  util::Bytes encoded;
  if (value <= 0xFF) {
    util::append_u8(encoded, static_cast<std::uint8_t>(value));
  } else if (value <= 0xFFFF) {
    util::append_u16(encoded, static_cast<std::uint16_t>(value));
  } else if (value <= 0xFFFFFFFF) {
    util::append_u32(encoded, static_cast<std::uint32_t>(value));
  } else {
    util::append_u64(encoded, value);
  }
  append_tlv(out, type, encoded);
}

std::uint64_t TlvReader::read_number() {
  if (at_end()) throw TlvError("TLV: truncated number");
  const std::uint8_t first = data_[offset_++];
  if (first < 253) return first;
  auto need = [&](std::size_t n) {
    if (remaining() < n) throw TlvError("TLV: truncated number");
  };
  if (first == 253) {
    need(2);
    const std::uint64_t v = util::read_u16(data_, offset_);
    offset_ += 2;
    return v;
  }
  if (first == 254) {
    need(4);
    const std::uint64_t v = util::read_u32(data_, offset_);
    offset_ += 4;
    return v;
  }
  need(8);
  const std::uint64_t v = util::read_u64(data_, offset_);
  offset_ += 8;
  return v;
}

std::uint64_t TlvReader::peek_type() {
  const std::size_t saved = offset_;
  const std::uint64_t type = read_number();
  offset_ = saved;
  return type;
}

TlvReader::Element TlvReader::read_element() {
  const std::uint64_t type = read_number();
  const std::uint64_t length = read_number();
  if (remaining() < length) throw TlvError("TLV: truncated value");
  Element element{type, data_.subspan(offset_,
                                      static_cast<std::size_t>(length))};
  offset_ += static_cast<std::size_t>(length);
  return element;
}

TlvReader::Element TlvReader::expect_element(std::uint64_t type) {
  if (at_end()) throw TlvError("TLV: missing required element");
  const Element element = read_element();
  if (element.type != type) {
    throw TlvError("TLV: unexpected element type " +
                   std::to_string(element.type) + ", wanted " +
                   std::to_string(type));
  }
  return element;
}

std::optional<TlvReader::Element> TlvReader::read_optional(
    std::uint64_t type) {
  if (at_end() || peek_type() != type) return std::nullopt;
  return read_element();
}

std::uint64_t TlvReader::to_uint(const Element& element) {
  switch (element.value.size()) {
    case 1: return element.value[0];
    case 2: return util::read_u16(element.value, 0);
    case 4: return util::read_u32(element.value, 0);
    case 8: return util::read_u64(element.value, 0);
    default: throw TlvError("TLV: bad integer width");
  }
}

}  // namespace tactic::ndn
