#include "ndn/name_table.hpp"

#include <mutex>

namespace tactic::ndn {

NameTable& NameTable::instance() {
  static NameTable table;
  return table;
}

NameTable::~NameTable() {
  for (std::atomic<Block*>& slot : blocks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

ComponentId NameTable::intern(std::string_view text) {
  {
    // Fast path: already interned (the steady state).
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-check: another thread may have won the registration race.
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;

  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  if (id >= kInvalidComponent || (id >> kBlockBits) >= kNumBlocks) {
    throw std::length_error("NameTable: component id space exhausted");
  }
  std::atomic<Block*>& block_slot = blocks_[id >> kBlockBits];
  Block* block = block_slot.load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    block_slot.store(block, std::memory_order_release);
  }
  std::string& slot = block->slots[id & (kBlockSize - 1)];
  slot.assign(text);
  ids_.emplace(std::string_view(slot), id);
  // Publish only after the slot is fully constructed: lock-free text()
  // readers acquire on size_ and may then read the block pointer relaxed.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

}  // namespace tactic::ndn
