#include "ndn/name_table.hpp"

#include <stdexcept>

namespace tactic::ndn {

NameTable& NameTable::instance() {
  static NameTable table;
  return table;
}

ComponentId NameTable::intern(std::string_view text) {
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  if (components_.size() >= kInvalidComponent) {
    throw std::length_error("NameTable: component id space exhausted");
  }
  const ComponentId id = static_cast<ComponentId>(components_.size());
  components_.emplace_back(text);
  ids_.emplace(std::string_view(components_.back()), id);
  return id;
}

}  // namespace tactic::ndn
