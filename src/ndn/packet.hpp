#pragma once
// NDN packet types with TACTIC's extensions.
//
// TACTIC extends plain NDN packets as follows (paper Sections 4-5):
//  - Interests carry the client's authentication tag, the cooperation flag
//    F stamped by edge routers, and the rolling access-path accumulator
//    XOR-ed by every wireless entity between the client and its edge
//    router;
//  - Data packets echo the tag of the request they answer ("content-tag
//    pair"), may carry an attached NACK ("content-tag-NACK tuple"), and
//    carry back an F value content routers use to tell edge routers
//    whether to insert the tag into their Bloom filter;
//  - standalone NACKs tell a client (or downstream router) why a request
//    was rejected.
//
// The tag itself is defined by the core TACTIC library; packets treat it
// as an immutable shared payload, keeping the NDN layer independent of the
// access-control scheme (baseline policies reuse the same packets).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "event/time.hpp"
#include "ndn/name.hpp"
#include "util/bytes.hpp"

namespace tactic::core {
class Tag;  // defined in tactic/tag.hpp
}

namespace tactic::ndn {

/// Reasons carried by NACKs.
enum class NackReason : std::uint8_t {
  kNone = 0,
  kNoTag,                // private content requested without a tag
  kInvalidSignature,     // tag failed provider-signature verification
  kExpiredTag,           // Te < current time
  kPrefixMismatch,       // tag's provider prefix != requested content prefix
  kAccessLevelTooLow,    // AL_D > AL_T
  kProviderKeyMismatch,  // Pub_p in tag != Pub_p in content
  kAccessPathMismatch,   // AP in tag != AP accumulated in request
  kRegistrationRefused,  // provider rejected the credential (revoked client)
  kNoRoute,              // FIB miss
  kRouterOverloaded,     // validation queue shed the request (back off)
};

/// Number of NackReason values (for per-reason counter arrays).
inline constexpr std::size_t kNackReasonCount =
    static_cast<std::size_t>(NackReason::kRouterOverloaded) + 1;

const char* to_string(NackReason reason);

namespace detail {

/// Memoized wire-size holder that deliberately does NOT propagate on
/// copy: a copied packet is a fresh mutable value (clone_for_edit,
/// by-value packets in tests/apps), so derived state must be
/// recomputed after whatever mutation follows.  Assignment likewise
/// leaves the destination uncomputed.
struct WireSizeCache {
  mutable std::size_t value = 0;  // 0 = not computed

  WireSizeCache() = default;
  WireSizeCache(const WireSizeCache&) {}
  WireSizeCache& operator=(const WireSizeCache&) {
    value = 0;
    return *this;
  }
};

/// Same non-propagation rule for Data::signed_portion(); on assignment
/// the destination keeps its own buffer so the rebuild reuses capacity
/// (pool slot recycling).
struct SignedPortionCache {
  mutable util::Bytes bytes;
  mutable bool cached = false;

  SignedPortionCache() = default;
  SignedPortionCache(const SignedPortionCache&) {}
  SignedPortionCache& operator=(const SignedPortionCache&) {
    cached = false;
    return *this;
  }
};

}  // namespace detail

/// An NDN Interest (named request).
struct Interest {
  Name name;
  std::uint64_t nonce = 0;
  event::Time lifetime = event::kSecond;  // paper: 1 s request expiry

  // --- TACTIC extensions -------------------------------------------------
  /// The client's authentication tag; null for untagged requests
  /// (registration Interests, public content, or the no-tag attacker).
  std::shared_ptr<const core::Tag> tag;
  /// Serialized size of `tag` in bytes (kept here so the NDN layer can
  /// account wire size without knowing the tag's layout).
  std::size_t tag_wire_size = 0;
  /// Cooperation flag F: 0 = the edge router could not vouch for the tag;
  /// otherwise the edge router's Bloom-filter false-positive probability.
  double flag_f = 0.0;
  /// Rolling access path: XOR of the 64-bit identity hashes of the
  /// entities between the client and its edge router.
  std::uint64_t access_path = 0;
  /// Application payload bytes (registration credentials).
  std::size_t payload_size = 0;

  /// Modeled wire size in bytes.  Cached after the first call (the value
  /// is re-read at every hop's link send); mutating fields afterwards
  /// requires invalidate_caches() — the COW seam (Cow::edit /
  /// PacketPool::clone_for_edit) and the pool's slot reuse do this for
  /// every mutation point on the forwarding path.
  std::size_t wire_size() const;

  /// Drops memoized derived state after a field mutation.
  void invalidate_caches() { wire_size_cache_.value = 0; }

  /// Returns the packet to its default-constructed state while keeping
  /// heap capacity (name components) — pool slot recycling.
  void reset_for_reuse();

 private:
  /// Non-propagating memo (see detail::WireSizeCache).
  detail::WireSizeCache wire_size_cache_;
};

/// An NDN Data (content) packet.
struct Data {
  Name name;
  std::size_t content_size = 1024;  // payload bytes (modeled)

  /// Content access level AL_D signed into the packet by the provider;
  /// kPublicAccessLevel means publicly available data (paper: "NULL").
  std::uint32_t access_level = 0;
  /// The provider's public-key locator Pub_p^D embedded in the content.
  std::string provider_key_locator;
  /// Size of the provider's content signature (routers never verify
  /// content signatures in TACTIC, only clients may).
  std::size_t signature_size = 0;
  /// The actual content signature bytes, present when the provider signs
  /// content (see workload::ProviderConfig::sign_content).  Shared —
  /// Data packets are copied along the reverse paths.  Computed over
  /// signed_portion().
  std::shared_ptr<const util::Bytes> signature;

  /// Canonical bytes a content signature covers: name, content size,
  /// access level, and provider key locator.  (Payload bytes are modeled
  /// by size in the simulator; the name binds the deterministic payload.)
  /// Built once per packet and reused across PIT-aggregated
  /// verifications; the reference stays valid until the packet is
  /// mutated (invalidate_caches()) or recycled.
  const util::Bytes& signed_portion() const;

  // --- TACTIC extensions -------------------------------------------------
  /// True when this packet delivers a freshly issued tag (registration
  /// response, T_new in Protocol 2).
  bool is_registration_response = false;
  /// Echo of the request's tag ("content-tag pair"), or the fresh tag for
  /// registration responses.
  std::shared_ptr<const core::Tag> tag;
  std::size_t tag_wire_size = 0;
  /// Attached NACK ("content-tag-NACK tuple"): the content still flows
  /// downstream to satisfy other aggregated valid requests, but the tagged
  /// requester must not receive it.
  bool nack_attached = false;
  NackReason nack_reason = NackReason::kNone;
  /// F value set by the responding content router (Protocol 3): zero tells
  /// the edge router the tag was absent from upstream filters, so the edge
  /// router inserts it into its own.
  double flag_f = 0.0;

  /// Diagnostics: satisfied from an in-network cache (not the provider).
  bool from_cache = false;

  /// See Interest::wire_size() for the caching contract.
  std::size_t wire_size() const;

  void invalidate_caches() {
    wire_size_cache_.value = 0;
    signed_portion_cache_.cached = false;
  }

  void reset_for_reuse();

 private:
  /// Non-propagating memos (see detail::WireSizeCache).
  detail::WireSizeCache wire_size_cache_;
  detail::SignedPortionCache signed_portion_cache_;
};

/// Content access level representing publicly available data ("We set the
/// AL_D of a publicly available data to NULL").
constexpr std::uint32_t kPublicAccessLevel = 0;

/// A standalone NACK (edge router to client, or hop-by-hop error).
struct Nack {
  Name name;
  NackReason reason = NackReason::kNone;
  std::size_t wire_size() const;
  void invalidate_caches() {}  // nothing memoized; COW seam symmetry
  void reset_for_reuse();
};

/// Shared immutable packet handles — the currency of the forwarding
/// plane.  A packet is built once (usually in a PacketPool slot), frozen
/// behind one of these, and shared along its whole path; mutation goes
/// through the COW seam (PacketPool::clone_for_edit / Cow::edit).
using InterestPtr = std::shared_ptr<const Interest>;
using DataPtr = std::shared_ptr<const Data>;
using NackPtr = std::shared_ptr<const Nack>;

}  // namespace tactic::ndn
