#include "event/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace tactic::event {

EventId Scheduler::schedule(Time delay, Handler handler) {
  if (delay < 0) throw std::invalid_argument("Scheduler: negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

EventId Scheduler::schedule_at(Time when, Handler handler) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler: scheduling in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(handler)});
  pending_ids_.insert(seq);
  return EventId{seq};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Lazy cancellation: erase from the pending set; the queue entry is
  // skipped at dispatch time.
  return pending_ids_.erase(id.seq_) > 0;
}

void Scheduler::dispatch(Entry entry) {
  now_ = entry.when;
  if (pending_ids_.erase(entry.seq) == 0) return;  // was cancelled
  ++executed_;
  entry.handler();
}

Time Scheduler::run() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(entry));
  }
  return now_;
}

Time Scheduler::run_until(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(entry));
  }
  now_ = until;
  return now_;
}

}  // namespace tactic::event
