#include "event/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace tactic::event {

EventId Scheduler::schedule(Time delay, Handler handler) {
  if (delay < 0) throw std::invalid_argument("Scheduler: negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

EventId Scheduler::schedule_at(Time when, Handler handler) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler: scheduling in the past");
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t rec;
  if (!free_recs_.empty()) {
    rec = free_recs_.back();
    free_recs_.pop_back();
  } else {
    rec = static_cast<std::uint32_t>(recs_.size());
    recs_.emplace_back();
  }
  recs_[rec].handler = std::move(handler);
  recs_[rec].seq = seq;
  queue_.push(Entry{when, seq, rec});
  ++pending_;
  return EventId{seq, rec};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid() || id.rec_ >= recs_.size()) return false;
  Rec& rec = recs_[id.rec_];
  if (rec.seq != id.seq_) return false;  // already ran, cancelled, or reused
  // Lazy cancellation: free the record now; the heap entry is skipped at
  // dispatch time by its stale seq.
  rec.seq = 0;
  rec.handler = nullptr;
  free_recs_.push_back(id.rec_);
  --pending_;
  return true;
}

void Scheduler::dispatch(const Entry& entry) {
  now_ = entry.when;
  Rec& rec = recs_[entry.rec];
  if (rec.seq != entry.seq) return;  // was cancelled
  Handler handler = std::move(rec.handler);
  rec.seq = 0;
  rec.handler = nullptr;
  free_recs_.push_back(entry.rec);
  --pending_;
  ++executed_;
  handler();
}

Time Scheduler::run() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
  }
  return now_;
}

Time Scheduler::run_until(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    const Entry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
  }
  now_ = until;
  return now_;
}

Time Scheduler::run_before(Time bound) {
  while (!queue_.empty() && queue_.top().when < bound) {
    const Entry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
  }
  if (bound > now_) now_ = bound;
  return now_;
}

}  // namespace tactic::event
