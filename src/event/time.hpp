#pragma once
// Simulation time.
//
// Time is a signed 64-bit nanosecond count from the start of the run.
// Integer time makes event ordering exact and runs bit-reproducible; the
// range (~292 years) is far beyond any scenario.

#include <cstdint>

namespace tactic::event {

/// Nanoseconds since simulation start.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Conversions to/from floating-point seconds (for configuration and
/// reporting; the engine itself never uses doubles for time).
constexpr Time from_seconds(double seconds) {
  return static_cast<Time>(seconds * 1e9);
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

}  // namespace tactic::event
