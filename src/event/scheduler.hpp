#pragma once
// Discrete-event scheduler — the ns-3 substitute at the heart of the
// simulator.
//
// Properties the rest of the system relies on:
//  - events at the same timestamp run in scheduling (FIFO) order, so a
//    node that schedules A then B observes A before B;
//  - events may be cancelled via the handle returned by `schedule`;
//  - the scheduler is single-threaded and reentrant: handlers may schedule
//    further events freely.
//
// Storage is allocation-free at steady state: handlers live in a slab of
// reusable records (small-buffer callables, no std::function nodes) and
// the heap orders plain {when, seq, record} tuples.  Cancellation is
// lazy — a cancelled record is freed immediately, and the stale heap
// entry is recognised at pop time by its sequence number (sequence
// numbers are never reused, so a recycled record slot can never be
// mistaken for the cancelled event that once occupied it).

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "event/time.hpp"
#include "util/inplace_function.hpp"

namespace tactic::event {

/// Handle identifying a scheduled event; used for cancellation.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  EventId(std::uint64_t seq, std::uint32_t rec) : seq_(seq), rec_(rec) {}
  std::uint64_t seq_ = 0;
  std::uint32_t rec_ = 0;
};

class Scheduler {
 public:
  /// Sized for the forwarder's transmit closures (packet handle + face +
  /// epoch); larger captures spill to the heap transparently.
  using Handler = util::InplaceFunction<void(), 104>;

  /// Current simulation time.  Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedules `handler` to run at now() + delay (delay >= 0; a zero delay
  /// runs after all handlers already queued for the current instant).
  EventId schedule(Time delay, Handler handler);

  /// Schedules at an absolute time (>= now()).
  EventId schedule_at(Time when, Handler handler);

  /// Cancels a pending event.  Returns false when the event already ran,
  /// was cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Runs events until the queue empties.  Returns the final time.
  Time run();

  /// Runs events with timestamp <= `until`, then sets now() to `until`.
  Time run_until(Time until);

  /// Runs events with timestamp strictly < `bound`, then sets now() to
  /// `bound`.  Events at exactly `bound` stay queued: this is the parallel
  /// engine's epoch boundary, where an event on the lookahead horizon must
  /// not run until the barrier has merged cross-partition arrivals that
  /// share its timestamp.
  Time run_before(Time bound);

  /// Number of events executed so far.
  std::uint64_t executed_count() const { return executed_; }
  /// Number of events currently pending (excluding cancelled ones).
  std::size_t pending_count() const { return pending_; }

 private:
  /// Handler slab record.  `seq` doubles as the liveness check: 0 means
  /// free/cancelled, otherwise it names the event currently occupying the
  /// slot (heap entries carry the seq they were queued under).
  struct Rec {
    Handler handler;
    std::uint64_t seq = 0;
  };

  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t rec;
    // Min-heap by (when, seq): earliest time first, FIFO within a time.
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void dispatch(const Entry& entry);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::deque<Rec> recs_;  // stable addresses; freed slots keep SBO storage
  std::vector<std::uint32_t> free_recs_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace tactic::event
