#pragma once
// Discrete-event scheduler — the ns-3 substitute at the heart of the
// simulator.
//
// Properties the rest of the system relies on:
//  - events at the same timestamp run in scheduling (FIFO) order, so a
//    node that schedules A then B observes A before B;
//  - events may be cancelled via the handle returned by `schedule`;
//  - the scheduler is single-threaded and reentrant: handlers may schedule
//    further events freely.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "event/time.hpp"

namespace tactic::event {

/// Handle identifying a scheduled event; used for cancellation.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time.  Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedules `handler` to run at now() + delay (delay >= 0; a zero delay
  /// runs after all handlers already queued for the current instant).
  EventId schedule(Time delay, Handler handler);

  /// Schedules at an absolute time (>= now()).
  EventId schedule_at(Time when, Handler handler);

  /// Cancels a pending event.  Returns false when the event already ran,
  /// was cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Runs events until the queue empties.  Returns the final time.
  Time run();

  /// Runs events with timestamp <= `until`, then sets now() to `until`.
  Time run_until(Time until);

  /// Number of events executed so far.
  std::uint64_t executed_count() const { return executed_; }
  /// Number of events currently pending (excluding cancelled ones).
  std::size_t pending_count() const { return pending_ids_.size(); }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Handler handler;
    // Min-heap by (when, seq): earliest time first, FIFO within a time.
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void dispatch(Entry entry);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;  // queued and not cancelled
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace tactic::event
