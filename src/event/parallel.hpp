#pragma once
// Conservatively-synchronized parallel discrete-event engine.
//
// The simulation's nodes are split into P partitions, each owning a plain
// sequential `Scheduler` driven by a dedicated worker thread.  Time
// advances in barrier epochs of length L (the lookahead): during the
// epoch [t0, t0+L) every worker runs its partition's events with
// `run_before(t0+L)`, completely independently.  Conservative synchrony
// holds because every cross-partition interaction travels over a link
// whose arrival time is at least `send_time + 1 tick + propagation_delay`
// (serialization is always >= 1 tick), so with
//
//     L = min cross-partition propagation_delay + 1 tick
//
// a message sent during an epoch can only arrive at or after the next
// epoch boundary.  Cross-partition events are posted into per-destination
// inboxes (mutex-guarded vectors) and merged at the barrier in a
// deterministic order — sorted by (arrival time, source partition, source
// sequence) — so the destination's event sequence, and therefore the whole
// run, is reproducible at any thread count.
//
// Operations that must touch several partitions at once (link flap +
// route reconvergence, the invariant sampler walking every PIT) register
// as *global events*: the epoch loop shortens epochs to stop exactly at
// their timestamps and runs them on the driving thread while all workers
// are parked at the barrier.
//
// Determinism contract: with identical inputs, fingerprints and verdict
// multisets are bit-identical to the sequential engine at every thread
// count.  The one caveat is same-instant ordering *across* partitions
// (cross-partition ties have no global FIFO sequence); link arrival
// times are sums of many heterogeneous delays, so exact ties across
// partitions do not occur in practice — the parity corpus
// (`ci/parity.sh`, tests/parallel_test.cpp) is the empirical gate.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "event/scheduler.hpp"
#include "event/time.hpp"

namespace tactic::event {

class ParallelScheduler {
 public:
  /// `partitions` >= 1.  Workers are spawned lazily on the first
  /// run_until() call and joined by the destructor.
  explicit ParallelScheduler(std::size_t partitions);
  ~ParallelScheduler();

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  std::size_t partitions() const { return parts_.size(); }
  Scheduler& partition(std::size_t index) { return parts_[index].scheduler; }

  /// Epoch length.  Must be >= 1 tick and no larger than the minimum
  /// cross-partition link latency (serialization + propagation); the
  /// scenario layer computes `min propagation + 1 tick`.
  void set_lookahead(Time lookahead);
  Time lookahead() const { return lookahead_; }

  /// Posts an event into partition `to`.  Callable from any worker thread
  /// during an epoch; `when` must be at or past the next epoch boundary
  /// (conservative lookahead guarantees this for link deliveries).
  /// `from_partition` keys the deterministic merge order together with a
  /// per-(from,to) sequence counter maintained internally.
  void post(std::size_t from_partition, std::size_t to_partition, Time when,
            Scheduler::Handler handler);

  /// Schedules a handler that runs on the driving thread at `when`, with
  /// every worker parked at a barrier — it may touch any partition.
  /// Callable before run_until() or from within another global handler;
  /// NOT from worker threads.
  void schedule_global(Time when, std::function<void()> handler);

  /// Advances every partition to `until` (events with timestamp <= until
  /// run, matching Scheduler::run_until).  Callable repeatedly.
  Time run_until(Time until);

  /// Current epoch base time (== every partition's now() between calls).
  Time now() const { return now_; }

  struct Stats {
    std::uint64_t epochs = 0;          // barrier rounds executed
    std::uint64_t posted = 0;          // cross-partition events exchanged
    std::uint64_t global_events = 0;   // quiesced global handlers run
    double barrier_wait_s = 0.0;       // wall-clock workers spent parked,
                                       // summed over workers
    double wall_s = 0.0;               // wall-clock inside run_until
  };
  const Stats& stats() const { return stats_; }

  std::uint64_t executed_count() const;

 private:
  struct Posted {
    Time when;
    std::uint32_t from;
    std::uint64_t seq;  // per-(from,to) counter, assigned by the poster
    Scheduler::Handler handler;
  };

  struct Partition {
    Scheduler scheduler;
    // Inbox of cross-partition arrivals, filled during an epoch and
    // drained (sorted, scheduled) by the owning worker at the start of
    // the next one.
    std::mutex inbox_mutex;
    std::vector<Posted> inbox;
    // seq_to[to]: next per-destination sequence number for posts
    // originating here.  Written only by the owning worker.
    std::vector<std::uint64_t> seq_to;
    double barrier_wait_s = 0.0;  // written by the owning worker
  };

  struct GlobalEvent {
    Time when;
    std::uint64_t seq;
    std::function<void()> handler;
  };

  void worker_main(std::size_t index);
  void drain_inbox(Partition& part);
  void start_workers();
  // Runs one phase on all workers: each drains its inbox then advances to
  // `target` (run_before when `inclusive` is false, run_until otherwise).
  void run_phase(Time target, bool inclusive);

  std::vector<Partition> parts_;  // sized in ctor, never resized
  Time lookahead_ = 0;
  Time now_ = 0;
  Stats stats_;

  std::vector<GlobalEvent> globals_;  // kept sorted by (when, seq)
  std::uint64_t next_global_seq_ = 0;

  // Barrier state.
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new phase
  std::condition_variable done_cv_;   // driver waits for completion
  std::uint64_t phase_generation_ = 0;
  std::size_t workers_done_ = 0;
  Time phase_target_ = 0;
  bool phase_inclusive_ = false;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tactic::event
