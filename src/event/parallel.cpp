#include "event/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace tactic::event {

namespace {
double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}
}  // namespace

ParallelScheduler::ParallelScheduler(std::size_t partitions)
    : parts_(partitions == 0 ? 1 : partitions) {
  for (Partition& part : parts_) part.seq_to.resize(parts_.size(), 0);
}

ParallelScheduler::~ParallelScheduler() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    ++phase_generation_;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ParallelScheduler::set_lookahead(Time lookahead) {
  if (lookahead < 1) {
    throw std::invalid_argument("ParallelScheduler: lookahead must be >= 1");
  }
  lookahead_ = lookahead;
}

void ParallelScheduler::post(std::size_t from_partition,
                             std::size_t to_partition, Time when,
                             Scheduler::Handler handler) {
  Partition& from = parts_[from_partition];
  Partition& to = parts_[to_partition];
  // The per-destination counter is owned by the posting worker, so the
  // increment is race-free; the inbox itself is shared and locked.
  const std::uint64_t seq = from.seq_to[to_partition]++;
  std::lock_guard<std::mutex> lock(to.inbox_mutex);
  to.inbox.push_back(Posted{when, static_cast<std::uint32_t>(from_partition),
                            seq, std::move(handler)});
}

void ParallelScheduler::schedule_global(Time when,
                                        std::function<void()> handler) {
  if (when < now_) {
    throw std::invalid_argument("ParallelScheduler: global event in the past");
  }
  globals_.push_back(GlobalEvent{when, next_global_seq_++, std::move(handler)});
  std::sort(globals_.begin(), globals_.end(),
            [](const GlobalEvent& a, const GlobalEvent& b) {
              return a.when != b.when ? a.when < b.when : a.seq < b.seq;
            });
}

void ParallelScheduler::drain_inbox(Partition& part) {
  std::vector<Posted> batch;
  {
    std::lock_guard<std::mutex> lock(part.inbox_mutex);
    batch.swap(part.inbox);
  }
  if (batch.empty()) return;
  // The vector's order reflects the real-time interleaving of posting
  // threads; re-sort on the deterministic key before assigning local
  // sequence numbers.
  std::sort(batch.begin(), batch.end(), [](const Posted& a, const Posted& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  });
  for (Posted& posted : batch) {
    part.scheduler.schedule_at(posted.when, std::move(posted.handler));
  }
}

void ParallelScheduler::start_workers() {
  if (!threads_.empty() || parts_.size() == 1) return;
  threads_.reserve(parts_.size());
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void ParallelScheduler::worker_main(std::size_t index) {
  Partition& part = parts_[index];
  std::uint64_t seen = 0;
  while (true) {
    Time target;
    bool inclusive;
    {
      const auto wait_start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return phase_generation_ != seen; });
      seen = phase_generation_;
      if (stopping_) return;
      target = phase_target_;
      inclusive = phase_inclusive_;
      part.barrier_wait_s += elapsed_s(wait_start);
    }
    drain_inbox(part);
    if (inclusive) {
      part.scheduler.run_until(target);
    } else {
      part.scheduler.run_before(target);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ParallelScheduler::run_phase(Time target, bool inclusive) {
  ++stats_.epochs;
  if (parts_.size() == 1) {
    drain_inbox(parts_[0]);
    if (inclusive) {
      parts_[0].scheduler.run_until(target);
    } else {
      parts_[0].scheduler.run_before(target);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_target_ = target;
    phase_inclusive_ = inclusive;
    workers_done_ = 0;
    ++phase_generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == parts_.size(); });
}

Time ParallelScheduler::run_until(Time until) {
  if (lookahead_ < 1) {
    throw std::logic_error("ParallelScheduler: set_lookahead not called");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  start_workers();
  // Epochs run events strictly before each boundary; global handlers at a
  // boundary run with every worker parked, before the partition events
  // that share their instant.  The tail phase is inclusive, matching
  // sequential run_until(until).
  while (now_ < until) {
    Time horizon = now_ + lookahead_;
    if (horizon > until) horizon = until;
    if (!globals_.empty() && globals_.front().when < horizon) {
      horizon = globals_.front().when;
    }
    run_phase(horizon, /*inclusive=*/false);
    now_ = horizon;
    while (!globals_.empty() && globals_.front().when <= now_) {
      GlobalEvent event = std::move(globals_.front());
      globals_.erase(globals_.begin());
      ++stats_.global_events;
      event.handler();
    }
    if (now_ == until) break;
  }
  // Globals due at `until` when the loop never ran (now_ was already
  // there) still owe execution before the tail phase.
  while (!globals_.empty() && globals_.front().when <= until) {
    GlobalEvent event = std::move(globals_.front());
    globals_.erase(globals_.begin());
    ++stats_.global_events;
    event.handler();
  }
  // Run the events sitting exactly at `until` (merged cross-partition
  // arrivals included — the phase drains inboxes first).
  run_phase(until, /*inclusive=*/true);
  now_ = until;

  std::uint64_t posted = 0;
  double barrier_wait = 0.0;
  for (const Partition& part : parts_) {
    for (std::uint64_t seq : part.seq_to) posted += seq;
    barrier_wait += part.barrier_wait_s;
  }
  stats_.posted = posted;
  stats_.barrier_wait_s = barrier_wait;
  stats_.wall_s += elapsed_s(wall_start);
  return now_;
}

std::uint64_t ParallelScheduler::executed_count() const {
  std::uint64_t total = 0;
  for (const Partition& part : parts_) {
    total += part.scheduler.executed_count();
  }
  return total;
}

}  // namespace tactic::event
