#pragma once
// Open-addressing hash index with externalized keys.
//
// Maps a caller-computed 64-bit hash to a 32-bit slot value; the keys
// themselves stay wherever the caller keeps them (a slab arena), and
// collisions are resolved by calling back into the caller with the
// candidate value (`eq(value)` answers "does this slot hold my key?").
// Compared with unordered_map<Name, u32> this stores no key copies and
// allocates nothing per insert/erase — only the flat cell array, which
// stops growing once the table reaches its steady-state size.  Deletion
// uses tombstones; the table rehashes when full + tombstone cells exceed
// 3/4 of capacity, which also garbage-collects the tombstones.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tactic::util {

class HashIndex {
 public:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (Cell& cell : cells_) cell.state = kEmpty;
    size_ = 0;
    used_ = 0;
  }

  /// Returns the value stored for the key with this hash, or kNpos.
  /// `eq(value)` must return true iff `value` identifies the caller's key.
  template <typename Eq>
  std::uint32_t find(std::uint64_t hash, Eq&& eq) const {
    if (cells_.empty()) return kNpos;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hash) & mask;; i = (i + 1) & mask) {
      const Cell& cell = cells_[i];
      if (cell.state == kEmpty) return kNpos;
      if (cell.state == kFull && cell.hash == hash && eq(cell.value)) {
        return cell.value;
      }
    }
  }

  /// Inserts hash -> value.  The caller guarantees no equal key is
  /// present (probe with find() first).
  void insert(std::uint64_t hash, std::uint32_t value) {
    if ((used_ + 1) * 4 > cells_.size() * 3) grow();
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hash) & mask;; i = (i + 1) & mask) {
      Cell& cell = cells_[i];
      if (cell.state == kFull) continue;
      if (cell.state == kEmpty) ++used_;  // tombstone reuse keeps used_
      cell = Cell{hash, value, kFull};
      ++size_;
      return;
    }
  }

  /// Removes the cell for this (hash, eq) key.  Returns false if absent.
  template <typename Eq>
  bool erase(std::uint64_t hash, Eq&& eq) {
    if (cells_.empty()) return false;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hash) & mask;; i = (i + 1) & mask) {
      Cell& cell = cells_[i];
      if (cell.state == kEmpty) return false;
      if (cell.state == kFull && cell.hash == hash && eq(cell.value)) {
        cell.state = kTombstone;
        --size_;
        return true;
      }
    }
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Cell {
    std::uint64_t hash = 0;
    std::uint32_t value = 0;
    std::uint8_t state = kEmpty;
  };

  /// Finalizer so weak low bits (e.g. pointer-ish hashes) still spread
  /// across the table (splitmix64 tail).
  static std::size_t mix(std::uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }

  void grow() {
    std::size_t cap = cells_.empty() ? 16 : cells_.size();
    // Rehash in place-ish: grow only when live entries need it; a table
    // full of tombstones rehashes at the same capacity.  The retired
    // cell array is kept as a spare and recycled by the next rehash, so
    // steady-state tombstone GC (insert/erase churn at a fixed size)
    // allocates nothing — part of the zero-allocation packet path
    // (docs/ARCHITECTURE.md, "Packet memory model").
    while ((size_ + 1) * 2 > cap) cap *= 2;
    std::vector<Cell> old = std::move(cells_);
    cells_ = std::move(spare_);
    cells_.assign(cap, Cell{});
    size_ = 0;
    used_ = 0;
    for (const Cell& cell : old) {
      if (cell.state == kFull) insert(cell.hash, cell.value);
    }
    spare_ = std::move(old);
  }

  std::vector<Cell> cells_;
  std::vector<Cell> spare_;  // retired array, reused by the next rehash
  std::size_t size_ = 0;  // full cells
  std::size_t used_ = 0;  // full + tombstone cells
};

}  // namespace tactic::util
