#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace tactic::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  std::size_t i = 0;
  for (auto f : fields) {
    if (i++ > 0) out_ << ',';
    out_ << escape(f);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string CsvWriter::num(std::uint64_t v) { return std::to_string(v); }

}  // namespace tactic::util
