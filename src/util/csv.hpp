#pragma once
// Minimal RFC-4180-style CSV writer for experiment output.

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace tactic::util {

/// Writes rows to a CSV file.  Fields containing commas, quotes, or
/// newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row of string fields.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Formats a double with enough precision to round-trip.
  static std::string num(double v);
  static std::string num(std::uint64_t v);

 private:
  static std::string escape(std::string_view field);
  std::ofstream out_;
};

}  // namespace tactic::util
