#include "util/timeseries.hpp"

#include <stdexcept>

namespace tactic::util {

TimeSeries::TimeSeries(double bucket_seconds)
    : bucket_seconds_(bucket_seconds) {
  if (bucket_seconds <= 0.0) {
    throw std::invalid_argument("TimeSeries: bucket width must be > 0");
  }
}

void TimeSeries::add(double t_seconds, double value) {
  if (t_seconds < 0.0) {
    throw std::invalid_argument("TimeSeries: negative timestamp");
  }
  const auto idx = static_cast<std::size_t>(t_seconds / bucket_seconds_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  buckets_[idx].add(value);
}

std::size_t TimeSeries::count(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].count() : 0;
}

double TimeSeries::mean(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].mean() : 0.0;
}

double TimeSeries::sum(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].sum() : 0.0;
}

double TimeSeries::overall_mean() const {
  RunningStats all;
  for (const auto& b : buckets_) all.merge(b);
  return all.mean();
}

std::size_t TimeSeries::total_count() const {
  std::size_t n = 0;
  for (const auto& b : buckets_) n += b.count();
  return n;
}

std::vector<double> TimeSeries::means() const {
  std::vector<double> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) out[i] = buckets_[i].mean();
  return out;
}

std::vector<std::uint64_t> TimeSeries::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].count();
  }
  return out;
}

}  // namespace tactic::util
