#pragma once
// Leveled logging.  Default level is Warn so simulations stay quiet; the
// examples raise it to Info to narrate what the network is doing.

#include <sstream>
#include <string>

namespace tactic::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level (process-wide; the simulator is single-threaded).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tactic::util

#define TACTIC_LOG(level)                                          \
  if (::tactic::util::log_level() <= (level))                      \
  ::tactic::util::detail::LogStream(level)

#define TACTIC_LOG_DEBUG TACTIC_LOG(::tactic::util::LogLevel::kDebug)
#define TACTIC_LOG_INFO TACTIC_LOG(::tactic::util::LogLevel::kInfo)
#define TACTIC_LOG_WARN TACTIC_LOG(::tactic::util::LogLevel::kWarn)
#define TACTIC_LOG_ERROR TACTIC_LOG(::tactic::util::LogLevel::kError)
