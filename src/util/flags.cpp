#include "util/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tactic::util {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& name, const std::string& v) {
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return out;
}

double parse_double(const std::string& name, const std::string& v) {
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  return out;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // `--name value` when the next token is not itself a flag; else a bare
    // boolean `--name`.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  return raw(name).value_or(def);
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto v = raw(name);
  return v ? parse_int(name, *v) : def;
}

double Flags::get_double(const std::string& name, double def) const {
  const auto v = raw(name);
  return v ? parse_double(name, *v) : def;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + *v);
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  const auto v = raw(name);
  if (!v) return def;
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(*v)) out.push_back(parse_int(name, part));
  return out;
}

std::vector<double> Flags::get_double_list(
    const std::string& name, const std::vector<double>& def) const {
  const auto v = raw(name);
  if (!v) return def;
  std::vector<double> out;
  for (const auto& part : split_commas(*v)) {
    out.push_back(parse_double(name, part));
  }
  return out;
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace tactic::util
