#include "util/rng.hpp"

#include <cassert>

namespace tactic::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection on the low word.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace tactic::util
