#pragma once
// Deterministic pseudo-random number generation.
//
// All randomness in the simulator flows from one seeded root `Rng`; child
// streams are derived with `fork()` so that adding a consumer of randomness
// in one subsystem does not perturb the stream seen by another (a classic
// reproducibility hazard in discrete-event simulators).
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via splitmix64,
// which is the recommended seeding procedure for the xoshiro family.

#include <array>
#include <cstdint>

namespace tactic::util {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator so
/// it can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly random bits.
  result_type operator()();

  /// Uniform integer in [0, bound); bound must be > 0.  Uses Lemire's
  /// nearly-divisionless rejection method (no modulo bias).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent child generator.  The child's seed mixes this
  /// generator's next output, so consecutive forks yield distinct streams.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace tactic::util
