#pragma once
// Streaming and batch statistics used by the metrics collector.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tactic::util {

/// Constant-memory streaming statistics (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Mean of the samples; 0 when empty.
  double mean() const;
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Min/max; 0 when empty.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries.  Keeps all samples; use for
/// result reporting, not per-packet hot paths.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// Percentile in [0, 100] by linear interpolation between closest ranks;
  /// 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with out-of-range samples clamped to
/// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace tactic::util
