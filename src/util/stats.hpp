#pragma once
// Streaming and batch statistics used by the metrics collector.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tactic::util {

/// Constant-memory streaming statistics (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Mean of the samples; 0 when empty.
  double mean() const;
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Min/max; 0 when empty.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample set with percentile queries.  Keeps all samples; use for
/// result reporting, not per-packet hot paths.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// Percentile in [0, 100] by linear interpolation between closest ranks;
  /// 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Deterministic streaming quantile sketch: a fixed log-spaced bucket
/// histogram (8 sub-buckets per power of two, covering ~2^-32 .. 2^8,
/// i.e. sub-nanosecond to hundreds of seconds when fed seconds) with
/// constant memory, exact merge, and ~9% worst-case relative quantile
/// error.  Unlike P², merging two sketches is exact (bucket-wise sum),
/// which is what lets per-router wait quantiles aggregate into one
/// router-class figure.  Bucketing uses only frexp/ldexp (exact
/// floating-point ops), so results are bit-reproducible.
class QuantileHistogram {
 public:
  QuantileHistogram();

  /// Adds one sample; x <= 0 lands in a dedicated zero bucket whose
  /// quantile representative is exactly 0.
  void add(double x);
  void merge(const QuantileHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const;
  /// Quantile for q in [0, 1] (clamped); returns the geometric midpoint
  /// of the bucket holding the target rank, or 0 when empty.
  double quantile(double q) const;

 private:
  static std::size_t bucket_index(double x);
  static double bucket_value(std::size_t index);

  std::uint64_t zero_ = 0;  // samples <= 0
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

/// Fixed-width histogram over [lo, hi) with out-of-range samples clamped to
/// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace tactic::util
