#pragma once
// Random distributions used by the simulator.
//
// - `NormalDist` models the paper's benchmarked compute latencies
//   (Section 8.B charges BF/signature operation times as normal random
//   variables).  Samples can be truncated at a lower bound because a
//   latency can never be negative.
// - `ZipfDist` models content popularity (Section 8.A, alpha = 0.7,
//   following Breslau et al.).

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace tactic::util {

/// Normal (Gaussian) distribution sampled with the Marsaglia polar method.
class NormalDist {
 public:
  /// `stddev` must be >= 0.
  NormalDist(double mean, double stddev);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  /// One sample.
  double sample(Rng& rng);

  /// One sample clamped to be >= `lower`.  Clamping (rather than
  /// resampling) keeps the cost O(1) even for distributions whose mass is
  /// mostly below the bound, at the price of a point mass at `lower` —
  /// acceptable for latency models.
  double sample_at_least(Rng& rng, double lower);

 private:
  double mean_;
  double stddev_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf distribution over ranks {0, 1, ..., n-1}: P(rank k) proportional to
/// 1 / (k+1)^alpha.  Sampling is O(log n) by binary search over the
/// precomputed CDF; construction is O(n).
class ZipfDist {
 public:
  /// `n` must be >= 1; `alpha` >= 0 (alpha = 0 degenerates to uniform).
  ZipfDist(std::size_t n, double alpha);

  std::size_t size() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

  /// Probability of a given rank.
  double pmf(std::size_t rank) const;

  /// One sample (a rank in [0, n)).
  std::size_t sample(Rng& rng) const;

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1.
};

}  // namespace tactic::util
