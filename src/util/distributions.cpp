#include "util/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tactic::util {

NormalDist::NormalDist(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("NormalDist: negative stddev");
  }
}

double NormalDist::sample(Rng& rng) {
  if (stddev_ == 0.0) return mean_;
  if (has_spare_) {
    has_spare_ = false;
    return mean_ + stddev_ * spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * rng.uniform_double() - 1.0;
    v = 2.0 * rng.uniform_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean_ + stddev_ * u * factor;
}

double NormalDist::sample_at_least(Rng& rng, double lower) {
  return std::max(lower, sample(rng));
}

ZipfDist::ZipfDist(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDist: n must be >= 1");
  if (alpha < 0.0) throw std::invalid_argument("ZipfDist: negative alpha");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

double ZipfDist::pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::size_t ZipfDist::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace tactic::util
