#pragma once
// Move-only callable wrapper with small-buffer optimisation.
//
// std::function heap-allocates any capture larger than (typically) two
// pointers, which puts one malloc/free pair on every scheduled event and
// every in-flight link frame.  InplaceFunction stores callables up to
// `Capacity` bytes inline — sized for the forwarder's transmit closures —
// and falls back to the heap only for oversized captures (cold paths:
// chaos plans, batch flushes).  Move-only, because the scheduler never
// copies handlers and move-only captures (shared_ptr packets) are exactly
// what the zero-copy packet path wants to put in them.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tactic::util {

template <typename Signature, std::size_t Capacity = 104>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT: match std::function

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& fn) {  // NOLINT: converting, like std::function
    if constexpr (sizeof(D) <= Capacity &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      // Oversized capture: one heap object, pointer stored inline.
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this == &other) return *this;
    reset();
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<unsigned char*>(buffer_),
                        std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char* buf, Args&&... args);
    // Move-construct into `dst` from `src`, destroying the source.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* buf);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](unsigned char* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        D* obj = std::launder(reinterpret_cast<D*>(src));
        ::new (static_cast<void*>(dst)) D(std::move(*obj));
        obj->~D();
      },
      [](unsigned char* buf) {
        std::launder(reinterpret_cast<D*>(buf))->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](unsigned char* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(buf)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        D** slot = std::launder(reinterpret_cast<D**>(src));
        ::new (static_cast<void*>(dst)) D*(*slot);
      },
      [](unsigned char* buf) {
        delete *std::launder(reinterpret_cast<D**>(buf));
      },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace tactic::util
