#pragma once
// Tiny command-line flag parser for the benchmark harnesses and examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`.  Unknown flags are an error so typos do not silently run
// the default configuration.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tactic::util {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  /// Positional (non `--`) arguments are collected in `positional()`.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters with defaults.  Throw std::invalid_argument when the
  /// value does not parse as the requested type.
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated list of integers, e.g. `--topologies=1,2,4`.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& def) const;
  /// Comma-separated list of doubles, e.g. `--fpp=1e-4,1e-2`.
  std::vector<double> get_double_list(const std::string& name,
                                      const std::vector<double>& def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line (for usage/error reporting).
  std::vector<std::string> names() const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tactic::util
