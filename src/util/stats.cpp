#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tactic::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& self = const_cast<SampleSet&>(*this);
    std::sort(self.samples_.begin(), self.samples_.end());
    self.sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad range or bucket count");
  }
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  const double pos = (x - lo_) / width_;
  std::size_t idx;
  if (pos < 0.0) {
    idx = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace tactic::util
