#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tactic::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& self = const_cast<SampleSet&>(*this);
    std::sort(self.samples_.begin(), self.samples_.end());
    self.sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

namespace {

// QuantileHistogram layout: samples in [2^(e-1), 2^e) for octave e in
// [kMinOctave, kMaxOctave] split into 8 geometric sub-buckets at
// mantissa thresholds 2^(k/8)/2 (frexp mantissas live in [0.5, 1)).
constexpr int kMinOctave = -31;  // ~2.3e-10 lower edge
constexpr int kMaxOctave = 8;    // up to 256
constexpr std::size_t kSubBuckets = 8;
constexpr std::size_t kQuantileBuckets =
    static_cast<std::size_t>(kMaxOctave - kMinOctave + 1) * kSubBuckets;
constexpr double kSubThresholds[kSubBuckets] = {
    0.5,                0.5452538663326288, 0.5946035575013605,
    0.6484197773255048, 0.7071067811865476, 0.7711054127039704,
    0.8408964152537145, 0.9170040432046712};
// Geometric midpoint factor between adjacent sub-bucket edges: 2^(1/16).
constexpr double kBucketMid = 1.0442737824274138;

}  // namespace

QuantileHistogram::QuantileHistogram() { counts_.assign(kQuantileBuckets, 0); }

std::size_t QuantileHistogram::bucket_index(double x) {
  int exp = 0;
  const double m = std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  if (exp < kMinOctave) return 0;
  if (exp > kMaxOctave) return kQuantileBuckets - 1;
  std::size_t sub = 0;
  for (std::size_t k = kSubBuckets - 1; k > 0; --k) {
    if (m >= kSubThresholds[k]) {
      sub = k;
      break;
    }
  }
  return static_cast<std::size_t>(exp - kMinOctave) * kSubBuckets + sub;
}

double QuantileHistogram::bucket_value(std::size_t index) {
  const int exp = kMinOctave + static_cast<int>(index / kSubBuckets);
  const double lo = std::ldexp(kSubThresholds[index % kSubBuckets], exp);
  return lo * kBucketMid;
}

void QuantileHistogram::add(double x) {
  ++count_;
  sum_ += x;
  if (x <= 0.0) {
    ++zero_;
    return;
  }
  ++counts_[bucket_index(x)];
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  zero_ += other.zero_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

void QuantileHistogram::reset() {
  zero_ = 0;
  count_ = 0;
  sum_ = 0.0;
  counts_.assign(kQuantileBuckets, 0);
}

double QuantileHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double target = clamped * static_cast<double>(count_ - 1);
  double cum = static_cast<double>(zero_);
  if (cum > target) return 0.0;
  double last = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    last = bucket_value(i);
    cum += static_cast<double>(counts_[i]);
    if (cum > target) return last;
  }
  return last;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad range or bucket count");
  }
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  const double pos = (x - lo_) / width_;
  std::size_t idx;
  if (pos < 0.0) {
    idx = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>(pos);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace tactic::util
