#include "util/bytes.hpp"

#include <stdexcept>

namespace tactic::util {

void append_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void append_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u64(Bytes& out, std::uint64_t v) {
  append_u32(out, static_cast<std::uint32_t>(v >> 32));
  append_u32(out, static_cast<std::uint32_t>(v));
}

void append_bytes(Bytes& out, BytesView data) {
  out.insert(out.end(), data.begin(), data.end());
}

void append_string(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append_lv(Bytes& out, BytesView data) {
  append_u32(out, static_cast<std::uint32_t>(data.size()));
  append_bytes(out, data);
}

void append_lv(Bytes& out, std::string_view s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  append_string(out, s);
}

namespace {
void require(BytesView in, std::size_t offset, std::size_t n) {
  if (offset + n > in.size()) {
    throw std::out_of_range("bytes: read past end of buffer");
  }
}
}  // namespace

std::uint16_t read_u16(BytesView in, std::size_t offset) {
  require(in, offset, 2);
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint32_t read_u32(BytesView in, std::size_t offset) {
  require(in, offset, 4);
  return (static_cast<std::uint32_t>(in[offset]) << 24) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 8) |
         static_cast<std::uint32_t>(in[offset + 3]);
}

std::uint64_t read_u64(BytesView in, std::size_t offset) {
  require(in, offset, 8);
  return (static_cast<std::uint64_t>(read_u32(in, offset)) << 32) |
         read_u32(in, offset + 4);
}

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("bytes: invalid hex character");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("bytes: odd-length hex string");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace tactic::util
