#pragma once
// Console table printer used by the benchmark harnesses to render the
// paper's tables (Table II, IV, V) and figure series in a readable form.

#include <ostream>
#include <string>
#include <vector>

namespace tactic::util {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }

  /// Prints with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Formats helpers for numeric cells.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::uint64_t v);
  static std::string fmt_ratio(double v);     // e.g. 0.9999
  static std::string fmt_percent(double v);   // e.g. 94.08%

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tactic::util
