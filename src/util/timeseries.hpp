#pragma once
// Per-second (or arbitrary-bucket) time series, as used by the paper's
// figures: Fig. 5 plots per-second average latency, Fig. 6 per-second tag
// request/receive rates.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace tactic::util {

/// Accumulates (time, value) samples into fixed-width time buckets and
/// reports per-bucket mean / count / sum.
class TimeSeries {
 public:
  /// `bucket_seconds` must be > 0.
  explicit TimeSeries(double bucket_seconds = 1.0);

  /// Adds a sample with timestamp `t_seconds` (>= 0).
  void add(double t_seconds, double value);

  /// Adds an occurrence (value 1) — for rate series.
  void add_event(double t_seconds) { add(t_seconds, 1.0); }

  double bucket_seconds() const { return bucket_seconds_; }
  /// Number of buckets touched so far (index of last + 1).
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Per-bucket statistics; buckets with no samples report count 0.
  std::size_t count(std::size_t bucket) const;
  double mean(std::size_t bucket) const;
  double sum(std::size_t bucket) const;

  /// Mean across all samples in all buckets.
  double overall_mean() const;
  /// Total number of samples.
  std::size_t total_count() const;

  /// Per-bucket means vector (0 for empty buckets) — convenient for CSV.
  std::vector<double> means() const;
  /// Per-bucket counts vector — convenient for rate plots.
  std::vector<std::uint64_t> counts() const;

 private:
  double bucket_seconds_;
  std::vector<RunningStats> buckets_;
};

}  // namespace tactic::util
