#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tactic::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

std::string Table::fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string Table::fmt_percent(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", v);
  return buf;
}

}  // namespace tactic::util
