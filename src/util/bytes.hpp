#pragma once
// Byte-buffer helpers shared across the library.
//
// `Bytes` is the canonical octet-string type used for wire encodings, hash
// inputs/outputs, keys, and signatures.  All multi-byte integers written by
// these helpers use network byte order (big-endian) so that canonical
// serializations are platform independent.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tactic::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends a big-endian integer of the given width to `out`.
void append_u8(Bytes& out, std::uint8_t v);
void append_u16(Bytes& out, std::uint16_t v);
void append_u32(Bytes& out, std::uint32_t v);
void append_u64(Bytes& out, std::uint64_t v);

/// Appends raw bytes / a UTF-8 string verbatim.
void append_bytes(Bytes& out, BytesView data);
void append_string(Bytes& out, std::string_view s);

/// Appends a length-prefixed (u32 big-endian) octet string.  Length
/// prefixing makes concatenated encodings non-ambiguous (no field can
/// impersonate the boundary of another), which matters for signed inputs.
void append_lv(Bytes& out, BytesView data);
void append_lv(Bytes& out, std::string_view s);

/// Reads a big-endian integer starting at `offset`.  The caller must
/// guarantee the buffer is large enough; `read_*` are bounds-checked and
/// throw std::out_of_range on short input.
std::uint16_t read_u16(BytesView in, std::size_t offset);
std::uint32_t read_u32(BytesView in, std::size_t offset);
std::uint64_t read_u64(BytesView in, std::size_t offset);

/// Lowercase hex encoding / decoding.  `from_hex` throws
/// std::invalid_argument on odd length or non-hex characters.
std::string to_hex(BytesView data);
Bytes from_hex(std::string_view hex);

/// Converts a string to its byte representation (no copy of encoding
/// semantics implied; bytes are taken verbatim).
Bytes to_bytes(std::string_view s);

/// Constant-time equality for secret-dependent comparisons (MACs, tags).
bool constant_time_equal(BytesView a, BytesView b);

}  // namespace tactic::util
