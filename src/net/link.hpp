#pragma once
// Point-to-point links with bandwidth, propagation delay, and a drop-tail
// queue — the ns-3 point-to-point substitute.
//
// A `Link` is one direction of a channel.  Transmission of a frame of S
// bytes occupies the transmitter for S*8/bandwidth seconds ("busy-until"
// model); frames arriving while the transmitter is busy wait in a FIFO
// bounded by `max_queue`; overflow frames are dropped.  After serialization
// the frame propagates for `propagation_delay` and is handed to the
// receiver callback.
//
// The layer is payload-agnostic: a frame is a byte count plus a delivery
// closure, so `net` has no dependency on the NDN packet types.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "event/scheduler.hpp"
#include "event/time.hpp"

namespace tactic::net {

/// Link configuration.
struct LinkParams {
  double bits_per_second = 500e6;                     // paper core: 500 Mbps
  event::Time propagation_delay = event::kMillisecond;  // paper core: 1 ms
  std::size_t max_queue = 100;                        // frames
};

/// Paper presets (Section 8.A).
LinkParams core_link_params();  // 500 Mbps, 1 ms
LinkParams edge_link_params();  // 10 Mbps, 2 ms

/// Traffic counters for one link direction.
struct LinkCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

/// One direction of a point-to-point channel.
class Link {
 public:
  /// `deliver` runs at the receiver when a frame arrives; it receives the
  /// same opaque cookie passed to `send` (the serialized packet stand-in).
  Link(event::Scheduler& scheduler, LinkParams params);

  const LinkParams& params() const { return params_; }
  const LinkCounters& counters() const { return counters_; }

  /// Enqueues a frame of `size_bytes` whose arrival at the receiver runs
  /// `on_delivered`.  Returns false (and drops) when the link is down or
  /// the queue is full — the sender may fail over to another face.
  bool send(std::size_t size_bytes, std::function<void()> on_delivered);

  /// Administrative / failure state.  A down link refuses frames; frames
  /// already in flight still arrive (they are on the wire).
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Instantaneous queue depth in frames (including the one in service).
  std::size_t queue_depth() const { return in_flight_; }

 private:
  event::Time serialization_delay(std::size_t size_bytes) const;

  event::Scheduler& scheduler_;
  LinkParams params_;
  LinkCounters counters_;
  event::Time busy_until_ = 0;
  std::size_t in_flight_ = 0;
  bool up_ = true;
};

}  // namespace tactic::net
