#pragma once
// Point-to-point links with bandwidth, propagation delay, and a drop-tail
// queue — the ns-3 point-to-point substitute.
//
// A `Link` is one direction of a channel.  Transmission of a frame of S
// bytes occupies the transmitter for S*8/bandwidth seconds ("busy-until"
// model); frames arriving while the transmitter is busy wait in a FIFO
// bounded by `max_queue`; overflow frames are dropped.  After serialization
// the frame propagates for `propagation_delay` and is handed to the
// receiver callback.
//
// An optional seeded `LinkFaultParams` model makes the wire lossy: i.i.d.
// frame loss, Gilbert–Elliott two-state burst loss, and per-frame bit
// corruption.  Loss is silent — the transmitter still spends the airtime
// and the sender gets no failure signal, matching wireless semantics.
// Corrupted frames still arrive; the receiver learns the fate and a
// deterministic corruption seed so upper layers can flip real wire bytes.
//
// The layer is payload-agnostic two ways.  The hot path carries a Frame:
// a byte count plus a refcounted opaque cookie (the shared packet) and a
// kind byte the receiver uses to reconstruct the payload type — no
// per-frame closure, no allocation.  A legacy closure-based send remains
// for tests and probes.  Either way `net` has no dependency on the NDN
// packet types.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "event/scheduler.hpp"
#include "event/time.hpp"
#include "util/rng.hpp"

namespace tactic::net {

/// Link configuration.
struct LinkParams {
  double bits_per_second = 500e6;                     // paper core: 500 Mbps
  event::Time propagation_delay = event::kMillisecond;  // paper core: 1 ms
  std::size_t max_queue = 100;                        // frames
};

/// Paper presets (Section 8.A).
LinkParams core_link_params();  // 500 Mbps, 1 ms
LinkParams edge_link_params();  // 10 Mbps, 2 ms

/// Stochastic fault model for one link direction.  All probabilities are
/// per-frame; the Gilbert–Elliott chain advances once per transmitted
/// frame (good --p_enter_burst--> bad, bad --p_exit_burst--> good) and
/// frames sent in the bad state are lost with probability `burst_loss`.
struct LinkFaultParams {
  double loss = 0.0;           // i.i.d. frame loss probability
  double corruption = 0.0;     // per-frame bit-corruption probability
  double p_enter_burst = 0.0;  // GE chain: good -> bad
  double p_exit_burst = 0.0;   // GE chain: bad -> good
  double burst_loss = 1.0;     // loss probability while in the bad state

  bool any() const {
    return loss > 0.0 || corruption > 0.0 || p_enter_burst > 0.0;
  }
};

/// Traffic counters for one link direction.  `dropped_queue_full` and
/// `refused_link_down` are refusals visible to the sender (send() returned
/// false); `frames_lost` and `frames_corrupted` are fault-model fates of
/// frames the sender believes it transmitted.
struct LinkCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t refused_link_down = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_corrupted = 0;

  /// Combined refusal count (the pre-split `frames_dropped` semantics).
  std::uint64_t frames_dropped() const {
    return dropped_queue_full + refused_link_down;
  }
};

/// Fate of one delivered frame, as decided by the fault model.
struct FrameFate {
  bool corrupted = false;
  std::uint64_t corruption_seed = 0;  // deterministic per-frame flip seed
};

/// The payload of one in-flight frame: a shared opaque cookie (the
/// packet) plus a kind tag the receiver uses to restore the type.
struct Frame {
  std::shared_ptr<const void> payload;
  std::uint32_t kind = 0;
};

/// One direction of a point-to-point channel.
class Link {
 public:
  /// Delivery callback; receives the frame's fault-model fate.
  using DeliverFn = std::function<void(const FrameFate&)>;
  /// Receiver installed once at wiring time; runs for every arriving
  /// Frame (including corrupted ones — the fate says so).
  using ReceiveFn = std::function<void(const FrameFate&, Frame&&)>;

  /// Cross-partition delivery hook (parallel engine).  When set, the
  /// receiver side of a Frame delivery is handed to this hook — called on
  /// the *sender's* thread at send time with the arrival timestamp, the
  /// receiver invocation, and the frame (so packet caches can be warmed
  /// before the payload becomes visible to another thread) — while the
  /// sender-side bookkeeping (queue drain) stays a local event.  Unset
  /// (the default), delivery is one local event, exactly the sequential
  /// path.
  using RemotePost = std::function<void(
      event::Time when, event::Scheduler::Handler receiver_call,
      const Frame* frame)>;

  Link(event::Scheduler& scheduler, LinkParams params);

  const LinkParams& params() const { return params_; }
  const LinkCounters& counters() const { return counters_; }

  /// Re-points this link at another event scheduler (the partition of its
  /// *sending* node).  Must run before any frame is sent.
  void rebind_scheduler(event::Scheduler* scheduler) {
    scheduler_ = scheduler;
  }

  /// Installs the cross-partition delivery hook (see RemotePost).
  void set_remote_post(RemotePost post) { remote_post_ = std::move(post); }

  /// Installs (or replaces) the frame receiver for the cookie-based
  /// send().  One per link direction, registered at wiring time — frames
  /// then carry only the refcounted payload, never a closure.
  void set_receiver(ReceiveFn receiver) { receiver_ = std::move(receiver); }

  /// Enqueues a frame of `size_bytes` carrying `frame`; arrival runs the
  /// installed receiver.  Returns false (and drops) when the link is down
  /// or the queue is full — the sender may fail over to another face.  A
  /// frame the fault model loses still returns true: wireless loss is
  /// silent at the sender.
  bool send(std::size_t size_bytes, Frame frame);

  /// Legacy per-frame-closure send (tests, probes); same admission and
  /// fate rules.
  bool send(std::size_t size_bytes, DeliverFn on_delivered);

  /// Convenience overload for fate-oblivious callers: the closure only
  /// runs for intact frames (corrupted frames are dropped at this shim,
  /// as if L2 CRC rejected them before the payload handler).
  bool send(std::size_t size_bytes, std::function<void()> on_delivered);

  /// Installs (or replaces) the fault model.  `rng` should be a dedicated
  /// fork so fault draws never perturb other subsystems' streams.
  void set_fault_model(const LinkFaultParams& faults, util::Rng rng);
  const LinkFaultParams& fault_params() const { return faults_; }

  /// Administrative / failure state.  A down link refuses frames; frames
  /// already in flight still arrive (they are on the wire).
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Instantaneous queue depth in frames (including the one in service).
  std::size_t queue_depth() const { return in_flight_; }

  /// Gilbert–Elliott chain state (true while in the bursty/bad state).
  bool in_burst() const { return in_burst_; }

 private:
  event::Time serialization_delay(std::size_t size_bytes) const;

  /// Advances the GE chain and draws this frame's fate.  Returns false if
  /// the frame is lost on the wire.
  bool draw_fate(FrameFate& fate);

  /// Shared admission: queue/up checks, airtime accounting, fate draw.
  /// Returns false when refused; otherwise fills the arrival time.
  bool admit(std::size_t size_bytes, event::Time& arrival, FrameFate& fate,
             bool& arrives);

  ReceiveFn receiver_;
  RemotePost remote_post_;
  event::Scheduler* scheduler_;  // never null; rebindable (partitioning)
  LinkParams params_;
  LinkCounters counters_;
  LinkFaultParams faults_;
  util::Rng fault_rng_{0};
  event::Time busy_until_ = 0;
  std::size_t in_flight_ = 0;
  bool up_ = true;
  bool in_burst_ = false;
};

}  // namespace tactic::net
