#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace tactic::net {

LinkParams core_link_params() {
  return LinkParams{500e6, event::kMillisecond, 100};
}

LinkParams edge_link_params() {
  return LinkParams{10e6, 2 * event::kMillisecond, 100};
}

Link::Link(event::Scheduler& scheduler, LinkParams params)
    : scheduler_(scheduler), params_(params) {}

event::Time Link::serialization_delay(std::size_t size_bytes) const {
  const double seconds =
      static_cast<double>(size_bytes) * 8.0 / params_.bits_per_second;
  return std::max<event::Time>(1, event::from_seconds(seconds));
}

bool Link::send(std::size_t size_bytes, std::function<void()> on_delivered) {
  if (!up_ || in_flight_ >= params_.max_queue) {
    ++counters_.frames_dropped;
    return false;
  }
  const event::Time now = scheduler_.now();
  const event::Time start = std::max(busy_until_, now);
  const event::Time tx_done = start + serialization_delay(size_bytes);
  busy_until_ = tx_done;
  ++in_flight_;
  ++counters_.frames_sent;
  counters_.bytes_sent += size_bytes;

  scheduler_.schedule_at(
      tx_done + params_.propagation_delay,
      [this, deliver = std::move(on_delivered)]() mutable {
        --in_flight_;
        deliver();
      });
  return true;
}

}  // namespace tactic::net
