#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace tactic::net {

LinkParams core_link_params() {
  return LinkParams{500e6, event::kMillisecond, 100};
}

LinkParams edge_link_params() {
  return LinkParams{10e6, 2 * event::kMillisecond, 100};
}

Link::Link(event::Scheduler& scheduler, LinkParams params)
    : scheduler_(&scheduler), params_(params) {}

event::Time Link::serialization_delay(std::size_t size_bytes) const {
  const double seconds =
      static_cast<double>(size_bytes) * 8.0 / params_.bits_per_second;
  return std::max<event::Time>(1, event::from_seconds(seconds));
}

void Link::set_fault_model(const LinkFaultParams& faults, util::Rng rng) {
  faults_ = faults;
  fault_rng_ = rng;
  in_burst_ = false;
}

bool Link::draw_fate(FrameFate& fate) {
  if (!faults_.any()) return true;
  // One GE step per transmitted frame, then the loss and corruption draws.
  // Fixed draw order keeps the stream identical across runs.
  if (in_burst_) {
    if (fault_rng_.bernoulli(faults_.p_exit_burst)) in_burst_ = false;
  } else if (faults_.p_enter_burst > 0.0) {
    if (fault_rng_.bernoulli(faults_.p_enter_burst)) in_burst_ = true;
  }
  bool lost = false;
  if (faults_.loss > 0.0 && fault_rng_.bernoulli(faults_.loss)) lost = true;
  if (in_burst_ && fault_rng_.bernoulli(faults_.burst_loss)) lost = true;
  if (lost) return false;
  if (faults_.corruption > 0.0 && fault_rng_.bernoulli(faults_.corruption)) {
    fate.corrupted = true;
    fate.corruption_seed = fault_rng_();
  }
  return true;
}

bool Link::admit(std::size_t size_bytes, event::Time& arrival,
                 FrameFate& fate, bool& arrives) {
  if (!up_) {
    ++counters_.refused_link_down;
    return false;
  }
  if (in_flight_ >= params_.max_queue) {
    ++counters_.dropped_queue_full;
    return false;
  }
  const event::Time now = scheduler_->now();
  const event::Time start = std::max(busy_until_, now);
  const event::Time tx_done = start + serialization_delay(size_bytes);
  busy_until_ = tx_done;
  ++in_flight_;
  ++counters_.frames_sent;
  counters_.bytes_sent += size_bytes;

  arrives = draw_fate(fate);
  if (!arrives) {
    ++counters_.frames_lost;
  } else if (fate.corrupted) {
    ++counters_.frames_corrupted;
  }
  arrival = tx_done + params_.propagation_delay;
  return true;
}

bool Link::send(std::size_t size_bytes, Frame frame) {
  event::Time arrival = 0;
  FrameFate fate;
  bool arrives = false;
  if (!admit(size_bytes, arrival, fate, arrives)) return false;
  if (remote_post_) {
    // Cross-partition delivery: the sender-side queue drain stays a local
    // event; the receiver invocation travels through the hook (which
    // warms the frame's packet caches on this thread first).  Corrupted
    // frames are consumed entirely on the sender (corruption probe +
    // counter, no delivery — see Forwarder::add_link_face), so they stay
    // a local event and never touch the receiving partition.
    scheduler_->schedule_at(arrival, [this] { --in_flight_; });
    if (arrives && fate.corrupted) {
      scheduler_->schedule_at(
          arrival, [this, fate, f = std::move(frame)]() mutable {
            if (receiver_) receiver_(fate, std::move(f));
          });
    } else if (arrives) {
      // The handler copies the frame (a refcount bump) so `&frame` stays
      // valid for the hook's cache warming.
      remote_post_(arrival,
                   [this, fate, f = frame]() mutable {
                     if (receiver_) receiver_(fate, std::move(f));
                   },
                   &frame);
    }
    return true;
  }
  scheduler_->schedule_at(
      arrival, [this, arrives, fate, f = std::move(frame)]() mutable {
        --in_flight_;
        if (arrives && receiver_) receiver_(fate, std::move(f));
      });
  return true;
}

bool Link::send(std::size_t size_bytes, DeliverFn on_delivered) {
  event::Time arrival = 0;
  FrameFate fate;
  bool arrives = false;
  if (!admit(size_bytes, arrival, fate, arrives)) return false;
  if (remote_post_) {
    scheduler_->schedule_at(arrival, [this] { --in_flight_; });
    if (arrives) {
      remote_post_(arrival,
                   [fate, deliver = std::move(on_delivered)]() mutable {
                     deliver(fate);
                   },
                   nullptr);
    }
    return true;
  }
  scheduler_->schedule_at(
      arrival,
      [this, arrives, fate, deliver = std::move(on_delivered)]() mutable {
        --in_flight_;
        if (arrives) deliver(fate);
      });
  return true;
}

bool Link::send(std::size_t size_bytes, std::function<void()> on_delivered) {
  return send(size_bytes,
              DeliverFn([deliver = std::move(on_delivered)](
                            const FrameFate& fate) mutable {
                if (!fate.corrupted) deliver();
              }));
}

}  // namespace tactic::net
