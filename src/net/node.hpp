#pragma once
// Node identity and roles.
//
// The paper's network model (Section 3.A) is a hierarchy: wireless clients
// and attackers at the bottom, wireless access points, ISP edge routers
// (R_E), ISP core routers (R_C), and content providers on top.  "Content
// router" vs "intermediate router" is *not* a static role — it depends on
// whether the router holds the requested content in its cache at Interest
// arrival — so it does not appear here.

#include <cstdint>
#include <string>

namespace tactic::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~0u;

enum class NodeKind : std::uint8_t {
  kClient,       // legitimate wireless client (U)
  kAttacker,     // unauthorized user
  kAccessPoint,  // wireless AP; accumulates the access path
  kEdgeRouter,   // R_E
  kCoreRouter,   // R_C
  kProvider,     // content provider (P)
};

const char* to_string(NodeKind kind);

/// True for ISP routers (the entities that run TACTIC's protocols).
constexpr bool is_router(NodeKind kind) {
  return kind == NodeKind::kEdgeRouter || kind == NodeKind::kCoreRouter;
}

/// Descriptive identity of a simulated node.
struct NodeInfo {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kCoreRouter;
  std::string label;  // e.g. "core17", "client3", "provider0"
};

}  // namespace tactic::net
