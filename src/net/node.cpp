#include "net/node.hpp"

namespace tactic::net {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kClient: return "client";
    case NodeKind::kAttacker: return "attacker";
    case NodeKind::kAccessPoint: return "ap";
    case NodeKind::kEdgeRouter: return "edge";
    case NodeKind::kCoreRouter: return "core";
    case NodeKind::kProvider: return "provider";
  }
  return "?";
}

}  // namespace tactic::net
